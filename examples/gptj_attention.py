"""Autotune a GPT-J multi-head-attention MMTV layer (paper Fig. 10).

The MHA layer's score/value computation is a batched matrix-vector
product shaped ``(batch x heads, tokens, 256)``.  This example autotunes
it for the simulated UPMEM system and compares against the PrIM-style
hand-tuned baseline and a CPU roofline — the scenario the paper's intro
motivates (LLM inference with the KV cache resident in PIM memory).

Run:  python examples/gptj_attention.py [--trials N]
"""

import argparse

import numpy as np

import repro
from repro.autotune import autotune
from repro.runtime import Module
from repro.upmem.system import PerformanceModel
from repro.workloads import GPTJ_6B, mha_mmtv


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trials", type=int, default=48)
    parser.add_argument("--batch", type=int, default=4)
    parser.add_argument("--tokens", type=int, default=128)
    args = parser.parse_args()

    wl = mha_mmtv(GPTJ_6B, batch=args.batch, tokens=args.tokens)
    print(
        f"GPT-J 6B MHA MMTV: shape {wl.shape} "
        f"({wl.footprint_mb:.1f} MB, batch={args.batch}, tokens={args.tokens})"
    )

    prim = repro.compile(wl, target="prim").latency
    print(f"PrIM-style baseline : {prim*1e3:8.3f} ms")

    result = autotune(wl, n_trials=args.trials, seed=0)
    print(
        f"ATiM ({args.trials:3d} trials) : {result.best_latency*1e3:8.3f} ms"
        f"   params: {result.best_params}"
    )
    cpu = repro.compile(wl, target="cpu").latency
    print(f"CPU roofline        : {cpu*1e3:8.3f} ms")
    print(
        f"speedup vs PrIM: {prim/result.best_latency:.2f}x,"
        f" vs CPU: {cpu/result.best_latency:.2f}x"
    )

    # Validate the tuned module functionally on a scaled-down instance.
    small = mha_mmtv(GPTJ_6B, batch=1, tokens=16)
    small_result = autotune(small, n_trials=16, seed=0)
    module = Module(small_result.best_module)
    inputs = small.random_inputs(0)
    (out,) = module.run(inputs)
    np.testing.assert_allclose(
        out, small.reference_output(inputs), rtol=1e-3
    )
    print("functional check on 1x16x256 instance: OK")

    prof = PerformanceModel().profile(result.best_module)
    lat = prof.latency
    print(
        f"breakdown: h2d {lat.h2d*1e3:.3f} ms | kernel {lat.kernel*1e3:.3f} ms"
        f" | d2h+reduce {lat.d2h_plus_host*1e3:.3f} ms"
    )


if __name__ == "__main__":
    main()
