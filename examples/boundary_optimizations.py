"""Walk through the PIM-aware optimizations of paper §5.3 / Fig. 8.

Lowers a misaligned GEMV (245x245, which tiles imperfectly) at each
optimization level and shows how the kernel transforms:

* O0 — guarded element-wise copies, boundary checks everywhere;
* O1 — DMA-aware boundary-check elimination (mram_read/mram_write bursts);
* O2 — loop-bound tightening (dead iterations removed from loop bounds);
* O3 — invariant branch hoisting with partial-dead-code sinking.

Run:  python examples/boundary_optimizations.py
"""

import numpy as np

from repro.autotune.compile import compile_params
from repro.upmem import FunctionalExecutor
from repro.upmem.system import PerformanceModel
from repro.workloads import gemv

LEVELS = ("O0", "O1", "O2", "O3")
PARAMS = {
    "m_dpus": 8,
    "k_dpus": 1,
    "n_tasklets": 4,
    "cache": 16,
    "host_threads": 1,
}


def main() -> None:
    wl = gemv(245, 245)
    inputs = wl.random_inputs(0)
    ref = wl.reference_output(inputs)
    model = PerformanceModel()

    print(f"{'level':6} {'kernel (ms)':>12} {'instructions':>14} "
          f"{'branches':>10} {'DMA calls':>10}")
    baseline = None
    for level in LEVELS:
        module = compile_params(wl, PARAMS, optimize=level, check=False)
        (out,) = FunctionalExecutor(module).run(inputs)
        np.testing.assert_allclose(out, ref, rtol=1e-3)
        prof = model.profile(module)
        baseline = baseline or prof.latency.kernel
        print(
            f"{level:6} {prof.latency.kernel*1e3:12.4f}"
            f" {prof.kernel_counts.slots/module.n_dpus:14.0f}"
            f" {prof.kernel_counts.branches/module.n_dpus:10.0f}"
            f" {prof.dpu.dma_calls:10.0f}"
            f"   ({baseline/prof.latency.kernel:.2f}x vs O0)"
        )

    print("\n--- O3 kernel TIR (note dma_copy, min() bounds, hoisted ifs) ---")
    module = compile_params(wl, PARAMS, optimize="O3", check=False)
    print("\n".join(module.kernel.__repr__().splitlines()[:25]))


if __name__ == "__main__":
    main()
