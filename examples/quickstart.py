"""Quickstart: compile and run tensor programs through the target front end.

Walks the ATiM flow around the single entry point
``repro.compile(workload_or_schedule, target=...)``:

1. compile a standard workload for the simulated UPMEM system, run it
   functionally (single input and a thread-pool-sharded batch) and
   inspect the simulated latency breakdown;
2. hand-build a schedule with the Table-2 primitives (DPU binding,
   tasklet binding, WRAM caching, hierarchical reduction) and compile it
   through the same front door, with per-pass timing in a PassContext;
3. compare one workload across every registered target — UPMEM, the
   PrIM/SimplePIM baselines, the CPU/GPU rooflines and the HBM-PIM
   estimate — in one generic loop;
4. autotune with a persistent database: measured candidates append to a
   JSON-lines store as the search runs, a second search warm-starts from
   it (replaying measurements instead of re-simulating), and
   ``repro.compile(wl, tuned=True, db=...)`` resolves the stored best
   without searching again;
5. serve a stream of requests: a ``repro.serve.Server`` batches mixed
   GPT-J + tensor-op traffic dynamically (grouped by compiled program,
   flushed on batch size or virtual-clock age — wall time never enters
   the decision path) and reports simulated throughput and tail latency;
6. build a whole GPT-J decoder-layer decode step as a
   ``repro.graph.ModelGraph`` — per-head attention MMTVs, the four
   FC-shape MTVs, host-side glue — compile it through the same front
   door (placement puts matvecs on PIM, glue on the CPU), run it
   bit-for-bit against the per-op path, and print the fig17-style
   per-node latency breakdown plus the memory planner's buffer reuse;
7. decode end-to-end with ``repro.decode.DecodeEngine``: N layers x T
   tokens over a paged KV cache that grows without replanning the graph
   and a weight-residency planner staging/evicting layers under an MRAM
   budget — per-step and per-layer transfer breakdowns, bit-for-bit at
   any worker count;
8. trace a decode run with ``repro.obs``: scope a virtual-clock
   ``Tracer`` over the run, inspect the top spans by simulated
   duration, and export a Chrome trace-event JSON that loads in
   Perfetto — byte-identical at any worker count;
9. serve a multi-tenant trace on a ``repro.cluster.Cluster``: the same
   seeded bursty traffic replays under whole-request flushing and
   continuous (iteration-level) batching, then once more with a worker
   killed mid-decode — the supervisor fences it and the orphaned
   sessions replay on the survivor, every token digest verified.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

import repro
from repro import PassContext, te
from repro.autotune import TuningCache, autotune
from repro.schedule import Schedule
from repro.workloads import make_workload, mtv

M, K = 1024, 1024


def compile_workload() -> None:
    # 1. One call: workload -> executable for the UPMEM target.  The
    #    target picks canonical sketch parameters (run the autotuner for
    #    tuned ones) and compiles through the shared pass pipeline.
    wl = mtv(M, K)
    exe = repro.compile(wl, target="upmem")

    rng = np.random.default_rng(0)
    a = rng.random((M, K), dtype=np.float32)
    b = rng.random(K, dtype=np.float32)
    (out,) = exe.run(A=a, B=b)
    np.testing.assert_allclose(out, a @ b, rtol=1e-3)
    print("functional check: OK")

    # Independent inputs shard across a thread pool, per DPU group —
    # bit-for-bit identical to sequential run() calls.
    batch = [
        {"A": rng.random((M, K), dtype=np.float32),
         "B": rng.random(K, dtype=np.float32)}
        for _ in range(4)
    ]
    outs = exe.run_batch(batch, max_workers=4)
    print(f"run_batch: {len(outs)} results")

    lat = exe.profile().latency
    print(
        f"simulated latency: total {lat.total*1e3:.3f} ms  "
        f"(h2d {lat.h2d*1e3:.3f}, kernel {lat.kernel*1e3:.3f}, "
        f"d2h {lat.d2h*1e3:.3f}, host {lat.host*1e3:.3f})"
    )


def compile_schedule() -> None:
    # 2. Explicit schedules compile through the same front door.
    #    C(i) = sum_k A(i,k) * B(k), 64 DPUs on rows x 4 on the
    #    reduction (rfactor), 16 tasklets, 64-element WRAM tiles.
    A = te.placeholder((M, K), "float32", "A")
    B = te.placeholder((K,), "float32", "B")
    k = te.reduce_axis(K, "k")
    C = te.compute((M,), lambda i: te.sum(A[i, k] * B[k], axis=k), "C")

    sch = Schedule(C)
    s = sch[C]
    k_dpu, _ = s.split(s.op.reduce_axis[0], nparts=4)
    cf = sch.rfactor(C, k_dpu)  # hierarchical reduction
    stage = sch[cf]
    kd_ax, i_ax = stage.op.axis
    (k_in,) = stage.op.reduce_axis
    m_dpu, m_rest = stage.split(i_ax, nparts=64)
    m_thr, m_in = stage.split(m_rest, nparts=16)
    k_blk, k_elem = stage.split(k_in, factor=64)
    stage.reorder(m_dpu, kd_ax, m_thr, m_in, k_blk, k_elem)
    stage.bind(m_dpu, "blockIdx.x")  # DPU binding
    stage.bind(kd_ax, "blockIdx.y")
    stage.bind(m_thr, "threadIdx.x")  # tasklet binding
    sch.cache_read(cf, A, "wram").compute_at(stage, k_blk)
    sch.cache_read(cf, B, "wram").compute_at(stage, k_blk)
    sch.cache_write(cf, "wram").reverse_compute_at(stage, m_thr)
    final = sch[C]
    fo, _ = final.split(final.op.axis[0], nparts=16)
    final.parallel(fo)  # host post-processing

    ctx = PassContext()
    exe = repro.compile(sch, target="upmem", name="mtv_quickstart", ctx=ctx)
    print("--- compile pipeline ---")
    print(ctx.timing_report())
    print(f"grid: {exe.lowered.n_dpus} DPUs x {exe.lowered.n_tasklets} tasklets")
    print("--- generated UPMEM-C kernel (excerpt) ---")
    print("\n".join(exe.source().splitlines()[:20]))


def compare_targets() -> None:
    # 3. Multi-target comparison: one loop, no per-backend special cases.
    wl = make_workload("mtv", "64MB")
    print(f"--- {wl.name} 64MB across targets ---")
    for kind in repro.list_targets():
        target = repro.get_target(kind)
        if not target.supports(wl):
            print(f"{kind:10s} (not supported)")
            continue
        exe = repro.compile(wl, target=target)
        print(f"{kind:10s} {exe.latency * 1e3:10.3f} ms")


def persistent_tuning() -> None:
    # 4. Persistent tuning: measured candidates land in a versioned
    #    JSON-lines database (one file, many workload/target groups) as
    #    the search runs, so interrupted runs resume and later compiles
    #    reuse the winner.  Real projects keep one db under results/.
    wl = mtv(512, 512)
    with tempfile.TemporaryDirectory() as tmp:
        db = os.path.join(tmp, "tune.jsonl")

        cold = autotune(wl, n_trials=32, seed=0, db=db, parallel_measure=4)
        print(
            f"cold search: best {cold.best_latency * 1e3:.3f} ms "
            f"({cold.measure_cache_misses} candidates simulated)"
        )

        # Same search again: --resume replays every measurement from the
        # store — identical history, zero re-simulation.
        warm = autotune(wl, n_trials=32, seed=0, db=db, resume=True)
        assert warm.history == cold.history
        print(
            f"warm re-run: best {warm.best_latency * 1e3:.3f} ms "
            f"({warm.measure_cache_hits} measurements served from the db)"
        )

        # tuned=True resolves the stored best without searching at all.
        exe = repro.compile(wl, target="upmem", tuned=True, db=db,
                            tune_trials=32)
        assert exe.params == cold.best_params
        records = TuningCache(db).load(cold.db_key)
        print(
            f"tuned=True compile reused the stored best "
            f"({len(records)} records on disk): {exe.params}"
        )


def serving() -> None:
    # 5. Serving: submit 100 mixed requests (GPT-J 6B MHA, an FC-shaped
    #    MTV, VA/RED background traffic) through the dynamic batcher.
    #    Requests batch only with requests for the same compiled
    #    program; a group flushes at max_batch_size or after
    #    max_wait_ticks virtual-clock ticks, so the run is deterministic
    #    at any thread count.  Throughput/latency are *simulated*
    #    numbers from the targets' performance models.
    from repro.serve import (
        ExecutablePool,
        Server,
        generate_trace,
        gptj_serving_mix,
        replay_trace,
    )

    mix = gptj_serving_mix(tokens=4)
    trace = generate_trace(
        100, sorted(mix), pattern="burst", seed=0, burst=16, gap_ticks=8
    )
    with Server(
        ExecutablePool(capacity=8),
        max_batch_size=16,
        max_wait_ticks=4,
        queue_limit=64,
    ) as server:
        tickets = replay_trace(server, trace, mix, target="upmem")
        stats = server.metrics_dict()
    done = sum(t.done for t in tickets)
    print(f"served {done}/{len(tickets)} requests "
          f"({stats['rejected']} rejected) in {stats['flushes']} flushes, "
          f"mean batch {stats['mean_batch']:.1f}")
    print(f"throughput {stats['throughput_rps']:.0f} req/s (simulated),  "
          f"p50 {stats['latency_ms']['p50']:.3f} ms  "
          f"p99 {stats['latency_ms']['p99']:.3f} ms,  "
          f"pool hit rate {stats['pool']['hit_rate']:.0%}")


def model_graphs() -> None:
    # 6. Model graphs: one GPT-J decoder-layer decode step as a DAG of
    #    the paper's ops.  The placement pass sends MMTV/MTV nodes to
    #    the PIM target and element-wise glue to the CPU; the memory
    #    planner reuses dead intermediate buffers over the deterministic
    #    topological order; the latency model pays host<->DPU transfers
    #    only where an edge crosses the placement boundary and weight/
    #    KV-cache staging once per load.  (Scaled config + small grids:
    #    the functional simulator executes every node.)
    from repro.graph import gptj_decoder_graph, plan_memory
    from repro.workloads import GPTJConfig

    config = GPTJConfig("gptj-demo", n_heads=2, d_model=64, head_dim=32)
    graph = gptj_decoder_graph(config, tokens=8)
    exe = repro.compile(graph, target="upmem")

    inputs = graph.random_inputs(seed=0)
    (y,) = exe.run(inputs)
    ref = graph.reference_outputs(inputs)["y"]
    np.testing.assert_allclose(y, ref, rtol=1e-3, atol=1e-5)
    print(f"decode step: {len(graph)} nodes -> y[:4] = {y[:4]}")

    profile = exe.profile()
    print("--- fig17-style per-node breakdown (first 6 nodes) ---")
    for cost in profile.nodes[:6]:
        row = cost.to_dict()
        print(
            f"{row['node']:>14s} {row['target']:>6s}"
            f"  compute {row['compute_ms']:.4f} ms"
            f"  h2d {row['h2d_ms']:.5f}  d2h {row['d2h_ms']:.5f}"
        )
    print(
        f"end-to-end {profile.total*1e3:.3f} ms "
        f"(steady-state {profile.steady_state_s*1e3:.3f} ms after "
        f"{profile.staging_s*1e3:.3f} ms one-time weight staging)"
    )
    plan = plan_memory(graph)
    print(
        f"memory plan: {plan.arena_bytes} B arena vs "
        f"{plan.naive_bytes} B naive ({plan.reuse_ratio:.2f}x reuse)"
    )


def decode() -> None:
    # 7. Full-model decode: every layer, every token, over managed
    #    device memory.  The paged KV cache grows across steps without
    #    replanning the graph (programs recompile only when a page
    #    boundary changes the attention capacity), and a weight-
    #    residency planner stages/evicts layer weights under an MRAM
    #    budget too small to hold them all — both charged through the
    #    explicit transfer model, bit-for-bit at any worker count.
    from repro.decode import DecodeEngine
    from repro.workloads import GPTJConfig

    config = GPTJConfig("gptj-demo", n_heads=2, d_model=32, head_dim=16)
    layer_nbytes = 12 * config.d_model**2 * 4
    engine = DecodeEngine(
        config=config,
        layers=3,
        page_tokens=4,
        mram_budget_bytes=2 * layer_nbytes,  # 2 of 3 layers fit
    )
    result = engine.decode(tokens=6, prompt_tokens=6)

    print("--- full-model decode: 3 layers x 6 tokens ---")
    for step in result.steps:
        row = step.to_dict()
        print(
            f"step {row['step']}  pos {row['position']:2d}"
            f"  capacity {row['capacity']:2d}"
            f"  compiled {row['compiled_programs']:2d}"
            f"  compute {row['compute_ms']:.3f} ms"
            f"  staging {row['staging_ms']:.3f} ms"
            f"  growth {row['cache_growth_ms']:.4f} ms"
        )
    totals = result.per_layer_totals()
    print(
        f"replans {result.replans} (page boundaries only), "
        f"stage/evict per layer: "
        + ", ".join(
            f"L{r['layer']}:{r['stages']}/{r['evictions']}" for r in totals
        )
    )
    cache = result.cache_stats
    print(
        f"KV cache: {cache['pages_allocated']} pages x "
        f"{cache['page_tokens']} tokens, utilization "
        f"{cache['utilization']:.2f}, fragmentation "
        f"{cache['fragmentation']:.2f}"
    )


def tracing() -> None:
    # 8. Observability: scope a virtual-clock Tracer over any run and
    #    every subsystem reports into it — per-pass compile spans, pool
    #    hits/misses, per-node graph breakdowns, per-step/per-layer
    #    decode spans, KV-cache appends and weight staging.  Times are
    #    *simulated* seconds from the performance model, so the same
    #    run always produces the same trace, byte-for-byte, at any
    #    thread count.
    from repro.decode import DecodeEngine
    from repro.obs import Tracer, use_tracer, write_chrome_trace
    from repro.workloads import GPTJConfig

    config = GPTJConfig("gptj-demo", n_heads=2, d_model=32, head_dim=16)
    tracer = Tracer()
    with use_tracer(tracer):
        engine = DecodeEngine(config=config, layers=2, page_tokens=4)
        engine.decode(tokens=3, prompt_tokens=4)

    print("--- top 5 spans by simulated duration ---")
    for span in tracer.top_spans(5):
        print(
            f"{span.dur*1e3:9.3f} ms  {span.track:10s} {span.name}"
        )
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "decode_trace.json")
        payload = write_chrome_trace(tracer, path)
        print(
            f"exported {len(payload['traceEvents'])} Chrome trace events"
            f" across {len(tracer.tracks())} tracks"
            " (load the JSON in Perfetto / chrome://tracing)"
        )


def cluster() -> None:
    # 9. Cluster serving: one seeded diurnal+bursty multi-tenant trace
    #    (interactive / batch / background SLO classes, mixed model
    #    sizes) replayed through two identically configured 2-worker
    #    clusters that differ only in batching mode, then through a
    #    third with a seeded mid-decode worker kill.  All decisions run
    #    on the virtual clock, so every number repeats exactly.
    from repro.cluster import (
        Cluster,
        ClusterConfig,
        FaultEvent,
        FaultInjector,
        default_tenants,
        generate_cluster_trace,
        sessions_from_trace,
    )

    tenants = default_tenants()
    trace = generate_cluster_trace(
        12, tenants, seed=7,
        mean_interarrival_s=0.02, burst_prob=0.3, burst_size=4,
        decode_tokens=(2, 12),
    )

    print("--- cluster serving: whole-request vs continuous batching ---")
    for mode in ("whole", "continuous"):
        config = ClusterConfig(n_workers=2, mode=mode)
        result = Cluster(config, tenants=tenants).run(
            sessions_from_trace(trace, tenants)
        )
        s = result.summary()
        print(
            f"{mode:11s} {s['completed']} done,"
            f" {s['throughput_tokens_per_s']:7.1f} tok/s,"
            f" p99 TTFT {s['p99_ttft_ms']:7.2f} ms,"
            f" mean batch {s['mean_batch_occupancy']:.2f}"
        )

    faults = FaultInjector.from_events(
        [FaultEvent(at_s=0.12, worker=0, kind="kill")], n_workers=2
    )
    result = Cluster(
        ClusterConfig(n_workers=2, mode="continuous"),
        tenants=tenants, faults=faults,
    ).run(sessions_from_trace(trace, tenants))
    order = " -> ".join(
        f"w{w}:{new}" for _, w, _, new in result.supervisor_transitions
    )
    print(
        f"worker 0 killed mid-decode: {len(result.completed)} done,"
        f" {result.replays} replay(s)"
        f" (digests {'OK' if result.replay_ok else 'MISMATCH'}); {order}"
    )


def main() -> None:
    compile_workload()
    print()
    compile_schedule()
    print()
    compare_targets()
    print()
    persistent_tuning()
    print()
    serving()
    print()
    model_graphs()
    print()
    decode()
    print()
    tracing()
    print()
    cluster()


if __name__ == "__main__":
    main()
