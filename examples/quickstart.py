"""Quickstart: define, schedule, compile and run a tensor program.

Walks the full ATiM flow by hand on a matrix-vector product:

1. declare the computation with the TE DSL;
2. schedule it with the Table-2 primitives (DPU binding, tasklet binding,
   WRAM caching, hierarchical reduction);
3. build for the simulated UPMEM system through the named ``build``
   pipeline, with per-pass timing collected in a ``PassContext``;
4. run functionally and inspect the simulated latency breakdown and the
   generated UPMEM-C kernel.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PassContext, build, te
from repro.schedule import Schedule

M, K = 1024, 1024


def main() -> None:
    # 1. Computation: C(i) = sum_k A(i,k) * B(k)
    A = te.placeholder((M, K), "float32", "A")
    B = te.placeholder((K,), "float32", "B")
    k = te.reduce_axis(K, "k")
    C = te.compute((M,), lambda i: te.sum(A[i, k] * B[k], axis=k), "C")

    # 2. Schedule: 64 DPUs on rows x 4 DPUs on the reduction (rfactor),
    #    16 tasklets per DPU, 64-element WRAM caching tiles.
    sch = Schedule(C)
    s = sch[C]
    k_dpu, _ = s.split(s.op.reduce_axis[0], nparts=4)
    cf = sch.rfactor(C, k_dpu)  # hierarchical reduction
    stage = sch[cf]
    kd_ax, i_ax = stage.op.axis
    (k_in,) = stage.op.reduce_axis
    m_dpu, m_rest = stage.split(i_ax, nparts=64)
    m_thr, m_in = stage.split(m_rest, nparts=16)
    k_blk, k_elem = stage.split(k_in, factor=64)
    stage.reorder(m_dpu, kd_ax, m_thr, m_in, k_blk, k_elem)
    stage.bind(m_dpu, "blockIdx.x")  # DPU binding
    stage.bind(kd_ax, "blockIdx.y")
    stage.bind(m_thr, "threadIdx.x")  # tasklet binding
    sch.cache_read(cf, A, "wram").compute_at(stage, k_blk)
    sch.cache_read(cf, B, "wram").compute_at(stage, k_blk)
    sch.cache_write(cf, "wram").reverse_compute_at(stage, m_thr)
    final = sch[C]
    fo, _ = final.split(final.op.axis[0], nparts=16)
    final.parallel(fo)  # host post-processing

    # 3. Compile (PIM-aware optimizations O3 by default).  The build
    #    routes through the shared pass pipeline; the context records
    #    what ran and how long each pass took.
    ctx = PassContext()
    mod = build(sch, name="mtv_quickstart", ctx=ctx)
    print("--- compile pipeline ---")
    print(ctx.timing_report())

    # 4. Run and check.
    rng = np.random.default_rng(0)
    a = rng.random((M, K), dtype=np.float32)
    b = rng.random(K, dtype=np.float32)
    (out,) = mod.run(A=a, B=b)
    np.testing.assert_allclose(out, a @ b, rtol=1e-3)
    print("functional check: OK")

    prof = mod.profile()
    lat = prof.latency
    print(
        f"simulated latency: total {lat.total*1e3:.3f} ms  "
        f"(h2d {lat.h2d*1e3:.3f}, kernel {lat.kernel*1e3:.3f}, "
        f"d2h {lat.d2h*1e3:.3f}, host {lat.host*1e3:.3f})"
    )
    print(f"grid: {mod.lowered.n_dpus} DPUs x {mod.lowered.n_tasklets} tasklets")
    print("\n--- generated UPMEM-C kernel (excerpt) ---")
    print("\n".join(mod.source().splitlines()[:40]))


if __name__ == "__main__":
    main()
