"""Compare search strategies on MTV (paper Fig. 14).

Runs the evolutionary search with four configurations — default TVM-style,
balanced sampling only, adaptive ε-greedy only, and full ATiM — and prints
the GFLOPS convergence curves, reproducing the paper's observation that
balanced exploration of the rfactor/non-rfactor subspaces converges to a
better final schedule.

Run:  python examples/search_comparison.py [--trials N]
"""

import argparse

from repro.autotune import Tuner
from repro.harness import render_curve
from repro.workloads import mtv


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trials", type=int, default=96)
    parser.add_argument("--m", type=int, default=4096)
    parser.add_argument("--k", type=int, default=4096)
    args = parser.parse_args()

    wl = mtv(args.m, args.k)
    variants = {
        "default TVM": dict(balanced=False, adaptive_epsilon=False),
        "balanced sampling": dict(balanced=True, adaptive_epsilon=False),
        "adaptive eps-greedy": dict(balanced=False, adaptive_epsilon=True),
        "ATiM (both)": dict(balanced=True, adaptive_epsilon=True),
    }
    finals = {}
    for name, flags in variants.items():
        result = Tuner(wl, n_trials=args.trials, seed=0, **flags).tune()
        curve = result.gflops_curve()
        finals[name] = curve[-1][1]
        print(render_curve(curve, title=f"--- {name} ---"))
        print(
            f"best: {result.best_latency*1e3:.3f} ms"
            f" ({curve[-1][1]:.2f} GFLOPS), params {result.best_params}\n"
        )

    print("final GFLOPS by strategy:")
    for name, gflops in sorted(finals.items(), key=lambda kv: -kv[1]):
        print(f"  {name:22} {gflops:8.2f}")


if __name__ == "__main__":
    main()
