"""Setup shim enabling legacy editable installs in offline environments.

The execution environment has no ``wheel`` package and no network, so
PEP 517 editable installs (which build a wheel) fail; ``setup.py develop``
does not need one.  Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
