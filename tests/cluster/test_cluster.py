"""End-to-end cluster behavior: batching modes, SLO admission,
preemption, quotas, routing, and fault handling."""

import pytest

from repro.cluster import (
    COMPLETED,
    KILL,
    REJECTED,
    STALL,
    Cluster,
    ClusterConfig,
    FaultEvent,
    FaultInjector,
    Session,
    TenantSpec,
)

from .conftest import run_small, small_config, small_trace


class TestContinuousMode:
    def test_all_sessions_complete(self):
        result, _ = run_small(n=8)
        assert len(result.completed) == 8
        assert all(s.status == COMPLETED for s in result.sessions)
        assert result.makespan_s > 0
        assert result.tokens_decoded == sum(
            s.decode_tokens for s in result.sessions
        )

    def test_token_latencies_metered(self):
        result, _ = run_small(n=6)
        metrics = result.metrics.to_dict(elapsed_s=result.makespan_s)
        assert metrics["ttft_ms"]["count"] == 6
        assert metrics["tpot_ms"]["count"] == 6
        assert metrics["completed"] == 6
        assert set(metrics["per_tenant"]) <= {
            "interactive", "batch", "background"
        }

    def test_iteration_level_joins(self):
        """Bursty arrivals join in-flight batches: some iteration runs
        a batch larger than 1 even though arrivals are staggered."""
        result, _ = run_small(
            n=10,
            trace_kwargs=dict(
                mean_interarrival_s=0.01, burst_prob=0.5, burst_size=3
            ),
        )
        assert max(result.occupancy_samples) > 1

    def test_sessions_retire_individually(self):
        """In continuous mode short sessions finish while long ones
        keep decoding: completion order is not admission order."""
        tenants, sessions = small_trace(n=8, decode_tokens=(2, 12))
        cluster = Cluster(small_config(), tenants=tenants)
        result = cluster.run(sessions)
        finish = {s.session_id: s.finish_s for s in result.completed}
        admitted = {s.session_id: s.admitted_s for s in result.completed}
        by_admit = sorted(finish, key=lambda k: (admitted[k], k))
        by_finish = sorted(finish, key=lambda k: (finish[k], k))
        assert by_admit != by_finish


class TestWholeRequestMode:
    def test_baseline_completes(self):
        result, _ = run_small(n=8, mode="whole")
        assert len(result.completed) == 8

    def test_continuous_beats_whole_on_bursty_trace(self):
        kwargs = dict(
            n=12,
            trace_kwargs=dict(
                mean_interarrival_s=0.02, burst_prob=0.3, burst_size=4,
                decode_tokens=(2, 12),
            ),
        )
        cont, _ = run_small(mode="continuous", **kwargs)
        whole, _ = run_small(mode="whole", **kwargs)
        assert (
            cont.throughput_tokens_per_s > whole.throughput_tokens_per_s
        )
        assert (
            cont.metrics.ttft.percentile(99)
            < whole.metrics.ttft.percentile(99)
        )

    def test_sealed_worker_admits_nothing_mid_batch(self):
        """Whole-request flushing: a worker's batch admission instants
        are strictly separated — nobody joins between a batch's first
        admission and its last completion."""
        result, cluster = run_small(n=10, mode="whole", n_workers=1)
        batches = {}
        for s in result.completed:
            batches.setdefault(s.admitted_s, []).append(s)
        instants = sorted(batches)
        assert len(instants) > 1  # more than one flush actually happened
        for prev, nxt in zip(instants, instants[1:]):
            # The next batch's admission waits for the previous batch
            # to drain completely.
            assert max(s.finish_s for s in batches[prev]) <= nxt


class TestSLOAdmission:
    def test_unsatisfiable_deadline_rejected_at_submit(self):
        """Regression (ISSUE 10 polish): a request whose TTFT deadline
        cannot be met even by an empty cluster is refused at submit
        time — counted per tenant — instead of timing out in-queue."""
        tenants, sessions = small_trace(n=4)
        doomed = Session(
            session_id="doomed", tenant="interactive", arrival_s=0.0,
            prompt_tokens=2, decode_tokens=2,
            ttft_deadline_s=0.0,  # < dispatch overhead: unsatisfiable
        )
        cluster = Cluster(small_config(), tenants=tenants)
        result = cluster.run(sessions + [doomed])
        assert doomed.status == REJECTED
        assert doomed.admitted_s is None  # never sat in the queue
        tenant = result.metrics.per_tenant["interactive"]
        assert tenant["rejected_slo"] == 1
        assert result.metrics.rejected == 1
        # Everyone else still completes.
        assert len(result.completed) == 4

    def test_satisfiable_deadline_not_rejected(self):
        tenants, sessions = small_trace(n=4)
        cluster = Cluster(small_config(), tenants=tenants)
        result = cluster.run(sessions)
        assert result.metrics.rejected == 0

    def test_capacity_infeasible_rejected_at_submit(self):
        """A session whose full-length KV footprint exceeds a whole
        worker's page pool can never finish (no preemption helps):
        refused at submit instead of wedging a worker mid-decode."""
        giant = Session(
            session_id="giant", tenant="batch", arrival_s=0.0,
            prompt_tokens=4, decode_tokens=1000,
            ttft_deadline_s=10.0, tpot_deadline_s=10.0,
        )
        tenants, sessions = small_trace(n=4)
        cluster = Cluster(small_config(), tenants=tenants)
        result = cluster.run(sessions + [giant])
        assert giant.status == REJECTED
        assert giant.admitted_s is None
        assert result.metrics.per_tenant["batch"]["rejected"] == 1
        assert result.metrics.per_tenant["batch"]["rejected_slo"] == 0
        assert len(result.completed) == 4

    def test_queue_cap_rejects_overflow(self):
        tenants, sessions = small_trace(
            n=12, burst_prob=1.0, burst_size=12
        )
        cluster = Cluster(small_config(queue_cap=4), tenants=tenants)
        result = cluster.run(sessions)
        assert any(s.status == REJECTED for s in result.sessions)
        assert result.metrics.rejected > 0


class TestPreemption:
    def _sessions(self):
        # One worker, 4-page pool: the lax session's KV fills the pool;
        # the urgent arrival can only fit by evicting it.
        lax = Session(
            session_id="lax", tenant="batch", arrival_s=0.0,
            prompt_tokens=4, decode_tokens=4,
            ttft_deadline_s=10.0, tpot_deadline_s=10.0,
        )
        urgent = Session(
            session_id="urgent", tenant="interactive", arrival_s=0.03,
            prompt_tokens=4, decode_tokens=2,
            ttft_deadline_s=0.2, tpot_deadline_s=0.2,
        )
        return lax, urgent

    def test_pool_exhaustion_evicts_lower_priority(self):
        lax, urgent = self._sessions()
        cluster = Cluster(
            small_config(n_workers=1, max_pages=4, page_tokens=4)
        )
        result = cluster.run([lax, urgent])
        assert lax.preemptions == 1
        assert lax.replays == 1        # re-admitted via replay
        assert lax.replay_ok is True
        assert urgent.preemptions == 0
        assert {s.status for s in result.sessions} == {COMPLETED}
        assert result.metrics.per_tenant["batch"]["preempted"] == 1

    def test_decode_time_pool_exhaustion_unwedges(self):
        """Regression: sessions that fit at admission but collectively
        exhaust the KV pool mid-decode must not deadlock the worker.
        Two 6-prompt sessions fill all 8 pages (2 pages x 2 layers
        each); both block when token 9 crosses a page boundary, and
        the lowest-priority resident is evicted (for later
        digest-verified replay) so the other can finish."""
        a = Session(
            session_id="a", tenant="interactive", arrival_s=0.0,
            prompt_tokens=6, decode_tokens=8,
            ttft_deadline_s=0.5, tpot_deadline_s=0.5,
        )
        b = Session(
            session_id="b", tenant="batch", arrival_s=0.0,
            prompt_tokens=6, decode_tokens=8,
            ttft_deadline_s=10.0, tpot_deadline_s=10.0,
        )
        cluster = Cluster(
            small_config(n_workers=1, max_pages=8, page_tokens=4)
        )
        result = cluster.run([a, b])
        assert {s.status for s in result.sessions} == {COMPLETED}
        assert b.preemptions >= 1
        assert b.replays >= 1
        assert result.replay_ok is True
        assert a.finish_s < b.finish_s

    def test_urgent_session_served_first_after_preemption(self):
        lax, urgent = self._sessions()
        cluster = Cluster(
            small_config(n_workers=1, max_pages=4, page_tokens=4)
        )
        cluster.run([lax, urgent])
        assert urgent.finish_s < lax.finish_s


class TestQuotas:
    def test_tenant_quota_serializes_admissions(self):
        tenants = [TenantSpec("solo", quota=1, ttft_slo_s=10.0,
                              tpot_slo_s=10.0)]
        sessions = [
            Session(session_id=f"q{i}", tenant="solo", arrival_s=0.0,
                    prompt_tokens=2, decode_tokens=3,
                    ttft_deadline_s=10.0, tpot_deadline_s=10.0)
            for i in range(2)
        ]
        cluster = Cluster(small_config(n_workers=2), tenants=tenants)
        result = cluster.run(sessions)
        assert len(result.completed) == 2
        first, second = sorted(result.completed, key=lambda s: s.admitted_s)
        # Quota 1: the second session waits for the first to finish
        # even with an idle second worker available.
        assert second.admitted_s >= first.finish_s

    def test_unknown_tenant_unthrottled(self):
        sessions = [
            Session(session_id=f"u{i}", tenant="mystery", arrival_s=0.0,
                    prompt_tokens=2, decode_tokens=2,
                    ttft_deadline_s=10.0, tpot_deadline_s=10.0)
            for i in range(3)
        ]
        cluster = Cluster(small_config(n_workers=2))
        result = cluster.run(sessions)
        assert len(result.completed) == 3


class TestRouting:
    def test_affinity_keeps_tenant_together(self):
        tenants, sessions = small_trace(n=8)
        cluster = Cluster(small_config(n_workers=2), tenants=tenants)
        cluster.run(sessions)
        stats = cluster.router.stats()
        assert stats["placements"] == 8
        assert stats["affinity_hits"] > 0

    def test_load_spreads_across_workers(self):
        tenants, sessions = small_trace(
            n=10, burst_prob=1.0, burst_size=5
        )
        cluster = Cluster(small_config(n_workers=2), tenants=tenants)
        cluster.run(sessions)
        assert all(w.iterations > 0 for w in cluster.workers)


class TestFaults:
    def test_stall_recovers_without_replay(self):
        """A stall shorter than the dead threshold degrades the worker
        but keeps its state: sessions finish with zero replays."""
        faults = FaultInjector.from_events(
            [FaultEvent(0.04, 0, STALL, duration_s=0.05)], n_workers=2
        )
        result, cluster = run_small(n=6, faults=faults)
        assert len(result.completed) == 6
        assert result.replays == 0
        states = [(old, new) for _, w, old, new
                  in result.supervisor_transitions if w == 0]
        assert ("healthy", "degraded") in states
        assert ("degraded", "healthy") in states

    def test_kill_orphans_replay_and_complete(self):
        faults = FaultInjector.from_events(
            [FaultEvent(0.06, 0, KILL)], n_workers=2
        )
        result, cluster = run_small(n=8, faults=faults)
        assert len(result.completed) == 8
        assert result.replays > 0
        assert result.replay_ok is True
        states = [new for _, w, old, new
                  in result.supervisor_transitions if w == 0]
        assert states == ["degraded", "dead", "recovering", "healthy"]

    def test_recovery_outputs_bit_for_bit_vs_no_fault(self):
        """The acceptance criterion: after a mid-decode worker kill,
        every session's full token-digest stream equals the no-fault
        run's — replay is bit-for-bit, not merely 'it finished'."""
        clean, _ = run_small(n=8)
        faults = FaultInjector.from_events(
            [FaultEvent(0.06, 0, KILL)], n_workers=2
        )
        faulty, _ = run_small(n=8, faults=faults)
        clean_digests = {
            s.session_id: s.token_digests for s in clean.sessions
        }
        faulty_digests = {
            s.session_id: s.token_digests for s in faulty.sessions
        }
        assert clean_digests == faulty_digests

    def test_single_worker_cluster_survives_kill(self):
        faults = FaultInjector.from_events(
            [FaultEvent(0.06, 0, KILL)], n_workers=1
        )
        result, _ = run_small(n=4, n_workers=1, faults=faults)
        assert len(result.completed) == 4
        assert result.replay_ok is True


class TestValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ClusterConfig(mode="magic")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            ClusterConfig(n_workers=0)

    def test_nonconvergence_raises(self):
        tenants, sessions = small_trace(n=2)
        cluster = Cluster(small_config(max_ticks=1), tenants=tenants)
        with pytest.raises(RuntimeError, match="did not converge"):
            cluster.run(sessions)
