"""Determinism under failure (ISSUE 10 acceptance): same seed ⇒
identical fault schedule, batch compositions, recovery order and final
responses — at any host thread count and under REPRO_SIM_MODE=verify."""

from repro.cluster import KILL, FaultEvent, FaultInjector

from .conftest import run_small


def _fingerprint(result):
    """Everything observable about a run, in a comparable form."""
    return {
        "summary": result.summary(),
        "sessions": [s.to_dict() for s in result.sessions],
        "occupancy": result.occupancy_samples,
        "kv": result.kv_samples,
        "transitions": result.supervisor_transitions,
        "faults": result.faults_fired,
    }


def _kill_faults(n_workers=2):
    return FaultInjector.from_events(
        [FaultEvent(0.06, 0, KILL)], n_workers=n_workers
    )


class TestSameSeed:
    def test_identical_runs(self):
        a, _ = run_small(n=8, seed=5)
        b, _ = run_small(n=8, seed=5)
        assert _fingerprint(a) == _fingerprint(b)

    def test_seed_changes_outcome(self):
        a, _ = run_small(n=8, seed=5)
        b, _ = run_small(n=8, seed=6)
        assert [s.token_digests for s in a.sessions] != [
            s.token_digests for s in b.sessions
        ]

    def test_seeded_fault_schedule_and_recovery_identical(self):
        """A *generated* (not hand-written) fault schedule, fired inside
        the run: schedules, recovery order and final responses all
        repeat exactly."""
        def go():
            faults = FaultInjector(
                2, seed=11, n_faults=2, horizon_s=0.12, stall_s=0.05
            )
            schedule = list(faults.schedule)
            result, _ = run_small(n=8, seed=5, faults=faults)
            return schedule, _fingerprint(result)

        (sched_a, fp_a), (sched_b, fp_b) = go(), go()
        assert sched_a == sched_b
        assert fp_a == fp_b


class TestHostParallelismInvariance:
    def test_max_workers_1_vs_4(self):
        a, _ = run_small(n=8, seed=5, max_workers=1)
        b, _ = run_small(n=8, seed=5, max_workers=4)
        assert _fingerprint(a) == _fingerprint(b)

    def test_max_workers_1_vs_4_under_kill(self):
        # seed=3: the kill at 0.06s catches mid-stream residents on
        # worker 0, so recovery actually replays.
        a, _ = run_small(n=8, seed=3, max_workers=1, faults=_kill_faults())
        b, _ = run_small(n=8, seed=3, max_workers=4, faults=_kill_faults())
        fp_a, fp_b = _fingerprint(a), _fingerprint(b)
        assert fp_a == fp_b
        assert fp_a["transitions"]  # the kill actually happened
        assert a.replays > 0 and a.replay_ok is True


class TestVerifyMode:
    def test_verify_mode_matches_perf_mode(self, monkeypatch):
        a, _ = run_small(n=6, seed=5)
        monkeypatch.setenv("REPRO_SIM_MODE", "verify")
        b, _ = run_small(n=6, seed=5)
        assert [s.token_digests for s in a.sessions] == [
            s.token_digests for s in b.sessions
        ]
        assert a.summary() == b.summary()

    def test_verify_mode_deterministic_under_kill(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_MODE", "verify")
        a, _ = run_small(n=6, seed=5, faults=_kill_faults())
        b, _ = run_small(n=6, seed=5, faults=_kill_faults())
        assert _fingerprint(a) == _fingerprint(b)
        assert a.replay_ok is True


class TestWorkerCountInvariance:
    def test_digests_independent_of_cluster_size(self):
        """Token streams derive from (engine seed, session name), never
        from placement: a 1-worker and a 4-worker cluster produce the
        same responses for the same trace."""
        a, _ = run_small(n=8, seed=5, n_workers=1)
        b, _ = run_small(n=8, seed=5, n_workers=4)
        assert {s.session_id: s.token_digests for s in a.sessions} == {
            s.session_id: s.token_digests for s in b.sessions
        }

    def test_kill_deterministic_at_1_and_4_workers(self):
        for n_workers in (1, 4):
            runs = [
                _fingerprint(run_small(
                    n=6, seed=5, n_workers=n_workers,
                    faults=_kill_faults(n_workers),
                )[0])
                for _ in range(2)
            ]
            assert runs[0] == runs[1]
            assert runs[0]["summary"]["completed"] == 6
            assert runs[0]["summary"]["replay_ok"] is True
