"""Heartbeat state machine: healthy → degraded → dead → recovering."""

import pytest

from repro.cluster import DEAD, DEGRADED, HEALTHY, RECOVERING, Supervisor


def sup(**kwargs):
    kwargs.setdefault("degraded_after", 2)
    kwargs.setdefault("dead_after", 4)
    kwargs.setdefault("recovery_ticks", 3)
    return Supervisor(2, **kwargs)


class TestTransitions:
    def test_stays_healthy_on_heartbeats(self):
        s = sup()
        for tick in range(10):
            assert s.observe(0, True, tick) == HEALTHY
        assert s.transitions == []

    def test_degraded_then_dead_on_misses(self):
        s = sup()
        states = [s.observe(0, False, t) for t in range(4)]
        assert states == [HEALTHY, DEGRADED, DEGRADED, DEAD]

    def test_degraded_recovers_directly(self):
        s = sup()
        s.observe(0, False, 0)
        s.observe(0, False, 1)
        assert s.state[0] == DEGRADED
        assert s.observe(0, True, 2) == HEALTHY

    def test_dead_worker_recovers_on_timer_then_heartbeat(self):
        s = sup()
        for t in range(4):
            s.observe(0, False, t)
        assert s.state[0] == DEAD
        # Heartbeats (even if the node were alive) don't resurrect a
        # fenced worker before the replacement timer.
        assert s.observe(0, True, 4) == DEAD
        assert s.observe(0, True, 5) == DEAD
        assert s.observe(0, True, 6) == RECOVERING  # tick 3 + 3
        assert s.observe(0, True, 7) == HEALTHY

    def test_transition_log_records_order(self):
        s = sup()
        for t in range(4):
            s.observe(0, False, t)
        assert [(w, old, new) for _, w, old, new in s.transitions] == [
            (0, HEALTHY, DEGRADED), (0, DEGRADED, DEAD),
        ]

    def test_workers_independent(self):
        s = sup()
        s.observe(0, False, 0)
        s.observe(1, True, 0)
        s.observe(0, False, 1)
        assert s.state[0] == DEGRADED
        assert s.state[1] == HEALTHY


class TestPolicy:
    def test_placeable_only_healthy(self):
        s = sup()
        assert s.placeable(0)
        s.observe(0, False, 0)
        s.observe(0, False, 1)
        assert not s.placeable(0)   # degraded: no new placements
        assert s.active(0)          # ...but keeps decoding

    def test_dead_not_active(self):
        s = sup()
        for t in range(4):
            s.observe(0, False, t)
        assert not s.active(0)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            Supervisor(0)
        with pytest.raises(ValueError, match="degraded_after"):
            Supervisor(1, degraded_after=5, dead_after=2)
