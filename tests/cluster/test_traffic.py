"""Multi-tenant trace generation: determinism, shape, tenant mixing."""

import pytest

from repro.cluster import (
    TenantSpec,
    default_tenants,
    generate_cluster_trace,
    sessions_from_trace,
)


class TestGeneration:
    def test_deterministic(self):
        tenants = default_tenants()
        a = generate_cluster_trace(32, tenants, seed=5)
        b = generate_cluster_trace(32, tenants, seed=5)
        assert a == b

    def test_seed_changes_trace(self):
        tenants = default_tenants()
        assert generate_cluster_trace(16, tenants, seed=1) != \
            generate_cluster_trace(16, tenants, seed=2)

    def test_arrivals_monotonic_and_count_exact(self):
        trace = generate_cluster_trace(50, default_tenants(), seed=0)
        assert len(trace) == 50
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert len({r.session_id for r in trace}) == 50

    def test_bursts_produce_simultaneous_arrivals(self):
        trace = generate_cluster_trace(
            60, default_tenants(), seed=0, burst_prob=0.9, burst_size=4
        )
        arrivals = [r.arrival_s for r in trace]
        assert any(
            arrivals[i] == arrivals[i + 1] for i in range(len(arrivals) - 1)
        )

    def test_mixed_model_sizes_appear(self):
        trace = generate_cluster_trace(
            60, default_tenants(), seed=0,
            model_layers=((2, 0.5), (3, 0.5)),
        )
        assert {r.layers for r in trace} == {2, 3}

    def test_tenant_weights_respected(self):
        tenants = [
            TenantSpec("heavy", weight=10.0),
            TenantSpec("light", weight=0.1),
        ]
        trace = generate_cluster_trace(100, tenants, seed=0)
        counts = {t.name: 0 for t in tenants}
        for r in trace:
            counts[r.tenant] += 1
        assert counts["heavy"] > counts["light"]

    def test_validation(self):
        with pytest.raises(ValueError, match="n_requests"):
            generate_cluster_trace(0, default_tenants())
        with pytest.raises(ValueError, match="TenantSpec"):
            generate_cluster_trace(4, [])
        with pytest.raises(ValueError, match="diurnal_amplitude"):
            generate_cluster_trace(4, default_tenants(), diurnal_amplitude=1.5)


class TestMaterialization:
    def test_slo_class_applied(self):
        tenants = default_tenants()
        by_name = {t.name: t for t in tenants}
        trace = generate_cluster_trace(20, tenants, seed=0)
        for session in sessions_from_trace(trace, tenants):
            spec = by_name[session.tenant]
            assert session.ttft_deadline_s == spec.ttft_slo_s
            assert session.tpot_deadline_s == spec.tpot_slo_s
