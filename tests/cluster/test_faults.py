"""Seeded fault schedules: determinism and firing semantics."""

import pytest

from repro.cluster import KILL, STALL, FaultEvent, FaultInjector


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(4, seed=9, n_faults=6, horizon_s=2.0)
        b = FaultInjector(4, seed=9, n_faults=6, horizon_s=2.0)
        assert a.schedule == b.schedule
        assert len(a.schedule) == 6

    def test_schedule_sorted_by_time(self):
        inj = FaultInjector(4, seed=1, n_faults=8, horizon_s=1.0)
        times = [e.at_s for e in inj.schedule]
        assert times == sorted(times)

    def test_fire_pops_due_events_once(self):
        events = [
            FaultEvent(0.1, 0, KILL),
            FaultEvent(0.2, 1, STALL, duration_s=0.5),
            FaultEvent(0.9, 0, KILL),
        ]
        inj = FaultInjector.from_events(events)
        assert inj.fire(0.05) == []
        due = inj.fire(0.3)
        assert [e.at_s for e in due] == [0.1, 0.2]
        assert inj.fire(0.3) == []
        assert [e.at_s for e in inj.fire(2.0)] == [0.9]
        assert inj.fired == sorted(events, key=lambda e: (e.at_s, e.worker))

    def test_simultaneous_faults_fire_low_worker_first(self):
        inj = FaultInjector.from_events(
            [FaultEvent(0.1, 1, KILL), FaultEvent(0.1, 0, KILL)]
        )
        assert [e.worker for e in inj.fire(0.2)] == [0, 1]


class TestValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(0.0, 0, "meteor")

    def test_stall_needs_duration(self):
        with pytest.raises(ValueError, match="duration_s"):
            FaultEvent(0.0, 0, STALL)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            FaultInjector(0)
