"""Session lifecycle, priorities, and latency accounting."""

import numpy as np
import pytest

from repro.cluster import Session, token_digest


def make(sid="s0", **kwargs):
    kwargs.setdefault("tenant", "t")
    kwargs.setdefault("arrival_s", 0.0)
    kwargs.setdefault("prompt_tokens", 2)
    kwargs.setdefault("decode_tokens", 4)
    return Session(session_id=sid, **kwargs)


class TestPriority:
    def test_waiting_uses_ttft_deadline(self):
        s = make(arrival_s=1.0, ttft_deadline_s=0.5)
        assert s.deadline_s() == 1.5

    def test_running_uses_tpot_deadline(self):
        s = make(arrival_s=1.0, ttft_deadline_s=0.5, tpot_deadline_s=0.1)
        s.record_token(2.0, "d0")
        assert s.deadline_s() == 2.1

    def test_priority_total_order(self):
        a = make("a", arrival_s=0.0, ttft_deadline_s=1.0)
        b = make("b", arrival_s=0.0, ttft_deadline_s=1.0)
        assert sorted([b, a], key=lambda s: s.priority())[0] is a

    def test_urgent_beats_lax(self):
        urgent = make("u", ttft_deadline_s=0.1)
        lax = make("l", ttft_deadline_s=5.0)
        assert urgent.priority() < lax.priority()


class TestAccounting:
    def test_ttft_tpot(self):
        s = make(arrival_s=1.0, decode_tokens=3)
        s.record_token(1.5, "d0")
        s.record_token(1.7, "d1")
        s.record_token(1.9, "d2")
        s.finish_s = 1.9
        assert s.ttft_s == 0.5
        assert s.tpot_s == pytest.approx(0.2)
        assert s.done

    def test_single_token_tpot_zero(self):
        s = make(decode_tokens=1)
        s.record_token(0.5, "d0")
        s.finish_s = 0.5
        assert s.tpot_s == 0.0

    def test_unfinished_latencies_none(self):
        s = make()
        assert s.ttft_s is None and s.tpot_s is None

    def test_total_tokens_includes_decoded(self):
        s = make(prompt_tokens=3)
        s.record_token(0.1, "d0")
        assert s.total_tokens == 4

    def test_to_dict_json_safe(self):
        import json

        s = make()
        s.record_token(0.1, "abc")
        json.dumps(s.to_dict())
        assert s.to_dict()["final_digest"] == "abc"


class TestDigest:
    def test_digest_stable_and_value_sensitive(self):
        x = np.arange(4, dtype=np.float32)
        assert token_digest(x) == token_digest(x.copy())
        assert token_digest(x) != token_digest(x + 1)
        assert len(token_digest(x)) == 16

    def test_digest_ignores_layout(self):
        x = np.arange(8, dtype=np.float32).reshape(2, 4)
        assert token_digest(x.T.copy().T) == token_digest(x)
