"""Shared fixtures for the cluster suite: small, fast configurations.

Everything here runs the functional simulator at CLUSTER_SIM
dimensions (tiny model, real execution) so token digests are genuine —
the determinism and recovery tests depend on actually decoding."""

from repro.cluster import (
    Cluster,
    ClusterConfig,
    TenantSpec,
    default_tenants,
    generate_cluster_trace,
    sessions_from_trace,
)

__all__ = [
    "small_config", "small_trace", "run_small",
]


def small_config(**kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("max_batch", 4)
    return ClusterConfig(**kwargs)


def small_trace(n=8, seed=3, **kwargs):
    tenants = default_tenants()
    kwargs.setdefault("decode_tokens", (2, 6))
    trace = generate_cluster_trace(n, tenants, seed=seed, **kwargs)
    return tenants, sessions_from_trace(trace, tenants)


def run_small(n=8, seed=3, faults=None, trace_kwargs=None, **cfg_kwargs):
    tenants, sessions = small_trace(n, seed, **(trace_kwargs or {}))
    cluster = Cluster(
        small_config(**cfg_kwargs), tenants=tenants, faults=faults
    )
    return cluster.run(sessions), cluster
