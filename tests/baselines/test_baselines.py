"""PrIM / SimplePIM / CPU baselines: structure and documented behaviours."""

import pytest

from repro.baselines import (
    CpuModel,
    GpuModel,
    cpu_latency,
    prim_e_profile,
    prim_module,
    prim_params,
    prim_profile,
    prim_search_profile,
    simplepim_profile,
)
from repro.workloads import make_workload, mtv, red, ttv, va


class TestPrimParams:
    def test_table3_defaults(self):
        wl = make_workload("mtv", "64MB")
        params = prim_params(wl, size="64MB")
        assert params["m_dpus"] == 256
        assert params["k_dpus"] == 1  # PrIM never tiles the reduction
        assert params["n_tasklets"] == 16
        assert params["cache"] == 256  # 1024 bytes

    def test_red_ships_tasklet_partials(self):
        params = prim_params(make_workload("red", "64MB"), size="64MB")
        assert params["dpu_combine"] == 0

    def test_va_uses_full_system(self):
        params = prim_params(make_workload("va", "64MB"), size="64MB")
        assert params["n_dpus"] == 2048

    def test_fallback_without_size(self):
        params = prim_params(mtv(4096, 4096))
        assert 64 <= params["m_dpus"] <= 512

    def test_batched_splits_grid(self):
        wl = ttv(128, 256, 512)
        params = prim_params(wl, n_dpus=1024)
        assert params["i_dpus"] * params["j_dpus"] <= 1024
        assert params["k_dpus"] == 1


class TestPrimProfiles:
    def test_prim_module_builds(self):
        wl = mtv(1024, 1024)
        module = prim_module(wl, "4MB")
        assert module.n_dpus == 256

    def test_prim_e_not_worse_than_prim(self):
        wl = make_workload("mtv", "64MB")
        prim = prim_profile(wl, "64MB")
        prim_e = prim_e_profile(wl)
        assert prim_e.latency.total <= prim.latency.total * 1.001

    def test_prim_search_not_worse_than_prim_e(self):
        wl = make_workload("mtv", "4MB")
        prim_e = prim_e_profile(wl)
        prim_s, params = prim_search_profile(wl)
        assert prim_s.latency.total <= prim_e.latency.total * 1.001
        assert params["k_dpus"] == 1


class TestSimplePim:
    def test_va_d2h_penalty(self):
        wl = make_workload("va", "64MB")
        sp = simplepim_profile(wl)
        prim = prim_profile(wl, "64MB")
        assert sp.latency.d2h > prim.latency.d2h * 2

    def test_red_supported(self):
        wl = make_workload("red", "4MB")
        sp = simplepim_profile(wl)
        assert sp.latency.total > 0

    def test_unsupported_workload_rejected(self):
        with pytest.raises(KeyError):
            simplepim_profile(mtv(64, 64))


class TestCpuGpu:
    def test_memory_bound_scaling(self):
        small = cpu_latency(make_workload("va", "4MB"))
        big = cpu_latency(make_workload("va", "256MB"))
        assert big > small * 30  # linear in bytes minus fixed overhead

    def test_boundary_check_penalty_small(self):
        cpu = CpuModel()
        wl = mtv(512, 512)
        ratio = cpu.latency(wl, True) / cpu.latency(wl, False)
        assert 1.0 < ratio < 1.05

    def test_gpu_faster_than_cpu(self):
        wl = make_workload("mtv", "64MB")
        assert GpuModel().latency(wl) < CpuModel().latency(wl)

    def test_compute_bound_floor(self):
        # A tiny workload is dominated by fixed overhead.
        wl = va(16)
        assert cpu_latency(wl) >= CpuModel().overhead_s
