"""Visitors, mutators, substitution and statement traversal."""

from repro.tir import (
    Buffer,
    BufferLoad,
    BufferStore,
    For,
    ForKind,
    IfThenElse,
    IntImm,
    SeqStmt,
    Var,
    collect_loads,
    collect_vars,
    iter_stmts,
    post_order_exprs,
    seq,
    substitute,
    substitute_stmt,
)
from repro.tir.visitor import StmtMutator


def test_collect_vars_dedup_order():
    i, j = Var("i"), Var("j")
    e = i * 16 + j + i
    assert collect_vars(e) == [i, j]


def test_collect_loads():
    buf = Buffer("A", (8,))
    e = BufferLoad(buf, [Var("i")]) + BufferLoad(buf, [Var("j")])
    assert len(collect_loads(e)) == 2


def test_post_order_yields_leaves_first():
    i = Var("i")
    nodes = list(post_order_exprs(i + 1))
    assert nodes[0] is i
    assert nodes[-1].__class__.__name__ == "Add"


def test_substitute_expr():
    i, j = Var("i"), Var("j")
    e = substitute(i + 1, {i: j * 2})
    assert collect_vars(e) == [j]


def test_substitute_noop_returns_same_object():
    e = Var("i") + 1
    assert substitute(e, {}) is e


def test_substitute_stmt():
    buf = Buffer("A", (8,))
    i, j = Var("i"), Var("j")
    st = BufferStore(buf, IntImm(0), [i])
    st2 = substitute_stmt(st, {i: j})
    assert st2.indices[0] is j


def test_iter_stmts_covers_nest():
    buf = Buffer("A", (8,))
    store = BufferStore(buf, IntImm(1), [Var("i")])
    loop = For(Var("i"), 8, IfThenElse(Var("i") < 4, store))
    kinds = [type(s).__name__ for s in iter_stmts(loop)]
    assert kinds == ["For", "IfThenElse", "BufferStore"]


def test_seq_flattens():
    buf = Buffer("A", (8,))
    s1 = BufferStore(buf, IntImm(1), [IntImm(0)])
    s2 = BufferStore(buf, IntImm(2), [IntImm(1)])
    nested = seq(s1, seq(s2, s1))
    assert isinstance(nested, SeqStmt)
    assert len(nested.stmts) == 3


def test_seq_singleton_unwrapped():
    buf = Buffer("A", (8,))
    s1 = BufferStore(buf, IntImm(1), [IntImm(0)])
    assert seq(s1) is s1


def test_mutator_deletes_stmt():
    buf = Buffer("A", (8,))
    store = BufferStore(buf, IntImm(1), [Var("i")])
    loop = For(Var("i"), 8, store)

    class Deleter(StmtMutator):
        def visit_BufferStore(self, node):
            return None

    assert Deleter().visit_stmt(loop) is None


def test_mutator_preserves_identity_when_unchanged():
    buf = Buffer("A", (8,))
    store = BufferStore(buf, IntImm(1), [Var("i")])
    loop = For(Var("i"), 8, store)
    assert StmtMutator().visit_stmt(loop) is loop


def test_mutator_if_deletion_keeps_else_negated():
    buf = Buffer("A", (8,))
    then = BufferStore(buf, IntImm(1), [IntImm(0)])
    other = BufferStore(buf, IntImm(2), [IntImm(1)])
    node = IfThenElse(Var("i") < 2, then, other)

    class DropThen(StmtMutator):
        def visit_BufferStore(self, n):
            return None if n is then else n

    result = DropThen().visit_stmt(node)
    assert isinstance(result, IfThenElse)
    assert result.then_case is other


def test_thread_binding_for_requires_tag():
    import pytest

    with pytest.raises(ValueError):
        For(Var("i"), 4, BufferStore(Buffer("A", (4,)), IntImm(0), [IntImm(0)]),
            ForKind.THREAD_BINDING)
