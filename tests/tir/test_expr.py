"""Expression-node construction and operator overloading."""

import pytest

from repro import tir
from repro.tir import (
    Add,
    And,
    BufferLoad,
    Buffer,
    FloatImm,
    FloorDiv,
    FloorMod,
    IntImm,
    LT,
    Mul,
    Not,
    Or,
    Select,
    Sub,
    Var,
    all_of,
    any_of,
    as_expr,
    const,
)


class TestConstruction:
    def test_var_has_name_and_dtype(self):
        v = Var("i")
        assert v.name == "i"
        assert v.dtype == "int32"

    def test_int_imm_value(self):
        assert IntImm(42).value == 42

    def test_float_imm_value(self):
        assert FloatImm(1.5).value == 1.5

    def test_const_int(self):
        c = const(3)
        assert isinstance(c, IntImm) and c.value == 3

    def test_const_float(self):
        c = const(2.5, "float32")
        assert isinstance(c, FloatImm) and c.value == 2.5

    def test_const_bool(self):
        c = const(True, "bool")
        assert c.dtype == "bool" and c.value == 1

    def test_as_expr_passthrough(self):
        v = Var("x")
        assert as_expr(v) is v

    def test_as_expr_int(self):
        assert isinstance(as_expr(7), IntImm)

    def test_as_expr_float(self):
        assert isinstance(as_expr(7.5), FloatImm)

    def test_as_expr_rejects_strings(self):
        with pytest.raises(TypeError):
            as_expr("nope")


class TestOperators:
    def test_add_builds_node(self):
        e = Var("i") + 1
        assert isinstance(e, Add)

    def test_radd(self):
        e = 1 + Var("i")
        assert isinstance(e, Add)

    def test_sub_and_rsub(self):
        assert isinstance(Var("i") - 1, Sub)
        assert isinstance(1 - Var("i"), Sub)

    def test_mul(self):
        assert isinstance(Var("i") * 4, Mul)

    def test_floordiv_and_mod(self):
        assert isinstance(Var("i") // 4, FloorDiv)
        assert isinstance(Var("i") % 4, FloorMod)

    def test_neg_is_zero_minus(self):
        e = -Var("i")
        assert isinstance(e, Sub)
        assert isinstance(e.a, IntImm) and e.a.value == 0

    def test_comparison_returns_node(self):
        e = Var("i") < 10
        assert isinstance(e, LT)
        assert e.dtype == "bool"

    def test_equal_method(self):
        e = Var("i").equal(3)
        assert e.dtype == "bool"

    def test_python_eq_is_identity(self):
        a, b = Var("i"), Var("i")
        assert a == a
        assert not (a == b)

    def test_nodes_hashable(self):
        s = {Var("i"), Var("j")}
        assert len(s) == 2


class TestDtypeInference:
    def test_int_plus_int(self):
        assert (Var("i") + 1).dtype == "int32"

    def test_int_times_float_widens(self):
        assert (Var("i") * 1.5).dtype == "float32"

    def test_select_dtype(self):
        s = Select(Var("i") < 1, 1.0, 2.0)
        assert s.dtype == "float32"

    def test_and_or_not_are_bool(self):
        c = Var("i") < 1
        assert And(c, c).dtype == "bool"
        assert Or(c, c).dtype == "bool"
        assert Not(c).dtype == "bool"


class TestBufferLoad:
    def test_load_dtype_follows_buffer(self):
        buf = Buffer("A", (4, 4), "float32")
        load = BufferLoad(buf, [Var("i"), Var("j")])
        assert load.dtype == "float32"
        assert len(load.indices) == 2

    def test_load_coerces_int_indices(self):
        buf = Buffer("A", (4,), "float32")
        load = BufferLoad(buf, [2])
        assert isinstance(load.indices[0], IntImm)


class TestConjunction:
    def test_all_of_empty_is_none(self):
        assert all_of([]) is None

    def test_all_of_single(self):
        c = Var("i") < 1
        assert all_of([c]) is c

    def test_all_of_multiple_is_and(self):
        c = Var("i") < 1
        assert isinstance(all_of([c, c]), And)

    def test_any_of_multiple_is_or(self):
        c = Var("i") < 1
        assert isinstance(any_of([c, c]), Or)

    def test_repr_uses_printer(self):
        assert "i" in repr(Var("i") + 1)
