"""Interval arithmetic: soundness of eval_interval."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tir import (
    And,
    EQ,
    Interval,
    IntImm,
    Max,
    Min,
    NE,
    Or,
    Var,
    eval_interval,
)


class TestIntervalOps:
    def test_point(self):
        iv = Interval.point(5)
        assert iv.is_point and iv.lo == iv.hi == 5

    def test_add(self):
        r = Interval(0, 3) + Interval(10, 20)
        assert (r.lo, r.hi) == (10, 23)

    def test_sub(self):
        r = Interval(0, 3) - Interval(1, 2)
        assert (r.lo, r.hi) == (-2, 2)

    def test_mul_positive(self):
        r = Interval(1, 3) * Interval(2, 4)
        assert (r.lo, r.hi) == (2, 12)

    def test_mul_signed(self):
        r = Interval(-2, 3) * Interval(-1, 4)
        assert (r.lo, r.hi) == (-8, 12)

    def test_floordiv(self):
        r = Interval(0, 10).floordiv(Interval.point(3))
        assert (r.lo, r.hi) == (0, 3)

    def test_floordiv_negative_divisor(self):
        r = Interval(0, 10).floordiv(Interval.point(-2))
        assert (r.lo, r.hi) == (-5, 0)

    def test_floormod_full_range(self):
        r = Interval(0, 100).floormod(Interval.point(8))
        assert (r.lo, r.hi) == (0, 7)

    def test_floormod_same_block(self):
        r = Interval(17, 19).floormod(Interval.point(8))
        assert (r.lo, r.hi) == (1, 3)

    def test_min_max_with(self):
        a, b = Interval(0, 10), Interval(5, 20)
        assert (a.min_with(b).lo, a.min_with(b).hi) == (0, 10)
        assert (a.max_with(b).lo, a.max_with(b).hi) == (5, 20)

    def test_union(self):
        u = Interval(0, 3).union(Interval(10, 12))
        assert (u.lo, u.hi) == (0, 12)

    def test_unbounded_add(self):
        r = Interval(None, 5) + Interval(1, 1)
        assert r.lo is None and r.hi == 6


class TestEvalInterval:
    def test_var_lookup(self):
        i = Var("i")
        r = eval_interval(i, {i: Interval(0, 7)})
        assert (r.lo, r.hi) == (0, 7)

    def test_missing_var_unbounded(self):
        r = eval_interval(Var("i"), {})
        assert r.lo is None and r.hi is None

    def test_affine(self):
        i, j = Var("i"), Var("j")
        env = {i: Interval(0, 3), j: Interval(0, 15)}
        r = eval_interval(i * 16 + j, env)
        assert (r.lo, r.hi) == (0, 63)

    def test_min_expr(self):
        i = Var("i")
        r = eval_interval(Min(i, IntImm(10)), {i: Interval(0, 100)})
        assert (r.lo, r.hi) == (0, 10)

    def test_max_expr(self):
        i = Var("i")
        r = eval_interval(Max(i, IntImm(10)), {i: Interval(0, 100)})
        assert (r.lo, r.hi) == (10, 100)

    def test_cmp_always_true(self):
        i = Var("i")
        r = eval_interval(i < 100, {i: Interval(0, 10)})
        assert r.is_point and r.lo == 1

    def test_cmp_always_false(self):
        i = Var("i")
        r = eval_interval(i < 0, {i: Interval(0, 10)})
        assert r.is_point and r.lo == 0

    def test_cmp_mixed(self):
        i = Var("i")
        r = eval_interval(i < 5, {i: Interval(0, 10)})
        assert not r.is_point

    def test_eq_disjoint(self):
        i = Var("i")
        r = eval_interval(EQ(i, IntImm(100)), {i: Interval(0, 10)})
        assert r.is_point and r.lo == 0

    def test_ne(self):
        i = Var("i")
        r = eval_interval(NE(i, IntImm(100)), {i: Interval(0, 10)})
        assert r.is_point and r.lo == 1

    def test_and_or(self):
        i = Var("i")
        env = {i: Interval(0, 10)}
        t = eval_interval(And(i < 100, i < 200), env)
        assert t.is_point and t.lo == 1
        f = eval_interval(Or(i < 0, i > 100), env)
        assert f.is_point and f.lo == 0


@settings(max_examples=60, deadline=None)
@given(
    ilo=st.integers(0, 20),
    iext=st.integers(1, 20),
    jlo=st.integers(0, 20),
    jext=st.integers(1, 20),
    a=st.integers(-8, 8),
    b=st.integers(-8, 8),
    c=st.integers(-50, 50),
)
def test_interval_soundness_affine(ilo, iext, jlo, jext, a, b, c):
    """Interval of a*i + b*j + c contains every concrete value."""
    i, j = Var("i"), Var("j")
    expr = i * a + j * b + c
    env = {
        i: Interval(ilo, ilo + iext - 1),
        j: Interval(jlo, jlo + jext - 1),
    }
    r = eval_interval(expr, env)
    assert r is not None
    for iv in (ilo, ilo + iext - 1):
        for jv in (jlo, jlo + jext - 1):
            value = a * iv + b * jv + c
            assert r.lo <= value <= r.hi


@settings(max_examples=40, deadline=None)
@given(
    lo=st.integers(0, 30),
    ext=st.integers(1, 30),
    d=st.integers(1, 9),
)
def test_interval_soundness_divmod(lo, ext, d):
    i = Var("i")
    env = {i: Interval(lo, lo + ext - 1)}
    rdiv = eval_interval(i // d, env)
    rmod = eval_interval(i % d, env)
    for iv in range(lo, lo + ext):
        assert rdiv.lo <= iv // d <= rdiv.hi
        assert rmod.lo <= iv % d <= rmod.hi
