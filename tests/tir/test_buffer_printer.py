"""Buffers, dtype sizes, pretty-printing and statement simplification."""

import pytest

from repro.tir import (
    Buffer,
    BufferLoad,
    BufferStore,
    DmaCopy,
    For,
    ForKind,
    IfThenElse,
    IntImm,
    Var,
    dtype_bytes,
    expr_to_str,
    simplify_stmt,
    stmt_to_str,
)


class TestBuffer:
    def test_shape_and_size(self):
        b = Buffer("A", (4, 8), "float32")
        assert b.shape == (4, 8)
        assert b.size == 32
        assert b.nbytes == 128

    def test_elem_bytes(self):
        assert Buffer("A", (4,), "int64").elem_bytes == 8

    def test_invalid_scope(self):
        with pytest.raises(ValueError):
            Buffer("A", (4,), scope="l1")

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Buffer("A", ())
        with pytest.raises(ValueError):
            Buffer("A", (0,))

    def test_with_scope(self):
        b = Buffer("A", (4,)).with_scope("wram", "A_w")
        assert b.scope == "wram" and b.name == "A_w"

    def test_flat_index_row_major(self):
        b = Buffer("A", (4, 8))
        from repro.tir import simplify, const_int

        flat = b.flat_index([IntImm(2), IntImm(3)])
        assert const_int(simplify(flat)) == 19

    def test_flat_index_arity_check(self):
        with pytest.raises(ValueError):
            Buffer("A", (4, 8)).flat_index([IntImm(0)])

    def test_dtype_bytes_unknown(self):
        with pytest.raises(ValueError):
            dtype_bytes("complex128")


class TestPrinter:
    def test_expr_precedence(self):
        i, j = Var("i"), Var("j")
        assert expr_to_str((i + j) * 2) == "(i + j) * 2"

    def test_expr_no_spurious_parens(self):
        i, j = Var("i"), Var("j")
        assert expr_to_str(i * 2 + j) == "i * 2 + j"

    def test_min_rendered_as_call(self):
        from repro.tir import Min

        assert expr_to_str(Min(Var("i"), IntImm(4))) == "min(i, 4)"

    def test_load_rendering(self):
        b = Buffer("A", (4, 4))
        assert expr_to_str(BufferLoad(b, [Var("i"), IntImm(0)])) == "A[i, 0]"

    def test_stmt_loop_rendering(self):
        b = Buffer("A", (4,))
        loop = For(Var("i"), 4, BufferStore(b, IntImm(1), [Var("i")]))
        text = stmt_to_str(loop)
        assert "for i in range(4):" in text
        assert "A[i] = 1" in text

    def test_thread_binding_annotated(self):
        b = Buffer("A", (4,))
        loop = For(
            Var("i"), 4, BufferStore(b, IntImm(1), [Var("i")]),
            ForKind.THREAD_BINDING, "blockIdx.x",
        )
        assert "blockIdx.x" in stmt_to_str(loop)

    def test_dma_rendering(self):
        w = Buffer("W", (16,), scope="wram")
        m = Buffer("M", (64,), scope="mram")
        text = stmt_to_str(DmaCopy(w, [IntImm(0)], m, [Var("k")], 16))
        assert "dma_copy" in text and "n=16" in text


class TestStmtSimplify:
    def _store(self):
        return BufferStore(Buffer("A", (8,)), IntImm(1), [Var("j")])

    def test_unit_loop_inlined(self):
        i = Var("i")
        st = BufferStore(Buffer("A", (8,)), IntImm(1), [i])
        loop = For(i, 1, st)
        result = simplify_stmt(loop)
        assert isinstance(result, BufferStore)
        assert result.indices[0].value == 0

    def test_zero_extent_loop_removed(self):
        loop = For(Var("i"), 0, self._store())
        assert simplify_stmt(loop) is None

    def test_const_true_branch_unwrapped(self):
        node = IfThenElse(IntImm(1, "bool"), self._store())
        assert isinstance(simplify_stmt(node), BufferStore)

    def test_const_false_branch_removed(self):
        node = IfThenElse(IntImm(0, "bool"), self._store())
        assert simplify_stmt(node) is None

    def test_const_false_keeps_else(self):
        other = self._store()
        node = IfThenElse(IntImm(0, "bool"), self._store(), other)
        assert simplify_stmt(node) is other

    def test_thread_unit_loop_kept(self):
        loop = For(
            Var("t"), 1, self._store(), ForKind.THREAD_BINDING, "threadIdx.x"
        )
        result = simplify_stmt(loop)
        assert isinstance(result, For)

    def test_nested_unit_loops(self):
        i, j = Var("i"), Var("j")
        st = BufferStore(Buffer("A", (8, 8)), IntImm(1), [i, j])
        nest = For(i, 1, For(j, 1, st))
        result = simplify_stmt(nest)
        assert isinstance(result, BufferStore)
