"""Constant folding, affine canonicalization and proving."""

from repro.tir import (
    Add,
    And,
    IntImm,
    Max,
    Min,
    Mul,
    Not,
    Or,
    Select,
    Sub,
    Var,
    affine_coeffs,
    const_int,
    is_const_int,
    prove_lt,
    simplify,
)


def v(name="i"):
    return Var(name)


class TestConstantFolding:
    def test_add(self):
        assert const_int(simplify(IntImm(2) + IntImm(3))) == 5

    def test_mul(self):
        assert const_int(simplify(IntImm(4) * IntImm(5))) == 20

    def test_floordiv(self):
        assert const_int(simplify(IntImm(7) // IntImm(2))) == 3

    def test_floormod(self):
        assert const_int(simplify(IntImm(7) % IntImm(3))) == 1

    def test_min_max(self):
        assert const_int(simplify(Min(IntImm(2), IntImm(9)))) == 2
        assert const_int(simplify(Max(IntImm(2), IntImm(9)))) == 9

    def test_comparisons(self):
        assert const_int(simplify(IntImm(1) < IntImm(2))) == 1
        assert const_int(simplify(IntImm(3) < IntImm(2))) == 0

    def test_nested_folding(self):
        e = (IntImm(2) + IntImm(3)) * (IntImm(1) + IntImm(1))
        assert const_int(simplify(e)) == 10

    def test_float_folding(self):
        from repro.tir import FloatImm

        e = simplify(FloatImm(1.5) + FloatImm(2.5))
        assert isinstance(e, FloatImm) and e.value == 4.0


class TestIdentities:
    def test_add_zero(self):
        assert simplify(v() + 0) is not None
        assert simplify(v() + 0).__class__.__name__ == "Var"

    def test_mul_one(self):
        assert isinstance(simplify(v() * 1), Var)

    def test_mul_zero(self):
        assert const_int(simplify(v() * 0)) == 0

    def test_sub_self_cancels(self):
        x = v()
        assert const_int(simplify(x - x)) == 0

    def test_div_by_one(self):
        assert isinstance(simplify(v() // 1), Var)

    def test_mod_by_one(self):
        assert const_int(simplify(v() % 1)) == 0

    def test_and_true(self):
        c = v() < 5
        assert simplify(And(IntImm(1, "bool"), c)) is c

    def test_and_false(self):
        c = v() < 5
        assert const_int(simplify(And(IntImm(0, "bool"), c))) == 0

    def test_or_false(self):
        c = v() < 5
        assert simplify(Or(IntImm(0, "bool"), c)) is c

    def test_not_not(self):
        c = v() < 5
        assert simplify(Not(Not(c))) is c

    def test_select_const_cond(self):
        s = Select(IntImm(1, "bool"), v("a"), v("b"))
        assert simplify(s).name == "a"

    def test_cmp_equal_operands(self):
        x = v()
        assert const_int(simplify(x <= x)) == 1
        assert const_int(simplify(x < x)) == 0


class TestAffine:
    def test_affine_coeffs_simple(self):
        i, j = v("i"), v("j")
        coeffs, c0 = affine_coeffs(i * 16 + j + 3)
        assert coeffs[i] == 16 and coeffs[j] == 1 and c0 == 3

    def test_affine_coeffs_sub(self):
        i = v("i")
        coeffs, c0 = affine_coeffs(IntImm(10) - i * 2)
        assert coeffs[i] == -2 and c0 == 10

    def test_affine_coeffs_rejects_div(self):
        assert affine_coeffs(v() // 2) is None

    def test_affine_coeffs_rejects_var_product(self):
        assert affine_coeffs(v("i") * v("j")) is None

    def test_canonicalization_cancels_terms(self):
        i, j = v("i"), v("j")
        e = simplify((i * 16 + j) - i * 16)
        assert isinstance(e, Var) and e is j

    def test_canonicalization_merges_constants(self):
        i = v("i")
        e = simplify(i + 3 + i + 4)
        coeffs, c0 = affine_coeffs(e)
        assert coeffs[i] == 2 and c0 == 7

    def test_extent_computation_pattern(self):
        # hi - lo + 1 for a tiled index: the bounds-inference workhorse.
        io = v("io")
        lo = io * 16
        hi = io * 16 + 15
        assert const_int(simplify(hi - lo + 1)) == 16

    def test_is_const_int(self):
        assert is_const_int(IntImm(4))
        assert is_const_int(IntImm(4), 4)
        assert not is_const_int(IntImm(4), 5)
        assert not is_const_int(v())


class TestProveLt:
    def test_always_true(self):
        i = v()
        assert prove_lt(i, IntImm(10), {i: (0, 10)}) is True

    def test_always_false(self):
        i = v()
        assert prove_lt(i + 10, IntImm(10), {i: (0, 5)}) is False

    def test_undecidable(self):
        i = v()
        assert prove_lt(i, IntImm(5), {i: (0, 10)}) is None

    def test_affine_combination(self):
        i, j = v("i"), v("j")
        ranges = {i: (0, 4), j: (0, 16)}
        assert prove_lt(i * 16 + j, IntImm(64), ranges) is True
        assert prove_lt(i * 16 + j, IntImm(63), ranges) is None
