"""The timing walker's exact counting vs. brute-force enumeration.

The analyzer claims to count dynamic branches, DMA calls/bytes and issue
slots exactly without enumerating every iteration; these tests enumerate
for real (a reference counter) and compare.
"""

import pytest

from repro.lowering import LowerOptions, lower
from repro.optim import optimize_module
from repro.tir import (
    Allocate,
    BufferStore,
    DmaCopy,
    Evaluate,
    For,
    IfThenElse,
    Interval,
    SeqStmt,
    Stmt,
    Var,
)
from repro.upmem.analyzer import KernelAnalyzer, grouped
from repro.upmem.config import UpmemConfig
from repro.upmem.isa import Counts, ExprCoster

from ..conftest import make_mtv_schedule

CFG = UpmemConfig()


class ReferenceCounter:
    """Brute-force dynamic counter: enumerates every iteration."""

    def __init__(self, config: UpmemConfig) -> None:
        self.coster = ExprCoster(config)
        self.config = config

    def count(self, stmt: Stmt, env: dict) -> Counts:
        from repro.upmem.interp import Interpreter

        interp = Interpreter({})
        total = Counts()

        def run(s: Stmt, e: dict) -> None:
            if isinstance(s, SeqStmt):
                for sub in s.stmts:
                    run(sub, e)
            elif isinstance(s, Allocate):
                run(s.body, e)
            elif isinstance(s, For):
                extent = int(interp.eval(s.extent, e))
                from repro.tir import ForKind
                for value in range(extent):
                    e[s.var] = value
                    run(s.body, e)
                e.pop(s.var, None)
                if s.kind is not ForKind.UNROLLED:
                    total.slots += 2.0 * extent
                    total.branches += extent
            elif isinstance(s, IfThenElse):
                c = self.coster.cost(s.condition)
                total.slots += c.slots
                total.branches += 1
                if interp.eval(s.condition, e):
                    run(s.then_case, e)
                elif s.else_case is not None:
                    run(s.else_case, e)
            elif isinstance(s, BufferStore):
                c = self.coster.cost(s.value)
                total.slots += c.slots
                total.dma_calls += c.dma_calls
                total.dma_bytes += c.dma_bytes
                for i in s.indices:
                    ci = self.coster.cost(i)
                    total.slots += ci.slots
                    total.dma_calls += ci.dma_calls
                    total.dma_bytes += ci.dma_bytes
                if s.buffer.scope == "mram":
                    total.dma_calls += 1
                    total.dma_bytes += max(
                        s.buffer.elem_bytes, self.config.dma_align_bytes
                    )
                    total.slots += 2
                else:
                    total.slots += 1
                total.slots += max(0, len(s.indices) - 1)
            elif isinstance(s, DmaCopy):
                for i in list(s.dst_base) + list(s.src_base):
                    total.slots += self.coster.cost(i).slots
                total.dma_calls += 1
                total.dma_bytes += max(s.nbytes, self.config.dma_align_bytes)
                total.slots += 4
            elif isinstance(s, Evaluate):
                if s.call.op == "barrier":
                    total.barriers += 1

        run(stmt, dict(env))
        return total


def assert_counts_match(kernel, grid_env):
    """Compare analyzer bisection counting vs full enumeration.

    Both sides use the same execution semantics: each tasklet executes its
    kernel section with its own thread id (the binding loop is stripped
    and enumerated), matching how ``main()`` replicates per tasklet on the
    DPU.
    """
    from repro.upmem.analyzer import _find_thread_loop, _strip_thread_loop

    analyzer = KernelAnalyzer(CFG)
    cost = analyzer.dpu_cost(kernel, grid_env)
    ref = Counts()
    counter = ReferenceCounter(CFG)
    env0 = {v: iv.lo for v, iv in grid_env.items()}
    sections = kernel.stmts if isinstance(kernel, SeqStmt) else [kernel]
    for section in sections:
        thread = _find_thread_loop(section)
        if thread is None:
            part = counter.count(section, env0)
            ref += part
        else:
            stripped = _strip_thread_loop(section)
            extent = thread.extent.value
            for t in range(extent):
                env_t = dict(env0)
                env_t[thread.var] = t
                ref += counter.count(stripped, env_t)
    assert cost.total.branches == pytest.approx(ref.branches)
    assert cost.total.dma_calls == pytest.approx(ref.dma_calls)
    assert cost.total.dma_bytes == pytest.approx(ref.dma_bytes)
    assert cost.total.slots == pytest.approx(ref.slots)
    return cost


def module_for(m, k, level="O0", **kwargs):
    sch = make_mtv_schedule(m, k, **kwargs)
    return optimize_module(
        lower(sch, options=LowerOptions(optimize=level)), level
    )


class TestExactCounting:
    @pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3"])
    def test_aligned_mtv(self, level):
        mod = module_for(64, 32, level)
        env = {mod.grid[0].var: Interval.point(0)}
        assert_counts_match(mod.kernel, env)

    @pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3"])
    def test_misaligned_interior_dpu(self, level):
        mod = module_for(37, 50, level)
        env = {mod.grid[0].var: Interval.point(0)}
        assert_counts_match(mod.kernel, env)

    @pytest.mark.parametrize("level", ["O0", "O2", "O3"])
    def test_misaligned_boundary_dpu(self, level):
        mod = module_for(37, 50, level)
        last = mod.grid[0].extent - 1
        env = {mod.grid[0].var: Interval.point(last)}
        assert_counts_match(mod.kernel, env)

    def test_rfactor_two_grid_dims(self):
        mod = module_for(37, 50, "O3", k_dpus=2)
        env = {d.var: Interval.point(d.extent - 1) for d in mod.grid}
        assert_counts_match(mod.kernel, env)

    def test_boundary_dpu_costlier_or_equal_interior_work(self):
        mod = module_for(37, 50, "O2")
        analyzer = KernelAnalyzer(CFG)
        interior = analyzer.dpu_cost(
            mod.kernel, {mod.grid[0].var: Interval.point(0)}
        )
        boundary = analyzer.dpu_cost(
            mod.kernel,
            {mod.grid[0].var: Interval.point(mod.grid[0].extent - 1)},
        )
        # The last DPU owns the partial tile: strictly fewer compute slots.
        assert boundary.total.slots <= interior.total.slots


class TestGrouping:
    def test_uniform_grid_single_group(self):
        mod = module_for(64, 32)  # perfectly aligned: all DPUs identical
        analyzer = KernelAnalyzer(CFG)
        groups = grouped(
            [(mod.grid[0].var, mod.grid[0].extent)],
            {},
            lambda env: analyzer.dpu_cost(mod.kernel, env),
        )
        assert len(groups) == 1
        assert groups[0][0] == mod.grid[0].extent

    def test_boundary_grid_splits(self):
        mod = module_for(37, 32, "O0")
        analyzer = KernelAnalyzer(CFG)
        groups = grouped(
            [(mod.grid[0].var, mod.grid[0].extent)],
            {},
            lambda env: analyzer.dpu_cost(mod.kernel, env),
        )
        assert len(groups) >= 2
        assert sum(n for n, _ in groups) == mod.grid[0].extent

    def test_group_costs_match_pointwise(self):
        mod = module_for(37, 50, "O0")
        analyzer = KernelAnalyzer(CFG)
        var, extent = mod.grid[0].var, mod.grid[0].extent
        groups = grouped(
            [(var, extent)], {}, lambda env: analyzer.dpu_cost(mod.kernel, env)
        )
        # Expand groups and compare against per-DPU evaluation.
        flat = []
        for count, cost in groups:
            flat.extend([cost.total.slots] * count)
        pointwise = [
            analyzer.dpu_cost(mod.kernel, {var: Interval.point(i)}).total.slots
            for i in range(extent)
        ]
        assert flat == pytest.approx(pointwise)

    def test_tasklet_imbalance_tracked(self):
        mod = module_for(37, 32, "O0", n_tasklets=2)
        analyzer = KernelAnalyzer(CFG)
        last = mod.grid[0].extent - 1
        cost = analyzer.dpu_cost(
            mod.kernel, {mod.grid[0].var: Interval.point(last)}
        )
        # max-per-tasklet can exceed the mean when the tail is uneven
        assert cost.max_tasklet_slots * cost.n_tasklets >= cost.total.slots
