"""UPMEM-C emission from lowered modules."""

from repro.lowering import LowerOptions, lower
from repro.optim import optimize_module
from repro.upmem.emitter import emit_host_pseudocode, emit_kernel_c

from ..conftest import make_mtv_schedule


def module_for(m=64, k=64, level="O3", **kwargs):
    sch = make_mtv_schedule(m, k, **kwargs)
    return optimize_module(
        lower(sch, options=LowerOptions(optimize=level)), level
    )


class TestKernelEmission:
    def test_contains_headers_and_main(self):
        code = emit_kernel_c(module_for())
        assert "#include <mram.h>" in code
        assert "int main(void)" in code

    def test_mram_tiles_declared(self):
        code = emit_kernel_c(module_for())
        assert "__mram_noinit" in code
        assert "A_mram" in code and "C_mram" in code

    def test_wram_buffers_declared_dma_aligned(self):
        code = emit_kernel_c(module_for())
        assert "__dma_aligned" in code

    def test_tasklet_dispatch_uses_me(self):
        code = emit_kernel_c(module_for(n_tasklets=2))
        assert "me()" in code

    def test_dma_intrinsics_present_at_o1_plus(self):
        code = emit_kernel_c(module_for(level="O1"))
        assert "mram_read(" in code
        assert "mram_write(" in code

    def test_no_dma_intrinsics_at_o0(self):
        code = emit_kernel_c(module_for(level="O0"))
        assert "mram_read(" not in code

    def test_boundary_checks_visible_at_o0(self):
        code = emit_kernel_c(module_for(37, 50, level="O0"))
        assert "if (" in code

    def test_barrier_for_multi_stage_kernels(self):
        from repro.autotune.compile import compile_params
        from repro.workloads import red

        module = compile_params(
            red(4096),
            {"n_dpus": 4, "n_tasklets": 2, "cache": 16, "dpu_combine": 1,
             "host_threads": 1},
            check=False,
        )
        assert "barrier_wait" in emit_kernel_c(module)


class TestHostEmission:
    def test_alloc_launch_and_transfers(self):
        text = emit_host_pseudocode(module_for())
        assert "dpu_alloc(4" in text
        assert "dpu_launch" in text
        assert "DPU_XFER_FROM_DPU" in text

    def test_host_reduction_rendered(self):
        text = emit_host_pseudocode(module_for(64, 64, k_dpus=2))
        assert "host final reduction" in text
