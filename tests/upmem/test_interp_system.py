"""Scalar interpreter and the system-level latency model."""

import numpy as np
import pytest

from repro.lowering import LowerOptions, lower
from repro.tir import (
    Buffer,
    BufferLoad,
    BufferStore,
    Call,
    DmaCopy,
    Evaluate,
    For,
    IfThenElse,
    IntImm,
    Select,
    Var,
)
from repro.upmem import UpmemConfig
from repro.upmem.interp import InterpError, Interpreter
from repro.upmem.system import PerformanceModel

from ..conftest import make_mtv_schedule


class TestInterpreter:
    def test_loop_store(self):
        buf = Buffer("A", (8,), "int32")
        arrays = {buf: np.zeros(8, np.int64)}
        i = Var("i")
        Interpreter(arrays).run(For(i, 8, BufferStore(buf, i * 2, [i])), {})
        assert list(arrays[buf]) == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_conditional(self):
        buf = Buffer("A", (8,), "int32")
        arrays = {buf: np.zeros(8, np.int64)}
        i = Var("i")
        body = IfThenElse(i < 4, BufferStore(buf, IntImm(1), [i]))
        Interpreter(arrays).run(For(i, 8, body), {})
        assert arrays[buf].sum() == 4

    def test_else_branch(self):
        buf = Buffer("A", (2,), "int32")
        arrays = {buf: np.zeros(2, np.int64)}
        st = IfThenElse(
            IntImm(0, "bool"),
            BufferStore(buf, IntImm(1), [IntImm(0)]),
            BufferStore(buf, IntImm(2), [IntImm(0)]),
        )
        Interpreter(arrays).run(st, {})
        assert arrays[buf][0] == 2

    def test_select_and_minmax(self):
        i = Var("i")
        interp = Interpreter({})
        from repro.tir import Max, Min

        assert interp.eval(Select(i < 5, i, IntImm(5)), {i: 3}) == 3
        assert interp.eval(Min(i, IntImm(2)), {i: 7}) == 2
        assert interp.eval(Max(i, IntImm(2)), {i: 7}) == 7

    def test_unbound_var_raises(self):
        with pytest.raises(InterpError):
            Interpreter({}).eval(Var("ghost"), {})

    def test_out_of_bounds_raises(self):
        buf = Buffer("A", (4,))
        arrays = {buf: np.zeros(4, np.float32)}
        with pytest.raises(InterpError):
            Interpreter(arrays).run(BufferStore(buf, IntImm(1), [IntImm(9)]), {})

    def test_dma_copy(self):
        w = Buffer("W", (4,), "float32", scope="wram")
        m = Buffer("M", (8,), "float32", scope="mram")
        arrays = {
            w: np.zeros(4, np.float32),
            m: np.arange(8, dtype=np.float32),
        }
        Interpreter(arrays).run(DmaCopy(w, [IntImm(0)], m, [IntImm(2)], 4), {})
        assert list(arrays[w]) == [2, 3, 4, 5]

    def test_dma_clamps_overrun(self):
        # DMA into the locally padded tail must not crash.
        w = Buffer("W", (4,), "float32", scope="wram")
        m = Buffer("M", (8,), "float32", scope="mram")
        arrays = {
            w: np.zeros(4, np.float32),
            m: np.arange(8, dtype=np.float32),
        }
        Interpreter(arrays).run(DmaCopy(w, [IntImm(0)], m, [IntImm(6)], 4), {})
        assert list(arrays[w][:2]) == [6, 7]

    def test_barrier_is_noop(self):
        Interpreter({}).run(Evaluate(Call("barrier", [], "int32")), {})

    def test_intrinsic_exp(self):
        import math

        val = Interpreter({}).eval(Call("exp", [IntImm(1)], "float32"), {})
        assert val == pytest.approx(math.e)

    def test_unknown_intrinsic_raises(self):
        with pytest.raises(InterpError):
            Interpreter({}).eval(Call("fused_magic", [], "float32"), {})


class TestPerformanceModel:
    def _profile(self, m=64, k=64, config=None, **kwargs):
        mod = lower(make_mtv_schedule(m, k, **kwargs))
        return PerformanceModel(config).profile(mod), mod

    def test_breakdown_positive(self):
        prof, _ = self._profile()
        lat = prof.latency
        assert lat.kernel > 0
        assert lat.d2h > 0
        assert lat.launch > 0
        assert lat.total == pytest.approx(
            lat.h2d + lat.kernel + lat.d2h + lat.host + lat.launch
        )

    def test_partitioned_input_is_resident(self):
        # A (the matrix) partitions exactly -> no per-run H2D; B is
        # broadcast to every DPU -> transferred.
        prof, mod = self._profile(64, 64, m_dpus=4)
        h2d_specs = mod.transfer("h2d")
        names = {t.global_buffer.name for t in h2d_specs}
        assert names == {"A", "B"}
        # Disabling residency must add A's traffic on top.
        cfg = UpmemConfig().with_(resident_partitioned_inputs=False)
        full = PerformanceModel(cfg).profile(mod)
        assert prof.latency.h2d > 0
        assert full.latency.h2d > prof.latency.h2d

    def test_residency_disabled_counts_everything(self):
        cfg = UpmemConfig().with_(resident_partitioned_inputs=False)
        with_res, _ = self._profile()
        without, _ = self._profile(config=cfg)
        assert without.latency.h2d > with_res.latency.h2d

    def test_more_tasklets_faster_kernel(self):
        one, _ = self._profile(256, 64, n_tasklets=1)
        many, _ = self._profile(256, 64, n_tasklets=8)
        assert many.latency.kernel < one.latency.kernel

    def test_more_dpus_faster_kernel(self):
        few, _ = self._profile(256, 64, m_dpus=2)
        many, _ = self._profile(256, 64, m_dpus=8)
        assert many.latency.kernel < few.latency.kernel

    def test_rfactor_adds_host_reduction(self):
        plain, _ = self._profile(64, 64, k_dpus=1)
        rf, _ = self._profile(64, 64, k_dpus=2)
        assert rf.latency.host > plain.latency.host

    def test_dpu_profile_fractions_sum_to_one(self):
        prof, _ = self._profile()
        frac = prof.dpu.fractions()
        assert sum(frac.values()) == pytest.approx(1.0, abs=1e-6)

    def test_gflops(self):
        prof, _ = self._profile()
        assert prof.gflops(2 * 64 * 64) > 0

    def test_transfer_modes_ordering(self):
        from repro.optim import optimize_module

        times = {}
        for mode in ("element", "bulk", "parallel"):
            sch = make_mtv_schedule(256, 64)
            mod = lower(sch, options=LowerOptions(transfer_mode=mode))
            times[mode] = PerformanceModel().profile(mod).latency.d2h
        assert times["parallel"] < times["bulk"] < times["element"]

    def test_config_with_override(self):
        cfg = UpmemConfig().with_(n_ranks=4)
        assert cfg.n_dpus == 256
        assert UpmemConfig().n_dpus == 2048
