"""Instruction costing and hardware-configuration invariants."""

import pytest

from repro.tir import (
    Add,
    Buffer,
    BufferLoad,
    Call,
    Cast,
    FloatImm,
    IntImm,
    Min,
    Mul,
    Not,
    Select,
    Sub,
    Var,
)
from repro.upmem.config import DEFAULT_CONFIG, UpmemConfig
from repro.upmem.isa import Counts, ExprCoster


@pytest.fixture
def coster():
    return ExprCoster(DEFAULT_CONFIG)


class TestExprCoster:
    def test_leaves_are_free(self, coster):
        assert coster.cost(Var("i")).slots == 0
        assert coster.cost(IntImm(3)).slots == 0
        assert coster.cost(FloatImm(1.0)).slots == 0

    def test_int_add_single_slot(self, coster):
        assert coster.cost(Add(Var("i"), IntImm(1))).slots == 1

    def test_float_ops_cost_more_than_int(self, coster):
        fi = Add(FloatImm(1.0), FloatImm(2.0))
        # float arithmetic is emulated on the DPU
        assert coster.cost(fi).slots > 1

    def test_pow2_mul_is_shift(self, coster):
        assert coster.cost(Mul(Var("i"), IntImm(16))).slots == 1

    def test_general_int_mul_multicycle(self, coster):
        cost = coster.cost(Mul(Var("i"), Var("j")))
        assert cost.slots == DEFAULT_CONFIG.int_mul_cycles

    def test_wram_load_one_slot(self, coster):
        w = Buffer("W", (8,), "float32", scope="wram")
        cost = coster.cost(BufferLoad(w, [Var("i")]))
        assert cost.slots >= 1
        assert cost.dma_calls == 0

    def test_mram_load_counts_as_small_dma(self, coster):
        m = Buffer("M", (8,), "float32", scope="mram")
        cost = coster.cost(BufferLoad(m, [Var("i")]))
        assert cost.dma_calls == 1
        assert cost.dma_bytes == DEFAULT_CONFIG.dma_align_bytes

    def test_multidim_addressing_extra_slot(self, coster):
        w = Buffer("W", (4, 8), "float32", scope="wram")
        c1 = coster.cost(BufferLoad(w, [Var("i"), Var("j")]))
        w1 = Buffer("W1", (8,), "float32", scope="wram")
        c2 = coster.cost(BufferLoad(w1, [Var("i")]))
        assert c1.slots > c2.slots

    def test_memoization_by_identity(self, coster):
        e = Add(Var("i"), IntImm(1))
        assert coster.cost(e) is coster.cost(e)

    def test_compound_expression(self, coster):
        w = Buffer("W", (8,), "float32", scope="wram")
        e = Add(
            Mul(BufferLoad(w, [Var("i")]), BufferLoad(w, [Var("j")])),
            FloatImm(0.0),
        )
        cost = coster.cost(e)
        assert cost.loads == 2
        assert cost.compute_ops == 2

    def test_select_min_not_cast_costed(self, coster):
        assert coster.cost(Select(Var("i") < 1, 1, 2)).slots > 0
        assert coster.cost(Min(Var("i"), IntImm(3))).slots == 2
        assert coster.cost(Not(Var("i") < 1)).slots == 2
        assert coster.cost(Cast(Var("i"), "float32")).slots == 1
        assert coster.cost(Call("exp", [FloatImm(1.0)], "float32")).slots >= 20


class TestCounts:
    def test_add_and_scale(self):
        a = Counts(slots=2, branches=1, dma_calls=1, dma_bytes=64)
        b = Counts(slots=3)
        c = (a + b).scaled(2)
        assert c.slots == 10
        assert c.branches == 2
        assert c.dma_bytes == 128

    def test_iadd(self):
        a = Counts(slots=1)
        a += Counts(slots=2, barriers=1)
        assert a.slots == 3 and a.barriers == 1


class TestConfig:
    def test_defaults_match_paper_hardware(self):
        cfg = UpmemConfig()
        assert cfg.n_dpus == 2048
        assert cfg.max_tasklets == 24
        assert cfg.wram_bytes == 64 * 1024
        assert cfg.iram_instructions == 4096
        assert cfg.mram_bytes == 64 * 1024 * 1024
        assert cfg.dpu_frequency_hz == 350e6

    def test_with_override_is_functional(self):
        cfg = UpmemConfig()
        small = cfg.with_(n_ranks=1)
        assert small.n_dpus == 64
        assert cfg.n_ranks == 32  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            UpmemConfig().n_ranks = 5

    def test_cycle_time(self):
        assert UpmemConfig().cycle_time_s == pytest.approx(1 / 350e6)
