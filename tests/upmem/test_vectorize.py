"""The TIR->NumPy vectorizer: bit-for-bit equivalence gate and fallbacks."""

import numpy as np
import pytest

from repro.autotune.compile import compile_params
from repro.lowering import GridDim, LoweredModule
from repro.tir import Buffer, BufferStore, Call, Evaluate, For, IntImm, Var
from repro.upmem import FunctionalExecutor, VerifyMismatch, plan_for, sim_mode
from repro.upmem.interp import InterpError, Interpreter, _np_dtype
from repro.upmem.vectorize import host_program_for
from repro.workloads import make_workload, size_labels, workload_names
from repro.workloads.tensor_ops import gemv, geva, mmtv, mtv, red, ttv, va

# Each family with a shape that exercises boundary handling (misaligned)
# and one aligned shape; O0 keeps the boundary predicates in the kernel.
SWEEP = [
    ("va", va(1024), {"n_dpus": 8, "n_tasklets": 2, "cache": 8}),
    ("va-tail", va(997), {"n_dpus": 8, "n_tasklets": 2, "cache": 8}),
    ("geva", geva(500), {"n_dpus": 4, "n_tasklets": 2, "cache": 8}),
    ("red", red(512), {"n_dpus": 4, "n_tasklets": 2, "cache": 8}),
    ("red-tail", red(509), {"n_dpus": 4, "n_tasklets": 2, "cache": 8}),
    (
        "mtv",
        mtv(64, 64),
        {"m_dpus": 8, "k_dpus": 1, "n_tasklets": 2, "cache": 8,
         "host_threads": 1},
    ),
    (
        "mtv-rfactor",
        mtv(37, 50),
        {"m_dpus": 4, "k_dpus": 2, "n_tasklets": 2, "cache": 8,
         "host_threads": 1},
    ),
    (
        "gemv",
        gemv(37, 50),
        {"m_dpus": 4, "k_dpus": 2, "n_tasklets": 2, "cache": 8,
         "host_threads": 1},
    ),
    ("ttv", ttv(4, 10, 24), {"i_dpus": 2, "j_dpus": 2, "n_tasklets": 2,
                             "cache": 8}),
    ("mmtv", mmtv(3, 9, 17), {"i_dpus": 3, "j_dpus": 2, "n_tasklets": 2,
                              "cache": 8}),
]


def _compile(wl, params, level):
    module = compile_params(wl, params, optimize=level, check=False)
    assert module is not None, f"{wl.name} rejected params {params}"
    return module


def _run(module, inputs, mode, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_MODE", mode)
    return [a.copy() for a in FunctionalExecutor(module).run(inputs)]


class TestEquivalenceGate:
    @pytest.mark.parametrize("level", ["O0", "O3"])
    @pytest.mark.parametrize(
        "label,wl,params", SWEEP, ids=[s[0] for s in SWEEP]
    )
    def test_vector_matches_scalar_bitwise(
        self, label, wl, params, level, monkeypatch
    ):
        module = _compile(wl, params, level)
        inputs = wl.random_inputs(0)
        scalar = _run(module, inputs, "scalar", monkeypatch)
        vector = _run(module, inputs, "vector", monkeypatch)
        for s, v in zip(scalar, vector):
            assert s.dtype == v.dtype and s.shape == v.shape
            assert s.tobytes() == v.tobytes()
        # verify mode runs both and must agree with itself
        out = _run(module, inputs, "verify", monkeypatch)
        for s, o in zip(scalar, out):
            assert s.tobytes() == o.tobytes()
        np.testing.assert_allclose(
            vector[0], wl.reference_output(inputs), rtol=1e-3, atol=1e-4
        )

    def test_no_fallbacks_on_registered_workloads(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_MODE", "vector")
        for label, wl, params in SWEEP:
            module = _compile(wl, params, "O3")
            FunctionalExecutor(module).run(wl.random_inputs(1))
            assert plan_for(module).fallbacks == [], label
            for which in ("pre", "post"):
                assert host_program_for(module, which).fallbacks == []

    def test_lane_chunking_is_bitwise_stable(self, monkeypatch):
        """Odd chunk sizes and sharded run_points agree with one shot."""
        wl = mtv(37, 50)
        params = {"m_dpus": 8, "k_dpus": 1, "n_tasklets": 2, "cache": 8,
                  "host_threads": 1}
        module = _compile(wl, params, "O0")
        inputs = wl.random_inputs(2)
        monkeypatch.setenv("REPRO_SIM_MODE", "vector")
        ref = _run(module, inputs, "vector", monkeypatch)
        monkeypatch.setenv("REPRO_VECTOR_LANES", "3")
        chunked = _run(module, inputs, "vector", monkeypatch)
        monkeypatch.delenv("REPRO_VECTOR_LANES")
        assert ref[0].tobytes() == chunked[0].tobytes()
        # manual two-shard phased execution (what run_batch does)
        fexec = FunctionalExecutor(module)
        arrays = fexec.prepare(inputs)
        points = fexec.grid_points()
        fexec.run_points(arrays, points[: len(points) // 2])
        fexec.run_points(arrays, points[len(points) // 2 :])
        out, = fexec.finalize(arrays)
        assert out.tobytes() == ref[0].tobytes()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_run_batch_workers_bitwise_stable(self, workers, monkeypatch):
        """Thread-pool sharding over the vector path stays byte-equal
        to a sequential scalar run at any worker count."""
        import repro

        monkeypatch.setenv("REPRO_SIM_MODE", "scalar")
        wl = mmtv(3, 9, 17)
        exe = repro.compile(
            wl,
            target="upmem",
            params={"i_dpus": 3, "j_dpus": 2, "n_tasklets": 2, "cache": 8},
        )
        batch = [wl.random_inputs(s) for s in range(3)]
        ref = [out[0].copy() for out in exe.run_batch(batch, max_workers=1)]
        monkeypatch.setenv("REPRO_SIM_MODE", "vector")
        got = exe.run_batch(batch, max_workers=workers)
        for r, (g,) in zip(ref, got):
            assert r.tobytes() == g.tobytes()

    @pytest.mark.slow
    def test_full_size_sweep_4mb(self, monkeypatch):
        """Every registered workload's 4MB instance through the gate."""
        from repro.target import default_params

        monkeypatch.setenv("REPRO_SIM_MODE", "verify")
        for name in workload_names():
            assert "4MB" in size_labels(name)
            wl = make_workload(name, "4MB")
            module = compile_params(
                wl, default_params(wl), optimize="O3", check=False
            )
            assert module is not None, name
            out, = FunctionalExecutor(module).run(wl.random_inputs(0))
            np.testing.assert_allclose(
                out, wl.reference_output(wl.random_inputs(0)),
                rtol=1e-2, atol=1e-3,
            )


def _toy_module(kernel, out_buf, grid_extent=4):
    gvar = Var("b")
    return LoweredModule(
        name="toy",
        grid=[GridDim("blockIdx.x", gvar, grid_extent)],
        kernel=kernel,
        transfers=[],
        host_pre=[],
        host_post=[],
        inputs=[],
        outputs=[out_buf],
    ), gvar


class TestFallbacks:
    def test_store_to_shared_buffer_falls_back(self, monkeypatch):
        """A kernel writing a global buffer directly is out of model:
        the statement must degrade to the scalar interpreter per lane
        and still produce scalar-identical bytes."""
        out = Buffer("Out", (8,), "float32")
        i = Var("i")
        body = For(i, 2, BufferStore(out, (i + 1) * 2, [IntImm(0)]))
        module, gvar = _toy_module(body, out, grid_extent=4)
        plan = plan_for(module)
        assert plan.fallbacks, "expected the shared store to fall back"
        monkeypatch.setenv("REPRO_SIM_MODE", "scalar")
        s, = FunctionalExecutor(module).run({})
        monkeypatch.setenv("REPRO_SIM_MODE", "vector")
        v, = FunctionalExecutor(module).run({})
        assert s.tobytes() == v.tobytes()

    def test_unknown_intrinsic_raises_in_both_modes(self, monkeypatch):
        out = Buffer("Out", (4,), "float32")
        kernel = Evaluate(Call("fused_magic", [], "float32"))
        module, _ = _toy_module(kernel, out)
        assert plan_for(module).fallbacks
        for mode in ("scalar", "vector"):
            monkeypatch.setenv("REPRO_SIM_MODE", mode)
            with pytest.raises(InterpError):
                FunctionalExecutor(module).run({})

    def test_verify_mismatch_raises(self, monkeypatch):
        wl = va(64)
        module = _compile(wl, {"n_dpus": 2, "n_tasklets": 1, "cache": 8},
                          "O3")
        fexec = FunctionalExecutor(module, mode="verify")

        class _LyingPlan:
            def run_points(self, arrays, points):
                plan_for(module).run_points(arrays, points)
                out = module.outputs[0]
                arrays[out] += np.float32(1.0)  # corrupt the vector result

        monkeypatch.setattr(fexec, "_plan", lambda: _LyingPlan())
        with pytest.raises(VerifyMismatch):
            fexec.run(wl.random_inputs(0))

    def test_bad_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_MODE", "warp-speed")
        with pytest.raises(ValueError):
            sim_mode()
        assert sim_mode("vector") == "vector"


class TestDtypeRegression:
    def test_int32_buffers_are_int32(self):
        buf = Buffer("I", (4,), "int32")
        assert _np_dtype(buf) is np.int32
        interp = Interpreter({})
        arr = interp._array(buf)
        assert arr.dtype == np.int32
        i = Var("i")
        interp.run(For(i, 4, BufferStore(buf, i * 2, [i])), {})
        assert arr.dtype == np.int32 and list(arr) == [0, 2, 4, 6]

    def test_int32_round_trip_through_executor(self, monkeypatch):
        out = Buffer("Out", (4,), "int32")
        i = Var("i")
        kernel = For(i, 4, BufferStore(out, i + 1, [i]))
        module, _ = _toy_module(kernel, out, grid_extent=1)
        for mode in ("scalar", "vector"):
            monkeypatch.setenv("REPRO_SIM_MODE", mode)
            o, = FunctionalExecutor(module).run({})
            assert o.dtype == np.int32
            assert o.tobytes() == np.array([1, 2, 3, 4], np.int32).tobytes()


class TestPlanCache:
    def test_plan_reused_per_module(self):
        wl = va(128)
        module = _compile(wl, {"n_dpus": 2, "n_tasklets": 1, "cache": 8},
                          "O3")
        assert plan_for(module) is plan_for(module)
        assert host_program_for(module, "post") is host_program_for(
            module, "post"
        )

    def test_artifact_cache_stamps_plan_key(self):
        wl = va(256)
        module = _compile(wl, {"n_dpus": 2, "n_tasklets": 1, "cache": 8},
                          "O3")
        assert isinstance(getattr(module, "plan_key", None), str)

    def test_grid_points_memoized(self):
        wl = va(128)
        module = _compile(wl, {"n_dpus": 2, "n_tasklets": 1, "cache": 8},
                          "O3")
        fexec = FunctionalExecutor(module)
        assert fexec.grid_points() is fexec.grid_points()


class TestAccumulateContract:
    def test_np_accumulate_is_sequential_left_fold(self):
        """The reduce vectorization relies on accumulate being a strict
        left fold in float32 — guard against numpy changing that."""
        rng = np.random.default_rng(7)
        x = rng.random((5, 33), dtype=np.float32)
        acc = np.add.accumulate(x, axis=1)
        ref = np.empty_like(x)
        for r in range(x.shape[0]):
            s = np.float32(0.0)
            for c in range(x.shape[1]):
                s = s + x[r, c]
                ref[r, c] = s
        assert acc.tobytes() == ref.tobytes()
