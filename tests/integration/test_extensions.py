"""HBM-PIM extension sketch (paper §8)."""

import pytest

from repro.autotune.compile import compile_params
from repro.extensions.hbm_pim import HbmPimConfig, HbmPimEstimator
from repro.workloads import mtv


@pytest.fixture
def module():
    wl = mtv(1024, 1024)
    return compile_params(
        wl,
        {"m_dpus": 64, "k_dpus": 4, "n_tasklets": 16, "cache": 64,
         "host_threads": 16},
        check=False,
    )


class TestHbmPim:
    def test_pu_count(self):
        cfg = HbmPimConfig()
        assert cfg.n_pus == 64 * 16 // 2

    def test_estimate_positive(self, module):
        est = HbmPimEstimator().estimate(module, total_macs=1024 * 1024)
        assert est.supported
        assert est.latency_s > 0
        assert est.commands_per_pu > 0

    def test_latency_scales_with_work(self, module):
        est = HbmPimEstimator()
        small = est.estimate(module, total_macs=1024 * 1024)
        big = est.estimate(module, total_macs=16 * 1024 * 1024)
        assert big.latency_s > small.latency_s

    def test_more_pus_faster(self, module):
        small_sys = HbmPimEstimator(HbmPimConfig(n_pseudo_channels=8))
        big_sys = HbmPimEstimator(HbmPimConfig(n_pseudo_channels=64))
        macs = 64 * 1024 * 1024
        assert (
            big_sys.estimate(module, macs).latency_s
            < small_sys.estimate(module, macs).latency_s
        )

    def test_mac_only_support(self):
        est = HbmPimEstimator()
        assert est.supports("add")
        assert not est.supports("max")
        assert not est.supports(None)
