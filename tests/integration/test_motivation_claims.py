"""The paper's §3 motivating observations hold on the simulated system."""

import pytest

from repro.harness import profile_params
from repro.workloads import gemv, mtv


class TestObservation2:
    """"Intra-DPU and inter-DPU optimizations have a vast search space of
    closely correlated parameters with significant performance impact."""

    def test_tile_scheme_changes_kernel_and_transfer_balance(self):
        wl = gemv(2048, 2048)
        one_d = profile_params(
            wl,
            {"m_dpus": 512, "k_dpus": 1, "n_tasklets": 16, "cache": 64,
             "host_threads": 16},
        )
        two_d = profile_params(
            wl,
            {"m_dpus": 64, "k_dpus": 8, "n_tasklets": 16, "cache": 64,
             "host_threads": 16},
        )
        # 2-D tiling trades host reduction time for less H2D (broadcast
        # shrinks) — the correlation the paper demonstrates in Fig. 3(b).
        assert two_d.latency.h2d < one_d.latency.h2d
        assert two_d.latency.host >= one_d.latency.host

    def test_optimal_dpus_depends_on_tensor_size(self):
        small = gemv(512, 512)
        big = gemv(8192, 8192)

        def best_dpus(wl, counts):
            best, best_t = None, None
            for n in counts:
                prof = profile_params(
                    wl,
                    {"m_dpus": n, "k_dpus": 1, "n_tasklets": 16,
                     "cache": 32, "host_threads": 1},
                )
                if best_t is None or prof.latency.total < best_t:
                    best, best_t = n, prof.latency.total
            return best

        small_best = best_dpus(small, (32, 128, 512))
        big_best = best_dpus(big, (32, 512, 2048))
        # Fig. 3(c): small tensors peak below the full system.
        assert big_best > small_best

    def test_interdependence_of_tiles_and_tasklets(self):
        # The best caching tile depends on how many tasklets share WRAM:
        # at 24 tasklets a 512-element tile overflows, at 2 it is legal.
        from repro.autotune.compile import compile_params

        wl = mtv(4096, 4096)
        big_tile_many_threads = compile_params(
            wl,
            {"m_dpus": 64, "k_dpus": 1, "n_tasklets": 24, "cache": 512,
             "host_threads": 1},
        )
        big_tile_few_threads = compile_params(
            wl,
            {"m_dpus": 64, "k_dpus": 1, "n_tasklets": 2, "cache": 512,
             "host_threads": 1},
        )
        assert big_tile_many_threads is None
        assert big_tile_few_threads is not None


class TestObservation3:
    """"UPMEM compute units can suffer from underutilization due to
    unoptimized branches" — checks cost ~20% on DPUs."""

    @pytest.mark.parametrize("m,k", [(542, 542), (713, 990)])
    def test_boundary_checks_cost_double_digit_percent(self, m, k):
        wl = gemv(m, k)
        params = {"m_dpus": 64, "k_dpus": 1, "n_tasklets": 16, "cache": 64,
                  "host_threads": 1}
        checked = profile_params(wl, params, optimize="O1")
        clean = profile_params(wl, params, optimize="O3")
        ratio = checked.latency.kernel / clean.latency.kernel
        assert 1.05 < ratio < 2.0

    def test_branches_dominate_small_kernels_at_o0(self):
        wl = gemv(245, 245)
        params = {"m_dpus": 1, "k_dpus": 1, "n_tasklets": 8, "cache": 16,
                  "host_threads": 1}
        prof = profile_params(wl, params, optimize="O0")
        counts = prof.kernel_counts
        assert counts.branches > 0.05 * counts.slots
