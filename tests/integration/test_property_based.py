"""Property-based tests (hypothesis) on the compiler's core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotune.compile import compile_params
from repro.tir import IntImm, Var, simplify
from repro.upmem import FunctionalExecutor
from repro.upmem.interp import Interpreter
from repro.workloads import mtv, va


# ---------------------------------------------------------------------------
# simplify(e) is semantics-preserving
# ---------------------------------------------------------------------------

_binops = st.sampled_from(["add", "sub", "mul", "div", "mod", "min", "max"])


@st.composite
def int_exprs(draw, depth=0):
    """Random integer expressions over variables i, j."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return IntImm(draw(st.integers(-20, 20)))
        return Var("i") if choice == 1 else Var("j")
    a = draw(int_exprs(depth=depth + 1))
    b = draw(int_exprs(depth=depth + 1))
    op = draw(_binops)
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        return a // (abs_const(draw) if True else b)
    if op == "mod":
        return a % abs_const(draw)
    if op == "min":
        from repro.tir import Min

        return Min(a, b)
    from repro.tir import Max

    return Max(a, b)


def abs_const(draw):
    return IntImm(draw(st.integers(1, 9)))


@settings(max_examples=120, deadline=None)
@given(expr=int_exprs(), i=st.integers(0, 30), j=st.integers(0, 30))
def test_simplify_preserves_value(expr, i, j):
    interp = Interpreter({})
    env = {v: val for v, val in []}
    # Bind by name: the strategy reuses fresh Var objects per example.
    from repro.tir import collect_vars

    bindings = {}
    for var in collect_vars(expr):
        bindings[var] = i if var.name == "i" else j
    before = interp.eval(expr, dict(bindings))
    after_expr = simplify(expr)
    after_bindings = {}
    for var in collect_vars(after_expr):
        after_bindings[var] = i if var.name == "i" else j
    after = interp.eval(after_expr, after_bindings)
    assert before == after


# ---------------------------------------------------------------------------
# the whole compiler is correct for arbitrary tile parameters
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(5, 40),
    k=st.integers(5, 48),
    m_dpus=st.sampled_from([1, 2, 4, 8]),
    k_dpus=st.sampled_from([1, 2, 4]),
    tasklets=st.sampled_from([1, 2, 4]),
    cache=st.sampled_from([4, 8, 16]),
    level=st.sampled_from(["O0", "O3"]),
)
def test_mtv_correct_for_any_tiling(m, k, m_dpus, k_dpus, tasklets, cache, level):
    wl = mtv(m, k)
    params = {
        "m_dpus": m_dpus,
        "k_dpus": k_dpus,
        "n_tasklets": tasklets,
        "cache": cache,
        "host_threads": 1,
    }
    module = compile_params(wl, params, optimize=level, check=False)
    if module is None:
        return  # schedule invalid for this shape — acceptable
    inputs = wl.random_inputs(0)
    out, = FunctionalExecutor(module).run(inputs)
    np.testing.assert_allclose(
        out, wl.reference_output(inputs), rtol=1e-3, atol=1e-4
    )


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(10, 400),
    n_dpus=st.sampled_from([1, 2, 4, 8]),
    tasklets=st.sampled_from([1, 2, 4]),
    cache=st.sampled_from([4, 8, 16]),
)
def test_va_correct_for_any_tiling(n, n_dpus, tasklets, cache):
    wl = va(n)
    params = {"n_dpus": n_dpus, "n_tasklets": tasklets, "cache": cache}
    module = compile_params(wl, params, optimize="O3", check=False)
    if module is None:
        return
    inputs = wl.random_inputs(0)
    out, = FunctionalExecutor(module).run(inputs)
    np.testing.assert_allclose(out, wl.reference_output(inputs), rtol=1e-4)


# ---------------------------------------------------------------------------
# optimization levels never change results
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    m=st.integers(7, 30),
    k=st.integers(7, 40),
)
def test_opt_levels_agree(m, k):
    wl = mtv(m, k)
    params = {
        "m_dpus": 4,
        "k_dpus": 2,
        "n_tasklets": 2,
        "cache": 8,
        "host_threads": 1,
    }
    inputs = wl.random_inputs(1)
    outputs = []
    for level in ("O0", "O1", "O2", "O3"):
        module = compile_params(wl, params, optimize=level, check=False)
        if module is None:
            return
        out, = FunctionalExecutor(module).run(inputs)
        outputs.append(out)
    for other in outputs[1:]:
        np.testing.assert_allclose(outputs[0], other, rtol=1e-4)
