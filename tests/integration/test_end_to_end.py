"""End-to-end: paper-level claims hold on the simulated system."""

import numpy as np
import pytest

from repro import build, te
from repro.autotune import autotune
from repro.baselines import cpu_latency, prim_profile, simplepim_profile
from repro.lowering import LowerOptions
from repro.schedule import Schedule
from repro.workloads import make_workload, mtv, red

from ..conftest import make_mtv_schedule


class TestBuildApi:
    def test_build_run_profile(self):
        sch = make_mtv_schedule(64, 32)
        mod = build(sch, name="mtv")
        rng = np.random.default_rng(0)
        a = rng.random((64, 32), dtype=np.float32)
        b = rng.random(32, dtype=np.float32)
        out, = mod.run(A=a, B=b)
        np.testing.assert_allclose(out, a @ b, rtol=1e-4)
        assert mod.latency > 0
        assert "dma_copy" in mod.script() or "for" in mod.script()

    def test_profile_cached(self):
        mod = build(make_mtv_schedule(64, 32))
        assert mod.profile() is mod.profile()

    def test_build_applies_optimization_level(self):
        o0 = build(make_mtv_schedule(37, 50),
                   options=LowerOptions(optimize="O0"))
        o3 = build(make_mtv_schedule(37, 50),
                   options=LowerOptions(optimize="O3"))
        assert o3.profile().latency.kernel < o0.profile().latency.kernel


@pytest.mark.slow
class TestPaperClaims:
    """Direction/shape of the headline results (small-scale settings)."""

    def test_atim_beats_prim_on_mtv(self):
        wl = make_workload("mtv", "64MB")
        prim = prim_profile(wl, "64MB").latency.total
        tuned = autotune(wl, n_trials=32, seed=0).best_latency
        assert tuned < prim  # paper: up to 6.18x

    def test_atim_uses_2d_tiling_on_large_mtv(self):
        wl = make_workload("mtv", "256MB")
        result = autotune(wl, n_trials=32, seed=0)
        assert result.best_params["k_dpus"] > 1  # hierarchical reduction

    def test_atim_beats_simplepim_on_red(self):
        wl = make_workload("red", "64MB")
        sp = simplepim_profile(wl).latency.total
        tuned = autotune(wl, n_trials=32, seed=0).best_latency
        assert tuned < sp

    def test_pim_beats_cpu_on_large_red(self):
        wl = make_workload("red", "256MB")
        tuned = autotune(wl, n_trials=24, seed=0).best_latency
        assert cpu_latency(wl) / tuned > 5  # paper: up to 23.3x

    def test_cpu_competitive_on_small_mtv(self):
        wl = make_workload("mtv", "4MB")
        tuned = autotune(wl, n_trials=24, seed=0).best_latency
        # At 4 MB the paper reports PIM <= CPU for matvec workloads.
        assert cpu_latency(wl) < tuned * 3

    def test_red_prim_ships_more_d2h(self):
        wl = make_workload("red", "64MB")
        prim = prim_profile(wl, "64MB")
        tuned = autotune(wl, n_trials=24, seed=0)
        from repro.upmem.system import PerformanceModel

        atim_prof = PerformanceModel().profile(tuned.best_module)
        assert prim.latency.d2h >= atim_prof.latency.d2h


class TestCustomOperators:
    """The public API supports operators beyond the built-in seven."""

    def test_axpy_like_fused_op(self):
        n = 96
        A = te.placeholder((n,), "float32", "A")
        B = te.placeholder((n,), "float32", "B")
        C = te.compute((n,), lambda i: A[i] * 2.0 + B[i] * B[i], "C")
        sch = Schedule(C)
        s = sch[C]
        (i,) = s.op.axis
        i_dpu, rest = s.split(i, nparts=4)
        i_thr, r2 = s.split(rest, nparts=2)
        i_blk, i_in = s.split(r2, factor=8)
        s.reorder(i_dpu, i_thr, i_blk, i_in)
        s.bind(i_dpu, "blockIdx.x")
        s.bind(i_thr, "threadIdx.x")
        sch.cache_read(C, A, "wram").compute_at(s, i_blk)
        sch.cache_read(C, B, "wram").compute_at(s, i_blk)
        sch.cache_write(C, "wram").reverse_compute_at(s, i_blk)
        mod = build(sch)
        rng = np.random.default_rng(4)
        a = rng.random(n, dtype=np.float32)
        b = rng.random(n, dtype=np.float32)
        out, = mod.run(A=a, B=b)
        np.testing.assert_allclose(out, 2 * a + b * b, rtol=1e-4)

    def test_max_reduction_op(self):
        m, k = 24, 40
        A = te.placeholder((m, k), "float32", "A")
        kk = te.reduce_axis(k, "k")
        C = te.compute(
            (m,), lambda i: te.max_reduce(A[i, kk], axis=kk), "C"
        )
        sch = Schedule(C)
        s = sch[C]
        (i,) = s.op.axis
        i_dpu, i_in = s.split(i, nparts=4)
        i_thr, i_tile = s.split(i_in, nparts=2)
        kb, ke = s.split(s.op.reduce_axis[0], factor=8)
        s.reorder(i_dpu, i_thr, i_tile, kb, ke)
        s.bind(i_dpu, "blockIdx.x")
        s.bind(i_thr, "threadIdx.x")
        sch.cache_read(C, A, "wram").compute_at(s, kb)
        sch.cache_write(C, "wram").reverse_compute_at(s, i_thr)
        mod = build(sch)
        rng = np.random.default_rng(5)
        a = rng.random((m, k), dtype=np.float32)
        out, = mod.run(A=a)
        np.testing.assert_allclose(out, a.max(axis=1), rtol=1e-5)

    def test_2d_elementwise(self):
        h, w = 18, 26
        A = te.placeholder((h, w), "float32", "A")
        C = te.compute((h, w), lambda i, j: A[i, j] * A[i, j], "C")
        sch = Schedule(C)
        s = sch[C]
        i, j = s.op.axis
        i_dpu, i_in = s.split(i, nparts=3)
        j_dpu, j_rest = s.split(j, nparts=2)
        j_thr, j_in = s.split(j_rest, nparts=2)
        s.reorder(i_dpu, j_dpu, i_in, j_thr, j_in)
        s.bind(i_dpu, "blockIdx.x")
        s.bind(j_dpu, "blockIdx.y")
        s.bind(j_thr, "threadIdx.x")
        sch.cache_read(C, A, "wram").compute_at(s, j_thr)
        sch.cache_write(C, "wram").reverse_compute_at(s, j_thr)
        mod = build(sch)
        rng = np.random.default_rng(6)
        a = rng.random((h, w), dtype=np.float32)
        out, = mod.run(A=a)
        np.testing.assert_allclose(out, a * a, rtol=1e-5)
