"""Sweep every registered workload/size through compile + profile.

Ensures the seeded default schedule for each paper instance lowers,
verifies, and produces a self-consistent latency breakdown — catching
regressions anywhere in the sketch → lower → optimize → model chain.
"""

import pytest

from repro.autotune import Tuner
from repro.upmem.system import PerformanceModel
from repro.workloads import SIZED_WORKLOADS, make_workload

CASES = [
    (name, size)
    for name, sizes in SIZED_WORKLOADS.items()
    for size in sizes
]


@pytest.mark.parametrize("name,size", CASES, ids=[f"{n}-{s}" for n, s in CASES])
def test_default_candidate_profiles(name, size):
    wl = make_workload(name, size)
    tuner = Tuner(wl, n_trials=4)
    model = PerformanceModel()
    seen_valid = False
    for params in tuner._seed_params():
        cand = tuner._build(params)
        if cand is None:
            continue
        seen_valid = True
        prof = model.profile(cand.module)
        lat = prof.latency
        assert lat.kernel > 0
        assert lat.total == pytest.approx(
            lat.h2d + lat.kernel + lat.d2h + lat.host + lat.launch
        )
        assert prof.n_dpus <= 2048
        assert 1 <= prof.n_tasklets <= 24
        # Kernel work must scale sensibly: per-DPU instruction count is
        # positive and bounded by total work.
        assert prof.kernel_counts.slots > 0
    assert seen_valid, f"no valid seed for {name}/{size}"


@pytest.mark.parametrize(
    "name,size",
    [("mtv", "4MB"), ("va", "4MB"), ("red", "4MB"), ("mmtv", "4MB")],
)
def test_latency_grows_with_size(name, size):
    wl_small = make_workload(name, "4MB")
    wl_big = make_workload(name, "64MB" if "64MB" in SIZED_WORKLOADS[name] else "256MB")
    model = PerformanceModel()

    def seed_latency(wl):
        tuner = Tuner(wl, n_trials=4)
        best = None
        for params in tuner._seed_params():
            cand = tuner._build(params)
            if cand is not None:
                t = model.profile(cand.module).latency.kernel
                best = t if best is None else min(best, t)
        return best

    assert seed_latency(wl_big) > seed_latency(wl_small)
