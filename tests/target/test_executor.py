"""Executor pool modes and worker-count configuration."""

import os

import pytest

from repro.target import Executor, default_workers


class TestDefaultWorkers:
    def test_env_override_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        assert default_workers() == 3

    def test_env_override_uncapped(self, monkeypatch):
        # The built-in cap is 8; the override may exceed it.
        monkeypatch.setenv("REPRO_MAX_WORKERS", "32")
        assert default_workers() == 32

    @pytest.mark.parametrize("bad", ["0", "-2", "abc", "1.5", ""])
    def test_env_override_validated(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_MAX_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_MAX_WORKERS"):
            default_workers()

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        value = default_workers()
        assert 1 <= value <= 8
        assert value == max(1, min(8, os.cpu_count() or 1))

    def test_executor_picks_up_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "5")
        assert Executor().max_workers == 5


class TestPersistentExecutor:
    def test_pool_reused_across_maps(self):
        with Executor(max_workers=2, persistent=True) as executor:
            assert executor._pool is None  # lazy: no pool before use
            executor.map(lambda x: x + 1, range(8))
            pool = executor._pool
            assert pool is not None
            executor.map(lambda x: x * 2, range(8))
            assert executor._pool is pool  # same pool, no rebuild
        assert executor._pool is None  # context exit closed it

    def test_close_idempotent(self):
        executor = Executor(max_workers=2, persistent=True)
        executor.map(lambda x: x, range(4))
        executor.close()
        executor.close()
        assert executor._pool is None

    def test_map_after_close_recreates_pool(self):
        executor = Executor(max_workers=2, persistent=True)
        executor.map(lambda x: x, range(4))
        executor.close()
        assert executor.map(lambda x: x + 1, range(4)) == [1, 2, 3, 4]
        executor.close()

    def test_sequential_path_never_builds_pool(self):
        executor = Executor(max_workers=1, persistent=True)
        assert executor.map(lambda x: x * x, range(6)) == [
            x * x for x in range(6)
        ]
        assert executor._pool is None

    def test_single_item_never_builds_pool(self):
        executor = Executor(max_workers=4, persistent=True)
        assert executor.map(lambda x: x + 1, [41]) == [42]
        assert executor._pool is None

    def test_results_match_one_shot_mode(self):
        items = list(range(32))
        fn = lambda x: x * 3 + 1  # noqa: E731
        one_shot = Executor(max_workers=4).map(fn, items)
        with Executor(max_workers=4, persistent=True) as executor:
            assert executor.map(fn, items) == one_shot

    def test_one_shot_mode_keeps_no_state(self):
        executor = Executor(max_workers=4)
        executor.map(lambda x: x, range(8))
        assert executor._pool is None
