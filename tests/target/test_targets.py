"""The Target registry and the ``repro.compile`` front door."""

import numpy as np
import pytest

import repro
from repro.autotune import autotune
from repro.pipeline import artifact_key
from repro.schedule import Schedule
from repro.target import (
    CpuTarget,
    EstimateExecutable,
    GpuTarget,
    HbmPimTarget,
    PrimTarget,
    SimplePimTarget,
    Target,
    TargetError,
    UpmemTarget,
    default_params,
    get_target,
    list_targets,
    register_target,
)
from repro.upmem import DEFAULT_CONFIG, UpmemConfig
from repro.workloads import make_workload, mtv, red, va

SMALL = UpmemConfig().with_(n_ranks=2)


class TestRegistry:
    def test_all_six_kinds_registered(self):
        assert set(list_targets()) >= {
            "upmem", "hbm-pim", "cpu", "gpu", "prim", "simplepim"
        }

    def test_get_target_by_kind(self):
        assert isinstance(get_target("upmem"), UpmemTarget)
        assert isinstance(get_target("hbm-pim"), HbmPimTarget)

    def test_get_target_passthrough(self):
        target = UpmemTarget(config=SMALL)
        assert get_target(target) is target

    def test_unknown_kind_rejected(self):
        with pytest.raises(TargetError):
            get_target("fpga")

    def test_no_silent_clobbering(self):
        with pytest.raises(TargetError):
            register_target("upmem", UpmemTarget)

    def test_custom_registration(self):
        class Dummy(Target):
            kind = "dummy-test"

            def compile(self, obj, opt_level="O3", params=None, **hints):
                raise TargetError("dummy")

        register_target("dummy-test", Dummy, overwrite=True)
        assert "dummy-test" in list_targets()
        assert isinstance(get_target("dummy-test"), Dummy)


class TestCompileAllTargets:
    """`repro.compile(w, target=t)` works for all six registered kinds."""

    @pytest.mark.parametrize(
        "kind", ["upmem", "hbm-pim", "cpu", "gpu", "prim"]
    )
    def test_mtv_compiles(self, kind):
        exe = repro.compile(mtv(128, 128), target=kind)
        assert exe.latency > 0
        assert exe.profile() is not None
        assert exe.target.kind == kind

    def test_simplepim_compiles(self):
        exe = repro.compile(red(4096), target="simplepim")
        assert exe.latency > 0
        assert exe.target.kind == "simplepim"

    def test_latencies_are_comparable_floats(self):
        wl = make_workload("mtv", "4MB")
        latencies = {
            kind: repro.compile(wl, target=kind).latency
            for kind in ("upmem", "cpu", "gpu", "prim", "hbm-pim")
        }
        assert all(
            isinstance(v, float) and v > 0 for v in latencies.values()
        )

    def test_explicit_params_respected(self):
        wl = mtv(256, 256)
        params = {
            "m_dpus": 16, "k_dpus": 1, "n_tasklets": 8, "cache": 32,
            "host_threads": 1,
        }
        exe = repro.compile(wl, target="upmem", params=params)
        assert exe.params == params
        assert exe.lowered.n_dpus == 16

    def test_opt_level_changes_kernel(self):
        wl = mtv(250, 250)  # misaligned: boundary checks matter
        params = {
            "m_dpus": 16, "k_dpus": 1, "n_tasklets": 8, "cache": 16,
            "host_threads": 1,
        }
        o0 = repro.compile(wl, target="upmem", params=params, opt_level="O0")
        o3 = repro.compile(wl, target="upmem", params=params, opt_level="O3")
        assert o3.profile().latency.kernel < o0.profile().latency.kernel


class TestUpmemTarget:
    def test_schedule_compile_matches_build(self):
        from repro.runtime import build as schedule_build
        from tests.conftest import make_mtv_schedule

        sch = make_mtv_schedule(64, 32)
        exe = repro.compile(sch, target="upmem")
        mod = schedule_build(make_mtv_schedule(64, 32))
        ins = {"A": np.ones((64, 32), np.float32), "B": np.ones(32, np.float32)}
        (a,) = exe.run(ins)
        (b,) = mod.run(ins)
        assert a.tobytes() == b.tobytes()

    def test_invalid_params_raise(self):
        wl = mtv(64, 64)
        with pytest.raises(TargetError):
            # 64K-element WRAM caching tile cannot fit (64 KB WRAM).
            repro.compile(
                wl, target="upmem",
                params={"m_dpus": 64, "k_dpus": 1, "n_tasklets": 16,
                        "cache": 65536, "host_threads": 1},
            )

    def test_default_params_are_sketch_seed(self):
        wl = mtv(512, 512)
        params = default_params(wl, DEFAULT_CONFIG)
        exe = repro.compile(wl, target="upmem")
        assert exe.params == params


class TestPrimTarget:
    def test_variants_ordering(self):
        """Grid-searched variants never lose to PrIM defaults."""
        wl = make_workload("mtv", "4MB")
        default = PrimTarget().compile(wl, size="4MB").latency
        e = PrimTarget(variant="e").compile(wl).latency
        search = PrimTarget(variant="search").compile(wl).latency
        assert e <= default * 1.001
        assert search <= e * 1.001

    def test_labels(self):
        assert PrimTarget().label == "prim"
        assert PrimTarget(variant="e").label == "prim_e"
        assert PrimTarget(variant="search").label == "prim_search"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            PrimTarget(variant="ultra")

    def test_schedule_rejected(self):
        from tests.conftest import make_mtv_schedule

        with pytest.raises(TargetError):
            PrimTarget().compile(make_mtv_schedule(16, 16))

    def test_search_params_exposed(self):
        exe = PrimTarget(variant="search").compile(mtv(512, 512))
        assert exe.params and "n_tasklets" in exe.params


class TestSimplePimTarget:
    def test_supports_only_map_reduce(self):
        target = SimplePimTarget()
        assert target.supports(va(1024))
        assert target.supports(red(1024))
        assert not target.supports(mtv(32, 32))

    def test_unsupported_rejected(self):
        with pytest.raises(TargetError):
            SimplePimTarget().compile(mtv(32, 32))

    def test_functional_run(self):
        wl = va(4096)
        exe = repro.compile(wl, target="simplepim")
        ins = wl.random_inputs(0)
        (out,) = exe.run(ins)
        np.testing.assert_allclose(out, wl.reference_output(ins), rtol=1e-5)


class TestRooflineTargets:
    def test_cpu_run_matches_reference(self):
        wl = mtv(64, 48)
        ins = wl.random_inputs(3)
        (out,) = repro.compile(wl, target="cpu").run(ins)
        np.testing.assert_allclose(out, ins["A"] @ ins["B"], rtol=1e-5)

    def test_gpu_faster_than_cpu(self):
        wl = make_workload("mtv", "64MB")
        assert (
            repro.compile(wl, target="gpu").latency
            < repro.compile(wl, target="cpu").latency
        )

    def test_profile_breakdown_totals(self):
        wl = make_workload("va", "4MB")
        prof = repro.compile(wl, target="cpu").profile()
        assert prof.latency.total == pytest.approx(
            CpuTarget().model.latency(wl)
        )

    def test_schedule_rejected(self):
        from tests.conftest import make_mtv_schedule

        with pytest.raises(TargetError):
            repro.compile(make_mtv_schedule(16, 16), target="cpu")


class TestHbmPimTarget:
    def test_mac_reduction_supported(self):
        target = HbmPimTarget()
        assert target.supports(mtv(64, 64))
        assert not target.supports(va(64))

    def test_non_mac_rejected(self):
        with pytest.raises(TargetError):
            repro.compile(va(1024), target="hbm-pim")

    def test_estimate_executable(self):
        exe = repro.compile(mtv(256, 256), target="hbm-pim")
        assert isinstance(exe, EstimateExecutable)
        assert exe.estimate.supported
        assert exe.latency == exe.estimate.latency_s
        with pytest.raises(TargetError):
            exe.run({})

    def test_schedule_requires_total_macs(self):
        from tests.conftest import make_mtv_schedule

        with pytest.raises(TargetError):
            repro.compile(make_mtv_schedule(16, 16), target="hbm-pim")
        exe = repro.compile(
            make_mtv_schedule(16, 16), target="hbm-pim", total_macs=16 * 16
        )
        assert exe.latency > 0


class TestCacheKeys:
    _PARAMS = {"m_dpus": 8, "k_dpus": 1, "n_tasklets": 4, "cache": 16,
               "host_threads": 1}

    def test_same_pipeline_targets_share_artifacts(self):
        """Targets whose compilation is fully described by the key's
        (pipeline, config, opt, params) produce byte-identical modules
        and must share cache entries — the tuner's candidates and a bare
        ``compile_params`` sweep over the same points compile once."""
        wl = mtv(64, 64)
        base = artifact_key(wl, self._PARAMS, DEFAULT_CONFIG)
        upmem = artifact_key(
            wl, self._PARAMS, DEFAULT_CONFIG, target=UpmemTarget()
        )
        prim = artifact_key(
            wl, self._PARAMS, DEFAULT_CONFIG, target=PrimTarget()
        )
        assert base == upmem == prim

    def test_custom_token_partitions(self):
        """A target that alters compilation beyond the standard knobs
        declares it via cache_token() and gets its own artifacts."""

        class TunedPassTarget(UpmemTarget):
            def cache_token(self):
                return "custom-pass-config-v1"

        wl = mtv(64, 64)
        base = artifact_key(wl, self._PARAMS, DEFAULT_CONFIG)
        custom = artifact_key(
            wl, self._PARAMS, DEFAULT_CONFIG, target=TunedPassTarget()
        )
        assert base != custom
        again = artifact_key(
            wl, self._PARAMS, DEFAULT_CONFIG, target=TunedPassTarget()
        )
        assert custom == again

    def test_raw_token_accepted(self):
        wl = mtv(64, 64)
        k1 = artifact_key(wl, self._PARAMS, DEFAULT_CONFIG, target="tok-a")
        k2 = artifact_key(wl, self._PARAMS, DEFAULT_CONFIG, target="tok-b")
        assert k1 != k2


class TestCrossTargetTuning:
    def test_tuner_accepts_target_kind(self):
        wl = mtv(256, 256)
        r_default = autotune(wl, n_trials=8, seed=0)
        r_target = autotune(wl, n_trials=8, seed=0, target="upmem")
        assert r_default.best_params == r_target.best_params
        assert r_default.best_latency == r_target.best_latency

    def test_tuner_rejects_target_plus_config(self):
        from repro.autotune import Tuner

        with pytest.raises(ValueError):
            Tuner(mtv(64, 64), config=SMALL, target="upmem")

    def test_hbm_pim_tuning(self):
        wl = mtv(256, 256)
        result = autotune(wl, n_trials=8, seed=0, target=HbmPimTarget())
        assert result.best_latency > 0
        # Scored by the estimator, not the UPMEM model.
        exe = repro.compile(
            wl, target="hbm-pim", params=result.best_params
        )
        assert exe.latency == pytest.approx(result.best_latency, rel=0.2)

    def test_custom_config_target_tuning(self):
        wl = mtv(128, 128)
        result = autotune(wl, n_trials=8, seed=0, target=UpmemTarget(SMALL))
        # The small machine bounds the search space.
        assert result.best_params["m_dpus"] <= SMALL.n_dpus
