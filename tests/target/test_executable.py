"""Executable surface: run / run_batch / profile across targets."""

import numpy as np
import pytest

import repro
from repro.target import Executor, TargetError, UpmemTarget
from repro.workloads import make_workload, mtv, red, va


def _assert_batches_identical(seq, par):
    assert len(seq) == len(par)
    for s_outs, p_outs in zip(seq, par):
        assert len(s_outs) == len(p_outs)
        for s, p in zip(s_outs, p_outs):
            assert s.dtype == p.dtype and s.shape == p.shape
            assert s.tobytes() == p.tobytes()


class TestExecutorChunking:
    def test_chunks_are_contiguous_partition(self):
        items = list(range(10))
        chunks = Executor.chunk(items, 3)
        assert [x for c in chunks for x in c] == items
        assert len(chunks) == 3

    def test_more_chunks_than_items(self):
        assert Executor.chunk([1, 2], 8) == [[1], [2]]

    def test_empty(self):
        assert Executor.chunk([], 4) == []

    def test_map_order_preserved(self):
        result = Executor(max_workers=4).map(lambda x: x * x, range(20))
        assert result == [x * x for x in range(20)]


class TestUpmemRunBatch:
    """run_batch must match N sequential run() calls bit-for-bit while
    sharding across the thread pool (acceptance criterion)."""

    @pytest.mark.parametrize(
        "wl,params",
        [
            (
                mtv(96, 80),
                {"m_dpus": 8, "k_dpus": 1, "n_tasklets": 4, "cache": 16,
                 "host_threads": 1},
            ),
            (
                # rfactor: grid has a reduction dimension + host combine.
                mtv(64, 128),
                {"m_dpus": 4, "k_dpus": 4, "n_tasklets": 2, "cache": 16,
                 "host_threads": 2},
            ),
            (va(1000), {"n_dpus": 8, "n_tasklets": 4, "cache": 32}),
            (
                # Misaligned shape: boundary tiles exercise partial copies.
                mtv(70, 55),
                {"m_dpus": 8, "k_dpus": 1, "n_tasklets": 4, "cache": 16,
                 "host_threads": 1},
            ),
        ],
        ids=["mtv", "mtv-rfactor", "va", "mtv-misaligned"],
    )
    def test_bit_for_bit(self, wl, params):
        exe = repro.compile(wl, target="upmem", params=params)
        batch = [wl.random_inputs(seed=i) for i in range(4)]
        seq = [exe.run(inputs) for inputs in batch]
        par = exe.run_batch(batch, max_workers=4)
        _assert_batches_identical(seq, par)

    def test_single_item_batch(self):
        wl = mtv(64, 64)
        exe = repro.compile(wl, target="upmem")
        ins = wl.random_inputs(0)
        (seq,) = exe.run(ins)
        ((par,),) = exe.run_batch([ins], max_workers=4)
        assert seq.tobytes() == par.tobytes()

    def test_sequential_worker_path(self):
        wl = va(512)
        exe = repro.compile(
            wl, target="upmem",
            params={"n_dpus": 4, "n_tasklets": 2, "cache": 16},
        )
        batch = [wl.random_inputs(seed=i) for i in range(3)]
        _assert_batches_identical(
            exe.run_batch(batch, max_workers=1),
            exe.run_batch(batch, max_workers=4),
        )

    def test_outputs_match_reference(self):
        wl = mtv(48, 32)
        exe = repro.compile(wl, target="upmem")
        batch = [wl.random_inputs(seed=i) for i in range(3)]
        for outs, inputs in zip(exe.run_batch(batch), batch):
            np.testing.assert_allclose(
                outs[0], wl.reference_output(inputs), rtol=1e-3
            )


class TestRooflineRunBatch:
    def test_cpu_batch_matches_reference(self):
        wl = mtv(64, 48)
        exe = repro.compile(wl, target="cpu")
        batch = [wl.random_inputs(seed=i) for i in range(6)]
        results = exe.run_batch(batch, max_workers=3)
        for outs, inputs in zip(results, batch):
            np.testing.assert_allclose(
                outs[0], wl.reference_output(inputs), rtol=1e-5
            )


class TestExecutableSurface:
    def test_upmem_module_accessors(self):
        exe = repro.compile(mtv(64, 64), target="upmem")
        assert exe.lowered.n_dpus >= 1
        assert "for" in exe.script()
        assert "void" in exe.source()

    def test_missing_input_named(self):
        wl = mtv(32, 32)
        exe = repro.compile(wl, target="upmem")
        with pytest.raises(KeyError, match="A"):
            exe.run(B=np.zeros(32, np.float32))
        cpu = repro.compile(wl, target="cpu")
        with pytest.raises(KeyError, match="A"):
            cpu.run(B=np.zeros(32, np.float32))

    def test_simplepim_profile_override_consistent(self):
        """SimplePIM keeps functional execution while profiling with the
        framework's documented overheads."""
        wl = red(8192)
        exe = repro.compile(wl, target="simplepim")
        upmem_like = exe.module.profile()
        assert exe.profile().latency.total > upmem_like.latency.total
        ins = wl.random_inputs(0)
        (out,) = exe.run(ins)
        np.testing.assert_allclose(
            out, wl.reference_output(ins), rtol=1e-3
        )

    def test_estimate_executable_rejects_run_batch(self):
        exe = repro.compile(mtv(64, 64), target="hbm-pim")
        with pytest.raises(TargetError):
            exe.run_batch([{}, {}])


class TestModuleProfileCache:
    """Module.profile() must key its cache on the config in effect."""

    def test_config_change_reprofiles(self):
        from repro.upmem import DEFAULT_CONFIG, UpmemConfig

        exe = repro.compile(mtv(256, 256), target="upmem")
        mod = exe.module
        fast = mod.profile()
        slow_config = UpmemConfig().with_(dpu_frequency_hz=100e6)
        mod.config = slow_config
        slow = mod.profile()
        assert slow.latency.kernel > fast.latency.kernel
        # Flipping back serves the original cached result, same values.
        mod.config = DEFAULT_CONFIG
        again = mod.profile()
        assert again.latency.total == fast.latency.total
