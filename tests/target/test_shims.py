"""Deprecation shims: legacy entry points == new compile path, plus a
DeprecationWarning (satellite of the target-centric front-end PR)."""

import warnings

import numpy as np
import pytest

import repro
from repro.baselines import (
    cpu_latency,
    gpu_latency,
    prim_profile,
    simplepim_profile,
)
from repro.workloads import make_workload, mtv, red, va


def _deprecated_call(fn, *args, **kwargs):
    """Call fn asserting it emits exactly one DeprecationWarning."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn(*args, **kwargs)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        f"{fn.__name__} emitted {len(deprecations)} DeprecationWarnings"
    )
    assert "deprecated" in str(deprecations[0].message)
    return result


class TestBuildShim:
    def test_warns_and_matches_compile(self):
        from tests.conftest import make_mtv_schedule

        mod = _deprecated_call(repro.build, make_mtv_schedule(64, 32))
        exe = repro.compile(make_mtv_schedule(64, 32), target="upmem")
        ins = {
            "A": np.random.default_rng(0).random((64, 32), np.float32),
            "B": np.random.default_rng(1).random(32, np.float32),
        }
        (legacy,) = mod.run(ins)
        (new,) = exe.run(ins)
        assert legacy.tobytes() == new.tobytes()
        assert mod.profile().latency.total == exe.profile().latency.total

    def test_internal_build_does_not_warn(self):
        """The runtime-layer build stays warning-free for internal use."""
        from repro.runtime import build as internal_build
        from tests.conftest import make_mtv_schedule

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            internal_build(make_mtv_schedule(16, 16))
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestCpuGpuShims:
    def test_cpu_latency(self):
        wl = make_workload("mtv", "4MB")
        legacy = _deprecated_call(cpu_latency, wl)
        assert legacy == repro.compile(wl, target="cpu").latency

    def test_gpu_latency(self):
        wl = make_workload("va", "4MB")
        legacy = _deprecated_call(gpu_latency, wl)
        assert legacy == repro.compile(wl, target="gpu").latency

    def test_custom_model_forwarded(self):
        from repro.baselines import CpuModel
        from repro.target import CpuTarget

        wl = mtv(512, 512)
        model = CpuModel(effective_bandwidth=1.0e9)
        legacy = _deprecated_call(cpu_latency, wl, model)
        assert legacy == CpuTarget(model=model).compile(wl).latency


class TestPrimShim:
    def test_profile_identical(self):
        wl = make_workload("mtv", "4MB")
        legacy = _deprecated_call(prim_profile, wl, "4MB")
        new = repro.compile(wl, target="prim", size="4MB").profile()
        assert legacy.latency.total == new.latency.total
        assert legacy.latency.kernel == new.latency.kernel
        assert legacy.n_dpus == new.n_dpus

    def test_unknown_workload_still_keyerror(self):
        from repro.workloads.tensor_ops import Workload

        bogus = mtv(16, 16)
        bogus.name = "conv3d"
        with pytest.raises(KeyError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                prim_profile(bogus)


class TestSimplePimShim:
    def test_profile_identical(self):
        wl = red(65536)
        legacy = _deprecated_call(simplepim_profile, wl)
        new = repro.compile(wl, target="simplepim").profile()
        assert legacy.latency.total == new.latency.total
        assert legacy.latency.d2h == new.latency.d2h
        assert legacy.latency.host == new.latency.host

    def test_va_framework_copy_identical(self):
        wl = va(100000)
        legacy = _deprecated_call(simplepim_profile, wl)
        new = repro.compile(wl, target="simplepim").profile()
        assert legacy.latency.total == new.latency.total

    def test_unsupported_still_keyerror(self):
        with pytest.raises(KeyError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                simplepim_profile(mtv(32, 32))
