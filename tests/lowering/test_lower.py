"""Lowering: structure of the generated module and functional correctness."""

import numpy as np
import pytest

from repro import te
from repro.lowering import LoweringError, LowerOptions, lower
from repro.schedule import Schedule
from repro.tir import DmaCopy, For, ForKind, IfThenElse, iter_stmts
from repro.upmem import FunctionalExecutor

from ..conftest import make_mtv_schedule, run_and_check


def make_va_schedule(n, n_dpus=4, n_tasklets=2, cache=8):
    A = te.placeholder((n,), "float32", "A")
    B = te.placeholder((n,), "float32", "B")
    C = te.compute((n,), lambda i: A[i] + B[i], "C")
    sch = Schedule(C)
    s = sch[C]
    (i,) = s.op.axis
    i_dpu, rest = s.split(i, nparts=n_dpus)
    i_thr, r2 = s.split(rest, nparts=n_tasklets)
    i_blk, i_in = s.split(r2, factor=cache)
    s.reorder(i_dpu, i_thr, i_blk, i_in)
    s.bind(i_dpu, "blockIdx.x")
    s.bind(i_thr, "threadIdx.x")
    sch.cache_read(C, A, "wram").compute_at(s, i_blk)
    sch.cache_read(C, B, "wram").compute_at(s, i_blk)
    sch.cache_write(C, "wram").reverse_compute_at(s, i_blk)
    return sch


class TestModuleStructure:
    def test_grid_dims(self):
        mod = lower(make_mtv_schedule(64, 32, m_dpus=4))
        assert [(d.tag, d.extent) for d in mod.grid] == [("blockIdx.x", 4)]
        assert mod.n_dpus == 4

    def test_2d_grid_with_rfactor(self):
        mod = lower(make_mtv_schedule(64, 32, m_dpus=4, k_dpus=2))
        tags = sorted((d.tag, d.extent) for d in mod.grid)
        assert tags == [("blockIdx.x", 4), ("blockIdx.y", 2)]
        assert mod.n_dpus == 8

    def test_tasklet_count(self):
        mod = lower(make_mtv_schedule(64, 32, n_tasklets=2))
        assert mod.n_tasklets == 2

    def test_transfer_directions(self):
        mod = lower(make_mtv_schedule(64, 32))
        dirs = {(t.global_buffer.name, t.direction) for t in mod.transfers}
        assert dirs == {("A", "h2d"), ("B", "h2d"), ("C", "d2h")}

    def test_transfer_tile_shapes(self):
        mod = lower(make_mtv_schedule(64, 32, m_dpus=4, n_tasklets=2))
        by_name = {t.global_buffer.name: t for t in mod.transfers}
        assert by_name["A"].shape == (16, 32)
        assert by_name["B"].shape == (32,)
        assert by_name["C"].shape == (16,)

    def test_rfactor_intermediate_is_d2h(self):
        mod = lower(make_mtv_schedule(64, 32, k_dpus=2))
        d2h = {t.global_buffer.name for t in mod.transfer("d2h")}
        assert any(name.endswith(".rf") for name in d2h)
        assert mod.host_post  # final reduction on the host

    def test_wram_buffers_registered(self):
        mod = lower(make_mtv_schedule(64, 32))
        names = {b.name for b in mod.wram_buffers}
        assert any("A" in n for n in names)
        assert any("C" in n for n in names)
        assert mod.wram_bytes_per_dpu() > 0

    def test_per_tasklet_wram_accounting(self):
        mod = lower(make_mtv_schedule(64, 32, n_tasklets=2))
        # caches attached under the tasklet loop are private per tasklet
        assert any(mod.wram_per_tasklet.values())

    def test_kernel_has_thread_binding_loop(self):
        mod = lower(make_mtv_schedule(64, 32, n_tasklets=2))
        tags = [
            s.thread_tag
            for s in iter_stmts(mod.kernel)
            if isinstance(s, For) and s.kind is ForKind.THREAD_BINDING
        ]
        assert "threadIdx.x" in tags

    def test_no_blockidx_inside_kernel(self):
        mod = lower(make_mtv_schedule(64, 32, m_dpus=4, k_dpus=2))
        for s in iter_stmts(mod.kernel):
            if isinstance(s, For) and s.kind is ForKind.THREAD_BINDING:
                assert not s.thread_tag.startswith("blockIdx")

    def test_unbound_schedule_rejected(self):
        A = te.placeholder((8,), "float32", "A")
        C = te.compute((8,), lambda i: A[i], "C")
        sch = Schedule(C)
        with pytest.raises(LoweringError):
            lower(sch)

    def test_unattached_cache_rejected(self):
        A = te.placeholder((8,), "float32", "A")
        C = te.compute((8,), lambda i: A[i], "C")
        sch = Schedule(C)
        s = sch[C]
        io, ii = s.split(s.op.axis[0], nparts=2)
        s.bind(io, "blockIdx.x")
        sch.cache_read(C, A, "wram")  # never compute_at'ed
        with pytest.raises(LoweringError):
            lower(sch)

    def test_boundary_checks_inserted_for_misaligned(self):
        mod = lower(make_mtv_schedule(37, 50), LowerOptions(optimize="O0"))
        conds = [s for s in iter_stmts(mod.kernel) if isinstance(s, IfThenElse)]
        assert conds

    def test_no_checks_for_aligned(self):
        mod = lower(make_mtv_schedule(64, 32))
        conds = [s for s in iter_stmts(mod.kernel) if isinstance(s, IfThenElse)]
        assert not conds


class TestFunctionalCorrectness:
    def _check_mtv(self, m, k, **kwargs):
        sch = make_mtv_schedule(m, k, **kwargs)
        rng = np.random.default_rng(0)
        a = rng.random((m, k), dtype=np.float32)
        b = rng.random(k, dtype=np.float32)
        run_and_check(sch, {"A": a, "B": b}, a @ b, optimize="O0")

    def test_mtv_aligned(self):
        self._check_mtv(64, 32)

    def test_mtv_misaligned_rows(self):
        self._check_mtv(37, 32)

    def test_mtv_misaligned_cols(self):
        self._check_mtv(64, 50)

    def test_mtv_misaligned_both(self):
        self._check_mtv(37, 50)

    def test_mtv_rfactor(self):
        self._check_mtv(64, 64, k_dpus=2)

    def test_mtv_rfactor_misaligned(self):
        self._check_mtv(37, 50, k_dpus=2)

    def test_va(self):
        n = 100
        sch = make_va_schedule(n)
        rng = np.random.default_rng(1)
        a = rng.random(n, dtype=np.float32)
        b = rng.random(n, dtype=np.float32)
        run_and_check(sch, {"A": a, "B": b}, a + b, optimize="O0")

    def test_va_single_element_tail(self):
        sch = make_va_schedule(97, n_dpus=4, n_tasklets=2, cache=8)
        rng = np.random.default_rng(2)
        a = rng.random(97, dtype=np.float32)
        b = rng.random(97, dtype=np.float32)
        run_and_check(sch, {"A": a, "B": b}, a + b, optimize="O0")

    def test_missing_input_raises(self):
        mod = lower(make_mtv_schedule(64, 32))
        with pytest.raises(KeyError):
            FunctionalExecutor(mod).run({"A": np.zeros((64, 32), np.float32)})

    def test_wrong_shape_raises(self):
        mod = lower(make_mtv_schedule(64, 32))
        with pytest.raises(ValueError):
            FunctionalExecutor(mod).run(
                {
                    "A": np.zeros((4, 4), np.float32),
                    "B": np.zeros(32, np.float32),
                }
            )
