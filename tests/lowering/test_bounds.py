"""Symbolic bounds inference."""

import pytest

from repro.lowering import BoundsError, infer_region, symbolic_bound
from repro.tir import IntImm, Min, Var, const_int, simplify


class TestSymbolicBound:
    def test_inner_var_range(self):
        i = Var("i")
        lo = symbolic_bound(i, {i: 16}, want_lo=True)
        hi = symbolic_bound(i, {i: 16}, want_lo=False)
        assert const_int(lo) == 0 and const_int(hi) == 15

    def test_outer_var_stays_symbolic(self):
        i, o = Var("i"), Var("o")
        expr = o * 16 + i
        lo = symbolic_bound(expr, {i: 16}, want_lo=True)
        hi = symbolic_bound(expr, {i: 16}, want_lo=False)
        assert const_int(simplify(hi - lo)) == 15

    def test_negative_coefficient(self):
        i = Var("i")
        expr = IntImm(100) - i * 2
        lo = symbolic_bound(expr, {i: 10}, want_lo=True)
        hi = symbolic_bound(expr, {i: 10}, want_lo=False)
        assert const_int(lo) == 82 and const_int(hi) == 100

    def test_floordiv(self):
        i = Var("i")
        hi = symbolic_bound(i // 4, {i: 16}, want_lo=False)
        assert const_int(hi) == 3

    def test_floormod(self):
        i = Var("i")
        hi = symbolic_bound(i % 8, {i: 100}, want_lo=False)
        assert const_int(hi) == 7

    def test_min_expr(self):
        i = Var("i")
        hi = symbolic_bound(Min(i, IntImm(5)), {i: 100}, want_lo=False)
        assert const_int(simplify(hi)) == 5

    def test_nonaffine_product_rejected(self):
        i, j = Var("i"), Var("j")
        with pytest.raises(BoundsError):
            symbolic_bound(i * j, {i: 4, j: 4}, want_lo=True)

    def test_product_with_outer_var_allowed(self):
        i, o = Var("i"), Var("o")
        hi = symbolic_bound(o * i, {i: 4}, want_lo=False)
        # o * 3 symbolically.
        from repro.tir import collect_vars

        assert o in collect_vars(hi)


class TestInferRegion:
    def test_tile_region(self):
        i, o = Var("i"), Var("o")
        base, extents = infer_region([[o * 16 + i]], {i: 16})
        assert extents == [16]

    def test_two_dims(self):
        r, c, ro = Var("r"), Var("c"), Var("ro")
        base, extents = infer_region([[ro * 4 + r, c]], {r: 4, c: 32})
        assert extents == [4, 32]

    def test_point_region(self):
        o = Var("o")
        base, extents = infer_region([[o]], {})
        assert extents == [1]

    def test_multiple_accesses_same_base(self):
        i, o = Var("i"), Var("o")
        base, extents = infer_region(
            [[o * 16 + i], [o * 16 + 0]], {i: 16}
        )
        assert extents == [16]

    def test_disagreeing_bases_rejected(self):
        i, o = Var("i"), Var("o")
        with pytest.raises(BoundsError):
            infer_region([[o * 16 + i], [o * 8 + i]], {i: 16})

    def test_empty_accesses_rejected(self):
        with pytest.raises(BoundsError):
            infer_region([], {})

    def test_non_constant_extent_rejected(self):
        i, o = Var("i"), Var("o")
        # extent depends on the outer var o -> not rectangular-constant
        with pytest.raises(BoundsError):
            infer_region([[o * i]], {i: 4})
