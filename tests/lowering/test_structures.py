"""Less-common lowering structures: reorders, direct stores, multi-stage
kernels, TTV/MMTV nests and the RED double-rfactor pipeline."""

import numpy as np
import pytest

from repro import te
from repro.autotune.compile import compile_params
from repro.lowering import LoweringError, lower
from repro.schedule import Schedule
from repro.tir import Evaluate, iter_stmts
from repro.upmem import FunctionalExecutor
from repro.workloads import mmtv, red, ttv


def mtv_tensors(m, k):
    A = te.placeholder((m, k), "float32", "A")
    B = te.placeholder((k,), "float32", "B")
    kk = te.reduce_axis(k, "k")
    C = te.compute((m,), lambda i: te.sum(A[i, kk] * B[kk], axis=kk), "C")
    return A, B, C


def run(mod, inputs):
    return FunctionalExecutor(mod).run(inputs)[0]


class TestReorderedNests:
    def test_reduce_loop_outside_spatial_loop(self):
        """Init nest must be emitted before the outer reduce loop."""
        m, k = 24, 32
        A, B, C = mtv_tensors(m, k)
        sch = Schedule(C)
        s = sch[C]
        (i,) = s.op.axis
        io, ii = s.split(i, nparts=4)
        ko, ki = s.split(s.op.reduce_axis[0], factor=8)
        s.reorder(io, ko, ii, ki)  # spatial ii nested inside reduce ko
        s.bind(io, "blockIdx.x")
        mod = lower(sch)
        rng = np.random.default_rng(0)
        a = rng.random((m, k), dtype=np.float32)
        b = rng.random(k, dtype=np.float32)
        np.testing.assert_allclose(run(mod, {"A": a, "B": b}), a @ b, rtol=1e-4)

    def test_reduce_outer_with_misalignment(self):
        m, k = 23, 30
        A, B, C = mtv_tensors(m, k)
        sch = Schedule(C)
        s = sch[C]
        (i,) = s.op.axis
        io, ii = s.split(i, nparts=4)
        ko, ki = s.split(s.op.reduce_axis[0], factor=8)
        s.reorder(io, ko, ii, ki)
        s.bind(io, "blockIdx.x")
        mod = lower(sch)
        rng = np.random.default_rng(1)
        a = rng.random((m, k), dtype=np.float32)
        b = rng.random(k, dtype=np.float32)
        np.testing.assert_allclose(run(mod, {"A": a, "B": b}), a @ b, rtol=1e-4)


class TestDirectStore:
    def test_reduction_without_write_cache(self):
        m, k = 24, 32
        A, B, C = mtv_tensors(m, k)
        sch = Schedule(C)
        s = sch[C]
        (i,) = s.op.axis
        io, ii = s.split(i, nparts=4)
        s.bind(io, "blockIdx.x")
        mod = lower(sch)
        rng = np.random.default_rng(2)
        a = rng.random((m, k), dtype=np.float32)
        b = rng.random(k, dtype=np.float32)
        np.testing.assert_allclose(run(mod, {"A": a, "B": b}), a @ b, rtol=1e-4)

    def test_direct_store_produces_mram_element_traffic(self):
        # Without caching, accumulations hit MRAM element-wise — visible
        # as small-DMA traffic in the profile (the O0 story of Fig. 13).
        from repro.upmem.system import PerformanceModel

        m, k = 64, 64
        A, B, C = mtv_tensors(m, k)
        sch = Schedule(C)
        s = sch[C]
        (i,) = s.op.axis
        io, ii = s.split(i, nparts=4)
        s.bind(io, "blockIdx.x")
        prof = PerformanceModel().profile(lower(sch))
        assert prof.dpu.dma_calls > k  # per-element accumulator traffic


class TestMultiStageKernel:
    def test_red_dpu_combine_has_barrier(self):
        mod = compile_params(
            red(2048),
            {"n_dpus": 4, "n_tasklets": 4, "cache": 16, "dpu_combine": 1,
             "host_threads": 1},
            check=False,
        )
        barriers = [
            s
            for s in iter_stmts(mod.kernel)
            if isinstance(s, Evaluate) and s.call.op == "barrier"
        ]
        assert len(barriers) == 1

    def test_red_internal_partials_not_transferred(self):
        mod = compile_params(
            red(2048),
            {"n_dpus": 4, "n_tasklets": 4, "cache": 16, "dpu_combine": 1,
             "host_threads": 1},
            check=False,
        )
        # Tasklet partials (rf of rf) stay in MRAM; only per-DPU partials
        # move to the host.
        assert mod.mram_internal
        d2h_names = {t.global_buffer.name for t in mod.transfer("d2h")}
        assert all(".rf.rf" not in n for n in d2h_names)

    def test_red_prim_mode_ships_tasklet_partials(self):
        mod = compile_params(
            red(2048),
            {"n_dpus": 4, "n_tasklets": 4, "cache": 16, "dpu_combine": 0,
             "host_threads": 1},
            check=False,
        )
        d2h = mod.transfer("d2h")
        assert d2h[0].tile_elems >= 4  # one value per tasklet

    def test_red_correct_both_modes(self):
        for combine in (0, 1):
            wl = red(3333)
            mod = compile_params(
                wl,
                {"n_dpus": 8, "n_tasklets": 2, "cache": 8,
                 "dpu_combine": combine, "host_threads": 2},
                check=False,
            )
            inputs = wl.random_inputs(combine)
            out = run(mod, inputs)
            np.testing.assert_allclose(
                out, wl.reference_output(inputs), rtol=1e-3
            )


class TestBatchedNests:
    @pytest.mark.parametrize("shape", [(4, 6, 24), (5, 7, 30)])
    def test_ttv_correct(self, shape):
        wl = ttv(*shape)
        mod = compile_params(
            wl,
            {"i_dpus": 2, "j_dpus": 2, "k_dpus": 1, "n_tasklets": 2,
             "cache": 8, "host_threads": 1},
            check=False,
        )
        inputs = wl.random_inputs(0)
        np.testing.assert_allclose(
            run(mod, inputs), wl.reference_output(inputs), rtol=1e-3
        )

    def test_mmtv_b_tile_depends_on_batch(self):
        wl = mmtv(8, 8, 32)
        mod = compile_params(
            wl,
            {"i_dpus": 4, "j_dpus": 2, "k_dpus": 1, "n_tasklets": 2,
             "cache": 8, "host_threads": 1},
            check=False,
        )
        by_name = {t.global_buffer.name: t for t in mod.transfers}
        # B is indexed by the batch dim: its tile is (batch_tile, k), not
        # a broadcast of the whole matrix.
        assert by_name["B"].shape == (2, 32)

    def test_3d_grid(self):
        wl = mmtv(8, 8, 64)
        mod = compile_params(
            wl,
            {"i_dpus": 2, "j_dpus": 2, "k_dpus": 2, "n_tasklets": 2,
             "cache": 8, "host_threads": 1},
            check=False,
        )
        assert len(mod.grid) == 3
        assert mod.n_dpus == 8
        inputs = wl.random_inputs(3)
        np.testing.assert_allclose(
            run(mod, inputs), wl.reference_output(inputs), rtol=1e-3
        )
