"""Experiment drivers produce sane, paper-shaped rows (small settings)."""

import pytest

from repro.harness import (
    fig3a_cache_tile_sweep,
    fig3b_tiling_schemes,
    fig3c_dpu_sweep,
    fig4_boundary_checks,
    fig9_tensor_ops,
    fig11_mmtv_scaling,
    fig12_pim_opts,
    fig13_breakdown,
    fig14_search_strategies,
    fig15_tuning_overhead,
    render_curve,
    render_table,
    summarize_speedups,
)


class TestMotivation:
    def test_fig3a_small_tiles_penalized(self):
        rows = fig3a_cache_tile_sweep(tiles=(4, 64))
        by_tile = {r["cache_elems"]: r["kernel_ms"] for r in rows}
        assert by_tile[4] > by_tile[64]  # DMA-setup-dominated at 4 elems

    def test_fig3b_has_tradeoff(self):
        rows = fig3b_tiling_schemes(m=2048, k=2048, n_dpus=256)
        assert len(rows) >= 3
        totals = [r["total_ms"] for r in rows]
        # Not monotone: a middle tiling wins (2-D beats extreme 1-D).
        best = min(range(len(totals)), key=totals.__getitem__)
        assert 0 < best or totals[0] <= totals[-1]

    def test_fig3c_small_tensor_prefers_fewer_dpus(self):
        rows = fig3c_dpu_sweep(m=512, k=512, dpu_counts=(64, 512))
        assert {r["n_dpus"] for r in rows} == {64, 512}

    def test_fig4_upmem_gains_dominate(self):
        rows = fig4_boundary_checks(sizes=[(542, 542)])
        row = rows[0]
        assert row["upmem_speedup"] > 1.1
        assert row["cpu_speedup"] < 1.05
        assert row["gpu_speedup"] < 1.02


@pytest.mark.slow
class TestMainResults:
    @pytest.fixture(scope="class")
    def fig9_rows(self):
        return fig9_tensor_ops(
            workloads=["mtv", "red"], sizes=["64MB"], n_trials=24
        )

    def test_fig9_atim_wins(self, fig9_rows):
        for row in fig9_rows:
            assert row["atim_speedup_vs_prim"] >= 1.0

    def test_fig9_simplepim_only_for_supported(self, fig9_rows):
        by_wl = {r["workload"]: r for r in fig9_rows}
        assert "simplepim_ms" in by_wl["red"]
        assert "simplepim_ms" not in by_wl["mtv"]

    def test_fig9_summary(self, fig9_rows):
        summary = summarize_speedups(fig9_rows, "atim_speedup_vs_prim")
        assert summary["gmean"] >= 1.0

    def test_fig11_speedups_larger_for_small_spatial(self):
        rows = fig11_mmtv_scaling(
            spatial_sizes=[(8, 32), (64, 128)], k=256, n_trials=16
        )
        assert rows[0]["speedup_vs_prim"] >= rows[-1]["speedup_vs_prim"] * 0.5


class TestOptAblation:
    def test_fig12_o3_never_slower(self):
        rows = fig12_pim_opts(lengths=(91,), va_lengths=(2,))
        for row in rows:
            assert row["kernel_ms_O3"] <= row["kernel_ms_O0"] * 1.001

    def test_fig13_instructions_decrease(self):
        rows = fig13_breakdown(gemv_shape=(61, 61), va_len=5000)
        gemv_rows = [r for r in rows if r["case"].startswith("gemv")]
        instrs = [r["instructions_norm"] for r in gemv_rows]
        assert instrs == sorted(instrs, reverse=True)

    def test_fig13_fractions_valid(self):
        rows = fig13_breakdown(gemv_shape=(61, 61), va_len=5000)
        for row in rows:
            total = row["issuable"] + row["idle_memory"] + row["idle_core"]
            assert total == pytest.approx(1.0, abs=1e-6)


@pytest.mark.slow
class TestSearchExperiments:
    def test_fig14_curves_returned(self):
        curves = fig14_search_strategies(m=512, k=512, n_trials=24)
        assert set(curves) == {
            "default_tvm", "balanced_sampling", "adaptive_epsilon", "atim"
        }
        for curve in curves.values():
            assert curve[-1][1] >= curve[0][1]

    def test_fig15_outputs(self):
        data = fig15_tuning_overhead(m=512, k=512, n_trials=16)
        assert data["upmem_measured"]
        assert data["cpu_measured"]
        assert max(data["upmem_measured"]) >= data["upmem_best"][0]


class TestReporting:
    def test_render_table(self):
        text = render_table([{"a": 1, "b": 2.5}], title="T")
        assert "T" in text and "a" in text and "2.5" in text

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([], title="x")

    def test_render_curve(self):
        text = render_curve([(1, 1.0), (2, 2.0)], title="C")
        assert "C" in text and "#" in text

    def test_summarize_empty(self):
        assert summarize_speedups([], "x")["gmean"] == 0.0
