"""The `python -m repro.harness` CLI."""

import pytest

from repro.harness.__main__ import EXPERIMENTS, main


def test_experiment_list_covers_all_figures():
    assert set(EXPERIMENTS) == {
        "fig3a", "fig3b", "fig3c", "fig4", "fig9", "tab3", "fig10",
        "fig11", "fig12", "fig13", "fig14", "fig15",
    }


def test_fig3a_runs(capsys):
    assert main(["fig3a"]) == 0
    out = capsys.readouterr().out
    assert "Fig 3a" in out and "cache_elems" in out


def test_fig13_runs(capsys):
    assert main(["fig13"]) == 0
    out = capsys.readouterr().out
    assert "issuable" in out


def test_fig9_with_filters(capsys):
    assert main(["fig9", "--workloads", "red", "--sizes", "4MB",
                 "--trials", "8"]) == 0
    out = capsys.readouterr().out
    assert "red" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])
