"""The `python -m repro.harness` CLI."""

import json

import pytest

from repro.harness.__main__ import EXPERIMENTS, JSON_SCHEMA_VERSION, main


def test_experiment_list_covers_all_figures():
    assert set(EXPERIMENTS) == {
        "fig3a", "fig3b", "fig3c", "fig4", "fig9", "tab3", "fig10",
        "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "fig18", "sim_speed",
    }


def test_fig17_runs_and_dumps_json(tmp_path, capsys):
    path = tmp_path / "BENCH_fig17.json"
    assert main(["fig17", "--tokens", "4", "--json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Fig 17" in out and "per-node breakdown" in out
    assert "memory plan:" in out
    payload = json.loads(path.read_text())
    data = payload["experiments"]["fig17"]
    # Per-node breakdowns for every placement the ISSUE names.
    assert set(data["breakdown"]) == {"upmem", "cpu", "mixed"}
    for rows in data["breakdown"].values():
        assert rows and all("total_ms" in row for row in rows)
    assert data["memory"]["arena_bytes"] < data["memory"]["naive_bytes"]
    assert payload["settings"]["tokens"] == 4


@pytest.mark.slow
def test_fig18_runs_and_dumps_json(tmp_path, capsys):
    path = tmp_path / "BENCH_fig18_cluster.json"
    assert main([
        "fig18", "--requests", "12", "--json", str(path),
    ]) == 0
    out = capsys.readouterr().out
    assert "Fig 18" in out and "fault scenario" in out
    payload = json.loads(path.read_text())
    data = payload["experiments"]["fig18"]
    assert {row["mode"] for row in data["rows"]} == {"whole", "continuous"}
    fault = data["fault_scenario"]
    assert fault["replay_ok"] is True
    assert fault["completed"] == data["summaries"]["continuous"]["completed"]
    # ServerMetrics payloads carry their own schema version now.
    assert data["summaries"]["continuous"]["metrics"]["schema_version"] == 2
    assert payload["settings"]["workers"] == 2


@pytest.mark.slow
def test_fig18_trace_lint_clean(tmp_path, capsys):
    from repro.obs import trace_lint

    path = tmp_path / "BENCH_fig18_trace.json"
    assert main([
        "fig18", "--requests", "10", "--trace", str(path),
    ]) == 0
    payload = json.loads(path.read_text())
    assert trace_lint(payload) == []
    processes = {
        e["args"]["name"] for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    threads = {
        e["args"]["name"] for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    # Per-worker lanes and the control lane made it into the export
    # (the exporter groups "cluster.*" tracks under one process).
    assert "cluster" in processes
    assert "cluster.control" in threads
    assert {"cluster.w0", "cluster.w1"} <= threads


def test_fig3a_runs(capsys):
    assert main(["fig3a"]) == 0
    out = capsys.readouterr().out
    assert "Fig 3a" in out and "cache_elems" in out


def test_fig13_runs(capsys):
    assert main(["fig13"]) == 0
    out = capsys.readouterr().out
    assert "issuable" in out


@pytest.mark.slow
def test_fig9_with_filters(capsys):
    assert main(["fig9", "--workloads", "red", "--sizes", "4MB",
                 "--trials", "8"]) == 0
    out = capsys.readouterr().out
    assert "red" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


class TestJsonDump:
    def test_rows_and_cache_stats_written(self, tmp_path, capsys):
        path = tmp_path / "BENCH_fig3a.json"
        assert main(["fig3a", "--json", str(path)]) == 0
        assert f"wrote JSON results to {path}" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == JSON_SCHEMA_VERSION
        rows = payload["experiments"]["fig3a"]
        assert rows and all("kernel_ms" in row for row in rows)
        stats = payload["cache_stats"]
        assert set(stats) == {"hits", "misses", "disk_hits", "hit_rate"}
        tuning = payload["tuning_stats"]
        assert set(tuning) == {
            "measure_hits", "measure_misses", "warm_hit_rate"
        }
        assert payload["settings"]["seed"] == 0
        assert payload["settings"]["db"] is None
        assert payload["settings"]["parallel_measure"] == 1

    @pytest.mark.slow
    def test_fig9_json_roundtrips_machine_readable(self, tmp_path):
        path = tmp_path / "BENCH_fig9.json"
        assert main([
            "fig9", "--workloads", "red", "--sizes", "4MB", "--trials", "8",
            "--json", str(path),
        ]) == 0
        payload = json.loads(path.read_text())
        row = payload["experiments"]["fig9"][0]
        assert row["workload"] == "red"
        assert isinstance(row["atim_ms"], float)
        assert isinstance(row["atim_params"], dict)

    @pytest.mark.slow
    def test_fig16_serving_metrics_in_json(self, tmp_path, capsys):
        """Acceptance: the serving metrics dict (p50/p95/p99, pool hit
        rate, rejected count) lands in the --json dump."""
        path = tmp_path / "BENCH_fig16.json"
        assert main(["fig16", "--requests", "8", "--json", str(path)]) == 0
        assert "Fig 16" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        data = payload["experiments"]["fig16"]
        rows = data["rows"]
        assert {row["target"] for row in rows} == {"upmem", "cpu"}
        assert {row["max_batch"] for row in rows} == {1, 4, 16}
        snapshot = data["metrics"]["upmem_b16"]
        assert {"p50", "p95", "p99"} <= set(snapshot["latency_ms"])
        assert "hit_rate" in snapshot["pool"]
        assert snapshot["rejected"] == 0
        assert payload["settings"]["requests"] == 8

    @pytest.mark.slow
    def test_fig14_curves_serializable(self, tmp_path):
        path = tmp_path / "BENCH_fig14.json"
        assert main(["fig14", "--trials", "8", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        curves = payload["experiments"]["fig14"]
        assert set(curves) == {
            "default_tvm", "balanced_sampling", "adaptive_epsilon", "atim"
        }
        for curve in curves.values():
            assert all(len(point) == 2 for point in curve)


class TestTraceFlag:
    def test_trace_written_and_lint_clean(self, tmp_path, capsys):
        from repro.obs import trace_lint

        path = tmp_path / "BENCH_fig17_trace.json"
        assert main([
            "fig17", "--layers", "3", "--tokens", "2",
            "--trace", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert f"wrote Chrome trace" in out and str(path) in out
        payload = json.loads(path.read_text())
        assert trace_lint(payload) == []
        assert payload["otherData"]["clock"] == "virtual"
        # Spans from the decode-side subsystems made it into the export.
        names = {
            e["args"]["name"] for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"pipeline", "pool", "graph", "kv-cache", "decode"} <= names

    def test_trace_jsonl_written(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main([
            "fig17", "--tokens", "2", "--trace-jsonl", str(path)
        ]) == 0
        assert "trace events" in capsys.readouterr().out
        lines = path.read_text().splitlines()
        assert lines
        rows = [json.loads(line) for line in lines]
        assert all({"ph", "name", "track", "ts"} <= set(r) for r in rows)

    def test_no_trace_flag_leaves_no_tracer_active(self, capsys):
        from repro.obs import NULL_TRACER, current_tracer

        assert main(["fig3b"]) == 0
        capsys.readouterr()
        assert current_tracer() is NULL_TRACER


@pytest.mark.slow
class TestPersistentTuningFlags:
    def test_db_written_and_resume_reported_warm(self, tmp_path, capsys):
        db = tmp_path / "tune.jsonl"
        json_path = tmp_path / "BENCH_fig15.json"
        assert main(["fig15", "--trials", "8", "--db", str(db)]) == 0
        assert db.exists()
        out = capsys.readouterr().out
        assert "0 warm (from --db) / 8 cold" in out

        # Same run again with --resume: every measurement is served warm.
        assert main([
            "fig15", "--trials", "8", "--db", str(db), "--resume",
            "--json", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "8 warm (from --db) / 0 cold" in out
        payload = json.loads(json_path.read_text())
        assert payload["experiments"]["fig15"]["measure_cache_hits"] == [8.0]
        assert payload["tuning_stats"]["measure_hits"] >= 8
        assert payload["settings"]["db"] == str(db)
        assert payload["settings"]["resume"] is True

    def test_parallel_measure_matches_serial(self, tmp_path):
        p1 = tmp_path / "serial.json"
        p4 = tmp_path / "parallel.json"
        assert main(["fig14", "--trials", "8", "--json", str(p1)]) == 0
        assert main(["fig14", "--trials", "8", "--parallel-measure", "4",
                     "--json", str(p4)]) == 0
        serial = json.loads(p1.read_text())["experiments"]["fig14"]
        parallel = json.loads(p4.read_text())["experiments"]["fig14"]
        assert serial == parallel

    def test_resume_without_db_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig15", "--resume"])
