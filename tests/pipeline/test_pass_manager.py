"""PassManager composition, gating, instrumentation and observability."""

import pytest

from repro.lowering import LowerOptions, lower
from repro.pipeline import (
    FunctionPass,
    Pass,
    PassContext,
    PassInstrument,
    PassManager,
    PipelineError,
    get_pipeline,
    has_pipeline,
    kernel_passes,
    list_pipelines,
    register_pipeline,
)
from repro.tir import stmt_to_str

from ..conftest import make_mtv_schedule


class _Tag(Pass):
    """Appends its name to a shared log (order probe)."""

    def __init__(self, name, min_level="O0"):
        self.name = name
        self.min_level = min_level

    def run(self, obj, ctx):
        obj.append(self.name)
        return obj


class TestOrdering:
    def test_passes_run_in_sequence(self):
        pm = PassManager([_Tag("a"), _Tag("b"), _Tag("c")])
        assert pm.run([]) == ["a", "b", "c"]

    def test_reorder(self):
        pm = PassManager([_Tag("a"), _Tag("b"), _Tag("c")])
        pm.reorder(["c", "a", "b"])
        assert pm.run([]) == ["c", "a", "b"]

    def test_reorder_must_be_complete(self):
        pm = PassManager([_Tag("a"), _Tag("b")])
        with pytest.raises(PipelineError):
            pm.reorder(["a"])

    def test_insert_and_remove(self):
        pm = PassManager([_Tag("a"), _Tag("c")])
        pm.insert_after("a", _Tag("b"))
        pm.insert_before("a", _Tag("pre"))
        assert pm.pass_names() == ["pre", "a", "b", "c"]
        pm.remove("pre")
        assert pm.run([]) == ["a", "b", "c"]

    def test_unknown_pass_name(self):
        pm = PassManager([_Tag("a")])
        with pytest.raises(KeyError):
            pm.index("nope")


class TestGating:
    def test_min_level_skips_and_records(self):
        pm = PassManager([_Tag("base"), _Tag("o2", min_level="O2")])
        ctx = PassContext(opt_level="O1")
        assert pm.run([], ctx) == ["base"]
        by_name = {t.name: t for t in ctx.timings}
        assert by_name["o2"].skipped
        assert not by_name["base"].skipped

    def test_level_enables(self):
        pm = PassManager([_Tag("o2", min_level="O2")])
        assert pm.run([], PassContext(opt_level="O3")) == ["o2"]

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            PassContext(opt_level="O9")


class _Recorder(PassInstrument):
    def __init__(self):
        self.events = []

    def run_before_pass(self, pass_name, obj, ctx):
        self.events.append(("before", pass_name))

    def run_after_pass(self, pass_name, obj, ctx):
        self.events.append(("after", pass_name))


class TestInstruments:
    def test_hooks_fire_in_order(self):
        rec = _Recorder()
        ctx = PassContext(instruments=[rec])
        PassManager([_Tag("a"), _Tag("b")]).run([], ctx)
        assert rec.events == [
            ("before", "a"), ("after", "a"), ("before", "b"), ("after", "b"),
        ]

    def test_skipped_passes_not_instrumented(self):
        rec = _Recorder()
        ctx = PassContext(opt_level="O0", instruments=[rec])
        PassManager([_Tag("a"), _Tag("b", min_level="O1")]).run([], ctx)
        assert rec.events == [("before", "a"), ("after", "a")]

    def test_hooks_fire_on_real_build_pipeline(self):
        rec = _Recorder()
        ctx = PassContext(opt_level="O3", instruments=[rec], module_name="mtv")
        get_pipeline("build").run(make_mtv_schedule(37, 50), ctx)
        ran = [name for phase, name in rec.events if phase == "after"]
        assert ran == [
            "lower",
            "eliminate_copy_checks",
            "tighten_loop_bounds",
            "hoist_invariant_branches",
        ]


class TestObservability:
    def test_timings_recorded(self):
        ctx = PassContext(module_name="mtv")
        get_pipeline("build").run(make_mtv_schedule(37, 50), ctx)
        executed = [t for t in ctx.timings if not t.skipped]
        assert len(executed) == 4
        assert all(t.seconds >= 0 for t in executed)
        assert "lower" in ctx.timing_report()

    def test_ir_dumps(self):
        ctx = PassContext(module_name="mtv", dump_ir=True)
        module = get_pipeline("build").run(make_mtv_schedule(37, 50), ctx)
        assert [name for name, _ in ctx.ir_dumps] == [
            "lower",
            "eliminate_copy_checks",
            "tighten_loop_bounds",
            "hoist_invariant_branches",
        ]
        # The last snapshot is the final kernel.
        assert ctx.ir_dumps[-1][1] == stmt_to_str(module.kernel)

    def test_ambient_context(self):
        assert PassContext.current() is None
        with PassContext() as ctx:
            assert PassContext.current() is ctx
        assert PassContext.current() is None


class TestErrors:
    def test_none_return_rejected(self):
        pm = PassManager([FunctionPass(lambda obj: None, name="bad")])
        with pytest.raises(PipelineError):
            pm.run([])

    def test_unknown_pipeline(self):
        with pytest.raises(PipelineError):
            get_pipeline("no-such-pipeline")


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("build", "optimize", "autotune", "emit"):
            assert has_pipeline(name)
            assert name in list_pipelines()

    def test_register_and_duplicate(self):
        name = "test-custom-pipeline"
        if not has_pipeline(name):
            register_pipeline(name, lambda: PassManager([_Tag("x")], name=name))
        assert get_pipeline(name).run([]) == ["x"]
        with pytest.raises(PipelineError):
            register_pipeline(name, lambda: PassManager())

    def test_factory_returns_fresh_instances(self):
        pm = get_pipeline("build")
        pm.remove("lower")
        assert get_pipeline("build").pass_names()[0] == "lower"

    def test_kernel_passes_levels(self):
        levels = {p.name: p.min_level for p in kernel_passes()}
        assert levels == {
            "eliminate_copy_checks": "O1",
            "tighten_loop_bounds": "O2",
            "hoist_invariant_branches": "O3",
        }
