"""The unified pipeline reproduces the legacy hard-wired compile flow.

O0–O3 through ``optimize_kernel``/``optimize_module`` must emit exactly
the IR the old ad-hoc pass sequence produced, and ``repro.build`` must
match lower-then-optimize composition.
"""

import numpy as np
import pytest

import repro
from repro.lowering import LowerOptions, lower
from repro.optim import (
    LEVELS,
    eliminate_copy_checks,
    hoist_invariant_branches,
    optimize_kernel,
    optimize_module,
    tighten_loop_bounds,
)
from repro.pipeline import PassContext, get_pipeline
from repro.tir import stmt_to_str
from repro.upmem import FunctionalExecutor

from ..conftest import make_mtv_schedule


def legacy_optimize_kernel(kernel, level):
    """The pre-pipeline hard-wired §5.3 sequence, verbatim."""
    rank = LEVELS.index(level)
    if rank >= 1:
        kernel = eliminate_copy_checks(kernel)
    if rank >= 2:
        kernel = tighten_loop_bounds(kernel)
    if rank >= 3:
        kernel = hoist_invariant_branches(kernel)
    return kernel


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("shape", [(37, 50), (64, 64)])
def test_optimize_kernel_matches_legacy(level, shape):
    sch = make_mtv_schedule(*shape)
    kernel = lower(sch, options=LowerOptions(optimize=level)).kernel
    new = optimize_kernel(kernel, level)
    old = legacy_optimize_kernel(kernel, level)
    assert stmt_to_str(new) == stmt_to_str(old)


def test_optimize_kernel_rejects_unknown_level():
    with pytest.raises(ValueError):
        optimize_kernel(lower(make_mtv_schedule(8, 8)).kernel, "O7")
    with pytest.raises(ValueError):
        optimize_module(lower(make_mtv_schedule(8, 8)), "fast")


def test_optimize_module_identity_at_o0():
    module = lower(make_mtv_schedule(37, 50), options=LowerOptions(optimize="O0"))
    assert optimize_module(module, "O0") is module


def test_build_matches_lower_plus_optimize():
    for level in LEVELS:
        sch = make_mtv_schedule(37, 50)
        options = LowerOptions(optimize=level)
        built = repro.build(sch, name="mtv", options=options)
        manual = optimize_module(
            lower(make_mtv_schedule(37, 50), name="mtv", options=options), level
        )
        assert built.script() == stmt_to_str(manual.kernel)


def test_build_pipeline_executes_correctly():
    rng = np.random.default_rng(7)
    m, k = 37, 50
    a = rng.random((m, k), dtype=np.float32)
    b = rng.random(k, dtype=np.float32)
    mod = repro.build(make_mtv_schedule(m, k), name="mtv")
    out, = mod.run(A=a, B=b)
    np.testing.assert_allclose(out, a @ b, rtol=1e-3)


def test_build_accepts_explicit_context():
    ctx = PassContext()
    mod = repro.build(
        make_mtv_schedule(16, 16), name="mtv", options=LowerOptions(optimize="O2")
    , ctx=ctx)
    assert ctx.opt_level == "O2"
    ran = [t.name for t in ctx.timings if not t.skipped]
    skipped = [t.name for t in ctx.timings if t.skipped]
    assert "tighten_loop_bounds" in ran
    assert skipped == ["hoist_invariant_branches"]
    assert mod.name == "mtv"


def test_build_respects_context_only_settings():
    # With no explicit name/options/config arguments, the context's own
    # compile settings win (instead of being clobbered by defaults).
    cfg = repro.UpmemConfig().with_(n_ranks=2)
    ctx = PassContext(opt_level="O1", module_name="ctx_mtv", config=cfg)
    mod = repro.build(make_mtv_schedule(16, 16), ctx=ctx)
    assert mod.name == "ctx_mtv"
    assert mod.config is cfg
    skipped = [t.name for t in ctx.timings if t.skipped]
    assert skipped == ["tighten_loop_bounds", "hoist_invariant_branches"]


def test_module_source_via_emit_pass():
    mod = repro.build(make_mtv_schedule(16, 16), name="mtv")
    src = mod.source()
    assert "__mram_noinit" in src


def test_emit_pipeline_publishes_source():
    ctx = PassContext(module_name="mtv")
    get_pipeline("emit").run(make_mtv_schedule(16, 16), ctx)
    assert "kernel_c" in ctx.attrs
    assert "host_pseudocode" in ctx.attrs


def test_autotune_pipeline_publishes_verdict():
    ctx = PassContext(module_name="mtv")
    module = get_pipeline("autotune").run(make_mtv_schedule(16, 16), ctx)
    assert ctx.attrs["verify_ok"] is True
    assert module.n_dpus >= 1
