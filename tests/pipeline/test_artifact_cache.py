"""CompiledArtifact cache semantics: hits, invalidation, disk tier."""

import numpy as np
import pytest

from repro.autotune.compile import CompileEngine, compile_params
from repro.pipeline import ArtifactCache, CompiledArtifact, artifact_key
from repro.upmem import FunctionalExecutor, UpmemConfig
from repro.workloads import mtv

PARAMS = {
    "m_dpus": 8, "k_dpus": 1, "n_tasklets": 4, "cache": 16, "host_threads": 1,
}


@pytest.fixture
def wl():
    return mtv(64, 64)


@pytest.fixture
def engine():
    return CompileEngine(cache=ArtifactCache())


class TestKeying:
    def test_same_inputs_same_key(self, wl):
        assert artifact_key(wl, PARAMS) == artifact_key(mtv(64, 64), dict(PARAMS))

    def test_param_order_irrelevant(self, wl):
        shuffled = dict(reversed(list(PARAMS.items())))
        assert artifact_key(wl, PARAMS) == artifact_key(wl, shuffled)

    def test_key_varies_with_each_component(self, wl):
        base = artifact_key(wl, PARAMS)
        assert artifact_key(mtv(64, 128), PARAMS) != base
        assert artifact_key(wl, {**PARAMS, "cache": 32}) != base
        assert artifact_key(wl, PARAMS, config=UpmemConfig().with_(n_ranks=2)) != base
        assert artifact_key(wl, PARAMS, opt_level="O1") != base
        assert artifact_key(wl, PARAMS, pipeline="emit") != base


class TestHitMiss:
    def test_second_compile_hits(self, wl, engine):
        first = engine.compile(wl, PARAMS)
        assert engine.stats.misses == 1 and engine.stats.hits == 0
        second = engine.compile(wl, PARAMS)
        assert engine.stats.hits == 1
        assert second is first
        assert second.module is first.module

    def test_equal_workload_objects_share_artifacts(self, engine):
        engine.compile(mtv(64, 64), PARAMS)
        engine.compile(mtv(64, 64), dict(PARAMS))
        assert engine.stats.hits == 1

    def test_different_combiner_same_body_does_not_alias(self):
        from repro import te
        from repro.pipeline import workload_signature
        from repro.workloads import Workload

        def make(reducer):
            A = te.placeholder((64, 64), "float32", "A")
            B = te.placeholder((64,), "float32", "B")
            k = te.reduce_axis(64, "k")
            C = te.compute((64,), lambda i: reducer(A[i, k] * B[k], axis=k), "C")
            return Workload(
                name="mtv", inputs=[A, B], output=C,
                reference=lambda a, b: a @ b, flops=2.0 * 64 * 64,
                shape=(64, 64), reduce_extent=64,
            )

        assert workload_signature(make(te.sum)) != workload_signature(
            make(te.max_reduce)
        )

    def test_none_config_normalized_to_default(self, wl, engine):
        from repro.upmem.config import DEFAULT_CONFIG

        engine.compile(wl, PARAMS, config=None)
        engine.compile(wl, PARAMS, config=DEFAULT_CONFIG)
        assert engine.stats.hits == 1 and engine.stats.misses == 1

    def test_config_change_invalidates(self, wl, engine):
        engine.compile(wl, PARAMS, config=UpmemConfig())
        engine.compile(wl, PARAMS, config=UpmemConfig().with_(n_ranks=2))
        assert engine.stats.hits == 0 and engine.stats.misses == 2

    def test_opt_level_change_invalidates(self, wl, engine):
        o1 = engine.compile(wl, PARAMS, optimize="O1")
        o3 = engine.compile(wl, PARAMS, optimize="O3")
        assert engine.stats.misses == 2
        assert o1.module is not o3.module

    def test_params_change_invalidates(self, wl, engine):
        engine.compile(wl, PARAMS)
        engine.compile(wl, {**PARAMS, "n_tasklets": 8})
        assert engine.stats.misses == 2


class TestVerification:
    def test_verdict_cached(self, wl, engine):
        art = engine.compile(wl, PARAMS, check=True)
        assert art.verified is True
        again = engine.compile(wl, PARAMS, check=True)
        assert again.verified is True and engine.stats.hits == 1

    def test_unchecked_then_checked(self, wl, engine):
        art = engine.compile(wl, PARAMS, check=False)
        assert art.verified is None
        art = engine.compile(wl, PARAMS, check=True)
        assert art.verified is True

    def test_invalid_for_small_system_cached(self, wl, engine):
        tiny = UpmemConfig().with_(n_ranks=1, dpus_per_rank=4)
        params = dict(PARAMS, m_dpus=64)
        art = engine.compile(wl, params, config=tiny, check=True)
        assert art.ok and art.verified is False
        assert "DPU" in art.verify_reason
        art2 = engine.compile(wl, params, config=tiny, check=True)
        assert art2.verified is False and engine.stats.hits == 1

    def test_compile_params_facade(self, wl):
        tiny = UpmemConfig().with_(n_ranks=1, dpus_per_rank=4)
        assert compile_params(wl, dict(PARAMS, m_dpus=64), config=tiny) is None
        module = compile_params(wl, PARAMS)
        assert module is not None and module.n_dpus == 8


class TestDiskTier:
    def test_roundtrip_across_cache_instances(self, wl, tmp_path):
        disk = str(tmp_path / "artifacts")
        hot = CompileEngine(cache=ArtifactCache(disk_dir=disk))
        built = hot.compile(wl, PARAMS)
        assert built.ok and hot.stats.misses == 1

        cold = CompileEngine(cache=ArtifactCache(disk_dir=disk))
        restored = cold.compile(wl, PARAMS)
        assert cold.stats.hits == 1 and cold.stats.disk_hits == 1
        assert restored.key == built.key

        # The unpickled module still executes correctly.
        rng = np.random.default_rng(0)
        a = rng.random((64, 64), dtype=np.float32)
        b = rng.random(64, dtype=np.float32)
        out, = FunctionalExecutor(restored.module).run({"A": a, "B": b})
        np.testing.assert_allclose(out, a @ b, rtol=1e-3)

    def test_corrupt_disk_entry_is_miss(self, wl, tmp_path):
        disk = str(tmp_path / "artifacts")
        cache = ArtifactCache(disk_dir=disk)
        engine = CompileEngine(cache=cache)
        key = engine.compile(wl, PARAMS).key
        cache.clear()
        (tmp_path / "artifacts" / f"{key}.pkl").write_bytes(b"garbage")
        art = engine.compile(wl, PARAMS)
        assert art.ok
        assert engine.stats.misses == 2 and engine.stats.disk_hits == 0


class TestEviction:
    def test_lru_bound(self):
        cache = ArtifactCache(max_entries=2)
        for i in range(4):
            cache.put(CompiledArtifact(key=f"k{i}"))
        assert len(cache) == 2
        assert cache.get("k0") is None
        assert cache.get("k3") is not None

    def test_clear(self):
        cache = ArtifactCache()
        cache.put(CompiledArtifact(key="k"))
        cache.clear()
        assert len(cache) == 0
