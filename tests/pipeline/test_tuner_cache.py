"""Tuner integration: batched measurement over the caching compile engine."""

import pytest

from repro.autotune import Tuner
from repro.extensions import estimate_lowered, estimate_schedule
from repro.extensions.hbm_pim import HbmPimConfig, HbmPimEstimator
from repro.pipeline import PassContext, get_pipeline, has_pipeline
from repro.upmem import UpmemConfig
from repro.workloads import mtv

from ..conftest import make_mtv_schedule


@pytest.fixture(scope="module")
def tune_result():
    tuner = Tuner(
        mtv(256, 256),
        config=UpmemConfig().with_(n_ranks=2),
        n_trials=24,
        batch_size=8,
        seed=0,
    )
    result = tuner.tune()
    return tuner, result


@pytest.mark.slow
class TestTunerCaching:
    def test_nonzero_hit_rate_on_repeated_candidates(self, tune_result):
        _, result = tune_result
        assert result.compile_cache_hits > 0
        assert result.compile_cache_misses > 0
        assert 0.0 < result.compile_cache_hit_rate < 1.0

    def test_stats_match_engine(self, tune_result):
        tuner, result = tune_result
        assert result.compile_cache_hits == tuner.engine.stats.hits
        assert result.compile_cache_misses == tuner.engine.stats.misses

    def test_search_still_converges(self, tune_result):
        _, result = tune_result
        assert result.best_latency > 0
        assert result.best_module is not None
        assert len(result.measured) == len(result.history)
        # History's running best is monotonically non-increasing.
        bests = [lat for _, lat in result.history]
        assert bests == sorted(bests, reverse=True)

    def test_batched_rounds(self, tune_result):
        _, result = tune_result
        # One model-refit round per measured batch, not per candidate.
        assert len(result.round_times) < len(result.measured)

    def test_private_engines_isolated(self):
        t1 = Tuner(mtv(128, 128), n_trials=4, batch_size=4, seed=1)
        t1.tune()
        t2 = Tuner(mtv(128, 128), n_trials=4, batch_size=4, seed=1)
        assert t2.engine.stats.lookups == 0

    def test_engine_and_cache_args_conflict(self):
        from repro.autotune import CompileEngine
        from repro.pipeline import ArtifactCache

        with pytest.raises(ValueError):
            Tuner(
                mtv(128, 128),
                engine=CompileEngine(),
                cache=ArtifactCache(),
            )

    def test_empty_shared_cache_is_used_not_replaced(self):
        from repro.pipeline import ArtifactCache

        shared = ArtifactCache()  # empty, hence falsy via __len__
        tuner = Tuner(mtv(128, 128), cache=shared, n_trials=4, batch_size=4)
        assert tuner.engine.cache is shared
        tuner.tune()
        assert len(shared) > 0

    def test_shared_engine_reports_per_run_delta(self):
        from repro.autotune import CompileEngine

        cfg = UpmemConfig().with_(n_ranks=2)
        engine = CompileEngine()
        kwargs = dict(config=cfg, n_trials=8, batch_size=4, seed=2)
        r1 = Tuner(mtv(256, 256), engine=engine, **kwargs).tune()
        r2 = Tuner(mtv(256, 256), engine=engine, **kwargs).tune()
        # Per-run deltas sum to the engine totals, and the second
        # identical run is nearly all hits.
        total = r1.compile_cache_hits + r1.compile_cache_misses
        total += r2.compile_cache_hits + r2.compile_cache_misses
        assert total == engine.stats.lookups
        assert r2.compile_cache_hits > r2.compile_cache_misses


@pytest.mark.slow
class TestDeterminism:
    def test_same_seed_same_result(self):
        cfg = UpmemConfig().with_(n_ranks=2)
        kwargs = dict(config=cfg, n_trials=16, batch_size=8, seed=3)
        r1 = Tuner(mtv(256, 256), **kwargs).tune()
        r2 = Tuner(mtv(256, 256), **kwargs).tune()
        assert r1.best_params == r2.best_params
        assert r1.best_latency == r2.best_latency
        assert r1.history == r2.history


class TestHbmPimPipeline:
    def test_registered(self):
        assert has_pipeline("hbm-pim")
        names = get_pipeline("hbm-pim").pass_names()
        assert names[0] == "lower" and names[-1] == "hbm_pim.estimate"

    def test_estimate_schedule(self):
        est = estimate_schedule(make_mtv_schedule(64, 64), total_macs=64 * 64)
        assert est.supported and est.latency_s > 0

    def test_estimate_lowered_matches_direct(self):
        ctx = PassContext(module_name="mtv")
        module = get_pipeline("build").run(make_mtv_schedule(64, 64), ctx)
        via_pipeline = estimate_lowered(module, total_macs=64 * 64)
        direct = HbmPimEstimator().estimate(module, total_macs=64 * 64)
        assert via_pipeline.latency_s == direct.latency_s
        assert via_pipeline.commands_per_pu == direct.commands_per_pu

    def test_estimate_lowered_skips_recompilation(self):
        module = get_pipeline("build").run(
            make_mtv_schedule(64, 64), PassContext(module_name="mtv")
        )
        ctx = PassContext()
        estimate_lowered(module, total_macs=64 * 64, ctx=ctx)
        assert [t.name for t in ctx.timings] == ["hbm_pim.estimate"]

    def test_custom_config_through_context(self):
        small = estimate_schedule(
            make_mtv_schedule(64, 64),
            total_macs=1 << 24,
            config=HbmPimConfig(n_pseudo_channels=8),
        )
        big = estimate_schedule(
            make_mtv_schedule(64, 64),
            total_macs=1 << 24,
            config=HbmPimConfig(n_pseudo_channels=64),
        )
        assert big.latency_s < small.latency_s
