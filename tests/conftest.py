"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import te
from repro.lowering import LowerOptions, lower
from repro.optim import optimize_module
from repro.schedule import Schedule
from repro.upmem import FunctionalExecutor, UpmemConfig


@pytest.fixture
def small_config() -> UpmemConfig:
    """A small UPMEM system for fast verifier/system tests."""
    return UpmemConfig().with_(n_ranks=2)


def make_mtv_schedule(
    m: int,
    k: int,
    m_dpus: int = 4,
    n_tasklets: int = 2,
    cache: int = 16,
    k_dpus: int = 1,
):
    """A scheduled MTV used across lowering/optim/executor tests."""
    A = te.placeholder((m, k), "float32", "A")
    B = te.placeholder((k,), "float32", "B")
    kk = te.reduce_axis(k, "k")
    C = te.compute((m,), lambda i: te.sum(A[i, kk] * B[kk], axis=kk), "C")
    sch = Schedule(C)
    s = sch[C]
    (i,) = s.op.axis
    if k_dpus > 1:
        k_dpu, _ = s.split(s.op.reduce_axis[0], nparts=k_dpus)
        cf = sch.rfactor(C, k_dpu)
        stage = sch[cf]
        kd_ax, i_ax = stage.op.axis
        (k_in,) = stage.op.reduce_axis
        target = cf
    else:
        stage, kd_ax, i_ax, k_in, target = s, None, i, s.op.reduce_axis[0], C
    i_dpu, i_rest = stage.split(i_ax, nparts=m_dpus)
    i_thr, i_tile = stage.split(i_rest, nparts=n_tasklets)
    k_blk, k_elem = stage.split(k_in, factor=cache)
    order = [i_dpu] + ([kd_ax] if kd_ax is not None else [])
    order += [i_thr, i_tile, k_blk, k_elem]
    stage.reorder(*order)
    stage.bind(i_dpu, "blockIdx.x")
    if kd_ax is not None:
        stage.bind(kd_ax, "blockIdx.y")
    stage.bind(i_thr, "threadIdx.x")
    sch.cache_read(target, A, "wram").compute_at(stage, k_blk)
    sch.cache_read(target, B, "wram").compute_at(stage, k_blk)
    sch.cache_write(target, "wram").reverse_compute_at(stage, i_thr)
    if k_dpus > 1:
        s_final = sch[C]
        (fi,) = s_final.op.axis
        fo, _ = s_final.split(fi, nparts=2)
        s_final.parallel(fo)
    return sch


def run_and_check(sch, inputs: dict, reference: np.ndarray, optimize="O3",
                  rtol=1e-3, atol=1e-5):
    """Lower+optimize+execute a schedule; assert output matches reference."""
    module = lower(sch, options=LowerOptions(optimize=optimize))
    module = optimize_module(module, optimize)
    out, = FunctionalExecutor(module).run(inputs)
    np.testing.assert_allclose(out, reference, rtol=rtol, atol=atol)
    return module
