"""DecodeEngine: epochs, program sharing, charging, reference parity."""

import numpy as np
import pytest

from repro.decode import DecodeEngine
from repro.serve.pool import ExecutablePool

from .conftest import TINY, TINY_LAYER_NBYTES, tiny_engine


class TestEpochs:
    def test_pages_grow_without_replanning(self):
        # prompt 6 at 4/page -> capacity 8; steps 0-2 run there, the
        # append after step 2 (position 9) crosses into capacity 12.
        engine = tiny_engine()
        result = engine.decode(tokens=6, prompt_tokens=6)
        caps = [s.capacity for s in result.steps]
        assert caps == [8, 8, 8, 12, 12, 12]
        # The tentpole claim: inside a capacity epoch nothing compiles
        # and nothing replans; only page-boundary steps rebuild.
        for s in result.steps:
            if s.replanned:
                assert s.step in (0, 3)
            else:
                assert s.compiled_programs == 0
        assert result.replans == 1

    def test_epoch_rebuild_compiles_only_capacity_programs(self):
        engine = tiny_engine()
        result = engine.decode(tokens=6, prompt_tokens=6)
        first, boundary = result.steps[0], result.steps[3]
        # First epoch loads the whole program set; the page-boundary
        # epoch pool-hits every capacity-independent program and loads
        # only the attention operators sized to the new capacity.
        assert first.compiled_programs > 6
        assert 0 < boundary.compiled_programs < 6

    def test_epoch_keys_pinned_in_pool(self):
        engine = tiny_engine()
        engine.decode(tokens=4, prompt_tokens=6)
        pinned = engine.pool.pinned_keys()
        current = engine._epoch_exe.pool_keys()
        assert current <= pinned or current == pinned
        # Retired capacity-dependent programs are unpinned once their
        # epoch ends.
        assert pinned == current

    def test_shared_pool_survives_under_lru_pressure(self):
        # A pool far too small for the working set: pins must keep the
        # decode loop's programs resident (over capacity) instead of
        # thrashing.
        pool = ExecutablePool(capacity=2)
        engine = tiny_engine(pool=pool)
        result = engine.decode(tokens=5, prompt_tokens=6)
        assert all(
            s.compiled_programs == 0
            for s in result.steps
            if not s.replanned
        )
        assert pool.stats()["resident"] >= len(engine._epoch_keys)


class TestCharging:
    def test_staging_comes_from_residency_not_profile(self):
        # Budget for 1 of 2 layers: every step re-stages both layers
        # (cyclic scan through a single slot), and the charged staging
        # equals the planner's events exactly.
        engine = tiny_engine(mram_budget_bytes=TINY_LAYER_NBYTES)
        result = engine.decode(tokens=4, prompt_tokens=4)
        for s in result.steps:
            assert s.staging_s == pytest.approx(
                sum(e.seconds for e in s.stage_events)
            )
            stages = [e for e in s.stage_events if e.action == "stage"]
            assert len(stages) == 2  # both layers re-stage, every step
        assert engine.residency.stats()["evictions"] > 0

    def test_all_fit_stages_once(self):
        engine = tiny_engine()  # default budget: whole model
        result = engine.decode(tokens=4, prompt_tokens=4)
        assert result.steps[0].staging_s > 0
        for s in result.steps[1:]:
            assert s.staging_s == 0.0 and s.stage_events == ()

    def test_cache_growth_charged_per_layer(self):
        engine = tiny_engine()
        result = engine.decode(tokens=3, prompt_tokens=4)
        for s in result.steps:
            assert len(s.cache_events) == engine.layers
            assert s.cache_growth_s == pytest.approx(
                sum(e.seconds for e in s.cache_events)
            )
            for entry, ev in zip(s.per_layer, s.cache_events):
                assert entry["cache_growth_s"] == pytest.approx(ev.seconds)

    def test_per_layer_breakdown_sums_to_step(self):
        engine = tiny_engine(layers=3)
        result = engine.decode(tokens=3, prompt_tokens=4)
        for s in result.steps:
            for key in ("compute_s", "h2d_s", "d2h_s", "staging_s",
                        "cache_growth_s"):
                assert sum(e[key] for e in s.per_layer) == pytest.approx(
                    getattr(s, key)
                )

    def test_totals_aggregate_steps(self):
        engine = tiny_engine()
        result = engine.decode(tokens=4, prompt_tokens=4)
        totals = result.totals()
        assert totals["total_s"] == pytest.approx(
            sum(s.total_s for s in result.steps)
        )
        per_layer = result.per_layer_totals()
        assert sum(r["compute_s"] for r in per_layer) == pytest.approx(
            totals["compute_s"]
        )


class TestExecution:
    def test_outputs_match_reference_every_step(self):
        result = tiny_engine().decode(tokens=5, prompt_tokens=6)
        assert result.reference_ok is True
        assert all(s.reference_ok for s in result.steps)

    def test_hidden_state_feeds_back(self):
        engine = tiny_engine()
        result = engine.decode(tokens=3, prompt_tokens=4)
        # The engine's next-step input is the last layer's output.
        np.testing.assert_array_equal(
            result.hidden_states[-1], engine._x
        )
        assert len({h.tobytes() for h in result.hidden_states}) == 3

    def test_appended_kv_rows_come_from_the_graph(self):
        engine = tiny_engine()
        engine.decode(tokens=1, prompt_tokens=4)
        # Position 4 (first decoded token) holds the qkv slices the
        # graph emitted, not zeros.
        k, v = engine.cache.dense_kv("seq0", 0)
        assert k[4].any() and v[4].any()

    def test_decode_requires_prompt(self):
        engine = tiny_engine()
        with pytest.raises(RuntimeError, match="prefill"):
            engine.step()
        with pytest.raises(ValueError, match="prompt_tokens"):
            engine.prefill(0)

    def test_result_to_dict_is_json_shaped(self):
        import json

        result = tiny_engine().decode(tokens=3, prompt_tokens=4)
        payload = result.to_dict()
        json.dumps(payload)  # no arrays, no numpy scalars
        assert payload["replans"] == result.replans
        assert payload["memory"]["utilization"] > 0
        assert len(payload["per_layer"]) == 2
        assert set(payload["per_layer"][0]) == {
            "layer", "compute_ms", "h2d_ms", "d2h_ms", "staging_ms",
            "cache_growth_ms", "stages", "evictions",
        }


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError, match="layers"):
            DecodeEngine(config=TINY, layers=0)
        with pytest.raises(ValueError, match="tokens"):
            tiny_engine().decode(tokens=0)
