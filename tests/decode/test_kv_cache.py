"""PagedKVCache: block tables, page growth, explicit transfer charging."""

import numpy as np
import pytest

from repro.decode import CacheError, PagedKVCache, h2d_seconds
from repro.graph.memory import arena_stats
from repro.upmem.config import UpmemConfig


def make_cache(**kwargs) -> PagedKVCache:
    defaults = dict(d_model=8, layers=2, page_tokens=4, max_pages=16)
    defaults.update(kwargs)
    cache = PagedKVCache(**defaults)
    cache.add_sequence("s")
    return cache


def rows(cache: PagedKVCache, value: float = 1.0):
    return [
        (
            np.full((cache.d_model,), value, dtype=np.float32),
            np.full((cache.d_model,), -value, dtype=np.float32),
        )
        for _ in range(cache.layers)
    ]


class TestPaging:
    def test_fresh_sequence_is_empty(self):
        cache = make_cache()
        assert cache.length("s") == 0
        assert cache.capacity("s") == 0
        assert cache.block_table("s", 0) == ()

    def test_pages_allocate_only_at_boundaries(self):
        cache = make_cache()
        for i in range(9):
            events = cache.append("s", rows(cache, float(i)))
            allocated = [e for e in events if e.pages_allocated]
            if i % cache.page_tokens == 0:
                # Boundary: one new page per layer.
                assert len(allocated) == cache.layers
            else:
                assert allocated == []
        # 9 tokens at 4/page: 3 pages per layer, capacity 12.
        assert cache.capacity("s") == 12
        assert len(cache.block_table("s", 0)) == 3
        assert len(cache.block_table("s", 1)) == 3

    def test_allocation_order_is_deterministic(self):
        a, b = make_cache(), make_cache()
        for i in range(6):
            a.append("s", rows(a, float(i)))
            b.append("s", rows(b, float(i)))
        assert a.block_table("s", 0) == b.block_table("s", 0)
        assert a.block_table("s", 1) == b.block_table("s", 1)

    def test_pool_exhaustion_raises(self):
        cache = make_cache(max_pages=2)  # one page per layer
        for i in range(4):
            cache.append("s", rows(cache, float(i)))
        with pytest.raises(CacheError, match="exhausted"):
            cache.append("s", rows(cache))

    def test_free_sequence_returns_pages(self):
        cache = make_cache()
        for i in range(5):
            cache.append("s", rows(cache, float(i)))
        assert cache.free_sequence("s") == 4  # 2 pages x 2 layers
        assert cache.stats()["pages_allocated"] == 0
        cache.add_sequence("s2")
        for i in range(5):
            cache.append("s2", rows(cache, float(i)))
        # Freed ids recycle lowest-first: same physical pages again.
        assert cache.block_table("s2", 0) == (0, 2)


class TestDenseViews:
    def test_dense_kv_round_trips_appended_rows(self):
        cache = make_cache()
        appended = []
        for i in range(6):
            r = rows(cache, float(i + 1))
            appended.append(r)
            cache.append("s", r)
        for layer in range(cache.layers):
            k, v = cache.dense_kv("s", layer)
            assert k.shape == (8, cache.d_model)  # capacity 8
            for pos, r in enumerate(appended):
                np.testing.assert_array_equal(k[pos], r[layer][0])
                np.testing.assert_array_equal(v[pos], r[layer][1])
            # Unwritten tail slots read deterministic zeros.
            assert not k[6:].any() and not v[6:].any()

    def test_dense_view_is_a_copy(self):
        cache = make_cache()
        cache.append("s", rows(cache, 1.0))
        k, _ = cache.dense_kv("s", 0)
        cache.append("s", rows(cache, 2.0))
        # The second append wrote the page in place; the materialized
        # view from before must not see it.
        assert not k[1].any()

    def test_attention_mask_tracks_length_and_capacity(self):
        cache = make_cache()
        for i in range(5):
            cache.append("s", rows(cache, float(i)))
        mask = cache.attention_mask("s")
        assert mask.shape == (8,)
        assert (mask[:5] == 0.0).all()
        assert np.isneginf(mask[5:]).all()


class TestCharging:
    def test_append_charges_k_and_v_rows(self):
        cfg = UpmemConfig()
        cache = make_cache(config=cfg)
        (e0, e1) = cache.append("s", rows(cache))
        expected_nbytes = 2 * cache.d_model * 4
        for e in (e0, e1):
            assert e.nbytes == expected_nbytes
            assert e.seconds == h2d_seconds(expected_nbytes, cfg)

    def test_h2d_seconds_matches_machine_constants(self):
        cfg = UpmemConfig()
        assert h2d_seconds(0, cfg) == cfg.xfer_call_overhead_s
        assert h2d_seconds(6_700_000_000, cfg) == pytest.approx(
            cfg.xfer_call_overhead_s + 1.0 / cfg.h2d_bandwidth_gbps * 6.7
        )

    def test_stats_use_shared_arena_vocabulary(self):
        cache = make_cache()
        for i in range(5):
            cache.append("s", rows(cache, float(i)))
        stats = cache.stats()
        # 5 cached tokens over 8 allocated: same numbers arena_stats
        # reports for any fixed-capacity arena.
        assert stats["cached_tokens"] == 5
        assert stats["token_capacity"] == 8
        expected = arena_stats(8, 5)
        assert stats["utilization"] == expected["utilization"]
        assert stats["fragmentation"] == expected["fragmentation"]
        assert stats["extension_events"] == 10  # 5 tokens x 2 layers
        assert stats["extension_seconds"] == pytest.approx(
            sum(e.seconds for e in cache.events)
        )


class TestValidation:
    def test_unknown_sequence(self):
        cache = make_cache()
        with pytest.raises(CacheError, match="unknown sequence"):
            cache.append("nope", rows(cache))
        with pytest.raises(CacheError, match="unknown sequence"):
            cache.length("nope")

    def test_duplicate_sequence(self):
        cache = make_cache()
        with pytest.raises(CacheError, match="already cached"):
            cache.add_sequence("s")

    def test_wrong_layer_count(self):
        cache = make_cache()
        with pytest.raises(CacheError, match="row pairs"):
            cache.append("s", rows(cache)[:1])

    def test_layer_out_of_range(self):
        cache = make_cache()
        with pytest.raises(CacheError, match="out of range"):
            cache.dense_kv("s", 7)
