"""WeightResidencyPlanner: stage/evict schedules under an MRAM budget."""

import pytest

from repro.decode import ResidencyError, WeightResidencyPlanner, h2d_seconds

MB = 1 << 20


def planner(layers=3, budget_layers=2, policy="belady", size=MB):
    return WeightResidencyPlanner(
        [size] * layers, budget_layers * size, policy=policy
    )


def run_cycles(p, steps):
    events = []
    for step in range(steps):
        for layer in range(len(p.layer_nbytes)):
            events.extend(p.access(step, layer))
    return events


class TestValidation:
    def test_budget_below_largest_layer(self):
        with pytest.raises(ResidencyError, match="no schedule exists"):
            WeightResidencyPlanner([MB, 2 * MB], MB)

    def test_unknown_policy(self):
        with pytest.raises(ResidencyError, match="unknown residency policy"):
            planner(policy="clairvoyant")

    def test_empty_layers(self):
        with pytest.raises(ResidencyError, match="at least one layer"):
            WeightResidencyPlanner([], MB)

    def test_layer_out_of_range(self):
        p = planner()
        with pytest.raises(ResidencyError, match="out of range"):
            p.access(0, 5)


class TestAllFit:
    def test_degenerates_to_load_once(self):
        # Whole model under budget: L stages on the first cycle, then
        # every access hits — the existing load-once staging model.
        p = planner(layers=3, budget_layers=3)
        assert p.all_fit
        first = run_cycles(p, 1)
        assert [e.action for e in first] == ["stage"] * 3
        assert run_cycles(p, 5) == []
        assert p.stages == 3 and p.evictions == 0


class TestEviction:
    def test_staging_charged_evictions_free(self):
        p = planner(layers=3, budget_layers=2)
        events = run_cycles(p, 2)
        stage_s = h2d_seconds(MB, p.config)
        for e in events:
            if e.action == "stage":
                assert e.seconds == stage_s and e.nbytes == MB
            else:
                assert e.action == "evict" and e.seconds == 0.0

    def test_belady_evicts_layer_behind_the_cursor(self):
        p = planner(layers=3, budget_layers=2, policy="belady")
        p.access(0, 0)
        p.access(0, 1)
        events = p.access(0, 2)
        # Staging layer 2: the cyclic future is 0, 1, 2, ... — layer 1
        # is reused furthest away, so it is the Belady victim.
        assert [(e.action, e.layer) for e in events] == [
            ("evict", 1), ("stage", 2),
        ]
        assert p.resident_layers == (0, 2)

    def test_lru_thrashes_on_cyclic_scan(self):
        # The classic failure: cyclic scan one item wider than the
        # working set makes LRU miss on *every* access after warmup,
        # while Belady keeps hitting part of the cycle.
        lru = planner(layers=3, budget_layers=2, policy="lru")
        bel = planner(layers=3, budget_layers=2, policy="belady")
        run_cycles(lru, 4)
        run_cycles(bel, 4)
        assert lru.stages == 12  # 3 accesses x 4 steps, all misses
        assert bel.stages < lru.stages

    def test_resident_state_tracked_across_steps(self):
        p = planner(layers=4, budget_layers=2)
        run_cycles(p, 3)
        assert len(p.resident_layers) == 2
        assert p.resident_nbytes <= p.budget_nbytes
        stats = p.stats()
        assert stats["stages"] == p.stages
        assert stats["evictions"] == p.evictions
        assert not stats["all_fit"]
        assert stats["staging_seconds"] == pytest.approx(
            p.stages * h2d_seconds(MB, p.config)
        )


class TestPlan:
    def test_plan_is_a_dry_run(self):
        p = planner(layers=3, budget_layers=2)
        run_cycles(p, 1)
        before = (p.resident_layers, p.stages, p.evictions, len(p.events))
        preview = p.plan(steps=4)
        assert (p.resident_layers, p.stages, p.evictions, len(p.events)) == (
            before
        )
        # The preview matches actually running the same steps.
        live = [
            (e.action, e.layer)
            for step in range(4)
            for layer in range(3)
            for e in p.access(step, layer)
        ]
        assert [(e.action, e.layer) for e in preview] == live

    def test_schedule_is_deterministic(self):
        a = planner(layers=5, budget_layers=3)
        b = planner(layers=5, budget_layers=3)
        assert run_cycles(a, 6) == run_cycles(b, 6)
