"""Multi-sequence decode: several sequences through one engine.

The contract the cluster builds on: per-sequence StepReports are
*solo* costs — bit-for-bit what the same sequence reports decoded
alone on its own engine — for every field except `staging_s` (weight
residency is engine-global state: interleaving sequences changes the
stage/evict schedule, which is physical reality, not noise).  The
functional outputs (hidden states, KV rows) must match exactly.
"""

import numpy as np
import pytest

from repro.decode.engine import DecodeEngine, IterationReport
from repro.serve.pool import ExecutablePool

from .conftest import TINY, tiny_engine


def multi_engine(**kwargs):
    kwargs.setdefault("check_references", False)
    kwargs.setdefault("max_resident_epochs", 4)
    return tiny_engine(**kwargs)


class TestSequenceLifecycle:
    def test_add_and_remove(self):
        eng = multi_engine()
        eng.add_sequence("a", prompt_tokens=3)
        assert set(eng.sequences()) == {"seq0", "a"}
        assert eng.cache.length("a") == 3
        freed = eng.remove_sequence("a")
        assert freed > 0
        assert "a" not in eng.sequences()

    def test_duplicate_add_rejected(self):
        eng = multi_engine()
        eng.add_sequence("a")
        with pytest.raises(ValueError, match="already registered"):
            eng.add_sequence("a")

    def test_unknown_sequence_rejected(self):
        eng = multi_engine()
        with pytest.raises(ValueError, match="unknown sequence"):
            eng.step_seq("ghost")
        with pytest.raises(ValueError, match="unknown sequence"):
            eng.remove_sequence("ghost")

    def test_step_without_prefill_rejected(self):
        eng = multi_engine()
        eng.add_sequence("a")  # no prompt
        with pytest.raises(RuntimeError, match="no cached positions"):
            eng.step_seq("a")

    def test_prompt_is_deterministic_per_name(self):
        """Same engine seed + same sequence name => identical prompt
        rows and initial hidden state, on ANY engine instance — the
        replay-on-recovery contract."""
        e1, e2 = multi_engine(), multi_engine()
        e1.add_sequence("tenant0/req3", prompt_tokens=4)
        e2.add_sequence("tenant0/req3", prompt_tokens=4)
        np.testing.assert_array_equal(
            e1.hidden_state("tenant0/req3"), e2.hidden_state("tenant0/req3")
        )
        for layer in range(e1.layers):
            k1, v1 = e1.cache.dense_kv("tenant0/req3", layer)
            k2, v2 = e2.cache.dense_kv("tenant0/req3", layer)
            np.testing.assert_array_equal(k1, k2)
            np.testing.assert_array_equal(v1, v2)

    def test_distinct_names_get_distinct_streams(self):
        eng = multi_engine()
        eng.add_sequence("a", prompt_tokens=2)
        eng.add_sequence("b", prompt_tokens=2)
        assert not np.array_equal(eng.hidden_state("a"), eng.hidden_state("b"))


class TestSoloBatchEquivalence:
    def test_batched_matches_solo_bit_for_bit(self):
        """Three sequences interleaved through one engine produce, per
        sequence, the exact hidden states / KV / timing (minus
        staging) of running each alone."""
        names = ["a", "b", "c"]
        prompts = {"a": 2, "b": 5, "c": 3}

        shared = multi_engine()
        for n in names:
            shared.add_sequence(n, prompt_tokens=prompts[n])
        batched = {n: [] for n in names}
        for _ in range(6):
            it = shared.step_batch(names)
            for rep in it.reports:
                batched[rep.sequence].append(rep)

        for n in names:
            solo_eng = multi_engine()
            solo_eng.add_sequence(n, prompt_tokens=prompts[n])
            for i in range(6):
                rep = solo_eng.step_seq(n)
                bat = batched[n][i]
                assert bat.position == rep.position
                assert bat.capacity == rep.capacity
                assert bat.compute_s == rep.compute_s
                assert bat.h2d_s == rep.h2d_s
                assert bat.d2h_s == rep.d2h_s
                assert bat.cache_growth_s == rep.cache_growth_s
            np.testing.assert_array_equal(
                shared.hidden_state(n), solo_eng.hidden_state(n)
            )
            for layer in range(shared.layers):
                k_b, v_b = shared.cache.dense_kv(n, layer)
                k_s, v_s = solo_eng.cache.dense_kv(n, layer)
                np.testing.assert_array_equal(k_b, k_s)
                np.testing.assert_array_equal(v_b, v_s)

    def test_batch_deterministic_across_worker_counts(self):
        def run(max_workers):
            eng = multi_engine(max_workers=max_workers)
            eng.add_sequence("a", prompt_tokens=2)
            eng.add_sequence("b", prompt_tokens=4)
            out = []
            for _ in range(5):
                it = eng.step_batch(["a", "b"])
                out.append([r.to_dict() for r in it.reports])
            out.append(eng.hidden_state("a").tobytes())
            out.append(eng.hidden_state("b").tobytes())
            return out

        assert run(1) == run(4)


class TestIterationReport:
    def test_empty_batch(self):
        eng = multi_engine()
        it = eng.step_batch([])
        assert it == IterationReport(reports=())
        assert it.device_seconds(dispatch_overhead_s=1.0) == 0.0

    def test_duplicates_rejected(self):
        eng = multi_engine()
        eng.add_sequence("a", prompt_tokens=2)
        with pytest.raises(ValueError, match="duplicate"):
            eng.step_batch(["a", "a"])

    def test_device_seconds_amortizes_kernels(self):
        """Two same-capacity sequences in one replica group pay the
        kernel once per round; their transfers stay serialized."""
        eng = multi_engine()
        eng.add_sequence("a", prompt_tokens=2)
        eng.add_sequence("b", prompt_tokens=2)
        it = eng.step_batch(["a", "b"])
        a, b = it.reports
        assert a.capacity == b.capacity
        # groups=2: both sequences share one kernel round.
        shared = it.device_seconds(dispatch_overhead_s=0.5, replica_groups=2)
        assert shared == 0.5 + a.compute_s + a.serial_s + b.serial_s
        # groups=1: two rounds of kernels.
        serial = it.device_seconds(dispatch_overhead_s=0.5, replica_groups=1)
        assert serial == 0.5 + 2 * a.compute_s + a.serial_s + b.serial_s
        assert shared < serial

    def test_mixed_capacities_pay_per_group(self):
        eng = multi_engine(page_tokens=4)
        eng.add_sequence("short", prompt_tokens=2)
        eng.add_sequence("long", prompt_tokens=7)
        it = eng.step_batch(["short", "long"])
        s, l = it.reports
        assert s.capacity != l.capacity
        dur = it.device_seconds(dispatch_overhead_s=0.0, replica_groups=8)
        assert dur == s.compute_s + l.compute_s + s.serial_s + l.serial_s

    def test_invalid_groups_rejected(self):
        eng = multi_engine()
        eng.add_sequence("a", prompt_tokens=2)
        it = eng.step_batch(["a"])
        with pytest.raises(ValueError, match="replica_groups"):
            it.device_seconds(replica_groups=0)


class TestEpochResidency:
    def test_multiple_epochs_stay_resident(self):
        """Mixed-position batches revisit capacities every iteration;
        with max_resident_epochs they recompile only on first sight."""
        eng = multi_engine(page_tokens=4, max_resident_epochs=4)
        eng.add_sequence("a", prompt_tokens=2)   # capacity 4
        eng.add_sequence("b", prompt_tokens=6)   # capacity 8
        first = eng.step_batch(["a", "b"])
        assert [r.replanned for r in first.reports] == [True, True]
        again = eng.step_batch(["a", "b"])
        assert [r.replanned for r in again.reports] == [False, False]
        assert [r.compiled_programs for r in again.reports] == [0, 0]
        assert len(eng._epochs) == 2

    def test_epoch_eviction_unpins_stale_keys(self):
        eng = multi_engine(page_tokens=2, max_resident_epochs=1)
        eng.add_sequence("a", prompt_tokens=2)
        for _ in range(4):
            eng.step_seq("a")
        # Single-slot semantics: only the live epoch's keys stay pinned.
        assert eng.pool.stats()["pinned"] == len(eng._epoch_keys)

    def test_page_preflight_helpers(self):
        eng = multi_engine(page_tokens=4)
        assert eng.prompt_pages(1) == eng.layers
        assert eng.prompt_pages(4) == eng.layers
        assert eng.prompt_pages(5) == 2 * eng.layers
        eng.add_sequence("a", prompt_tokens=4)
        # length==4, next append starts page 2 in every layer.
        assert eng.step_pages("a") == eng.layers
        eng.step_seq("a")
        assert eng.step_pages("a") == 0


class TestLegacySurface:
    def test_seq0_decode_unchanged_by_refactor(self):
        """decode() still produces the identical trajectory whether or
        not other sequences were registered first."""
        plain = tiny_engine(check_references=False)
        r1 = plain.decode(tokens=4, prompt_tokens=2)

        crowded = tiny_engine(
            check_references=False, max_resident_epochs=4
        )
        crowded.add_sequence("bystander", prompt_tokens=3)
        crowded.prefill(2)
        hidden = []
        for _ in range(4):
            crowded.step_seq("seq0")
            hidden.append(crowded.hidden_state("seq0").copy())
        for a, b in zip(r1.hidden_states, hidden):
            np.testing.assert_array_equal(a, b)

    def test_shared_pool_across_engines(self):
        pool = ExecutablePool(capacity=64)
        e1 = multi_engine(pool=pool)
        e2 = multi_engine(pool=pool)
        e1.add_sequence("a", prompt_tokens=2)
        r1 = e1.step_seq("a")
        e2.add_sequence("a", prompt_tokens=2)
        r2 = e2.step_seq("a")
        # Second engine's epoch compile is served from the shared pool.
        assert r1.compiled_programs > 0
        assert r2.compiled_programs == 0
        np.testing.assert_array_equal(
            e1.hidden_state("a"), e2.hidden_state("a")
        )
