"""Shared fixtures: a tiny GPT-J config the decode loop can afford.

``TINY`` mirrors ``tests/graph/conftest.py`` — 2 heads of 16, d=32 —
so multi-layer multi-token runs (each step executes every node
functionally) stay in the milliseconds.
"""

import pytest

from repro.decode import DecodeEngine
from repro.workloads.gptj import GPTJConfig

TINY = GPTJConfig("gptj-tiny", n_heads=2, d_model=32, head_dim=16)

#: One TINY layer's FC weights (qkv_gen + proj + fc + fc_proj), float32.
TINY_LAYER_NBYTES = 12 * TINY.d_model * TINY.d_model * 4


def tiny_engine(**kwargs) -> DecodeEngine:
    defaults = dict(config=TINY, layers=2, page_tokens=4, seed=0)
    defaults.update(kwargs)
    return DecodeEngine(**defaults)


@pytest.fixture
def engine() -> DecodeEngine:
    return tiny_engine()
