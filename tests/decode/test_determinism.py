"""Decode determinism: worker counts and simulator backends are
invisible — outputs, timings, plans, and schedules are bit-for-bit."""

from .conftest import tiny_engine

TOKENS = 5
PROMPT = 6


def run(max_workers=None, **kwargs):
    engine = tiny_engine(max_workers=max_workers, layers=3, **kwargs)
    return engine.decode(tokens=TOKENS, prompt_tokens=PROMPT)


def assert_identical(a, b):
    # Hidden states byte-for-byte.
    assert len(a.hidden_states) == len(b.hidden_states)
    for x, y in zip(a.hidden_states, b.hidden_states):
        assert x.tobytes() == y.tobytes()
    # Every reported number, exactly (no approx): step reports, layer
    # breakdowns, stage/cache event streams, plans.
    assert [s.to_dict() for s in a.steps] == [s.to_dict() for s in b.steps]
    assert [s.per_layer for s in a.steps] == [s.per_layer for s in b.steps]
    assert [s.stage_events for s in a.steps] == [
        s.stage_events for s in b.steps
    ]
    assert [s.cache_events for s in a.steps] == [
        s.cache_events for s in b.steps
    ]
    assert a.totals() == b.totals()
    assert a.per_layer_totals() == b.per_layer_totals()
    assert a.memory_plan.to_dict() == b.memory_plan.to_dict()
    assert a.cache_stats == b.cache_stats
    assert a.residency_stats == b.residency_stats
    assert a.to_dict() == b.to_dict()


class TestWorkerCounts:
    def test_serial_vs_parallel_bit_for_bit(self):
        assert_identical(run(max_workers=1), run(max_workers=4))

    def test_default_matches_serial(self):
        assert_identical(run(max_workers=None), run(max_workers=1))

    def test_constrained_residency_identical_too(self):
        budget = 2 * 12 * 32 * 32 * 4  # 2 of 3 tiny layers
        assert_identical(
            run(max_workers=1, mram_budget_bytes=budget),
            run(max_workers=4, mram_budget_bytes=budget),
        )


class TestSimModes:
    def test_verify_mode_bit_for_bit(self, monkeypatch):
        # verify runs every kernel through BOTH the vectorized backend
        # and the scalar interpreter and insists the bytes agree —
        # then the decode run must still be identical to vector mode.
        baseline = run(max_workers=2)
        monkeypatch.setenv("REPRO_SIM_MODE", "verify")
        assert_identical(baseline, run(max_workers=2))

    def test_scalar_mode_bit_for_bit(self, monkeypatch):
        baseline = run(max_workers=1)
        monkeypatch.setenv("REPRO_SIM_MODE", "scalar")
        assert_identical(baseline, run(max_workers=1))


class TestExperimentPayload:
    def test_fig17_multilayer_reproduces(self):
        from repro.harness import fig17_multilayer

        a = fig17_multilayer(layers=2, tokens=4, max_workers=1)
        b = fig17_multilayer(layers=2, tokens=4, max_workers=4)
        assert a == b

    def test_seed_changes_data_not_schedule(self):
        a, b = run(), run(seed=7)
        assert any(
            x.tobytes() != y.tobytes()
            for x, y in zip(a.hidden_states, b.hidden_states)
        )
        # Structure-derived schedules are seed-independent.
        assert [s.capacity for s in a.steps] == [
            s.capacity for s in b.steps
        ]
        assert [s.compiled_programs for s in a.steps] == [
            s.compiled_programs for s in b.steps
        ]
