"""Tracer semantics: virtual cursors, nesting, scoping, the null path."""

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    set_tracer,
    tracing_enabled,
    use_tracer,
)


class TestVirtualClock:
    def test_cursor_starts_at_zero(self):
        t = Tracer()
        assert t.now("anything") == 0.0

    def test_timed_span_advances_cursor(self):
        t = Tracer()
        t.timed_span("a", track="x", dur_s=0.5)
        t.timed_span("b", track="x", dur_s=0.25)
        assert t.now("x") == 0.75
        assert [s.ts for s in t.spans] == [0.0, 0.5]

    def test_tracks_are_independent(self):
        t = Tracer()
        t.timed_span("a", track="x", dur_s=1.0)
        t.timed_span("b", track="y", dur_s=0.5)
        assert (t.now("x"), t.now("y")) == (1.0, 0.5)

    def test_explicit_ts_jumps_forward_never_back(self):
        t = Tracer()
        t.timed_span("a", track="x", dur_s=0.1, ts_s=2.0)
        assert t.spans[0].ts == 2.0
        # An earlier explicit timestamp clamps to the cursor.
        t.instant("late", track="x", ts_s=0.5)
        assert t.events[-1].ts == 2.1

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            Tracer().advance("x", -1.0)

    def test_timed_span_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Tracer().timed_span("a", dur_s=-0.1)


class TestNesting:
    def test_span_extends_to_cover_children(self):
        t = Tracer()
        with t.span("outer", track="x"):
            t.timed_span("child1", track="x", dur_s=0.2)
            t.timed_span("child2", track="x", dur_s=0.3)
        outer = [s for s in t.spans if s.name == "outer"][0]
        assert (outer.ts, outer.dur) == (0.0, 0.5)

    def test_span_dur_sets_minimum_extent(self):
        t = Tracer()
        with t.span("outer", track="x", dur_s=1.0):
            t.timed_span("child", track="x", dur_s=0.2)
        outer = [s for s in t.spans if s.name == "outer"][0]
        assert outer.dur == 1.0
        assert t.now("x") == 1.0

    def test_events_balance(self):
        t = Tracer()
        with t.span("a", track="x"):
            with t.span("b", track="x"):
                t.instant("i", track="x")
        phases = [e.phase for e in t.events]
        assert phases == ["B", "B", "i", "E", "E"]

    def test_per_track_timestamps_nondecreasing(self):
        t = Tracer()
        with t.span("outer", track="x"):
            t.timed_span("a", track="x", dur_s=0.5)
            t.instant("p", track="x")
            t.timed_span("b", track="x", dur_s=0.5)
        seen = {}
        for e in t.events:
            assert e.ts >= seen.get(e.track, 0.0)
            seen[e.track] = e.ts


class TestQueries:
    def test_top_spans_ordered_by_duration(self):
        t = Tracer()
        t.timed_span("short", dur_s=0.1)
        t.timed_span("long", dur_s=0.9)
        t.timed_span("mid", dur_s=0.5)
        assert [s.name for s in t.top_spans(2)] == ["long", "mid"]

    def test_top_spans_tiebreak_is_deterministic(self):
        t = Tracer()
        t.timed_span("b", track="y", dur_s=0.5)
        t.timed_span("a", track="x", dur_s=0.5)
        # Same duration, same start: track name breaks the tie.
        assert [s.name for s in t.top_spans(2)] == ["a", "b"]

    def test_tracks_listing(self):
        t = Tracer()
        t.instant("i", track="z")
        t.instant("i", track="a")
        assert t.tracks() == ["a", "z"]


class TestScoping:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER
        assert not tracing_enabled()

    def test_use_tracer_scopes_and_restores(self):
        t = Tracer()
        with use_tracer(t) as active:
            assert active is t
            assert current_tracer() is t
            assert tracing_enabled()
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_none_disables(self):
        t = Tracer()
        with use_tracer(t):
            with use_tracer(None):
                assert not tracing_enabled()
            assert current_tracer() is t

    def test_set_tracer_returns_previous(self):
        t = Tracer()
        prev = set_tracer(t)
        try:
            assert prev is NULL_TRACER
            assert current_tracer() is t
        finally:
            set_tracer(prev)
        assert current_tracer() is NULL_TRACER


class TestNullTracer:
    def test_all_methods_are_noops(self):
        n = NullTracer()
        assert not n.enabled
        with n.span("a", track="x", dur_s=1.0):
            pass
        assert n.timed_span("b", dur_s=1.0) is None
        n.instant("i")
        n.counter("c", 1.0)
        assert n.advance("x", 5.0) == 0.0
        assert len(n) == 0
        assert n.spans == []

    def test_shared_span_handle_allocates_nothing(self):
        n = NullTracer()
        assert n.span("a") is n.span("b")


class TestWallClock:
    def test_off_by_default(self):
        t = Tracer()
        t.timed_span("a", dur_s=0.1)
        assert all(e.wall_ts is None for e in t.events)

    def test_opt_in_stamps_host_time(self):
        t = Tracer(wall_clock=True)
        with t.span("a"):
            pass
        assert all(e.wall_ts is not None for e in t.events)
        assert t.spans[0].wall_dur is not None
        assert t.spans[0].wall_dur >= 0.0
