"""MetricsRegistry: labeled counters/gauges/histograms, stable export."""

import json

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        m = MetricsRegistry()
        c = m.counter("hits")
        assert c.inc() == 1.0
        assert c.inc(2.5) == 3.5
        assert c.value() == 3.5

    def test_labeled_series_are_independent(self):
        c = MetricsRegistry().counter("hits")
        c.inc(labels={"key": "a"})
        c.inc(3, labels={"key": "b"})
        assert c.value(labels={"key": "a"}) == 1.0
        assert c.value(labels={"key": "b"}) == 3.0
        assert c.value() == 0.0

    def test_label_order_is_canonical(self):
        c = MetricsRegistry().counter("hits")
        c.inc(labels={"a": "1", "b": "2"})
        c.inc(labels={"b": "2", "a": "1"})
        assert c.value(labels={"a": "1", "b": "2"}) == 2.0

    def test_counters_cannot_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("hits").inc(-1)


class TestGauge:
    def test_set_add_value(self):
        g = MetricsRegistry().gauge("depth")
        g.set(4)
        assert g.add(-1.5) == 2.5
        assert g.value() == 2.5


class TestHistogram:
    def test_observe_buckets_and_summary(self):
        h = MetricsRegistry().histogram("lat", edges=[1.0, 2.0])
        for v in (0.5, 1.5, 1.7, 9.0):
            h.observe(v)
        snap = h.value()
        assert snap["counts"] == [1, 2, 1]  # <=1, <=2, overflow
        assert snap["count"] == 4
        assert snap["min"] == 0.5
        assert snap["max"] == 9.0

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", edges=[2.0, 1.0])

    def test_reregistering_with_other_edges_fails(self):
        m = MetricsRegistry()
        m.histogram("h", edges=[1.0, 2.0])
        with pytest.raises(ValueError):
            m.histogram("h", edges=[3.0])
        # Same edges (or unspecified) re-fetches the family.
        assert m.histogram("h", edges=[1.0, 2.0]) is m.histogram("h")


class TestRegistry:
    def test_kind_collision_raises(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_export_is_json_safe_and_sorted(self):
        m = MetricsRegistry()
        m.counter("b").inc(labels={"k": "1"})
        m.gauge("a").set(2)
        m.histogram("c").observe(0.5)
        out = m.export()
        assert list(out) == ["a", "b", "c"]
        json.dumps(out, sort_keys=True)  # must not raise

    def test_export_byte_stable(self):
        def build():
            m = MetricsRegistry()
            m.counter("hits").inc(labels={"z": "9", "a": "0"})
            m.counter("hits").inc(labels={"a": "0", "z": "9"})
            m.histogram("lat").observe(0.1)
            return json.dumps(m.export(), sort_keys=True)

        assert build() == build()
