"""Exporters and the lint: Chrome mapping, JSONL, structural checks."""

import json

from repro.obs import (
    Tracer,
    chrome_trace,
    jsonl_events,
    trace_lint,
    write_chrome_trace,
    write_jsonl,
)


def sample_tracer() -> Tracer:
    t = Tracer()
    with t.span("step", track="decode", cat="decode"):
        t.timed_span("layer 0", track="decode", dur_s=0.25, args={"layer": 0})
        t.timed_span("kv.append L0", track="kv-cache", dur_s=0.001)
    t.instant("admit", track="serve.requests", args={"rid": 0})
    t.timed_span("flush", track="serve.device", dur_s=0.1, ts_s=0.5)
    t.counter("pool.size", 3, track="pool")
    t.metrics.counter("pool.hits").inc()
    return t


class TestChromeExport:
    def test_lanes_map_subsystem_to_pid_track_to_tid(self):
        payload = chrome_trace(sample_tracer())
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        tracks = sorted(names.values())
        assert tracks == [
            "decode", "kv-cache", "pool", "serve.device", "serve.requests",
        ]
        # The two serve.* tracks share one pid (subsystem "serve").
        serve_pids = {
            pid for (pid, _), name in names.items()
            if name.startswith("serve.")
        }
        assert len(serve_pids) == 1

    def test_process_names_are_subsystems(self):
        payload = chrome_trace(sample_tracer())
        processes = sorted(
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        )
        assert processes == ["decode", "kv-cache", "pool", "serve"]

    def test_ts_is_microseconds(self):
        payload = chrome_trace(sample_tracer())
        layer = [
            e for e in payload["traceEvents"]
            if e.get("name") == "layer 0" and e["ph"] == "E"
        ][0]
        assert layer["ts"] == 0.25 * 1e6

    def test_counter_and_instant_phases(self):
        payload = chrome_trace(sample_tracer())
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"B", "E", "i", "C", "M"} <= phases
        inst = [e for e in payload["traceEvents"] if e["ph"] == "i"][0]
        assert inst["s"] == "t"

    def test_metrics_ride_in_other_data(self):
        payload = chrome_trace(sample_tracer())
        assert "pool.hits" in payload["otherData"]["metrics"]

    def test_write_is_byte_deterministic(self, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(sample_tracer(), str(p1))
        write_chrome_trace(sample_tracer(), str(p2))
        assert p1.read_bytes() == p2.read_bytes()
        json.loads(p1.read_text())  # valid JSON

    def test_args_tuples_become_lists(self):
        t = Tracer()
        t.instant("i", track="x", args={"pages": (1, 2), "n": 3})
        payload = chrome_trace(t)
        ev = [e for e in payload["traceEvents"] if e["ph"] == "i"][0]
        assert ev["args"] == {"pages": [1, 2], "n": 3}


class TestJsonl:
    def test_one_row_per_event(self, tmp_path):
        t = sample_tracer()
        path = tmp_path / "t.jsonl"
        count = write_jsonl(t, str(path))
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(t.events)
        rows = [json.loads(line) for line in lines]
        assert rows == jsonl_events(t)
        assert {"ph", "name", "track", "ts"} <= set(rows[0])


class TestLint:
    def test_clean_trace_passes(self):
        assert trace_lint(chrome_trace(sample_tracer())) == []

    def test_accepts_path_and_json_string(self, tmp_path):
        t = sample_tracer()
        path = tmp_path / "t.json"
        payload = write_chrome_trace(t, str(path))
        assert trace_lint(str(path)) == []
        assert trace_lint(json.dumps(payload)) == []

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        problems = trace_lint(str(path))
        assert problems and "not valid" in problems[0]

    def test_rejects_empty_trace(self):
        assert trace_lint({"traceEvents": []}) == ["traceEvents is empty"]

    def test_catches_backwards_timestamps(self):
        events = [
            {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 5.0},
            {"ph": "i", "name": "b", "pid": 1, "tid": 1, "ts": 3.0},
        ]
        problems = trace_lint({"traceEvents": events})
        assert any("backwards" in p for p in problems)

    def test_other_lane_may_trail(self):
        events = [
            {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 5.0},
            {"ph": "i", "name": "b", "pid": 1, "tid": 2, "ts": 1.0},
        ]
        assert trace_lint({"traceEvents": events}) == []

    def test_catches_unbalanced_spans(self):
        events = [
            {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0.0},
        ]
        problems = trace_lint({"traceEvents": events})
        assert any("unclosed" in p for p in problems)

    def test_catches_stray_end(self):
        events = [
            {"ph": "E", "name": "a", "pid": 1, "tid": 1, "ts": 0.0},
        ]
        problems = trace_lint({"traceEvents": events})
        assert any("no open span" in p for p in problems)

    def test_catches_mismatched_end_name(self):
        events = [
            {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0.0},
            {"ph": "E", "name": "b", "pid": 1, "tid": 1, "ts": 1.0},
        ]
        problems = trace_lint({"traceEvents": events})
        assert any("open span" in p for p in problems)

    def test_cli_entrypoint(self, tmp_path):
        from repro.obs.lint import main

        path = tmp_path / "t.json"
        write_chrome_trace(sample_tracer(), str(path))
        assert main([str(path)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": []}')
        assert main([str(bad)]) == 1
        assert main([]) == 2
