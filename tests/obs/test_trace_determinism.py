"""Trace determinism & coverage: the exported virtual-clock trace is
byte-identical at any host thread count and under verify mode, and an
instrumented decode run reports from every subsystem."""

import json

import pytest

from repro.autotune.compile import default_engine
from repro.obs import Tracer, chrome_trace, trace_lint, use_tracer, write_chrome_trace

from ..decode.conftest import tiny_engine

TOKENS = 5
PROMPT = 6


def traced_decode(max_workers, tmp_path, tag) -> bytes:
    """One fully traced fig17-style decode run, exported to bytes.

    The process-wide artifact cache is cleared first so every run
    (re)compiles the same programs and emits the same pipeline spans —
    a warm cache would legitimately shrink later runs' traces.
    """
    default_engine().cache.clear()
    tracer = Tracer()
    with use_tracer(tracer):
        engine = tiny_engine(max_workers=max_workers, layers=3)
        engine.decode(tokens=TOKENS, prompt_tokens=PROMPT)
    path = tmp_path / f"trace-{tag}.json"
    payload = write_chrome_trace(tracer, str(path))
    assert trace_lint(payload) == []
    return path.read_bytes()


class TestByteIdentity:
    def test_workers_1_vs_4_vs_default(self, tmp_path):
        a = traced_decode(1, tmp_path, "w1")
        b = traced_decode(4, tmp_path, "w4")
        c = traced_decode(None, tmp_path, "wN")
        assert a == b == c

    def test_verify_mode_identical(self, tmp_path, monkeypatch):
        baseline = traced_decode(2, tmp_path, "vector")
        monkeypatch.setenv("REPRO_SIM_MODE", "verify")
        assert traced_decode(2, tmp_path, "verify") == baseline

    def test_repeated_export_identical(self, tmp_path):
        default_engine().cache.clear()
        tracer = Tracer()
        with use_tracer(tracer):
            tiny_engine(layers=2).decode(tokens=2, prompt_tokens=4)
        one = json.dumps(chrome_trace(tracer), sort_keys=True)
        two = json.dumps(chrome_trace(tracer), sort_keys=True)
        assert one == two


class TestSubsystemCoverage:
    @pytest.fixture(scope="class")
    def decode_trace(self):
        default_engine().cache.clear()
        tracer = Tracer()
        with use_tracer(tracer):
            tiny_engine(layers=3).decode(tokens=TOKENS, prompt_tokens=PROMPT)
        return tracer

    def test_all_decode_side_subsystems_report(self, decode_trace):
        assert set(decode_trace.tracks()) >= {
            "pipeline", "pool", "graph", "kv-cache", "residency", "decode",
        }

    def test_pipeline_spans_include_passes(self, decode_trace):
        names = {s.name for s in decode_trace.spans if s.track == "pipeline"}
        assert any(n.startswith("pipeline ") for n in names)

    def test_pool_events_cover_lifecycle(self, decode_trace):
        names = {
            e.name for e in decode_trace.events if e.track == "pool"
        }
        assert {"pool.miss", "pool.hit", "pool.pin"} <= names

    def test_step_spans_cover_step_total(self, decode_trace):
        steps = [
            s for s in decode_trace.spans
            if s.track == "decode" and s.name.startswith("step ")
            and "graph" not in s.name
        ]
        assert len(steps) == TOKENS
        layers = [
            s for s in decode_trace.spans
            if s.track == "decode" and s.name.startswith("layer ")
        ]
        assert len(layers) == TOKENS * 3
        # Each step's extent equals the sum of its layer spans.
        assert sum(s.dur for s in steps) == pytest.approx(
            sum(s.dur for s in layers)
        )

    def test_kv_and_residency_charge_virtual_time(self, decode_trace):
        kv = [s for s in decode_trace.spans if s.track == "kv-cache"]
        stage = [s for s in decode_trace.spans if s.track == "residency"]
        assert kv and all(s.dur > 0 for s in kv)
        assert stage and all(s.dur > 0 for s in stage)

    def test_graph_breakdown_spans_present(self, decode_trace):
        names = {s.name for s in decode_trace.spans if s.track == "graph"}
        assert "compute" in names


class TestServeTrace:
    def test_request_lifecycle_events(self):
        from repro.serve import ExecutablePool, Request, Server

        from ..serve.conftest import tiny_mix

        mix = tiny_mix()
        entry = mix["va"]
        tracer = Tracer()
        with use_tracer(tracer):
            with Server(
                ExecutablePool(capacity=4),
                max_batch_size=2,
                max_wait_ticks=2,
                queue_limit=2,
            ) as server:
                tickets = [
                    server.submit(
                        Request(
                            workload=entry.workload,
                            inputs=entry.workload.random_inputs(seed=i),
                            params=entry.params,
                        )
                    )
                    for i in range(4)
                ]
                server.drain()
        assert any(t.done for t in tickets)
        names = {e.name for e in tracer.events}
        assert {"admit", "flush va", "respond"} <= names
        assert trace_lint(chrome_trace(tracer)) == []

    def test_reject_and_fail_events(self):
        from repro.serve import ExecutablePool, Request, Server

        from ..serve.conftest import tiny_mix

        entry = tiny_mix()["va"]
        tracer = Tracer()
        with use_tracer(tracer):
            with Server(ExecutablePool(capacity=2), queue_limit=1) as server:
                server.submit(
                    Request(
                        workload=entry.workload,
                        inputs=entry.workload.random_inputs(seed=0),
                        params=entry.params,
                    )
                )
                # Queue full -> reject.
                server.submit(
                    Request(
                        workload=entry.workload,
                        inputs=entry.workload.random_inputs(seed=1),
                        params=entry.params,
                    )
                )
                # Bad input names -> the group fails at flush.
                server.drain()
        names = {e.name for e in tracer.events}
        assert "reject" in names


class TestDisabledOverhead:
    def test_decode_emits_nothing_when_disabled(self):
        from repro.obs import NULL_TRACER, current_tracer

        assert current_tracer() is NULL_TRACER
        tiny_engine(layers=2).decode(tokens=2, prompt_tokens=4)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.spans == []
