"""Property: §5.3 passes never change what a kernel computes.

Random guarded copy/compute loop nests are built directly in TIR (not via
the scheduler), transformed by each pass, and interpreted before/after.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import (
    eliminate_copy_checks,
    hoist_invariant_branches,
    optimize_kernel,
    tighten_loop_bounds,
)
from repro.tir import (
    Buffer,
    BufferLoad,
    BufferStore,
    For,
    IfThenElse,
    IntImm,
    Var,
    seq,
)
from repro.upmem.interp import Interpreter


def _run(stmt, buffers, seed):
    rng = np.random.default_rng(seed)
    arrays = {}
    for buf in buffers:
        arrays[buf] = rng.random(buf.shape).astype(np.float32)
    Interpreter(arrays).run(stmt, {})
    return arrays


def _guarded_pipeline(tile, n_tiles, bound, rows, row_bound):
    """Build: per tile, guarded copy MRAM->WRAM then guarded compute."""
    mram = Buffer("M", (max(1, n_tiles * tile),), "float32", scope="mram")
    wram = Buffer("W", (tile,), "float32", scope="wram")
    out = Buffer("O", (max(1, rows),), "float32", scope="mram")
    j = Var("j")
    v = Var("v")
    r = Var("r")
    copy = For(
        v,
        tile,
        IfThenElse(
            j * tile + v < bound,
            BufferStore(wram, BufferLoad(mram, [j * tile + v]), [v]),
        ),
    )
    compute = For(
        v,
        tile,
        IfThenElse(
            j * tile + v < bound,
            BufferStore(
                out,
                BufferLoad(out, [r]) + BufferLoad(wram, [v]),
                [r],
            ),
        ),
    )
    inner = For(j, n_tiles, seq(copy, compute))
    guarded = IfThenElse(r < row_bound, inner)
    nest = For(r, rows, guarded)
    return nest, [mram, wram, out]


@settings(max_examples=40, deadline=None)
@given(
    tile=st.integers(2, 8),
    n_tiles=st.integers(1, 4),
    slack=st.integers(0, 7),
    rows=st.integers(1, 5),
    row_slack=st.integers(0, 3),
    seed=st.integers(0, 5),
)
def test_passes_preserve_output(tile, n_tiles, slack, rows, row_slack, seed):
    bound = max(1, n_tiles * tile - slack)
    row_bound = max(1, rows - row_slack)
    reference, buffers = _guarded_pipeline(tile, n_tiles, bound, rows, row_bound)
    before = _run(reference, buffers, seed)

    for transform in (
        eliminate_copy_checks,
        tighten_loop_bounds,
        hoist_invariant_branches,
        lambda s: optimize_kernel(s, "O3"),
    ):
        stmt, bufs = _guarded_pipeline(tile, n_tiles, bound, rows, row_bound)
        after = _run(transform(stmt), bufs, seed)
        out_before = before[buffers[2]]
        out_after = after[bufs[2]]
        np.testing.assert_allclose(out_before, out_after, rtol=1e-5)


@settings(max_examples=30, deadline=None)
@given(
    tile=st.integers(2, 8),
    slack=st.integers(0, 7),
    seed=st.integers(0, 3),
)
def test_dma_elim_copies_are_equivalent_in_valid_region(tile, slack, seed):
    """After DMA elimination the valid region of WRAM is identical.

    (The padded tail may differ — local padding makes over-reads safe.)
    """
    n = 3
    bound = max(1, n * tile - slack)
    mram = Buffer("M", (n * tile,), "float32", scope="mram")
    wram = Buffer("W", (tile,), "float32", scope="wram")
    j, v = Var("j"), Var("v")
    copy = For(
        j,
        n,
        For(
            v,
            tile,
            IfThenElse(
                j * tile + v < bound,
                BufferStore(wram, BufferLoad(mram, [j * tile + v]), [v]),
            ),
        ),
    )
    before = _run(copy, [mram, wram], seed)
    after = _run(eliminate_copy_checks(copy), [mram, wram], seed)
    # The last iteration of j leaves the final tile in WRAM; compare its
    # valid prefix.
    valid = max(0, bound - (n - 1) * tile)
    np.testing.assert_allclose(
        before[wram][:valid], after[wram][:valid], rtol=1e-6
    )
