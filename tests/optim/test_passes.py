"""The three PIM-aware optimization passes (§5.3) — unit level."""

import numpy as np
import pytest

from repro.optim import (
    eliminate_copy_checks,
    hoist_invariant_branches,
    optimize_kernel,
    tighten_loop_bounds,
)
from repro.tir import (
    Buffer,
    BufferLoad,
    BufferStore,
    DmaCopy,
    For,
    ForKind,
    IfThenElse,
    IntImm,
    Min,
    SeqStmt,
    Var,
    iter_stmts,
    seq,
)


def guarded_copy_loop(n=16, guard=True, mram_rows=64):
    """for v in range(n): if base+v < K: W[v] = M[base+v]"""
    w = Buffer("W", (n,), "float32", scope="wram")
    m = Buffer("M", (mram_rows,), "float32", scope="mram")
    v = Var("v")
    base = Var("base")
    store = BufferStore(w, BufferLoad(m, [base + v]), [v])
    body = IfThenElse(base + v < 50, store) if guard else store
    return For(v, n, body), w, m


class TestDmaElim:
    def test_guarded_copy_becomes_dma(self):
        loop, w, m = guarded_copy_loop()
        result = eliminate_copy_checks(loop)
        assert isinstance(result, DmaCopy)
        assert result.size == 16
        assert result.dst is w and result.src is m

    def test_unguarded_copy_becomes_dma(self):
        loop, _, _ = guarded_copy_loop(guard=False)
        assert isinstance(eliminate_copy_checks(loop), DmaCopy)

    def test_writeback_direction(self):
        w = Buffer("W", (8,), "float32", scope="wram")
        m = Buffer("M", (64,), "float32", scope="mram")
        v = Var("v")
        loop = For(v, 8, BufferStore(m, BufferLoad(w, [v]), [Var("b") + v]))
        result = eliminate_copy_checks(loop)
        assert isinstance(result, DmaCopy)
        assert result.dst is m

    def test_strided_copy_keeps_loop_but_drops_check(self):
        w = Buffer("W", (16,), "float32", scope="wram")
        m = Buffer("M", (256,), "float32", scope="mram")
        v = Var("v")
        store = BufferStore(w, BufferLoad(m, [v * 2]), [v])  # stride 2
        loop = For(v, 16, IfThenElse(v * 2 < 30, store))
        result = eliminate_copy_checks(loop)
        assert isinstance(result, For)
        assert isinstance(result.body, BufferStore)  # check removed

    def test_outer_loop_merged_when_contiguous(self):
        w = Buffer("W", (4, 16), "float32", scope="wram")
        m = Buffer("M", (4, 16), "float32", scope="mram")
        r, v = Var("r"), Var("v")
        inner = For(v, 16, BufferStore(w, BufferLoad(m, [r, v]), [r, v]))
        outer = For(r, 4, inner)
        result = eliminate_copy_checks(outer)
        assert isinstance(result, DmaCopy)
        assert result.size == 64

    def test_outer_loop_not_merged_when_strided(self):
        w = Buffer("W", (4, 16), "float32", scope="wram")
        m = Buffer("M", (4, 64), "float32", scope="mram")  # wider rows
        r, v = Var("r"), Var("v")
        inner = For(v, 16, BufferStore(w, BufferLoad(m, [r, v]), [r, v]))
        result = eliminate_copy_checks(For(r, 4, inner))
        assert isinstance(result, For)
        assert isinstance(result.body, DmaCopy)
        assert result.body.size == 16

    def test_compute_guard_untouched(self):
        # Not a pure copy: the value is an arithmetic expression.
        w = Buffer("W", (16,), "float32", scope="wram")
        v = Var("v")
        store = BufferStore(w, BufferLoad(w, [v]) + 1.0, [v])
        loop = For(v, 16, IfThenElse(v < 10, store))
        result = eliminate_copy_checks(loop)
        assert isinstance(result.body, IfThenElse)

    def test_wram_to_wram_untouched(self):
        a = Buffer("A", (16,), "float32", scope="wram")
        b = Buffer("B", (16,), "float32", scope="wram")
        v = Var("v")
        loop = For(v, 16, BufferStore(a, BufferLoad(b, [v]), [v]))
        assert isinstance(eliminate_copy_checks(loop), For)

    def test_thread_loop_never_converted(self):
        loop, _, _ = guarded_copy_loop(guard=False)
        tloop = For(
            Var("t"), 2, loop, ForKind.THREAD_BINDING, "threadIdx.x"
        )
        result = eliminate_copy_checks(tloop)
        assert isinstance(result, For)
        assert result.kind is ForKind.THREAD_BINDING


class TestTighten:
    def _compute_loop(self, extent, bound, extra_cond=None):
        w = Buffer("W", (64,), "float32", scope="wram")
        v = Var("v")
        store = BufferStore(w, BufferLoad(w, [v]) + 1.0, [v])
        cond = v < bound
        if extra_cond is not None:
            from repro.tir import And

            cond = And(cond, extra_cond)
        return For(v, extent, IfThenElse(cond, store)), v

    def test_upper_bound_intersected(self):
        loop, v = self._compute_loop(16, 10)
        result = tighten_loop_bounds(loop)
        assert isinstance(result, For)
        from repro.tir import const_int, simplify

        assert const_int(simplify(result.extent)) == 10
        assert isinstance(result.body, BufferStore)

    def test_symbolic_bound_produces_min(self):
        j = Var("j")
        w = Buffer("W", (64,), "float32", scope="wram")
        v = Var("v")
        store = BufferStore(w, BufferLoad(w, [v]) + 1.0, [v])
        loop = For(v, 16, IfThenElse(j * 16 + v < 50, store))
        result = tighten_loop_bounds(loop)
        assert isinstance(result.extent, Min)
        assert isinstance(result.body, BufferStore)

    def test_invariant_conjunct_left_in_place(self):
        i = Var("i")
        loop, v = self._compute_loop(16, 10, extra_cond=(i < 7))
        result = tighten_loop_bounds(loop)
        assert isinstance(result.body, IfThenElse)
        from repro.tir import collect_vars

        assert i in collect_vars(result.body.condition)

    def test_non_single_if_body_untouched(self):
        w = Buffer("W", (64,), "float32", scope="wram")
        v = Var("v")
        store = BufferStore(w, IntImm(0), [v])
        loop = For(v, 16, seq(store, store))
        result = tighten_loop_bounds(loop)
        assert isinstance(result.body, SeqStmt)

    def test_negative_coefficient_not_tightened(self):
        w = Buffer("W", (64,), "float32", scope="wram")
        v = Var("v")
        store = BufferStore(w, BufferLoad(w, [v]) + 1.0, [v])
        loop = For(v, 16, IfThenElse(IntImm(10) - v < 5, store))
        result = tighten_loop_bounds(loop)
        assert isinstance(result.body, IfThenElse)


class TestHoist:
    def test_invariant_branch_hoisted(self):
        i, v = Var("i"), Var("v")
        w = Buffer("W", (64,), "float32", scope="wram")
        store = BufferStore(w, BufferLoad(w, [v]) + 1.0, [v])
        loop = For(v, 16, IfThenElse(i < 7, store))
        result = hoist_invariant_branches(loop)
        assert isinstance(result, IfThenElse)
        assert isinstance(result.then_case, For)

    def test_variant_branch_not_hoisted(self):
        v = Var("v")
        w = Buffer("W", (64,), "float32", scope="wram")
        store = BufferStore(w, BufferLoad(w, [v]) + 1.0, [v])
        loop = For(v, 16, IfThenElse(v < 7, store))
        result = hoist_invariant_branches(loop)
        assert isinstance(result, For)

    def test_pdce_sinks_fill_into_guard(self):
        i, v = Var("i"), Var("v")
        w = Buffer("W", (16,), "float32", scope="wram")
        m = Buffer("M", (64,), "float32", scope="mram")
        fill = DmaCopy(w, [IntImm(0)], m, [IntImm(0)], 16)
        consume = IfThenElse(
            i < 7,
            BufferStore(w, BufferLoad(w, [v]) + 1.0, [v]),
        )
        result = hoist_invariant_branches(SeqStmt([fill, consume]))
        assert isinstance(result, IfThenElse)
        inner = result.then_case
        assert isinstance(inner, SeqStmt)
        assert isinstance(inner.stmts[0], DmaCopy)

    def test_fill_read_by_guard_not_sunk(self):
        i, v = Var("i"), Var("v")
        w = Buffer("W", (16,), "float32", scope="wram")
        m = Buffer("M", (64,), "float32", scope="mram")
        fill = DmaCopy(w, [IntImm(0)], m, [IntImm(0)], 16)
        consume = IfThenElse(
            BufferLoad(w, [IntImm(0)]) < 7.0,
            BufferStore(w, BufferLoad(w, [v]) + 1.0, [v]),
        )
        result = hoist_invariant_branches(SeqStmt([fill, consume]))
        assert isinstance(result, SeqStmt)

    def test_hoist_composes_through_outer_loop(self):
        # Fig. 8(d): sink fills, then hoist above the enclosing loop.
        i, j, v = Var("i"), Var("j"), Var("v")
        w = Buffer("W", (16,), "float32", scope="wram")
        m = Buffer("M", (64,), "float32", scope="mram")
        fill = DmaCopy(w, [IntImm(0)], m, [j], 16)
        compute = IfThenElse(
            i < 7, BufferStore(w, BufferLoad(w, [v]) + 1.0, [v])
        )
        nest = For(j, 3, SeqStmt([fill, compute]))
        result = hoist_invariant_branches(nest)
        assert isinstance(result, IfThenElse)
        assert isinstance(result.then_case, For)


class TestPipeline:
    def test_levels_validated(self):
        loop, _, _ = guarded_copy_loop()
        with pytest.raises(ValueError):
            optimize_kernel(loop, "O7")

    def test_o0_identity(self):
        loop, _, _ = guarded_copy_loop()
        assert optimize_kernel(loop, "O0") is loop
