"""O0→O3 applied to real lowered kernels: correctness + monotonicity."""

import numpy as np
import pytest

from repro.lowering import LowerOptions, lower
from repro.optim import optimize_module
from repro.upmem import FunctionalExecutor
from repro.upmem.system import PerformanceModel

from ..conftest import make_mtv_schedule

LEVELS = ("O0", "O1", "O2", "O3")


def profiles_for_levels(m, k, **kwargs):
    rng = np.random.default_rng(3)
    a = rng.random((m, k), dtype=np.float32)
    b = rng.random(k, dtype=np.float32)
    ref = a @ b
    model = PerformanceModel()
    results = {}
    for level in LEVELS:
        sch = make_mtv_schedule(m, k, **kwargs)
        module = optimize_module(
            lower(sch, options=LowerOptions(optimize=level)), level
        )
        out, = FunctionalExecutor(module).run({"A": a, "B": b})
        np.testing.assert_allclose(out, ref, rtol=1e-3)
        results[level] = model.profile(module)
    return results


class TestMisalignedMTV:
    @pytest.fixture(scope="class")
    def profiles(self):
        return profiles_for_levels(37, 50)

    def test_all_levels_correct(self, profiles):
        assert set(profiles) == set(LEVELS)

    def test_dma_elim_reduces_dma_calls(self, profiles):
        assert profiles["O1"].dpu.dma_calls < profiles["O0"].dpu.dma_calls

    def test_each_level_not_slower(self, profiles):
        times = [profiles[lv].latency.kernel for lv in LEVELS]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier * 1.001

    def test_o3_meaningfully_faster_than_o0(self, profiles):
        assert (
            profiles["O0"].latency.kernel
            > profiles["O3"].latency.kernel * 1.5
        )

    def test_instruction_count_decreases(self, profiles):
        instrs = [profiles[lv].dpu.instructions for lv in LEVELS]
        assert instrs == sorted(instrs, reverse=True)


class TestAlignedMTV:
    def test_aligned_shape_unaffected_by_lt_bh(self):
        profiles = profiles_for_levels(64, 64)
        # No boundary checks exist, so O2/O3 equal O1.
        assert profiles["O2"].latency.kernel == pytest.approx(
            profiles["O1"].latency.kernel
        )
        assert profiles["O3"].latency.kernel == pytest.approx(
            profiles["O1"].latency.kernel
        )

    def test_dma_still_helps_aligned(self):
        profiles = profiles_for_levels(64, 64)
        assert profiles["O1"].latency.kernel < profiles["O0"].latency.kernel


class TestRfactorPipeline:
    def test_rfactor_misaligned_all_levels_correct(self):
        profiles = profiles_for_levels(37, 50, k_dpus=2)
        assert profiles["O3"].latency.kernel <= profiles["O0"].latency.kernel
