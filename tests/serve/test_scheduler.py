"""DynamicBatcher policy: size/age flush triggers on the virtual clock."""

import pytest

from repro.serve import DynamicBatcher, PendingRequest, Request, Ticket


def _pending(seq, tick=0):
    return PendingRequest(
        seq=seq,
        ticket=Ticket(Request(workload=None)),
        arrival_tick=tick,
        arrival_s=tick * 1e-4,
    )


class TestValidation:
    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            DynamicBatcher(max_batch_size=0)

    def test_rejects_negative_wait(self):
        with pytest.raises(ValueError, match="max_wait_ticks"):
            DynamicBatcher(max_wait_ticks=-1)


class TestSizeTrigger:
    def test_add_reports_full_group(self):
        b = DynamicBatcher(max_batch_size=3)
        assert not b.add("k", _pending(0))
        assert not b.add("k", _pending(1))
        assert b.add("k", _pending(2))

    def test_keys_fill_independently(self):
        b = DynamicBatcher(max_batch_size=2)
        assert not b.add("a", _pending(0))
        assert not b.add("b", _pending(1))
        assert b.add("a", _pending(2))
        assert len(b) == 3

    def test_take_pops_whole_group_in_order(self):
        b = DynamicBatcher(max_batch_size=8)
        for seq in range(3):
            b.add("k", _pending(seq))
        group = b.take("k")
        assert [p.seq for p in group] == [0, 1, 2]
        assert b.take("k") == []
        assert len(b) == 0


class TestAgeTrigger:
    def test_due_after_max_wait(self):
        b = DynamicBatcher(max_batch_size=8, max_wait_ticks=3)
        b.add("k", _pending(0, tick=5))
        assert b.due(6) == []
        assert b.due(7) == []
        assert b.due(8) == ["k"]

    def test_due_orders_by_oldest_seq(self):
        b = DynamicBatcher(max_batch_size=8, max_wait_ticks=0)
        b.add("late", _pending(7, tick=0))
        b.add("early", _pending(2, tick=0))
        assert b.due(0) == ["early", "late"]

    def test_age_measured_from_oldest_member(self):
        b = DynamicBatcher(max_batch_size=8, max_wait_ticks=4)
        b.add("k", _pending(0, tick=0))
        b.add("k", _pending(1, tick=3))  # newer arrival must not reset age
        assert b.due(4) == ["k"]


class TestDrain:
    def test_drain_keys_oldest_first(self):
        b = DynamicBatcher(max_batch_size=8)
        b.add("b", _pending(1))
        b.add("a", _pending(0))
        b.add("c", _pending(2))
        assert b.drain_keys() == ["a", "b", "c"]

    def test_drain_keys_empty(self):
        assert DynamicBatcher().drain_keys() == []

    def test_groups_snapshot(self):
        b = DynamicBatcher(max_batch_size=8)
        b.add("a", _pending(0))
        b.add("a", _pending(1))
        b.add("b", _pending(2))
        assert b.groups() == {"a": 2, "b": 1}
