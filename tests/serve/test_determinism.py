"""Determinism: a trace fully determines batches, responses, metrics.

The ISSUE's contract: same seed + same traffic trace => identical batch
composition, identical responses and an identical metrics dict whether
the dispatch pool runs 1 worker or 4.  Nothing in the decision path may
consult wall time or thread scheduling.
"""


from repro.serve import (
    ExecutablePool,
    Server,
    TraceEvent,
    generate_trace,
    replay_trace,
)

from .conftest import tiny_mix


def _serve(trace, mix, max_workers, execute=True):
    with Server(
        ExecutablePool(capacity=4),
        max_batch_size=8,
        max_wait_ticks=2,
        queue_limit=16,
        max_workers=max_workers,
        execute=execute,
    ) as server:
        tickets = replay_trace(server, trace, mix, with_inputs=execute)
        return tickets, server.metrics_dict()


class TestTraceGeneration:
    def test_same_seed_same_trace(self):
        a = generate_trace(30, ["x", "y"], pattern="poisson", seed=7)
        b = generate_trace(30, ["x", "y"], pattern="poisson", seed=7)
        assert a == b

    def test_different_seed_different_trace(self):
        a = generate_trace(30, ["x", "y"], pattern="poisson", seed=7)
        b = generate_trace(30, ["x", "y"], pattern="poisson", seed=8)
        assert a != b

    def test_patterns_place_arrivals_on_tick_grid(self):
        burst = generate_trace(8, ["x"], pattern="burst", seed=0, burst=4,
                               gap_ticks=10)
        assert [e.tick for e in burst] == [0] * 4 + [10] * 4
        uniform = generate_trace(4, ["x"], pattern="uniform", seed=0)
        assert [e.tick for e in uniform] == [0, 1, 2, 3]
        poisson = generate_trace(16, ["x"], pattern="poisson", seed=0)
        ticks = [e.tick for e in poisson]
        assert ticks == sorted(ticks)

    def test_event_seeds_unique(self):
        trace = generate_trace(50, ["x"], seed=3)
        seeds = [e.input_seed for e in trace]
        assert len(set(seeds)) == len(seeds)


class TestWorkerCountInvariance:
    def test_metrics_identical_1_vs_4_workers(self):
        mix = tiny_mix()
        trace = generate_trace(
            24, sorted(mix), pattern="burst", seed=5, burst=6, gap_ticks=3
        )
        _, metrics_1 = _serve(trace, mix, max_workers=1)
        _, metrics_4 = _serve(trace, mix, max_workers=4)
        # Deep equality, floats included: the whole dict, not a summary.
        assert metrics_1 == metrics_4

    def test_responses_identical_1_vs_4_workers(self):
        mix = tiny_mix()
        trace = generate_trace(
            24, sorted(mix), pattern="poisson", seed=11, gap_ticks=2
        )
        tickets_1, _ = _serve(trace, mix, max_workers=1)
        tickets_4, _ = _serve(trace, mix, max_workers=4)
        for t1, t4 in zip(tickets_1, tickets_4):
            r1, r4 = t1.response, t4.response
            assert (r1.request_id, r1.batch_size, r1.arrival_tick) == (
                r4.request_id, r4.batch_size, r4.arrival_tick
            )
            assert r1.latency_s == r4.latency_s
            assert r1.queue_s == r4.queue_s
            assert r1.execute_s == r4.execute_s
            for a, b in zip(r1.outputs, r4.outputs):
                assert a.tobytes() == b.tobytes()  # bit-for-bit

    def test_replay_is_repeatable(self):
        """Two replays of the same trace at the same worker count are
        indistinguishable (no hidden global state)."""
        mix = tiny_mix()
        trace = generate_trace(
            16, sorted(mix), pattern="uniform", seed=2
        )
        _, first = _serve(trace, mix, max_workers=2)
        _, second = _serve(trace, mix, max_workers=2)
        assert first == second

    def test_batch_composition_from_trace_not_wall_time(self):
        """A hand-built trace produces an exactly predictable batch
        histogram: composition is a pure function of ticks."""
        mix = tiny_mix()
        trace = [
            TraceEvent(tick=0, workload="va", input_seed=100),
            TraceEvent(tick=0, workload="va", input_seed=101),
            TraceEvent(tick=1, workload="mtv", input_seed=102),
            TraceEvent(tick=1, workload="va", input_seed=103),
            TraceEvent(tick=9, workload="mtv", input_seed=104),
        ]
        for workers in (1, 4):
            with Server(
                max_batch_size=8, max_wait_ticks=2, max_workers=workers
            ) as server:
                replay_trace(server, trace, mix)
                # va group (ticks 0,0,1) flushes by age at tick 2 as a
                # 3-batch; mtv@1 ages out at tick 3; mtv@9 drains.
                assert server.metrics.batch_sizes == {3: 1, 1: 2}
