"""Shared helpers for the serving-subsystem tests.

The tiny mix keeps functional simulation cheap (a few ms per request)
while still covering the three workload archetypes the batcher must
keep apart: matrix-vector (constant weight matrix), element-wise and
batched matrix-vector.
"""

from __future__ import annotations

from typing import Dict

from repro.serve import MixEntry
from repro.workloads import mmtv, mtv, va


def tiny_mix() -> Dict[str, MixEntry]:
    return {
        "mtv": MixEntry(
            mtv(32, 64),
            {
                "m_dpus": 4,
                "k_dpus": 1,
                "n_tasklets": 2,
                "cache": 16,
                "host_threads": 1,
                "unroll": 0,
            },
        ),
        "va": MixEntry(
            va(1024),
            {"n_dpus": 2, "n_tasklets": 2, "cache": 64, "unroll": 0},
        ),
        "mmtv": MixEntry(
            mmtv(4, 4, 32),
            {
                "i_dpus": 2,
                "j_dpus": 1,
                "k_dpus": 1,
                "n_tasklets": 2,
                "cache": 32,
                "host_threads": 1,
                "unroll": 0,
            },
        ),
    }
