"""Latency aggregation and serving counters."""

import json

import numpy as np
import pytest

from repro.serve import LatencyStats, ServerMetrics


class TestLatencyStats:
    def test_empty_is_zero(self):
        stats = LatencyStats()
        assert stats.mean == 0.0
        assert stats.percentile(99) == 0.0
        assert stats.to_dict() == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0
        }

    def test_nearest_rank_percentiles(self):
        stats = LatencyStats()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            stats.add(v)
        # Nearest-rank over {1..5}: p50 -> 3rd value, p95/p99 -> 5th.
        assert stats.percentile(50) == 3.0
        assert stats.percentile(95) == 5.0
        assert stats.percentile(99) == 5.0
        assert stats.percentile(0) == 1.0
        assert stats.percentile(100) == 5.0

    def test_percentiles_on_large_sample(self):
        rng = np.random.default_rng(0)
        values = rng.random(1000).tolist()
        stats = LatencyStats()
        for v in values:
            stats.add(v)
        ordered = sorted(values)
        assert stats.percentile(50) == ordered[499]
        assert stats.percentile(99) == ordered[989]
        assert stats.mean == sum(values) / len(values)

    def test_add_after_percentile_query(self):
        stats = LatencyStats()
        stats.add(2.0)
        assert stats.percentile(50) == 2.0
        stats.add(1.0)  # must re-sort lazily
        assert stats.percentile(0) == 1.0

    def test_scale_converts_units(self):
        stats = LatencyStats()
        stats.add(0.5)
        assert stats.to_dict(scale=1e3)["mean"] == 500.0

    def test_percentile_zero_is_min_contract(self):
        """percentile(0) == min and percentile(100) == max, explicitly."""
        stats = LatencyStats()
        for v in (3.0, 1.0, 2.0):
            stats.add(v)
        assert stats.percentile(0) == 1.0 == stats.min
        assert stats.percentile(100) == 3.0 == stats.max
        stats.add(0.5)  # min must track later, smaller samples
        assert stats.percentile(0) == 0.5 == stats.min

    def test_percentile_out_of_range_raises(self):
        stats = LatencyStats()
        stats.add(1.0)
        with pytest.raises(ValueError):
            stats.percentile(-1)
        with pytest.raises(ValueError):
            stats.percentile(100.1)

    def test_empty_min_max_are_zero(self):
        stats = LatencyStats()
        assert stats.min == 0.0
        assert stats.max == 0.0


class TestLatencyHistogram:
    def test_integer_bins_span_min_to_max(self):
        stats = LatencyStats()
        for v in (0.0, 1.0, 2.0, 3.0, 4.0):
            stats.add(v)
        h = stats.histogram(bins=4)
        assert h["edges"] == [0.0, 1.0, 2.0, 3.0, 4.0]
        # Half-open [lo, hi) bins, last closed so the max lands inside.
        assert h["counts"] == [1, 1, 1, 2]
        assert sum(h["counts"]) == len(stats)

    def test_explicit_edges(self):
        stats = LatencyStats()
        for v in (0.5, 1.5, 1.7, 9.0):
            stats.add(v)
        h = stats.histogram(bins=[0.0, 1.0, 2.0])
        assert h["edges"] == [0.0, 1.0, 2.0]
        assert h["counts"] == [1, 2]  # 9.0 falls outside and is dropped

    def test_scale_applies_before_bucketing(self):
        stats = LatencyStats()
        stats.add(0.5)
        h = stats.histogram(bins=[0.0, 1000.0], scale=1e3)
        assert h["counts"] == [1]

    def test_empty_and_constant_samples_are_well_formed(self):
        empty = LatencyStats().histogram(bins=3)
        assert len(empty["edges"]) == 4
        assert empty["counts"] == [0, 0, 0]
        const = LatencyStats()
        const.add(2.0)
        const.add(2.0)
        h = const.histogram(bins=2)
        assert sum(h["counts"]) == 2
        assert h["edges"][0] < h["edges"][-1]

    def test_invalid_bins_raise(self):
        stats = LatencyStats()
        stats.add(1.0)
        with pytest.raises(ValueError):
            stats.histogram(bins=0)
        with pytest.raises(ValueError):
            stats.histogram(bins=[1.0])
        with pytest.raises(ValueError):
            stats.histogram(bins=[2.0, 1.0])

    def test_json_safe(self):
        stats = LatencyStats()
        stats.add(0.25)
        json.dumps(stats.histogram(bins=4))  # must not raise


class TestServerMetrics:
    def test_counter_flow(self):
        m = ServerMetrics()
        m.record_submit("mtv")
        m.record_submit("va")
        m.record_reject("va")
        m.record_flush(2)
        m.record_completion("mtv", latency_s=0.2, queue_s=0.1)
        m.record_completion("va", latency_s=0.4, queue_s=0.1)
        m.record_failure("mtv")
        assert m.submitted == 3
        assert m.accepted == 2
        assert m.rejected == 1
        assert m.completed == 2
        assert m.failed == 1
        assert m.per_workload["va"] == {
            "submitted": 2, "rejected": 1, "completed": 1, "failed": 0
        }
        assert m.per_workload["mtv"]["failed"] == 1

    def test_batch_histogram_and_mean(self):
        m = ServerMetrics()
        for size in (1, 4, 4, 16):
            m.record_flush(size)
        assert m.batch_sizes == {1: 1, 4: 2, 16: 1}
        assert m.mean_batch == 25 / 4

    def test_throughput_guards_zero_elapsed(self):
        m = ServerMetrics()
        assert m.throughput(0.0) == 0.0
        m.record_completion("va", 0.1, 0.0)
        assert m.throughput(2.0) == 0.5

    def test_to_dict_shape(self):
        m = ServerMetrics()
        m.record_submit("mtv")
        m.record_flush(1)
        m.record_completion("mtv", latency_s=0.25, queue_s=0.05)
        payload = m.to_dict(elapsed_s=0.5, pool_stats={"hits": 3})
        assert payload["throughput_rps"] == 2.0
        assert payload["latency_ms"]["p99"] == 250.0
        assert payload["batch_histogram"] == {"1": 1}
        assert payload["per_workload"]["mtv"]["latency_ms"]["count"] == 1
        assert payload["pool"] == {"hits": 3}

    def test_to_dict_without_pool(self):
        assert "pool" not in ServerMetrics().to_dict()


class TestTokenAndTenantMetrics:
    """PR 9: TTFT/TPOT series + per-tenant counters (schema v2)."""

    def test_schema_version_present(self):
        from repro.serve import METRICS_SCHEMA_VERSION

        payload = ServerMetrics().to_dict()
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION == 2

    def test_token_latencies_aggregate(self):
        m = ServerMetrics()
        m.record_token_latencies("acme", ttft_s=0.2, tpot_s=0.01, tokens=8)
        m.record_token_latencies("acme", ttft_s=0.4, tpot_s=0.03, tokens=4)
        payload = m.to_dict()
        assert payload["ttft_ms"]["count"] == 2
        assert payload["ttft_ms"]["p99"] == 400.0
        assert payload["tpot_ms"]["mean"] == 20.0
        bucket = payload["per_tenant"]["acme"]
        assert bucket["completed"] == 2
        assert bucket["tokens"] == 12

    def test_tenant_admission_counters(self):
        m = ServerMetrics()
        m.record_tenant_submit("a")
        m.record_tenant_reject("a")
        m.record_tenant_reject("b", slo=True)
        m.record_tenant_failure("a")
        m.record_tenant_preemption("b")
        tenants = m.to_dict()["per_tenant"]
        assert tenants["a"] == {
            "submitted": 2, "rejected": 1, "rejected_slo": 0,
            "completed": 0, "failed": 1, "preempted": 0, "tokens": 0,
        }
        assert tenants["b"]["rejected_slo"] == 1
        assert tenants["b"]["preempted"] == 1

    def test_empty_metrics_have_empty_tenant_map(self):
        payload = ServerMetrics().to_dict()
        assert payload["per_tenant"] == {}
        assert payload["ttft_ms"]["count"] == 0

    def test_payload_json_safe(self):
        m = ServerMetrics()
        m.record_token_latencies("t", 0.1, 0.02, 5)
        json.dumps(m.to_dict())
