"""ExecutablePool: lazy compile, LRU residency, tuned warm-start."""

import numpy as np
import pytest

from repro.autotune import autotune
from repro.serve import ExecutablePool
from repro.workloads import mtv, va

MTV_PARAMS = {
    "m_dpus": 4, "k_dpus": 1, "n_tasklets": 2, "cache": 16,
    "host_threads": 1, "unroll": 0,
}
VA_PARAMS = {"n_dpus": 2, "n_tasklets": 2, "cache": 64, "unroll": 0}


class TestKeying:
    def test_equal_workloads_share_key(self):
        # Structural identity, not object identity.
        assert ExecutablePool.key_for(
            mtv(32, 64), "upmem", MTV_PARAMS
        ) == ExecutablePool.key_for(mtv(32, 64), "upmem", MTV_PARAMS)

    def test_params_split_keys(self):
        wl = mtv(32, 64)
        other = dict(MTV_PARAMS, cache=32)
        assert ExecutablePool.key_for(wl, "upmem", MTV_PARAMS) != (
            ExecutablePool.key_for(wl, "upmem", other)
        )

    def test_target_splits_keys(self):
        wl = mtv(32, 64)
        assert ExecutablePool.key_for(wl, "upmem") != (
            ExecutablePool.key_for(wl, "cpu")
        )

    def test_target_config_splits_keys(self):
        """Differently-configured instances of one kind must not alias:
        they compile, batch and time against different machines."""
        from repro.target import UpmemTarget
        from repro.upmem import UpmemConfig

        wl = mtv(32, 64)
        small = UpmemTarget(config=UpmemConfig().with_(n_ranks=2))
        assert ExecutablePool.key_for(wl, UpmemTarget()) != (
            ExecutablePool.key_for(wl, small)
        )

    def test_kind_string_matches_default_instance(self):
        from repro.target import UpmemTarget

        wl = mtv(32, 64)
        assert ExecutablePool.key_for(wl, "upmem") == (
            ExecutablePool.key_for(wl, UpmemTarget())
        )

    def test_kind_string_tracks_reregistration(self):
        """register_target(..., overwrite=True) must change the keys of
        kind-string requests — no stale cached identity."""
        from repro.target import UpmemTarget, register_target
        from repro.upmem import UpmemConfig

        kind = "pool-rereg-test"
        register_target(kind, UpmemTarget)
        wl = mtv(32, 64)
        before = ExecutablePool.key_for(wl, kind)
        small_config = UpmemConfig().with_(n_ranks=2)
        register_target(
            kind, lambda: UpmemTarget(config=small_config), overwrite=True
        )
        assert ExecutablePool.key_for(wl, kind) != before

    def test_workload_params_mutation_invalidates_memo(self):
        """The per-instance signature memo revalidates on params
        changes — mutate-and-resubmit must not reuse the old key."""
        wl = mtv(32, 64)
        before = ExecutablePool.key_for(wl, "upmem")
        assert ExecutablePool.key_for(wl, "upmem") == before  # memo hit
        wl.params.update({"model": "tagged-later"})
        assert ExecutablePool.key_for(wl, "upmem") != before


class TestResidency:
    def test_hit_miss_accounting(self):
        pool = ExecutablePool(capacity=4)
        wl = va(1024)
        exe1, loaded1 = pool.get(wl, "upmem", VA_PARAMS)
        exe2, loaded2 = pool.get(va(1024), "upmem", VA_PARAMS)
        assert loaded1 and not loaded2
        assert exe1 is exe2
        assert pool.stats()["hits"] == 1
        assert pool.stats()["misses"] == 1
        assert pool.hit_rate == 0.5

    def test_lru_eviction_prefers_recent(self):
        pool = ExecutablePool(capacity=2)
        a, b, c = mtv(32, 64), va(1024), mtv(16, 32)
        pool.get(a, "upmem", MTV_PARAMS)
        pool.get(b, "upmem", VA_PARAMS)
        pool.get(a, "upmem", MTV_PARAMS)  # refresh A
        pool.get(c, "upmem", MTV_PARAMS)  # evicts B (least recent)
        assert pool.evictions == 1
        _, reload_a = pool.get(a, "upmem", MTV_PARAMS)
        assert not reload_a  # A stayed resident
        _, reload_b = pool.get(b, "upmem", VA_PARAMS)
        assert reload_b  # B was the victim

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            ExecutablePool(capacity=0)

    def test_executables_run(self):
        pool = ExecutablePool()
        wl = va(1024)
        exe, _ = pool.get(wl, "upmem", VA_PARAMS)
        ins = wl.random_inputs(seed=0)
        (out,) = exe.run(ins)
        np.testing.assert_allclose(out, wl.reference_output(ins), rtol=1e-3)


class TestPinning:
    def test_pinned_entries_survive_lru_pressure(self):
        pool = ExecutablePool(capacity=2)
        a, b, c = mtv(32, 64), va(1024), mtv(16, 32)
        key_a = ExecutablePool.key_for(a, "upmem", MTV_PARAMS)
        pool.get(a, "upmem", MTV_PARAMS)
        pool.pin(key_a)
        pool.get(b, "upmem", VA_PARAMS)
        pool.get(c, "upmem", MTV_PARAMS)  # would evict A as LRU victim
        assert pool.evictions == 1  # B went instead
        _, reload_a = pool.get(a, "upmem", MTV_PARAMS)
        assert not reload_a
        _, reload_b = pool.get(b, "upmem", VA_PARAMS)
        assert reload_b

    def test_all_pinned_runs_over_capacity(self):
        pool = ExecutablePool(capacity=1)
        specs = [
            (mtv(32, 64), MTV_PARAMS),
            (va(1024), VA_PARAMS),
            (mtv(16, 32), MTV_PARAMS),
        ]
        for wl, params in specs:
            pool.pin(ExecutablePool.key_for(wl, "upmem", params))
            pool.get(wl, "upmem", params)
        assert len(pool) == 3  # over capacity, nothing evictable
        assert pool.evictions == 0
        assert pool.stats()["pinned"] == 3

    def test_unpin_rejoins_lru_order(self):
        pool = ExecutablePool(capacity=2)
        a, b = mtv(32, 64), va(1024)
        key_a = ExecutablePool.key_for(a, "upmem", MTV_PARAMS)
        pool.pin(key_a)
        pool.get(a, "upmem", MTV_PARAMS)
        pool.get(b, "upmem", VA_PARAMS)
        pool.unpin(key_a)
        # A is now the least-recently-used evictable entry again.
        pool.get(va(2048), "upmem", VA_PARAMS)
        assert pool.evictions == 1
        _, reload_a = pool.get(a, "upmem", MTV_PARAMS)
        assert reload_a  # A was the victim
        assert pool.pinned_keys() == set()

    def test_pin_before_compile_and_unknown_unpin(self):
        pool = ExecutablePool(capacity=1)
        wl = va(1024)
        key = ExecutablePool.key_for(wl, "upmem", VA_PARAMS)
        pool.pin(key)  # not yet resident: allowed
        pool.get(wl, "upmem", VA_PARAMS)
        assert pool.pinned_keys() == {key}
        pool.unpin(("not", "a", "key"))  # no-op
        assert pool.stats()["pinned"] == 1


class TestStats:
    def test_per_key_hit_counts(self):
        pool = ExecutablePool(capacity=4)
        a, b = mtv(32, 64), va(1024)
        pool.get(a, "upmem", MTV_PARAMS)  # miss
        pool.get(a, "upmem", MTV_PARAMS)  # hit
        pool.get(a, "upmem", MTV_PARAMS)  # hit
        pool.get(b, "upmem", VA_PARAMS)   # miss
        pool.get(b, "upmem", VA_PARAMS)   # hit
        stats = pool.stats()
        assert stats["hits"] == 3 and stats["misses"] == 2
        per_key = stats["per_key_hits"]
        label_a = pool.key_label(
            ExecutablePool.key_for(a, "upmem", MTV_PARAMS)
        )
        label_b = pool.key_label(
            ExecutablePool.key_for(b, "upmem", VA_PARAMS)
        )
        assert per_key == {label_a: 2, label_b: 1}
        # Aggregate hits == sum of per-key hits.
        assert sum(per_key.values()) == stats["hits"]

    def test_per_key_hits_empty_until_first_hit(self):
        pool = ExecutablePool(capacity=4)
        pool.get(va(1024), "upmem", VA_PARAMS)  # miss only
        assert pool.stats()["per_key_hits"] == {}

    def test_key_label_is_readable_and_unique(self):
        key_a = ExecutablePool.key_for(mtv(32, 64), "upmem", MTV_PARAMS)
        key_b = ExecutablePool.key_for(mtv(16, 32), "upmem", MTV_PARAMS)
        label_a = ExecutablePool.key_label(key_a)
        label_b = ExecutablePool.key_label(key_b)
        assert label_a.startswith("mtv@upmem[")
        assert "cache=16" in label_a
        assert label_a != label_b  # digest disambiguates same-name keys
        assert ExecutablePool.key_label(key_a) == label_a  # deterministic

    def test_stats_reports_pinned_count(self):
        pool = ExecutablePool(capacity=4)
        assert pool.stats()["pinned"] == 0
        key = ExecutablePool.key_for(va(1024), "upmem", VA_PARAMS)
        pool.pin(key)
        assert pool.stats()["pinned"] == 1
        pool.unpin(key)
        assert pool.stats()["pinned"] == 0

    def test_stats_json_safe(self):
        import json

        pool = ExecutablePool(capacity=4)
        pool.get(va(1024), "upmem", VA_PARAMS)
        pool.get(va(1024), "upmem", VA_PARAMS)
        json.dumps(pool.stats())  # must not raise


class TestPrewarm:
    def test_prewarm_counts_new_compiles(self):
        pool = ExecutablePool(capacity=4)
        specs = [
            (mtv(32, 64), "upmem", MTV_PARAMS),
            (va(1024), "upmem", VA_PARAMS),
        ]
        assert pool.prewarm(specs) == 2
        assert pool.prewarm(specs) == 0  # already resident
        assert len(pool) == 2


class TestTunedWarmStart:
    def test_pool_resolves_params_from_database(self, tmp_path):
        """tuned=True + a completed search in the db: the pool compiles
        with the stored best params, no inline search."""
        db = str(tmp_path / "tune.jsonl")
        wl = mtv(64, 64)
        result = autotune(wl, n_trials=8, seed=0, db=db)
        pool = ExecutablePool(tuned=True, db=db, tune_trials=8)
        exe, loaded = pool.get(mtv(64, 64), "upmem")
        assert loaded
        assert exe.params == result.best_params

    def test_explicit_params_bypass_tuning(self, tmp_path):
        pool = ExecutablePool(
            tuned=True, db=str(tmp_path / "absent.jsonl"), tune_trials=4
        )
        exe, _ = pool.get(mtv(32, 64), "upmem", MTV_PARAMS)
        assert exe.params == MTV_PARAMS
