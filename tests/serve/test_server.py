"""Server end-to-end: admission, batching, dispatch, accounting."""

import pytest

import repro
from repro.serve import (
    ExecutablePool,
    Request,
    ServeError,
    Server,
    SyncClient,
    generate_trace,
    gptj_serving_mix,
    replay_trace,
)
from repro.workloads import va

from .conftest import tiny_mix


def _expected_outputs(mix, trace, target="upmem"):
    """What individual Executable.run calls produce for each event."""
    expected = []
    for event in trace:
        entry = mix[event.workload]
        exe = repro.compile(
            entry.workload, target=target, params=entry.params
        )
        expected.append(
            exe.run(entry.workload.random_inputs(seed=event.input_seed))
        )
    return expected


def _assert_outputs_equal(actual, expected):
    assert len(actual) == len(expected)
    for a_outs, e_outs in zip(actual, expected):
        assert len(a_outs) == len(e_outs)
        for a, e in zip(a_outs, e_outs):
            assert a.dtype == e.dtype and a.shape == e.shape
            assert a.tobytes() == e.tobytes()


class TestEndToEnd:
    def test_served_responses_match_individual_runs(self):
        mix = tiny_mix()
        trace = generate_trace(
            40, sorted(mix), pattern="burst", seed=3, burst=8, gap_ticks=4
        )
        with Server(
            ExecutablePool(capacity=4), max_batch_size=8, max_wait_ticks=2
        ) as server:
            tickets = replay_trace(server, trace, mix)
        assert all(t.done for t in tickets)
        _assert_outputs_equal(
            [t.response.outputs for t in tickets],
            _expected_outputs(mix, trace),
        )

    @pytest.mark.slow
    def test_200_mixed_gptj_requests_bit_for_bit(self):
        """Acceptance: 200 mixed GPT-J + tensor-op requests on upmem,
        every response bit-identical to an individual run."""
        mix = gptj_serving_mix(tokens=4)
        trace = generate_trace(
            200, sorted(mix), pattern="burst", seed=0, burst=16, gap_ticks=4
        )
        with Server(
            ExecutablePool(capacity=8), max_batch_size=16, max_wait_ticks=4
        ) as server:
            tickets = replay_trace(server, trace, mix)
            metrics = server.metrics_dict()
        assert all(t.done for t in tickets)
        assert metrics["completed"] == 200
        assert metrics["rejected"] == 0
        # Batching actually happened (not 200 singleton flushes).
        assert metrics["flushes"] < 200
        _assert_outputs_equal(
            [t.response.outputs for t in tickets],
            _expected_outputs(mix, trace),
        )

    def test_responses_carry_timing_fields(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server(max_batch_size=2) as server:
            tickets = server.submit_many(
                [
                    Request(
                        entry.workload,
                        entry.workload.random_inputs(seed=i),
                        params=entry.params,
                    )
                    for i in range(2)
                ]
            )
        response = tickets[0].response
        assert response.batch_size == 2
        assert response.latency_s == pytest.approx(
            response.queue_s + response.execute_s
        )
        assert response.execute_s > 0
        assert response.workload == "va"
        assert [t.response.request_id for t in tickets] == [0, 1]


class TestEmptyQueue:
    def test_drain_empty_returns_empty_list(self):
        with Server() as server:
            assert server.drain() == []
            assert server.pool.misses == 0  # nothing compiled
            assert server.metrics.flushes == 0

    def test_drain_twice(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server(max_batch_size=8) as server:
            server.submit(
                Request(
                    entry.workload,
                    entry.workload.random_inputs(seed=0),
                    params=entry.params,
                )
            )
            assert len(server.drain()) == 1
            assert server.drain() == []

    def test_run_batch_empty_is_empty(self):
        """Regression (satellite): empty batches short-circuit."""
        exe = repro.compile(
            va(1024),
            target="upmem",
            params={"n_dpus": 2, "n_tasklets": 2, "cache": 64},
        )
        assert exe.run_batch([]) == []
        assert repro.compile(va(1024), target="cpu").run_batch([]) == []


class TestAdmissionControl:
    def test_overflow_rejected_and_counted(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server(
            max_batch_size=64, max_wait_ticks=100, queue_limit=4
        ) as server:
            tickets = server.submit_many(
                [
                    Request(
                        entry.workload,
                        entry.workload.random_inputs(seed=i),
                        params=entry.params,
                    )
                    for i in range(7)
                ]
            )
            statuses = [t.status for t in tickets]
            assert statuses == ["queued"] * 4 + ["rejected"] * 3
            assert all(
                "queue full" in t.reject_reason for t in tickets[4:]
            )
            responses = server.drain()
            metrics = server.metrics_dict()
        assert len(responses) == 4
        assert metrics["rejected"] == 3
        assert metrics["completed"] == 4
        assert metrics["per_workload"]["va"]["rejected"] == 3

    def test_rejected_requests_get_no_response(self):
        with Server(queue_limit=1, max_batch_size=8) as server:
            mix = tiny_mix()
            entry = mix["va"]
            reqs = [
                Request(
                    entry.workload,
                    entry.workload.random_inputs(seed=i),
                    params=entry.params,
                )
                for i in range(2)
            ]
            first, second = server.submit_many(reqs)
            assert second.rejected and second.response is None
            assert server.flush_ticket(second) is None
            server.drain()
            assert first.done

    def test_queue_limit_validated(self):
        with pytest.raises(ValueError, match="queue_limit"):
            Server(queue_limit=0)


class TestBatchingBehavior:
    def test_flush_on_size(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server(max_batch_size=3, max_wait_ticks=100) as server:
            tickets = server.submit_many(
                [
                    Request(
                        entry.workload,
                        entry.workload.random_inputs(seed=i),
                        params=entry.params,
                    )
                    for i in range(7)
                ]
            )
            # Two full flushes fired on size; one request still pending.
            assert [t.done for t in tickets] == [True] * 6 + [False]
            assert server.metrics.batch_sizes == {3: 2}
            server.drain()
            assert server.metrics.batch_sizes == {3: 2, 1: 1}

    def test_flush_on_age(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server(max_batch_size=16, max_wait_ticks=2) as server:
            ticket = server.submit(
                Request(
                    entry.workload,
                    entry.workload.random_inputs(seed=0),
                    params=entry.params,
                )
            )
            assert server.tick() == []  # age 1 < 2
            assert not ticket.done
            responses = server.tick()  # age 2 -> flush
            assert len(responses) == 1 and ticket.done

    def test_different_programs_never_share_a_batch(self):
        mix = tiny_mix()
        with Server(max_batch_size=16, max_wait_ticks=4) as server:
            for i, name in enumerate(["va", "mtv", "va", "mtv", "va"]):
                entry = mix[name]
                server.submit(
                    Request(
                        entry.workload,
                        entry.workload.random_inputs(seed=i),
                        params=entry.params,
                    )
                )
            server.drain()
            # One flush per program: 3 va + 2 mtv.
            assert server.metrics.batch_sizes == {3: 1, 2: 1}

    def test_weight_staging_charged_on_load_only(self):
        """First flush of a const-input workload pays the weight H2D;
        later flushes of the resident program do not."""
        mix = tiny_mix()
        entry = mix["mtv"]  # A is a const (weight) input
        with Server(max_batch_size=1) as server:
            first = server.submit(
                Request(
                    entry.workload,
                    entry.workload.random_inputs(seed=0),
                    params=entry.params,
                )
            )
            second = server.submit(
                Request(
                    entry.workload,
                    entry.workload.random_inputs(seed=1),
                    params=entry.params,
                )
            )
        assert first.response.execute_s > second.response.execute_s

    def test_batched_throughput_beats_singletons(self):
        """Acceptance shape: same trace, batch 16 completes in less
        simulated time than batch 1 (timing model only; execute=False
        keeps this test fast)."""
        mix = tiny_mix()
        trace = generate_trace(
            48, sorted(mix), pattern="burst", seed=1, burst=16, gap_ticks=4
        )
        throughput = {}
        for max_batch in (1, 16):
            with Server(
                max_batch_size=max_batch, max_wait_ticks=4,
                queue_limit=None, execute=False,
            ) as server:
                replay_trace(server, trace, mix, with_inputs=False)
                metrics = server.metrics_dict()
            assert metrics["completed"] == 48
            throughput[max_batch] = metrics["throughput_rps"]
        assert throughput[16] > throughput[1]


class TestFailureIsolation:
    def test_poisoned_batch_fails_visibly_and_serving_continues(self):
        """A flush that raises fails only its own group: tickets turn
        'failed' with the error recorded, the device clock is not
        charged, and later requests still serve."""
        mix = tiny_mix()
        entry = mix["va"]
        with Server(max_batch_size=2) as server:
            good_inputs = entry.workload.random_inputs(seed=0)
            bad = server.submit(
                Request(entry.workload, {"WRONG": good_inputs["A"]},
                        params=entry.params)
            )
            rider = server.submit(  # same group as the poisoned request
                Request(entry.workload,
                        entry.workload.random_inputs(seed=1),
                        params=entry.params)
            )
            assert bad.failed and rider.failed
            assert "KeyError" in bad.error
            assert bad.response is None
            assert server.elapsed == 0.0  # nothing charged to the device
            assert server.metrics.failed == 2
            assert server.metrics.flushes == 0

            # Failed requests keep their inputs, so the innocent rider
            # is resubmittable as-is — and the server keeps serving.
            assert rider.request.inputs is not None
            retried = server.submit(rider.request)
            ok = server.submit(
                Request(entry.workload,
                        entry.workload.random_inputs(seed=2),
                        params=entry.params)
            )
            server.drain()
            metrics = server.metrics_dict()
        assert retried.done and ok.done
        assert metrics["failed"] == 2
        assert metrics["completed"] == 2
        assert metrics["per_workload"]["va"]["failed"] == 2

    def test_non_executable_target_fails_not_strands(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server(max_batch_size=1) as server:
            ticket = server.submit(
                Request(entry.workload,
                        entry.workload.random_inputs(seed=0),
                        target="hbm-pim")
            )
        assert ticket.failed
        assert "TargetError" in ticket.error

    def test_unknown_target_rejected_at_admission(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server() as server:
            ticket = server.submit(
                Request(entry.workload,
                        entry.workload.random_inputs(seed=0),
                        target="no-such-backend")
            )
        assert ticket.rejected
        assert "TargetError" in ticket.reject_reason
        assert server.metrics.rejected == 1

    def test_staging_charge_survives_a_failed_loading_flush(self):
        """If the flush that stages a weight-carrying program fails, the
        next successful flush still pays the one-time H2D charge."""
        mix = tiny_mix()
        entry = mix["mtv"]  # A is a const (weight) input

        def first_good_execute_s(poison_first):
            with Server(max_batch_size=1) as server:
                if poison_first:
                    bad = server.submit(
                        Request(entry.workload, {"WRONG": None},
                                params=entry.params)
                    )
                    assert bad.failed
                ok = server.submit(
                    Request(entry.workload,
                            entry.workload.random_inputs(seed=0),
                            params=entry.params)
                )
                assert ok.done
                return ok.response.execute_s

        assert first_good_execute_s(True) == first_good_execute_s(False)

    def test_sync_client_raises_on_failure(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server(max_batch_size=4) as server:
            with pytest.raises(ServeError, match="failed"):
                SyncClient(server).infer(
                    entry.workload, {"WRONG": None}, params=entry.params
                )


class TestSyncClient:
    def test_infer_round_trip(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server(max_batch_size=16, max_wait_ticks=100) as server:
            client = SyncClient(server)
            ins = entry.workload.random_inputs(seed=0)
            response = client.infer(
                entry.workload, ins, params=entry.params
            )
        assert response.batch_size == 1
        exe = repro.compile(
            entry.workload, target="upmem", params=entry.params
        )
        (expected,) = exe.run(entry.workload.random_inputs(seed=0))
        assert response.outputs[0].tobytes() == expected.tobytes()

    def test_forced_flush_uses_admission_time_key(self):
        """Mutating the workload between submit and flush_ticket must
        not orphan the queued request — the server flushes the group it
        was admitted under."""
        from repro.workloads import mtv

        wl = mtv(32, 64)
        params = tiny_mix()["mtv"].params
        with Server(max_batch_size=16, max_wait_ticks=100) as server:
            ticket = server.submit(
                Request(wl, wl.random_inputs(seed=0), params=params)
            )
            wl.params.update({"model": "mutated-after-submit"})
            response = server.flush_ticket(ticket)
        assert ticket.done and response is not None

    def test_infer_rides_with_pending_batch(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server(max_batch_size=16, max_wait_ticks=100) as server:
            queued = server.submit(
                Request(
                    entry.workload,
                    entry.workload.random_inputs(seed=1),
                    params=entry.params,
                )
            )
            response = SyncClient(server).infer(
                entry.workload,
                entry.workload.random_inputs(seed=2),
                params=entry.params,
            )
        assert response.batch_size == 2
        assert queued.done  # the sync flush completed the earlier request

    def test_rejected_infer_raises(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server(queue_limit=1, max_batch_size=8) as server:
            server.submit(
                Request(
                    entry.workload,
                    entry.workload.random_inputs(seed=0),
                    params=entry.params,
                )
            )
            with pytest.raises(ServeError, match="rejected"):
                SyncClient(server).infer(
                    entry.workload,
                    entry.workload.random_inputs(seed=1),
                    params=entry.params,
                )


class TestLifecycle:
    def test_closed_server_refuses_work(self):
        server = Server()
        server.close()
        with pytest.raises(ServeError, match="closed"):
            server.submit(Request(va(1024), {}))
        with pytest.raises(ServeError, match="closed"):
            server.drain()

    def test_inputs_released_after_completion(self):
        mix = tiny_mix()
        entry = mix["va"]
        request = Request(
            entry.workload,
            entry.workload.random_inputs(seed=0),
            params=entry.params,
        )
        with Server(max_batch_size=1) as server:
            ticket = server.submit(request)
            assert ticket.done
            assert request.inputs is None  # server dropped the arrays
            assert ticket.response.outputs is not None
            # Resubmitting the served (now inputs-less) Request is
            # rejected at admission instead of poisoning a batch group.
            again = server.submit(request)
            assert again.rejected
            assert "no inputs" in again.reject_reason

    def test_inputless_requests_fine_without_execution(self):
        mix = tiny_mix()
        entry = mix["va"]
        with Server(max_batch_size=1, execute=False) as server:
            ticket = server.submit(
                Request(entry.workload, params=entry.params)
            )
        assert ticket.done
        assert ticket.response.outputs is None
        assert ticket.response.execute_s > 0

    def test_tick_seconds_validated(self):
        with pytest.raises(ValueError, match="tick_seconds"):
            Server(tick_seconds=0.0)
