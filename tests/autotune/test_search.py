"""Cost model, database and the balanced evolutionary search."""

import numpy as np
import pytest

from repro.autotune import (
    CostModel,
    Database,
    Tuner,
    TuningRecord,
    autotune,
    extract_features,
    FEATURE_NAMES,
)
from repro.autotune.compile import compile_params
from repro.workloads import mtv, red, va


class TestDatabase:
    def _record(self, lat, subspace="plain", **params):
        return TuningRecord(params=params, subspace=subspace, latency=lat)

    def test_add_and_best(self):
        db = Database()
        db.add(self._record(2.0, x=1))
        db.add(self._record(1.0, x=2))
        assert db.best().latency == 1.0
        assert len(db) == 2

    def test_top_k_sorted(self):
        db = Database()
        for i, lat in enumerate([5.0, 1.0, 3.0]):
            db.add(self._record(lat, x=i))
        assert [r.latency for r in db.top_k(2)] == [1.0, 3.0]

    def test_top_k_by_subspace(self):
        db = Database()
        db.add(self._record(1.0, "plain", x=1))
        db.add(self._record(2.0, "rfactor", x=2))
        assert db.top_k(5, "rfactor")[0].latency == 2.0

    def test_contains(self):
        db = Database()
        db.add(self._record(1.0, x=1, y=2))
        assert db.contains({"y": 2, "x": 1})
        assert not db.contains({"x": 9})


class TestCostModel:
    def test_untrained_predicts_zeros(self):
        model = CostModel()
        assert not model.trained
        assert np.all(model.predict(np.ones((3, 4))) == 0)

    def test_learns_monotone_relationship(self):
        rng = np.random.default_rng(0)
        X = rng.random((64, 4))
        y = np.exp(2.0 * X[:, 0] + 0.1 * X[:, 1])
        model = CostModel(l2=1e-3)
        model.fit(X, y)
        assert model.trained
        pred = model.predict(X)
        # Rank correlation: ordering mostly preserved.
        assert model.rank_error(X, y) < 0.2

    def test_small_sample_ignored(self):
        model = CostModel()
        model.fit(np.ones((2, 3)), np.ones(2))
        assert not model.trained


class TestFeatures:
    def test_feature_vector_shape(self):
        wl = mtv(64, 64)
        module = compile_params(
            wl,
            {"m_dpus": 4, "k_dpus": 1, "n_tasklets": 2, "cache": 16,
             "host_threads": 1},
        )
        feats = extract_features(module)
        assert feats.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(feats))

    def test_features_distinguish_configs(self):
        wl = mtv(256, 256)
        m1 = compile_params(wl, {"m_dpus": 4, "k_dpus": 1, "n_tasklets": 2,
                                 "cache": 16, "host_threads": 1})
        m2 = compile_params(wl, {"m_dpus": 16, "k_dpus": 4, "n_tasklets": 8,
                                 "cache": 64, "host_threads": 4})
        assert not np.allclose(extract_features(m1), extract_features(m2))


@pytest.mark.slow
class TestTuner:
    def test_finds_valid_best(self):
        result = autotune(mtv(256, 256), n_trials=24, seed=0)
        assert result.best_latency > 0
        assert result.best_module is not None
        assert len(result.database) >= 24

    def test_history_monotone_nonincreasing(self):
        result = autotune(mtv(256, 256), n_trials=24, seed=1)
        lats = [lat for _t, lat in result.history]
        assert all(b <= a for a, b in zip(lats, lats[1:]))

    def test_deterministic_given_seed(self):
        r1 = autotune(va(100000), n_trials=16, seed=7)
        r2 = autotune(va(100000), n_trials=16, seed=7)
        assert r1.best_params == r2.best_params
        assert r1.best_latency == pytest.approx(r2.best_latency)

    def test_epsilon_schedule(self):
        tuner = Tuner(mtv(64, 64), n_trials=100)
        assert tuner.epsilon(0) == pytest.approx(0.5)
        assert tuner.epsilon(20) < 0.5
        assert tuner.epsilon(40) == pytest.approx(0.05)
        assert tuner.epsilon(99) == pytest.approx(0.05)

    def test_fixed_epsilon_without_adaptive(self):
        tuner = Tuner(mtv(64, 64), n_trials=100, adaptive_epsilon=False)
        assert tuner.epsilon(0) == tuner.epsilon(50) == pytest.approx(0.05)

    def test_balanced_batch_covers_both_subspaces(self):
        tuner = Tuner(mtv(1024, 1024), n_trials=64, seed=3, balanced=True)
        pool = tuner._sample_pool(32)
        batch = tuner._select_batch(pool, trial=0)
        tags = {c.subspace for c in batch}
        pool_tags = {c.subspace for c in pool}
        if pool_tags == {"plain", "rfactor"}:
            assert tags == {"plain", "rfactor"}

    def test_tuner_improves_over_first_sample(self):
        result = autotune(mtv(1024, 1024), n_trials=40, seed=5)
        first = result.history[0][1]
        assert result.best_latency <= first

    def test_measured_and_round_times_recorded(self):
        result = autotune(red(100000), n_trials=16, seed=0)
        assert len(result.measured) >= 16
        assert result.round_times

    def test_gflops_curve(self):
        result = autotune(mtv(256, 256), n_trials=16, seed=0)
        curve = result.gflops_curve()
        assert curve[-1][1] >= curve[0][1]
        assert result.best_gflops() == pytest.approx(curve[-1][1])
