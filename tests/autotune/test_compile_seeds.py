"""compile_params and tuner seeding behaviour."""

import pytest

from repro.autotune import Tuner
from repro.autotune.compile import compile_params
from repro.upmem.config import UpmemConfig
from repro.workloads import mha_mmtv, GPTJ_30B, mmtv, mtv, red, va


class TestCompileParams:
    def test_marks_const_inputs(self):
        wl = mtv(64, 64)
        mod = compile_params(
            wl,
            {"m_dpus": 4, "k_dpus": 1, "n_tasklets": 2, "cache": 16,
             "host_threads": 1},
        )
        assert mod.const_inputs == frozenset({"A"})

    def test_elementwise_has_no_const_inputs(self):
        wl = va(1024)
        mod = compile_params(wl, {"n_dpus": 4, "n_tasklets": 2, "cache": 16})
        assert mod.const_inputs == frozenset()

    def test_invalid_params_return_none(self):
        wl = mtv(2048, 2048)
        assert (
            compile_params(
                wl,
                {"m_dpus": 2, "k_dpus": 1, "n_tasklets": 24, "cache": 512,
                 "host_threads": 1},
            )
            is None
        )

    def test_bad_sketch_params_return_none(self):
        wl = mtv(64, 64)
        assert (
            compile_params(
                wl,
                {"m_dpus": 4, "k_dpus": 1, "n_tasklets": 2, "cache": 0,
                 "host_threads": 1},
            )
            is None
        )

    def test_nonpositive_dpus_clamped_to_one(self):
        # Oversubscription clamping also floors at one part.
        wl = mtv(64, 64)
        mod = compile_params(
            wl,
            {"m_dpus": 0, "k_dpus": 1, "n_tasklets": 2, "cache": 16,
             "host_threads": 1},
        )
        assert mod is not None and mod.n_dpus == 1


class TestSeeding:
    def test_seeds_within_dpu_budget(self):
        for wl in (mtv(8192, 8192), mmtv(256, 512, 256), red(10**7), va(10**7)):
            tuner = Tuner(wl, n_trials=8)
            for params in tuner._seed_params():
                grid = 1
                for key in ("n_dpus", "m_dpus", "i_dpus", "j_dpus", "k_dpus"):
                    grid *= params.get(key, 1)
                assert grid <= tuner.config.n_dpus

    def test_seed_covers_both_subspaces_for_reductions(self):
        tuner = Tuner(mtv(4096, 4096), n_trials=8)
        seeds = tuner._seed_params()
        k_values = {p.get("k_dpus", 1) for p in seeds}
        assert 1 in k_values
        assert any(k > 1 for k in k_values)

    def test_nonpow2_spatial_dim_gets_exact_divisor_seed(self):
        # 448 = 28 heads x 16 batch: PrIM's exact divisor must be reachable.
        wl = mha_mmtv(GPTJ_30B, 16, 512)
        tuner = Tuner(wl, n_trials=8)
        assert any(p["i_dpus"] == 448 for p in tuner._seed_params())

    def test_seeds_always_measured_first(self):
        tuner = Tuner(mtv(1024, 1024), n_trials=8, seed=0)
        pool = tuner._sample_pool(16)
        seeds = [c for c in pool if c.is_seed]
        assert seeds
        batch = tuner._select_batch(pool, trial=0)
        for seed in seeds:
            assert seed in batch

    @pytest.mark.slow
    def test_tuner_never_loses_to_its_seed(self):
        wl = mmtv(128, 320, 256)
        tuner = Tuner(wl, n_trials=16, seed=0)
        seed_latencies = []
        for params in tuner._seed_params():
            cand = tuner._build(params)
            if cand is not None:
                seed_latencies.append(tuner._measure(cand))
        result = Tuner(wl, n_trials=16, seed=0).tune()
        assert result.best_latency <= min(seed_latencies) * 1.0001

    def test_small_system_respected(self):
        cfg = UpmemConfig().with_(n_ranks=1)  # 64 DPUs
        tuner = Tuner(mtv(4096, 4096), config=cfg, n_trials=8)
        for params in tuner._seed_params():
            assert params["m_dpus"] * params.get("k_dpus", 1) <= 64
