"""Persistent tuning database: dedupe, JSON-lines format, TuningCache."""

import json

import numpy as np
import pytest

from repro.autotune import (
    DB_SCHEMA_VERSION,
    Database,
    DatabaseFormatError,
    TuningCache,
    TuningRecord,
)
from repro.autotune.database import DB_FORMAT
from repro.pipeline import tuning_key
from repro.upmem import DEFAULT_CONFIG
from repro.workloads import mtv, red


def _record(lat, subspace="plain", trial=0, features=None, **params):
    return TuningRecord(
        params=params, subspace=subspace, latency=lat,
        features=features, trial=trial,
    )


class TestDedupe:
    def test_duplicate_key_not_returned_twice_by_top_k(self):
        # Regression: two adds of identical params used to both appear in
        # top_k, collapsing elite diversity.
        db = Database()
        db.add(_record(1.0, x=1))
        db.add(_record(2.0, x=1))
        db.add(_record(3.0, x=2))
        top = db.top_k(3)
        assert len(top) == 2
        assert [r.key for r in top] == [(("x", 1),), (("x", 2),)]

    def test_duplicate_keeps_best_latency(self):
        db = Database()
        db.add(_record(2.0, x=1))
        db.add(_record(1.0, x=1))  # better: replaces
        db.add(_record(5.0, x=1))  # worse: ignored
        assert len(db) == 1
        assert db.best().latency == 1.0

    def test_seen_keeps_min_not_last_write(self):
        db = Database()
        db.add(_record(1.0, x=1))
        assert db.add(_record(9.0, x=1)) is False
        # Internal floor is the min, and the record reflects it too.
        assert db._seen[(("x", 1),)] == 1.0

    def test_merge_counts_changes(self):
        a = Database()
        a.add(_record(2.0, x=1))
        b = Database()
        b.add(_record(1.0, x=1))   # improves
        b.add(_record(3.0, x=2))   # new
        b.add(_record(9.0, x=1))   # worse than both: no-op
        assert a.merge(b) == 2
        assert len(a) == 2
        assert a.best().latency == 1.0


class TestSaveLoad:
    def test_roundtrip_preserves_records_and_features(self, tmp_path):
        path = tmp_path / "db.jsonl"
        db = Database()
        feats = np.arange(4, dtype=np.float64)
        db.add(_record(1.5, subspace="rfactor", trial=3, features=feats,
                       m_dpus=64, cache=32))
        db.add(_record(2.5, x=7))
        db.save(path)
        loaded = Database.load(path)
        assert len(loaded) == 2
        best = loaded.best()
        assert best.params == {"m_dpus": 64, "cache": 32}
        assert best.subspace == "rfactor"
        assert best.trial == 3
        np.testing.assert_allclose(best.features, feats)
        assert loaded.top_k(2)[1].features is None

    def test_header_written_with_version(self, tmp_path):
        path = tmp_path / "db.jsonl"
        Database().save(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"format": DB_FORMAT, "version": DB_SCHEMA_VERSION}

    def test_torn_trailing_line_tolerated(self, tmp_path):
        # A killed writer leaves a partial final line; loading must keep
        # the intact prefix.
        path = tmp_path / "db.jsonl"
        db = Database()
        db.add(_record(1.0, x=1))
        db.add(_record(2.0, x=2))
        db.save(path)
        with open(path, "a") as fh:
            fh.write('{"params": {"x": 3}, "laten')
        assert len(Database.load(path)) == 2

    def test_complete_corrupt_final_line_rejected(self, tmp_path):
        # A corrupt but newline-terminated final line is damage, not a
        # killed writer — it must raise, not be silently dropped.
        path = tmp_path / "db.jsonl"
        db = Database()
        db.add(_record(1.0, x=1))
        db.save(path)
        with open(path, "a") as fh:
            fh.write("corrupt but complete line\n")
        with pytest.raises(DatabaseFormatError):
            Database.load(path)

    def test_non_object_json_line_rejected(self, tmp_path):
        # Valid JSON that is not a record object is damage too, not a
        # TypeError waiting to happen in consumers.
        for stray in ("42\n", "[1, 2]\n"):
            path = tmp_path / "db.jsonl"
            db = Database()
            db.add(_record(1.0, x=1))
            db.save(path)
            with open(path, "a") as fh:
                fh.write(stray)
            with pytest.raises(DatabaseFormatError):
                Database.load(path)

    def test_multi_group_roundtrip_preserves_groups(self, tmp_path):
        # save() of a multi-group database must not collapse
        # coincidentally equal params from different groups on reload.
        cache = TuningCache(tmp_path / "store.jsonl")
        cache.append("k1", [_record(5.0, n_dpus=512)])
        cache.append("k2", [_record(1.0, n_dpus=512)])
        snapshot = tmp_path / "snapshot.jsonl"
        cache.load().save(snapshot)
        db = Database.load(snapshot)
        assert len(db) == 2
        assert {r.group for r in db.records()} == {"k1", "k2"}

    def test_corrupt_interior_line_rejected(self, tmp_path):
        path = tmp_path / "db.jsonl"
        db = Database()
        db.add(_record(1.0, x=1))
        db.save(path)
        text = path.read_text() + '{"params": {"x": 2}, "latency": 2.0}\n'
        lines = text.splitlines()
        lines.insert(1, "not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DatabaseFormatError):
            Database.load(path)

    def test_torn_header_reads_as_empty_store(self, tmp_path):
        # A writer killed during the very first append leaves only a
        # partial header; readers must treat that as an empty store, not
        # crash every later --resume / tuned=True on the path.
        path = tmp_path / "db.jsonl"
        path.write_text(json.dumps({"format": DB_FORMAT})[:14])
        assert len(Database.load(path)) == 0
        cache = TuningCache(path)
        assert len(cache.load()) == 0
        assert cache.completed_trials("k") == 0
        # Appending heals the fragment and the store works normally.
        cache.append("k", [_record(1.0, x=1)])
        assert cache.best("k").latency == 1.0

    def test_torn_header_tolerance_is_specific(self, tmp_path):
        # A random single-line file that is NOT a header prefix still
        # raises: silence is reserved for our own killed writer.
        path = tmp_path / "junk.jsonl"
        path.write_text("definitely not a tuning db")
        with pytest.raises(DatabaseFormatError):
            Database.load(path)

    def test_newer_version_refused(self, tmp_path):
        path = tmp_path / "db.jsonl"
        path.write_text(
            json.dumps({"format": DB_FORMAT,
                        "version": DB_SCHEMA_VERSION + 1}) + "\n"
        )
        with pytest.raises(DatabaseFormatError):
            Database.load(path)

    def test_non_database_file_refused(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(DatabaseFormatError):
            Database.load(path)


class TestTuningCache:
    def test_append_and_load_by_key(self, tmp_path):
        cache = TuningCache(tmp_path / "store.jsonl")
        cache.append("k1", [_record(1.0, x=1), _record(2.0, x=2)])
        cache.append("k2", [_record(0.5, x=3)])
        assert len(cache.load("k1")) == 2
        assert len(cache.load("k2")) == 1
        assert len(cache.load()) == 3
        assert cache.keys() == ["k1", "k2"]

    def test_best_per_group(self, tmp_path):
        cache = TuningCache(tmp_path / "store.jsonl")
        cache.append("k1", [_record(3.0, x=1)])
        cache.append("k1", [_record(1.0, x=2)])
        assert cache.best("k1").latency == 1.0
        assert cache.best("missing") is None

    def test_missing_file_loads_empty(self, tmp_path):
        cache = TuningCache(tmp_path / "absent.jsonl")
        assert not cache.exists()
        assert len(cache.load("k")) == 0
        assert cache.keys() == []

    def test_meta_fields_ignored_on_load(self, tmp_path):
        cache = TuningCache(tmp_path / "store.jsonl")
        cache.append("k", [_record(1.0, x=1)],
                     meta={"workload": "mtv", "target": "upmem"})
        line = json.loads(
            (tmp_path / "store.jsonl").read_text().splitlines()[1]
        )
        assert line["workload"] == "mtv" and line["target"] == "upmem"
        assert cache.best("k").params == {"x": 1}

    def test_ensure_passes_instances_through(self, tmp_path):
        cache = TuningCache(tmp_path / "store.jsonl")
        assert TuningCache.ensure(cache) is cache
        assert TuningCache.ensure(str(tmp_path / "other.jsonl")).path == str(
            tmp_path / "other.jsonl"
        )

    def test_creates_parent_directories(self, tmp_path):
        cache = TuningCache(tmp_path / "nested" / "dir" / "store.jsonl")
        cache.append("k", [_record(1.0, x=1)])
        assert cache.best("k") is not None

    def test_refuses_to_append_to_foreign_file(self, tmp_path):
        # Appending (and its torn-tail heal/truncate) must not damage a
        # file that was never a tuning database.
        path = tmp_path / "notes.txt"
        original = "my notes\nlast line no newline"
        path.write_text(original)
        cache = TuningCache(path)
        with pytest.raises(DatabaseFormatError):
            cache.append("k", [_record(1.0, x=1)])
        assert path.read_text() == original

    def test_refuses_to_append_to_newer_version_file(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(
            json.dumps({"format": DB_FORMAT,
                        "version": DB_SCHEMA_VERSION + 1}) + "\n"
        )
        before = path.read_text()
        with pytest.raises(DatabaseFormatError):
            TuningCache(path).append("k", [_record(1.0, x=1)])
        assert path.read_text() == before

    def test_identical_params_in_distinct_groups_both_load(self, tmp_path):
        # Same param dict under two group digests (different workloads)
        # must not collapse into one record on a whole-file load.
        cache = TuningCache(tmp_path / "store.jsonl")
        cache.append("k1", [_record(5.0, n_dpus=512)])
        cache.append("k2", [_record(1.0, n_dpus=512)])
        db = cache.load()
        assert len(db) == 2
        assert {r.latency for r in db.records()} == {1.0, 5.0}
        assert {r.group for r in db.records()} == {"k1", "k2"}
        # Within one group the dedupe still applies.
        assert len(cache.load("k1")) == 1
        # contains() is group-aware too: k1's params don't shadow the
        # default group a search would use.
        assert not db.contains({"n_dpus": 512})
        assert db.contains({"n_dpus": 512}, group="k1")
        assert not db.contains({"n_dpus": 512}, group="k3")

    def test_append_after_torn_trailing_line_heals_file(self, tmp_path):
        # Regression: appending after a killed writer used to glue the
        # first new record onto the torn fragment — silently dropping it
        # and corrupting every later load once more lines followed.
        path = tmp_path / "store.jsonl"
        cache = TuningCache(path)
        cache.append("k", [_record(1.0, x=1)])
        with open(path, "a") as fh:
            fh.write('{"key": "k", "params": {"x": 9}, "laten')
        cache.append("k", [_record(2.0, x=2)])
        cache.append("k", [_record(3.0, x=3)])
        db = cache.load("k")
        assert {r.latency for r in db.records()} == {1.0, 2.0, 3.0}

    def test_run_complete_markers(self, tmp_path):
        cache = TuningCache(tmp_path / "store.jsonl")
        assert cache.completed_trials("k") == 0
        cache.append("k", [_record(1.0, x=1)])
        assert cache.completed_trials("k") == 0  # records alone don't count
        cache.mark_complete("k", 16, meta={"seed": 3})
        cache.mark_complete("k", 8)
        cache.mark_complete("other", 64)
        assert cache.completed_trials("k") == 16
        # Event lines are invisible to record loads.
        assert len(cache.load("k")) == 1
        assert len(cache.load()) == 1


class TestTuningKey:
    def test_same_inputs_same_key(self):
        assert tuning_key(mtv(64, 64), DEFAULT_CONFIG, "upmem") == tuning_key(
            mtv(64, 64), DEFAULT_CONFIG, "upmem"
        )

    def test_distinct_workloads_targets_configs_distinct_keys(self):
        base = tuning_key(mtv(64, 64), DEFAULT_CONFIG, "upmem")
        assert tuning_key(mtv(128, 64), DEFAULT_CONFIG, "upmem") != base
        assert tuning_key(red(1000), DEFAULT_CONFIG, "upmem") != base
        assert tuning_key(mtv(64, 64), DEFAULT_CONFIG, "hbm-pim") != base
        assert tuning_key(
            mtv(64, 64), DEFAULT_CONFIG.with_(n_ranks=2), "upmem"
        ) != base
        # O0 and O3 measure differently; they must not share a group.
        assert tuning_key(
            mtv(64, 64), DEFAULT_CONFIG, "upmem", opt_level="O0"
        ) != base

    def test_target_instance_and_kind_string_agree(self):
        from repro.target import UpmemTarget

        assert tuning_key(
            mtv(64, 64), DEFAULT_CONFIG, UpmemTarget()
        ) == tuning_key(mtv(64, 64), DEFAULT_CONFIG, "upmem")
