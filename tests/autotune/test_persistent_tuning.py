"""Search-loop fixes, parallel measurement and persistent warm-start."""

import pytest

import repro
from repro.autotune import Tuner, TuningCache, autotune, tuned_params
from repro.pipeline import tuning_key
from repro.workloads import mtv


class TestMutationReflects:
    def test_boundary_values_always_mutate(self):
        # Regression: clamping at domain edges used to mutate boundary
        # candidates into themselves, silently wasting the elite slot.
        tuner = Tuner(mtv(256, 256), n_trials=8, seed=0)
        low = {k: v[0] for k, v in tuner.space.items()}
        high = {k: v[-1] for k, v in tuner.space.items()}
        for params in (low, high):
            for _ in range(50):
                assert tuner._mutate_params(params) != params

    def test_interior_values_step_one_choice(self):
        tuner = Tuner(mtv(1024, 1024), n_trials=8, seed=1)
        params = {
            k: v[len(v) // 2] for k, v in tuner.space.items()
        }
        for _ in range(50):
            mutated = tuner._mutate_params(params)
            changed = [k for k in params if mutated[k] != params[k]]
            assert len(changed) == 1
            key = changed[0]
            domain = tuner.space[key]
            assert abs(
                domain.index(mutated[key]) - domain.index(params[key])
            ) == 1


class TestTinyBudgetExploration:
    def test_tiny_budget_keeps_one_exploratory_trial(self):
        # Regression: n_trials < 3 floored _explore_until at 0, so
        # epsilon returned 0.05 from trial 0 and exploration never ran.
        for n in (1, 2):
            tuner = Tuner(mtv(64, 64), n_trials=n)
            assert tuner._explore_until == 1
            assert tuner.epsilon(0) == pytest.approx(0.5)
            assert tuner.epsilon(1) == pytest.approx(0.05)

    def test_larger_budgets_unchanged(self):
        tuner = Tuner(mtv(64, 64), n_trials=100)
        assert tuner._explore_until == 40


@pytest.mark.slow
class TestParallelMeasurement:
    def test_parallel_history_bit_for_bit_equal_to_serial(self):
        kwargs = dict(n_trials=16, batch_size=8, seed=3)
        serial = autotune(mtv(256, 256), parallel_measure=1, **kwargs)
        parallel = autotune(mtv(256, 256), parallel_measure=4, **kwargs)
        assert parallel.history == serial.history
        assert parallel.measured == serial.measured
        assert parallel.best_params == serial.best_params
        assert parallel.best_latency == serial.best_latency

    def test_parallel_measure_one_is_default(self):
        tuner = Tuner(mtv(64, 64), n_trials=4)
        assert tuner.parallel_measure == 1


@pytest.mark.slow
class TestPersistentWarmStart:
    def test_records_appended_during_run(self, tmp_path):
        db = tmp_path / "tune.jsonl"
        result = autotune(mtv(256, 256), n_trials=12, seed=0, db=str(db))
        assert result.db_key
        cache = TuningCache(db)
        stored = cache.load(result.db_key)
        assert len(stored) == len(result.database)
        assert stored.best().latency == result.best_latency

    def test_killed_and_resumed_run_matches_uninterrupted(self, tmp_path):
        kwargs = dict(n_trials=16, batch_size=8, seed=3)
        full = autotune(mtv(256, 256), **kwargs)

        # "Kill" a run halfway: the persistent store keeps its batches.
        db = tmp_path / "tune.jsonl"
        autotune(mtv(256, 256), n_trials=8, batch_size=8, seed=3,
                 db=str(db))
        resumed = autotune(mtv(256, 256), db=str(db), resume=True, **kwargs)

        assert resumed.best_latency == full.best_latency
        assert resumed.best_params == full.best_params
        assert resumed.history == full.history
        assert resumed.measure_cache_hits > 0
        assert resumed.measure_cache_misses < len(full.measured)

    def test_resume_of_complete_run_is_all_hits(self, tmp_path):
        db = tmp_path / "tune.jsonl"
        kwargs = dict(n_trials=12, seed=1, db=str(db))
        cold = autotune(mtv(256, 256), **kwargs)
        warm = autotune(mtv(256, 256), resume=True, **kwargs)
        assert warm.history == cold.history
        assert warm.measure_cache_misses == 0
        assert warm.measure_cache_hits == len(cold.measured)
        assert warm.measure_cache_hit_rate == 1.0

    def test_resume_requires_db(self):
        with pytest.raises(ValueError):
            Tuner(mtv(64, 64), n_trials=4, resume=True)

    def test_exhausted_space_still_marks_requested_budget(self, tmp_path):
        # Regression: a search that ran out of candidates before
        # n_trials used to mark only the measured count, so tuned=True
        # re-ran the search forever for such workloads.
        db = tmp_path / "tune.jsonl"
        tuner = Tuner(mtv(256, 256), n_trials=64, batch_size=8, seed=0,
                      db=str(db))
        orig = tuner._sample_pool
        rounds = []

        def one_round_then_dry(size):
            if rounds:
                return []
            rounds.append(1)
            return orig(size)

        tuner._sample_pool = one_round_then_dry
        result = tuner.tune()
        assert len(result.measured) < 64
        assert TuningCache(db).completed_trials(tuner.db_key) == 64

    def test_opt_levels_form_separate_groups(self, tmp_path):
        # Regression: O0-measured latencies must never warm-start an O3
        # search — the same candidate measures differently per level.
        db = tmp_path / "tune.jsonl"
        o0 = autotune(mtv(256, 256), n_trials=8, seed=0, db=str(db),
                      optimize="O0")
        o3 = autotune(mtv(256, 256), n_trials=8, seed=0, db=str(db),
                      optimize="O3", resume=True)
        assert o0.db_key != o3.db_key
        assert o3.measure_cache_hits == 0

    def test_dbs_isolated_per_workload_and_config(self, tmp_path):
        db = tmp_path / "tune.jsonl"
        r1 = autotune(mtv(256, 256), n_trials=8, seed=0, db=str(db))
        r2 = autotune(mtv(128, 128), n_trials=8, seed=0, db=str(db))
        assert r1.db_key != r2.db_key
        cache = TuningCache(db)
        assert set(cache.keys()) == {r1.db_key, r2.db_key}
        # A resumed run only warms from its own group.
        r3 = autotune(mtv(128, 128), n_trials=8, seed=0, db=str(db),
                      resume=True)
        assert r3.measure_cache_misses == 0


@pytest.mark.slow
class TestTunedCompile:
    def test_tuned_true_resolves_from_db_without_research(self, tmp_path):
        db = tmp_path / "tune.jsonl"
        wl = mtv(256, 256)
        result = autotune(wl, n_trials=12, seed=0, db=str(db))

        exe = repro.compile(wl, target="upmem", tuned=True, db=str(db),
                            tune_trials=12, tune_seed=0)
        assert exe.params == result.best_params
        # The store was not re-tuned: still exactly one group with the
        # original record count.
        cache = TuningCache(db)
        assert len(cache.load(result.db_key)) == len(result.database)

    def test_tuned_true_cold_runs_search_and_persists(self, tmp_path):
        db = tmp_path / "tune.jsonl"
        wl = mtv(256, 256)
        exe = repro.compile(wl, target="upmem", tuned=True, db=str(db),
                            tune_trials=8, tune_seed=0)
        key = tuning_key(wl, repro.get_target("upmem").search_config,
                         repro.get_target("upmem"))
        best = TuningCache(db).best(key)
        assert best is not None
        assert exe.params == best.params

    def test_tuned_params_completes_interrupted_group(self, tmp_path):
        db = tmp_path / "tune.jsonl"
        wl = mtv(256, 256)
        autotune(wl, n_trials=8, batch_size=8, seed=3, db=str(db))
        full = autotune(wl, n_trials=16, batch_size=8, seed=3)
        params = tuned_params(wl, db=str(db), n_trials=16, seed=3,
                              batch_size=8)
        assert params == full.best_params

    def test_record_count_alone_does_not_mark_group_tuned(self, tmp_path):
        # Regression: the union of interrupted runs can exceed n_trials
        # records without any run having completed; tuned_params must
        # run the search, not trust the head count.
        src = tmp_path / "src.jsonl"
        db = tmp_path / "tune.jsonl"
        wl = mtv(256, 256)
        result = autotune(wl, n_trials=12, batch_size=4, seed=0,
                          db=str(src))
        # Copy only the record lines (no run_complete marker): an
        # interrupted-runs-only group with 12 >= 8 records.
        cache = TuningCache(db)
        cache.append(result.db_key, result.database.records())
        assert cache.completed_trials(result.db_key) == 0

        params = tuned_params(wl, db=str(db), n_trials=8, batch_size=4,
                              seed=0)
        # The search ran (and marked completion), rather than returning
        # the stored best on record count alone.
        assert cache.completed_trials(result.db_key) >= 8
        full = autotune(wl, n_trials=8, batch_size=4, seed=0)
        assert params == full.best_params

    def test_tuned_params_accepts_explicit_resume(self, tmp_path):
        db = tmp_path / "tune.jsonl"
        wl = mtv(256, 256)
        # resume=False with a db: persist but search fresh (no TypeError
        # from the forwarded kwarg, no warm fast path).
        params = tuned_params(wl, db=str(db), n_trials=8, seed=0,
                              resume=False)
        full = autotune(wl, n_trials=8, seed=0)
        assert params == full.best_params
        target = repro.get_target("upmem")
        key = tuning_key(wl, target.search_config, target)
        assert TuningCache(db).completed_trials(key) == 8

    def test_explicit_params_win_over_tuned(self):
        wl = mtv(256, 256)
        from repro.target.targets import default_params

        params = default_params(wl)
        exe = repro.compile(wl, target="upmem", tuned=True, params=params)
        assert exe.params == params
