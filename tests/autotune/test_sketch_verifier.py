"""Sketch generation, parameter spaces, and the UPMEM verifier."""

import numpy as np
import pytest

from repro.autotune import generate_schedule, param_space, subspace_of, verify
from repro.autotune.compile import compile_params
from repro.lowering import lower
from repro.upmem import FunctionalExecutor, UpmemConfig
from repro.workloads import geva, gemv, mmtv, mtv, red, ttv, va


class TestParamSpace:
    def test_all_workloads_have_spaces(self):
        for wl in (va(1024), geva(1024), red(4096), mtv(64, 64),
                   gemv(64, 64), ttv(8, 8, 64), mmtv(8, 8, 64)):
            space = param_space(wl)
            assert space
            assert all(len(domain) >= 1 for domain in space.values())

    def test_dpu_domain_respects_shape(self):
        space = param_space(va(128))
        assert max(space["n_dpus"]) <= 128

    def test_dpu_domain_respects_system(self):
        space = param_space(va(10**7), max_dpus=64)
        assert max(space["n_dpus"]) <= 64

    def test_unknown_workload(self):
        wl = va(64)
        wl.name = "conv3d"
        with pytest.raises(KeyError):
            param_space(wl)

    def test_subspace_tagging(self):
        assert subspace_of("mtv", {"k_dpus": 4}) == "rfactor"
        assert subspace_of("mtv", {"k_dpus": 1}) == "plain"
        assert subspace_of("va", {"n_dpus": 8}) == "plain"


class TestSketchCorrectness:
    """Every sketch × parameter combination computes the right answer."""

    CASES = [
        (va(777), {"n_dpus": 8, "n_tasklets": 2, "cache": 16, "unroll": 1}),
        (geva(500), {"n_dpus": 4, "n_tasklets": 4, "cache": 8}),
        (red(3000), {"n_dpus": 4, "n_tasklets": 2, "cache": 16,
                     "dpu_combine": 1, "host_threads": 4}),
        (red(3000), {"n_dpus": 8, "n_tasklets": 4, "cache": 8,
                     "dpu_combine": 0, "host_threads": 1, "unroll": 1}),
        (mtv(45, 70), {"m_dpus": 4, "k_dpus": 1, "n_tasklets": 2,
                       "cache": 16, "host_threads": 1}),
        (mtv(45, 70), {"m_dpus": 2, "k_dpus": 2, "n_tasklets": 2,
                       "cache": 8, "host_threads": 4, "unroll": 1}),
        (gemv(33, 40), {"m_dpus": 4, "k_dpus": 2, "n_tasklets": 2,
                        "cache": 8, "host_threads": 1}),
        (ttv(5, 9, 33), {"i_dpus": 2, "j_dpus": 2, "k_dpus": 1,
                         "n_tasklets": 2, "cache": 8, "host_threads": 1}),
        (mmtv(5, 9, 33), {"i_dpus": 2, "j_dpus": 4, "k_dpus": 2,
                          "n_tasklets": 2, "cache": 8, "host_threads": 4}),
    ]

    @pytest.mark.parametrize(
        "workload,params", CASES,
        ids=[f"{w.name}-{i}" for i, (w, _p) in enumerate(CASES)],
    )
    def test_sketch_correct(self, workload, params):
        module = compile_params(workload, params, optimize="O3", check=False)
        assert module is not None
        inputs = workload.random_inputs(7)
        out, = FunctionalExecutor(module).run(inputs)
        ref = workload.reference_output(inputs)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    @pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3"])
    def test_sketch_correct_across_opt_levels(self, level):
        wl = mtv(37, 53)
        params = {"m_dpus": 4, "k_dpus": 2, "n_tasklets": 2, "cache": 16,
                  "host_threads": 1}
        module = compile_params(wl, params, optimize=level, check=False)
        inputs = wl.random_inputs(3)
        out, = FunctionalExecutor(module).run(inputs)
        np.testing.assert_allclose(
            out, wl.reference_output(inputs), rtol=1e-3
        )


class TestVerifier:
    def _module(self, **params):
        defaults = {"m_dpus": 4, "k_dpus": 1, "n_tasklets": 2, "cache": 16,
                    "host_threads": 1}
        defaults.update(params)
        wl = mtv(256, 256)
        sch = generate_schedule(wl, defaults)
        return lower(sch)

    def test_valid_module_passes(self):
        ok, reason = verify(self._module())
        assert ok, reason

    def test_too_many_dpus_rejected(self):
        cfg = UpmemConfig().with_(n_ranks=1)  # 64 DPUs
        ok, reason = verify(self._module(m_dpus=256), cfg)
        assert not ok and "DPU" in reason

    def test_too_many_tasklets_rejected(self):
        module = self._module(n_tasklets=2)
        module.n_tasklets = 40  # simulate an invalid candidate
        ok, reason = verify(module)
        assert not ok and "tasklet" in reason

    def test_wram_overflow_rejected(self):
        # 24 tasklets x 512-element caches x 3 buffers overflows 64 KB.
        wl = mtv(2048, 2048)
        sch = generate_schedule(
            wl,
            {"m_dpus": 2, "k_dpus": 1, "n_tasklets": 24, "cache": 512,
             "host_threads": 1},
        )
        ok, reason = verify(lower(sch))
        assert not ok and "WRAM" in reason

    def test_compile_params_filters_invalid(self):
        wl = mtv(2048, 2048)
        bad = {"m_dpus": 2, "k_dpus": 1, "n_tasklets": 24, "cache": 512,
               "host_threads": 1}
        assert compile_params(wl, bad) is None
        assert compile_params(wl, bad, check=False) is not None

    def test_mram_limit(self):
        cfg = UpmemConfig().with_(mram_bytes=1024)
        ok, reason = verify(self._module(), cfg)
        assert not ok and "MRAM" in reason
