"""Schedule → lowering semantic checks that complement the unit tests:
reconstruction correctness for every split/fuse combination actually
exercised by the sketches."""

import numpy as np
import pytest

from repro import te
from repro.lowering import lower
from repro.schedule import Schedule, reconstruct_roots
from repro.schedule.relations import Fuse, Split
from repro.te.operation import IterVar
from repro.tir import IntImm, Var, collect_vars, simplify, substitute
from repro.upmem import FunctionalExecutor
from repro.upmem.interp import Interpreter


def _eval(expr, env):
    return Interpreter({}).eval(expr, env)


class TestReconstruction:
    def test_single_split(self):
        root = IterVar(32, "i")
        outer = IterVar(4, "io")
        inner = IterVar(8, "ii")
        recon = reconstruct_roots([root], [Split(root, outer, inner, 8)])
        for o in range(4):
            for i in range(8):
                value = _eval(recon[root.var], {outer.var: o, inner.var: i})
                assert value == o * 8 + i

    def test_nested_splits(self):
        root = IterVar(64, "i")
        o1, i1 = IterVar(4, "o1"), IterVar(16, "i1")
        o2, i2 = IterVar(4, "o2"), IterVar(4, "i2")
        rels = [Split(root, o1, i1, 16), Split(i1, o2, i2, 4)]
        recon = reconstruct_roots([root], rels)
        value = _eval(
            recon[root.var], {o1.var: 2, o2.var: 3, i2.var: 1}
        )
        assert value == 2 * 16 + 3 * 4 + 1

    def test_fuse_reconstruction(self):
        a = IterVar(4, "a")
        b = IterVar(8, "b")
        fused = IterVar(32, "f")
        recon = reconstruct_roots([a, b], [Fuse(a, b, fused)])
        for f in range(32):
            env = {fused.var: f}
            assert _eval(recon[a.var], env) == f // 8
            assert _eval(recon[b.var], env) == f % 8

    def test_fuse_then_split(self):
        a = IterVar(4, "a")
        b = IterVar(6, "b")
        fused = IterVar(24, "f")
        fo, fi = IterVar(4, "fo"), IterVar(6, "fi")
        rels = [Fuse(a, b, fused), Split(fused, fo, fi, 6)]
        recon = reconstruct_roots([a, b], rels)
        for o in range(4):
            for i in range(6):
                env = {fo.var: o, fi.var: i}
                f = o * 6 + i
                assert _eval(recon[a.var], env) == f // 6
                assert _eval(recon[b.var], env) == f % 6

    def test_untouched_root_is_identity(self):
        root = IterVar(8, "i")
        recon = reconstruct_roots([root], [])
        assert recon[root.var] is root.var


class TestFusedLowering:
    def test_fused_dpu_binding_rejected_cleanly(self):
        """Binding a fused multi-dim axis to DPUs would need
        non-rectangular MRAM tiles (the fused tile straddles rows) — a
        documented limitation; the sketches bind per-dimension grids
        instead, like the paper's Table-2 examples."""
        from repro.lowering import LoweringError

        h, w = 6, 10
        A = te.placeholder((h, w), "float32", "A")
        C = te.compute((h, w), lambda i, j: A[i, j] + 1.0, "C")
        sch = Schedule(C)
        s = sch[C]
        f = s.fuse(*s.op.axis)
        f_dpu, _ = s.split(f, nparts=4)
        s.bind(f_dpu, "blockIdx.x")
        with pytest.raises(LoweringError):
            lower(sch)

    def test_fuse_of_inner_kernel_loops_supported(self):
        """Fusing loops below the DPU binding is fine (tiles stay
        rectangular: the whole row block belongs to one DPU)."""
        h, w = 8, 10
        A = te.placeholder((h, w), "float32", "A")
        C = te.compute((h, w), lambda i, j: A[i, j] * 2.0, "C")
        sch = Schedule(C)
        s = sch[C]
        i, j = s.op.axis
        i_dpu, i_in = s.split(i, nparts=4)
        s.bind(i_dpu, "blockIdx.x")
        s.fuse(i_in, j)  # one flat loop over the DPU's 2x10 tile
        mod = lower(sch)
        rng = np.random.default_rng(1)
        a = rng.random((h, w), dtype=np.float32)
        out, = FunctionalExecutor(mod).run({"A": a})
        np.testing.assert_allclose(out, a * 2.0, rtol=1e-6)
