"""cache_read/cache_write placement and rfactor rewrites."""

import pytest

from repro import te
from repro.schedule import Schedule, ScheduleError
from repro.tir import collect_loads


def make_matvec(m=64, k=32):
    A = te.placeholder((m, k), "float32", "A")
    B = te.placeholder((k,), "float32", "B")
    kk = te.reduce_axis(k, "k")
    C = te.compute((m,), lambda i: te.sum(A[i, kk] * B[kk], axis=kk), "C")
    return A, B, C


class TestCacheRead:
    def test_creates_stage(self):
        A, B, C = make_matvec()
        sch = Schedule(C)
        cache = sch.cache_read(C, A, "wram")
        assert cache.kind == "cache_read"
        assert cache.cache_source is A.buffer
        assert sch[C].cache_reads[A.buffer] is cache

    def test_duplicate_cache_rejected(self):
        A, _, C = make_matvec()
        sch = Schedule(C)
        sch.cache_read(C, A, "wram")
        with pytest.raises(ScheduleError):
            sch.cache_read(C, A, "wram")

    def test_cache_of_unread_buffer_rejected(self):
        A, B, C = make_matvec()
        other = te.placeholder((4,), "float32", "unused")
        sch = Schedule(C)
        with pytest.raises(ScheduleError):
            sch.cache_read(C, other, "wram")

    def test_compute_at_records_attachment(self):
        A, _, C = make_matvec()
        sch = Schedule(C)
        s = sch[C]
        ko, ki = s.split(s.op.reduce_axis[0], factor=8)
        cache = sch.cache_read(C, A, "wram")
        cache.compute_at(s, ko)
        assert cache.attach == (s, ko)

    def test_compute_at_non_leaf_rejected(self):
        A, _, C = make_matvec()
        sch = Schedule(C)
        s = sch[C]
        k = s.op.reduce_axis[0]
        s.split(k, factor=8)
        cache = sch.cache_read(C, A, "wram")
        with pytest.raises(ScheduleError):
            cache.compute_at(s, k)  # k was consumed by split


class TestCacheWrite:
    def test_creates_writeback_stage(self):
        _, _, C = make_matvec()
        sch = Schedule(C)
        wb = sch.cache_write(C, "wram")
        assert wb.kind == "writeback"
        assert wb.writeback_of is sch[C]
        assert sch[C].write_cache_scope == "wram"

    def test_double_cache_write_rejected(self):
        _, _, C = make_matvec()
        sch = Schedule(C)
        sch.cache_write(C, "wram")
        with pytest.raises(ScheduleError):
            sch.cache_write(C, "wram")


class TestRfactor:
    def test_creates_partial_and_final_stage(self):
        _, _, C = make_matvec()
        sch = Schedule(C)
        s = sch[C]
        ko, ki = s.split(s.op.reduce_axis[0], nparts=4)
        cf = sch.rfactor(C, ko)
        names = [st.name for st in sch.stages]
        assert cf.name in names
        assert any(n.endswith("_final") for n in names)
        # Partial tensor: leading factored axis + original spatial axis.
        assert cf.shape == (4, 64)

    def test_final_stage_reuses_output_buffer(self):
        _, _, C = make_matvec()
        sch = Schedule(C)
        s = sch[C]
        ko, _ = s.split(s.op.reduce_axis[0], nparts=4)
        sch.rfactor(C, ko)
        final = sch[C]
        assert final.op.tensor.buffer is C.buffer
        assert final.name.endswith("_final")

    def test_final_stage_reads_partials(self):
        _, _, C = make_matvec()
        sch = Schedule(C)
        s = sch[C]
        ko, _ = s.split(s.op.reduce_axis[0], nparts=4)
        cf = sch.rfactor(C, ko)
        loads = collect_loads(sch[C].op.body)
        assert loads[0].buffer is cf.buffer

    def test_rfactor_on_spatial_rejected(self):
        _, _, C = make_matvec()
        sch = Schedule(C)
        s = sch[C]
        with pytest.raises(ScheduleError):
            sch.rfactor(C, s.op.axis[0])

    def test_rfactor_on_elementwise_rejected(self):
        A = te.placeholder((8,), "float32", "A")
        C = te.compute((8,), lambda i: A[i], "C")
        sch = Schedule(C)
        with pytest.raises(ScheduleError):
            sch.rfactor(C, sch[C].op.axis[0])

    def test_rfactor_after_bind_rejected(self):
        _, _, C = make_matvec()
        sch = Schedule(C)
        s = sch[C]
        ko, _ = s.split(s.op.reduce_axis[0], nparts=4)
        s.bind(s.op.axis[0], "blockIdx.x")
        with pytest.raises(ScheduleError):
            sch.rfactor(C, ko)

    def test_imperfect_rfactor_adds_predicate(self):
        A = te.placeholder((8, 10), "float32", "A")
        B = te.placeholder((10,), "float32", "B")
        kk = te.reduce_axis(10, "k")
        C = te.compute((8,), lambda i: te.sum(A[i, kk] * B[kk], axis=kk), "C")
        sch = Schedule(C)
        s = sch[C]
        ko, _ = s.split(s.op.reduce_axis[0], nparts=4)  # 10 = 4 * ceil(2.5)
        cf = sch.rfactor(C, ko)
        assert getattr(cf.op, "predicates", [])

    def test_double_rfactor(self):
        A = te.placeholder((64,), "float32", "A")
        k = te.reduce_axis(64, "k")
        C = te.compute((1,), lambda i: te.sum(A[k], axis=k), "C")
        sch = Schedule(C)
        s = sch[C]
        kd, kr = s.split(s.op.reduce_axis[0], nparts=4)
        cf = sch.rfactor(C, kd)
        scf = sch[cf]
        kt, _ = scf.split(scf.op.reduce_axis[0], nparts=2)
        cf2 = sch.rfactor(cf, kt)
        assert cf2.shape == (2, 4, 1)
