"""Schedule primitives: split/fuse/reorder/bind and their error paths."""

import pytest

from repro import te
from repro.schedule import Schedule, ScheduleError


def make_matvec(m=64, k=32):
    A = te.placeholder((m, k), "float32", "A")
    B = te.placeholder((k,), "float32", "B")
    kk = te.reduce_axis(k, "k")
    C = te.compute((m,), lambda i: te.sum(A[i, kk] * B[kk], axis=kk), "C")
    return A, B, C


class TestSplit:
    def test_split_factor_extents(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        outer, inner = s.split(s.op.axis[0], factor=16)
        assert outer.extent == 4 and inner.extent == 16

    def test_split_nparts_extents(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        outer, inner = s.split(s.op.axis[0], nparts=4)
        assert outer.extent == 4 and inner.extent == 16

    def test_imperfect_split_rounds_up(self):
        A = te.placeholder((10,), "float32", "A")
        C = te.compute((10,), lambda i: A[i], "C")
        s = Schedule(C)[C]
        outer, inner = s.split(s.op.axis[0], factor=4)
        assert outer.extent == 3 and inner.extent == 4

    def test_split_replaces_leaf(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        i = s.op.axis[0]
        outer, inner = s.split(i, factor=16)
        assert i not in s.leaf_iter_vars
        assert s.leaf_iter_vars.index(inner) == s.leaf_iter_vars.index(outer) + 1

    def test_split_requires_one_of_factor_nparts(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        with pytest.raises(ScheduleError):
            s.split(s.op.axis[0])
        with pytest.raises(ScheduleError):
            s.split(s.op.axis[0], factor=2, nparts=2)

    def test_split_non_leaf_rejected(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        i = s.op.axis[0]
        s.split(i, factor=16)
        with pytest.raises(ScheduleError):
            s.split(i, factor=2)

    def test_split_nonpositive_factor(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        with pytest.raises(ScheduleError):
            s.split(s.op.axis[0], factor=0)

    def test_split_preserves_kind(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        ko, ki = s.split(s.op.reduce_axis[0], factor=8)
        assert ko.is_reduce and ki.is_reduce


class TestFuseReorder:
    def test_fuse_extent(self):
        A = te.placeholder((4, 8), "float32", "A")
        C = te.compute((4, 8), lambda i, j: A[i, j], "C")
        s = Schedule(C)[C]
        f = s.fuse(*s.op.axis)
        assert f.extent == 32
        assert s.leaf_iter_vars == [f]

    def test_fuse_requires_adjacent(self):
        A = te.placeholder((4, 8, 2), "float32", "A")
        C = te.compute((4, 8, 2), lambda i, j, k: A[i, j, k], "C")
        s = Schedule(C)[C]
        i, j, k = s.op.axis
        with pytest.raises(ScheduleError):
            s.fuse(i, k)

    def test_fuse_mixed_kinds_rejected(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        with pytest.raises(ScheduleError):
            s.fuse(s.op.axis[0], s.op.reduce_axis[0])

    def test_reorder(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        i = s.op.axis[0]
        k = s.op.reduce_axis[0]
        s.reorder(k, i)
        assert s.leaf_iter_vars == [k, i]

    def test_reorder_partial_keeps_positions(self):
        A = te.placeholder((4, 8, 2), "float32", "A")
        C = te.compute((4, 8, 2), lambda i, j, k: A[i, j, k], "C")
        s = Schedule(C)[C]
        i, j, k = s.op.axis
        s.reorder(k, i)  # swap i and k, j stays in the middle
        assert s.leaf_iter_vars == [k, j, i]

    def test_reorder_duplicates_rejected(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        i = s.op.axis[0]
        with pytest.raises(ScheduleError):
            s.reorder(i, i)


class TestBindAnnotate:
    def test_bind(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        i = s.op.axis[0]
        s.bind(i, "blockIdx.x")
        assert s.binds[i] == "blockIdx.x"

    def test_bind_unknown_tag(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        with pytest.raises(ScheduleError):
            s.bind(s.op.axis[0], "warpIdx.x")

    def test_double_bind_same_tag_rejected(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        io, ii = s.split(s.op.axis[0], factor=8)
        s.bind(io, "blockIdx.x")
        with pytest.raises(ScheduleError):
            s.bind(ii, "blockIdx.x")

    def test_unroll_parallel_annotations(self):
        _, _, C = make_matvec()
        s = Schedule(C)[C]
        io, ii = s.split(s.op.axis[0], factor=8)
        s.unroll(ii)
        s.parallel(io)
        assert s.annotations[ii] == "unroll"
        assert s.annotations[io] == "parallel"


class TestScheduleGraph:
    def test_stage_lookup(self):
        A, B, C = make_matvec()
        sch = Schedule(C)
        assert sch[C].op is C.op
        assert sch[A].kind == "placeholder"

    def test_stage_order_topological(self):
        A, B, C = make_matvec()
        sch = Schedule(C)
        names = [s.name for s in sch.stages]
        assert names.index("A") < names.index("C")
        assert names.index("B") < names.index("C")

    def test_unknown_buffer_rejected(self):
        _, _, C = make_matvec()
        sch = Schedule(C)
        other = te.placeholder((4,), "float32", "other")
        with pytest.raises(ScheduleError):
            sch[other]

    def test_compute_stages(self):
        _, _, C = make_matvec()
        sch = Schedule(C)
        assert [s.name for s in sch.compute_stages()] == ["C"]
