"""GraphExecutable: placement, compilation, execution, cost model."""

import numpy as np
import pytest

import repro
from repro.graph import (
    GraphError,
    GraphExecutable,
    compile_graph,
    gptj_decoder_graph,
    place,
)
from repro.serve.pool import ExecutablePool

from .conftest import TINY, chain_graph


class TestPlacement:
    def test_default_puts_matvecs_on_pim(self, tiny_decoder):
        placement = place(tiny_decoder, policy="default")
        for node in tiny_decoder.nodes:
            kind = placement[node.name].kind
            if node.workload.name in ("mtv", "mmtv"):
                assert kind == "upmem", node.name
            else:
                assert kind == "cpu", node.name

    def test_cpu_policy_places_everything_on_host(self, tiny_decoder):
        placement = place(tiny_decoder, policy="cpu")
        assert {t.kind for t in placement.values()} == {"cpu"}

    def test_mixed_policy_splits_attention_from_ffn(self, tiny_decoder):
        placement = place(tiny_decoder, policy="mixed")
        assert placement["attn_score_0"].kind == "upmem"
        assert placement["fc"].kind == "cpu"
        assert placement["fc_proj"].kind == "cpu"

    def test_upmem_alias_matches_default(self, tiny_decoder):
        a = place(tiny_decoder, policy="default")
        b = place(tiny_decoder, policy="upmem")
        assert {n: t.kind for n, t in a.items()} == {
            n: t.kind for n, t in b.items()
        }

    def test_node_override_wins(self):
        g = chain_graph()
        next(n for n in g.nodes if n.name == "add").target = "upmem"
        placement = place(g, policy="cpu")
        assert placement["add"].kind == "upmem"
        assert placement["h1"].kind == "cpu"

    def test_glue_forced_onto_pim_rejected(self, tiny_decoder):
        next(
            n for n in tiny_decoder.nodes if n.name == "gelu"
        ).target = "upmem"
        with pytest.raises(GraphError, match="cannot compile"):
            place(tiny_decoder, policy="default")

    def test_unknown_policy_rejected(self, tiny_decoder):
        with pytest.raises(GraphError, match="unknown placement policy"):
            place(tiny_decoder, policy="gpu-only")


class TestExecution:
    def test_graph_run_bit_for_bit_equals_per_op_runs(self, tiny_decoder):
        """The acceptance contract: orchestrated execution is exactly a
        chain of individual ``Executable.run`` calls."""
        exe = compile_graph(tiny_decoder, target="upmem")
        inputs = tiny_decoder.random_inputs(5)
        got = exe.run_tensors(inputs)

        env = dict(inputs)
        placement = exe.placement
        for node in tiny_decoder.topological_order():
            single = repro.compile(
                node.workload,
                target=placement[node.name],
                params=node.params,
            )
            feed = {
                wl_name: env[graph_name]
                for wl_name, graph_name, _ in node.input_bindings()
            }
            (env[node.output],) = single.run(feed)
        for name in tiny_decoder.output_names:
            assert got[name].tobytes() == env[name].tobytes()

    def test_outputs_match_numpy_reference(self, tiny_decoder):
        inputs = tiny_decoder.random_inputs(2)
        want = tiny_decoder.reference_outputs(inputs)["y"]
        for policy in ("default", "cpu", "mixed"):
            exe = compile_graph(
                tiny_decoder, placement=place(tiny_decoder, policy=policy)
            )
            (out,) = exe.run(inputs)
            np.testing.assert_allclose(out, want, rtol=1e-3, atol=1e-5)

    def test_front_door_compiles_graphs(self, tiny_decoder):
        exe = repro.compile(tiny_decoder, target="upmem")
        assert isinstance(exe, GraphExecutable)
        assert exe.latency > 0

    def test_front_door_rejects_graph_level_params(self, tiny_decoder):
        """Schedule params are per node; a graph-level params= would be
        silently meaningless, so it is an explicit error."""
        with pytest.raises(ValueError, match="per node"):
            repro.compile(tiny_decoder, target="upmem",
                          params={"m_dpus": 4})

    def test_missing_input_rejected(self, tiny_decoder):
        exe = compile_graph(tiny_decoder, target="upmem")
        inputs = tiny_decoder.random_inputs(0)
        inputs.pop("x")
        with pytest.raises(KeyError, match="missing inputs"):
            exe.run(inputs)

    def test_incomplete_placement_rejected(self, tiny_decoder):
        placement = place(tiny_decoder, policy="default")
        placement.pop("gelu")
        with pytest.raises(ValueError, match="placement misses"):
            GraphExecutable(tiny_decoder, placement)

    def test_shared_programs_compile_once(self, tiny_decoder):
        pool = ExecutablePool(capacity=64)
        compile_graph(tiny_decoder, target="upmem", pool=pool)
        stats = pool.stats()
        # Per-head score/value nodes reuse one program each: strictly
        # fewer compiles than nodes.
        assert stats["misses"] < len(tiny_decoder)
        assert stats["hits"] > 0


class TestCostModel:
    def test_cpu_placement_charges_no_bus_traffic(self, tiny_decoder):
        exe = compile_graph(
            tiny_decoder, placement=place(tiny_decoder, policy="cpu")
        )
        profile = exe.profile()
        assert profile.latency.h2d == 0.0
        assert profile.latency.d2h == 0.0
        assert profile.staging_s == 0.0
        assert profile.total > 0

    def test_staging_charged_once_per_const_tensor(self, tiny_decoder):
        exe = compile_graph(tiny_decoder, target="upmem")
        staged = [c for c in exe.profile().nodes if c.staging_s > 0]
        # qkv_gen, per-head score+value, attn_proj, fc, fc_proj.
        assert len(staged) == 4 + 2 * TINY.n_heads
        assert exe.profile().steady_state_s < exe.profile().total

    def test_dynamic_input_in_const_slot_pays_recurring_h2d(self):
        """A non-const graph input bound to a workload's const slot
        carries fresh data every run: recurring H2D, never staging."""
        from repro.graph import ModelGraph
        from repro.workloads import mtv

        g = ModelGraph("dyn-weight")
        g.add_input("w", (16, 16))  # note: NOT const
        g.add_input("x", (16,))
        g.add_node(
            "h", mtv(16, 16), {"A": "w", "B": "x"}, "y",
            params={"m_dpus": 4, "k_dpus": 1, "n_tasklets": 2, "cache": 16,
                    "host_threads": 1, "unroll": 0},
        )
        exe = compile_graph(g, target="upmem")
        (cost,) = exe.profile().nodes
        assert cost.staging_s == 0.0
        assert cost.h2d_s > 0.0
        assert exe.profile().steady_state_s == exe.profile().total

    def test_warm_pool_stages_nothing(self, tiny_decoder):
        pool = ExecutablePool(capacity=64)
        compile_graph(tiny_decoder, target="upmem", pool=pool)
        warm = compile_graph(tiny_decoder, target="upmem", pool=pool)
        assert warm.profile().staging_s == 0.0

    def test_pim_to_pim_edges_elide_transfers(self):
        """In an all-PIM chain, only the first node pays dynamic H2D and
        only the last pays D2H."""
        g = chain_graph()
        for node in g.nodes:
            node.target = "upmem"
        exe = compile_graph(g, target="upmem")
        costs = {c.node: c for c in exe.profile().nodes}
        assert costs["h1"].crossing_in  # x arrives from the host
        assert costs["add"].crossing_in  # x2 is a dynamic external input
        # h2 reads only PIM-resident data (t2) and its const weight.
        assert not costs["h2"].crossing_in
        assert costs["h2"].h2d_s == 0.0
        assert not costs["h1"].crossing_out
        assert not costs["add"].crossing_out
        assert costs["h1"].d2h_s == 0.0 and costs["add"].d2h_s == 0.0
        assert costs["h2"].crossing_out  # y is a graph output
        assert costs["h2"].d2h_s > 0.0

    def test_boundary_edges_pay_transfers(self, tiny_decoder):
        exe = compile_graph(
            tiny_decoder, placement=place(tiny_decoder, policy="mixed")
        )
        costs = {c.node: c for c in exe.profile().nodes}
        # PIM score nodes read the host-produced query slice.
        assert costs["attn_score_0"].crossing_in
        assert costs["attn_score_0"].h2d_s > 0
        # ... and feed the host softmax.
        assert costs["attn_score_0"].crossing_out
        assert costs["attn_score_0"].d2h_s > 0

    def test_profile_totals_are_additive(self, tiny_decoder):
        profile = compile_graph(tiny_decoder, target="upmem").profile()
        total = sum(c.total_s for c in profile.nodes) + profile.staging_s
        assert profile.total == pytest.approx(total, rel=1e-9)

    def test_memory_plan_exposed(self, tiny_decoder):
        exe = compile_graph(tiny_decoder, target="upmem")
        plan = exe.memory_plan
        assert plan.arena_bytes < plan.naive_bytes
