"""Shared fixtures for the model-graph tests.

The tiny GPT-J configuration keeps functional simulation cheap (the
whole decode step is a few ms of host time) while preserving the real
graph topology: ``n_heads * head_dim == d_model``, four FC-shape MTVs,
per-head attention, glue, residuals.
"""

from __future__ import annotations

import pytest

from repro.graph import ModelGraph, gptj_decoder_graph
from repro.workloads import GPTJConfig, mtv, va

TINY = GPTJConfig("gptj-tiny", n_heads=2, d_model=32, head_dim=16)


@pytest.fixture
def tiny_config() -> GPTJConfig:
    return TINY


@pytest.fixture
def tiny_decoder() -> ModelGraph:
    return gptj_decoder_graph(TINY, tokens=4)


def chain_graph() -> ModelGraph:
    """x -> mtv -> va(+x2) -> mtv -> y: a minimal multi-buffer chain."""
    g = ModelGraph("chain")
    g.add_input("x", (16,))
    g.add_input("x2", (16,))
    g.add_input("w1", (16, 16), const=True)
    g.add_input("w2", (16, 16), const=True)
    small = {
        "m_dpus": 4, "k_dpus": 1, "n_tasklets": 2, "cache": 16,
        "host_threads": 1, "unroll": 0,
    }
    vsmall = {"n_dpus": 2, "n_tasklets": 2, "cache": 16, "unroll": 0}
    g.add_node("h1", mtv(16, 16), {"A": "w1", "B": "x"}, "t1", params=small)
    g.add_node("add", va(16), {"A": "t1", "B": "x2"}, "t2", params=vsmall)
    g.add_node("h2", mtv(16, 16), {"A": "w2", "B": "t2"}, "y", params=small)
    return g
