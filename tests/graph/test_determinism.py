"""Determinism: worker count never changes what a graph computes.

The graph-subsystem counterpart of ``tests/serve/test_determinism.py``:
one decode step executed with ``max_workers=1`` vs ``4`` produces
bit-for-bit identical outputs, an identical per-node cost breakdown and
an identical memory plan — nothing in the model consults wall time or
thread scheduling.
"""

from repro.graph import compile_graph, gptj_decoder_graph, plan_memory

from .conftest import TINY


def _compile(max_workers):
    graph = gptj_decoder_graph(TINY, tokens=4)
    return graph, compile_graph(
        graph, target="upmem", max_workers=max_workers
    )


class TestWorkerCountInvariance:
    def test_outputs_identical_1_vs_4_workers(self):
        g1, exe1 = _compile(max_workers=1)
        g4, exe4 = _compile(max_workers=4)
        inputs = g1.random_inputs(9)
        out1 = exe1.run_tensors(inputs)
        out4 = exe4.run_tensors(inputs)
        assert set(out1) == set(out4)
        for name in out1:
            assert out1[name].tobytes() == out4[name].tobytes()

    def test_per_node_timings_identical(self):
        _, exe1 = _compile(max_workers=1)
        _, exe4 = _compile(max_workers=4)
        costs1 = [c.to_dict() for c in exe1.profile().nodes]
        costs4 = [c.to_dict() for c in exe4.profile().nodes]
        assert costs1 == costs4  # deep equality, floats included
        assert exe1.profile().total == exe4.profile().total
        assert exe1.profile().staging_s == exe4.profile().staging_s

    def test_memory_plan_identical(self):
        g1, _ = _compile(max_workers=1)
        g4, _ = _compile(max_workers=4)
        p1, p4 = plan_memory(g1), plan_memory(g4)
        assert p1.assignments == p4.assignments
        assert p1.slot_sizes == p4.slot_sizes
        assert p1.to_dict() == p4.to_dict()

    def test_repeated_runs_are_identical(self):
        """No hidden state: the same executable re-run on the same
        inputs reproduces itself bit-for-bit."""
        g, exe = _compile(max_workers=4)
        inputs = g.random_inputs(11)
        first = exe.run(inputs)
        second = exe.run(inputs)
        for a, b in zip(first, second):
            assert a.tobytes() == b.tobytes()
