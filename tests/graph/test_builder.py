"""The GPT-J decoder-layer graph builder."""

import numpy as np
import pytest

from repro.graph import (
    GPTJ_SIM,
    gptj_decoder_graph,
    gptj_model_graph,
    small_grid_params,
)
from repro.workloads import GPTJConfig, fc_shapes, mmtv, mtv, red, ttv, va

from .conftest import TINY


class TestTopology:
    def test_node_count_scales_with_heads(self):
        g = gptj_decoder_graph(TINY, tokens=4)
        # qkv + 4 per head + concat + proj + fc + gelu + fc_proj + 2 va
        assert len(g) == 8 + 4 * TINY.n_heads
        assert g.output_names == ["y"]

    def test_uses_all_four_fc_shapes(self):
        g = gptj_decoder_graph(TINY, tokens=4)
        mtv_layers = {
            node.workload.params.get("layer")
            for node in g.nodes
            if node.workload.name == "mtv"
        }
        assert {name for name, _, _ in fc_shapes(TINY)} <= mtv_layers

    def test_per_head_programs_are_shared(self):
        """All heads reference one score workload and one value workload
        — the pool compiles each program once."""
        g = gptj_decoder_graph(TINY, tokens=4)
        scores = {
            id(n.workload) for n in g.nodes if n.name.startswith("attn_score")
        }
        values = {
            id(n.workload) for n in g.nodes if n.name.startswith("attn_value")
        }
        assert len(scores) == 1 and len(values) == 1

    def test_weights_and_kv_cache_are_const(self):
        g = gptj_decoder_graph(TINY, tokens=4)
        const = g.const_inputs
        assert {"w_qkv", "w_proj", "w_fc", "w_fc_proj"} <= const
        for h in range(TINY.n_heads):
            assert f"k_cache_{h}" in const
            assert f"v_cache_t_{h}" in const
        assert "x" not in const

    def test_mismatched_head_geometry_rejected(self):
        bad = GPTJConfig("bad", n_heads=3, d_model=32, head_dim=16)
        with pytest.raises(ValueError, match="must equal d_model"):
            gptj_decoder_graph(bad, tokens=4)

    def test_sim_config_is_consistent(self):
        assert GPTJ_SIM.n_heads * GPTJ_SIM.head_dim == GPTJ_SIM.d_model

    def test_param_overrides_and_unpinned(self):
        g = gptj_decoder_graph(
            TINY, tokens=4, params={"fc": {"m_dpus": 2, "k_dpus": 1,
                                           "n_tasklets": 2, "cache": 16,
                                           "host_threads": 1, "unroll": 0}}
        )
        fc = next(n for n in g.nodes if n.name == "fc")
        assert fc.params["m_dpus"] == 2
        unpinned = gptj_decoder_graph(TINY, tokens=4, pin_small_grids=False)
        assert all(
            n.params is None for n in unpinned.nodes
            if n.workload.name in ("mtv", "mmtv", "va")
        )


class TestReference:
    def test_reference_matches_hand_rolled_numpy(self):
        g = gptj_decoder_graph(TINY, tokens=4)
        ins = g.random_inputs(7)
        out = g.reference_outputs(ins)["y"]

        d, hd, H, T = (
            TINY.d_model, TINY.head_dim, TINY.n_heads, 4
        )
        qkv = ins["w_qkv"] @ ins["x"]
        heads = []
        for h in range(H):
            q = qkv[h * hd:(h + 1) * hd]
            scores = np.einsum(
                "ijl,il->ij", ins[f"k_cache_{h}"], q[None, :]
            )[0]
            z = scores.astype(np.float32) / np.float32(np.sqrt(hd))
            z = z - z.max()
            e = np.exp(z)
            probs = (e / e.sum()).astype(np.float32)
            heads.append(ins[f"v_cache_t_{h}"] @ probs)
        attn = ins["w_proj"] @ np.concatenate(heads).astype(np.float32)
        hidden = ins["w_fc"] @ ins["x"]
        c = np.float32(np.sqrt(2.0 / np.pi))
        act = (
            np.float32(0.5) * hidden
            * (np.float32(1.0)
               + np.tanh(c * (hidden + np.float32(0.044715) * hidden ** 3)))
        ).astype(np.float32)
        ff = ins["w_fc_proj"] @ act
        want = (ins["x"] + attn) + ff
        np.testing.assert_allclose(out, want, rtol=1e-4)


class TestSmallGridParams:
    @pytest.mark.parametrize(
        "workload",
        [va(1024), red(4096), mtv(64, 128), mmtv(2, 8, 32), ttv(4, 8, 64)],
        ids=lambda w: w.name,
    )
    def test_grids_stay_small_and_valid(self, workload):
        # The cap grew 8 -> 64 once the vectorized backend made the
        # whole grid one lane axis (PR 6 follow-up); it must still sit
        # well under the 2048-DPU machine.
        params = small_grid_params(workload)
        dpus = [v for k, v in params.items() if k.endswith("dpus")]
        assert all(1 <= v <= 64 for v in dpus)
        assert params["n_tasklets"] <= 4
        # Every grid dimension fits the workload's extent.
        if workload.name in ("mtv", "gemv"):
            assert params["m_dpus"] <= workload.shape[0]
        if workload.name in ("ttv", "mmtv"):
            assert params["i_dpus"] <= workload.shape[0]
            assert params["j_dpus"] <= workload.shape[1]

    def test_unknown_workload_rejected(self):
        class Fake:
            name = "conv"
            shape = (8,)

        with pytest.raises(KeyError):
            small_grid_params(Fake())


class TestModelGraph:
    def test_layers_chain_through_hidden_states(self):
        g = gptj_model_graph(TINY, layers=3, capacity=8)
        per_layer = 8 + 4 * TINY.n_heads + 2  # decoder nodes + k/v slices
        assert len(g) == 3 * per_layer
        assert g.output_names == [
            "k_new_L0", "v_new_L0", "k_new_L1", "v_new_L1",
            "k_new_L2", "v_new_L2", "h3",
        ]
        # Layer l consumes h{l} (h0 aliased to the input "x").
        fc1 = next(n for n in g.nodes if n.name == "L1.fc")
        assert dict(
            (w, t) for w, t, _ in fc1.input_bindings()
        )["B"] == "h1"

    def test_workloads_shared_across_layers(self):
        """Every layer binds the SAME workload instances — the pool
        compiles each program once for the whole model."""
        g = gptj_model_graph(TINY, layers=4, capacity=8)
        by_role = {}
        for node in g.nodes:
            role = node.name.split(".", 1)[1]
            by_role.setdefault(role, set()).add(id(node.workload))
        for role, ids in by_role.items():
            assert len(ids) == 1, f"{role} not shared across layers"

    def test_signature_stable_within_capacity(self):
        a = gptj_model_graph(TINY, layers=2, capacity=8)
        b = gptj_model_graph(TINY, layers=2, capacity=8)
        c = gptj_model_graph(TINY, layers=2, capacity=12)
        assert a.structural_signature() == b.structural_signature()
        assert a.structural_signature() != c.structural_signature()

    def test_capacity_sizes_attention_not_sequence_length(self):
        g = gptj_model_graph(TINY, layers=1, capacity=12)
        score = next(n for n in g.nodes if n.name == "L0.attn_score_0")
        assert score.workload.shape == (1, 12, TINY.head_dim)
        assert g.tensor_nbytes("attn_mask") == 12 * 4

    def test_mask_folds_into_softmax_reference(self):
        g = gptj_model_graph(TINY, layers=1, capacity=8)
        ins = g.random_inputs(3)
        # Mask off the last 3 positions; their cache rows must then be
        # irrelevant to every output.
        mask = np.zeros((8,), dtype=np.float32)
        mask[5:] = -np.inf
        ins["attn_mask"] = mask
        out_a = g.reference_outputs(ins)
        for h in range(TINY.n_heads):
            ins[f"k_cache_L0_h{h}"] = ins[f"k_cache_L0_h{h}"].copy()
            ins[f"k_cache_L0_h{h}"][:, 5:] = 9.9
            ins[f"v_cache_t_L0_h{h}"] = ins[f"v_cache_t_L0_h{h}"].copy()
            ins[f"v_cache_t_L0_h{h}"][:, 5:] = -7.7
        out_b = g.reference_outputs(ins)
        for name in out_a:
            np.testing.assert_array_equal(out_a[name], out_b[name])

    def test_kv_outputs_slice_the_fused_qkv(self):
        g = gptj_model_graph(TINY, layers=2, capacity=8)
        ins = g.random_inputs(5)
        env = g.reference_outputs(ins, all_tensors=True)
        d = TINY.d_model
        np.testing.assert_array_equal(
            env["k_new_L0"], env["qkv_L0"][d:2 * d]
        )
        np.testing.assert_array_equal(
            env["v_new_L1"], env["qkv_L1"][2 * d:3 * d]
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="layers"):
            gptj_model_graph(TINY, layers=0, capacity=8)
        with pytest.raises(ValueError, match="capacity"):
            gptj_model_graph(TINY, layers=1, capacity=0)
        bad = GPTJConfig("bad", n_heads=3, d_model=32, head_dim=16)
        with pytest.raises(ValueError, match="must equal d_model"):
            gptj_model_graph(bad, layers=1, capacity=8)

    def test_single_layer_matches_decoder_reference(self):
        """One model-graph layer with a full-length mask computes the
        same attention+FF math as the single-layer decoder builder."""
        g = gptj_model_graph(TINY, layers=1, capacity=4)
        legacy = gptj_decoder_graph(TINY, tokens=4)
        ins_legacy = legacy.random_inputs(11)
        ins = {
            "x": ins_legacy["x"],
            "attn_mask": np.zeros((4,), dtype=np.float32),
            "w_qkv_L0": ins_legacy["w_qkv"],
            "w_proj_L0": ins_legacy["w_proj"],
            "w_fc_L0": ins_legacy["w_fc"],
            "w_fc_proj_L0": ins_legacy["w_fc_proj"],
        }
        for h in range(TINY.n_heads):
            ins[f"k_cache_L0_h{h}"] = ins_legacy[f"k_cache_{h}"]
            ins[f"v_cache_t_L0_h{h}"] = ins_legacy[f"v_cache_t_{h}"]
        np.testing.assert_allclose(
            g.reference_outputs(ins)["h1"],
            legacy.reference_outputs(ins_legacy)["y"],
            rtol=1e-5,
        )
