"""The GPT-J decoder-layer graph builder."""

import numpy as np
import pytest

from repro.graph import GPTJ_SIM, gptj_decoder_graph, small_grid_params
from repro.workloads import GPTJConfig, fc_shapes, mmtv, mtv, red, ttv, va

from .conftest import TINY


class TestTopology:
    def test_node_count_scales_with_heads(self):
        g = gptj_decoder_graph(TINY, tokens=4)
        # qkv + 4 per head + concat + proj + fc + gelu + fc_proj + 2 va
        assert len(g) == 8 + 4 * TINY.n_heads
        assert g.output_names == ["y"]

    def test_uses_all_four_fc_shapes(self):
        g = gptj_decoder_graph(TINY, tokens=4)
        mtv_layers = {
            node.workload.params.get("layer")
            for node in g.nodes
            if node.workload.name == "mtv"
        }
        assert {name for name, _, _ in fc_shapes(TINY)} <= mtv_layers

    def test_per_head_programs_are_shared(self):
        """All heads reference one score workload and one value workload
        — the pool compiles each program once."""
        g = gptj_decoder_graph(TINY, tokens=4)
        scores = {
            id(n.workload) for n in g.nodes if n.name.startswith("attn_score")
        }
        values = {
            id(n.workload) for n in g.nodes if n.name.startswith("attn_value")
        }
        assert len(scores) == 1 and len(values) == 1

    def test_weights_and_kv_cache_are_const(self):
        g = gptj_decoder_graph(TINY, tokens=4)
        const = g.const_inputs
        assert {"w_qkv", "w_proj", "w_fc", "w_fc_proj"} <= const
        for h in range(TINY.n_heads):
            assert f"k_cache_{h}" in const
            assert f"v_cache_t_{h}" in const
        assert "x" not in const

    def test_mismatched_head_geometry_rejected(self):
        bad = GPTJConfig("bad", n_heads=3, d_model=32, head_dim=16)
        with pytest.raises(ValueError, match="must equal d_model"):
            gptj_decoder_graph(bad, tokens=4)

    def test_sim_config_is_consistent(self):
        assert GPTJ_SIM.n_heads * GPTJ_SIM.head_dim == GPTJ_SIM.d_model

    def test_param_overrides_and_unpinned(self):
        g = gptj_decoder_graph(
            TINY, tokens=4, params={"fc": {"m_dpus": 2, "k_dpus": 1,
                                           "n_tasklets": 2, "cache": 16,
                                           "host_threads": 1, "unroll": 0}}
        )
        fc = next(n for n in g.nodes if n.name == "fc")
        assert fc.params["m_dpus"] == 2
        unpinned = gptj_decoder_graph(TINY, tokens=4, pin_small_grids=False)
        assert all(
            n.params is None for n in unpinned.nodes
            if n.workload.name in ("mtv", "mmtv", "va")
        )


class TestReference:
    def test_reference_matches_hand_rolled_numpy(self):
        g = gptj_decoder_graph(TINY, tokens=4)
        ins = g.random_inputs(7)
        out = g.reference_outputs(ins)["y"]

        d, hd, H, T = (
            TINY.d_model, TINY.head_dim, TINY.n_heads, 4
        )
        qkv = ins["w_qkv"] @ ins["x"]
        heads = []
        for h in range(H):
            q = qkv[h * hd:(h + 1) * hd]
            scores = np.einsum(
                "ijl,il->ij", ins[f"k_cache_{h}"], q[None, :]
            )[0]
            z = scores.astype(np.float32) / np.float32(np.sqrt(hd))
            z = z - z.max()
            e = np.exp(z)
            probs = (e / e.sum()).astype(np.float32)
            heads.append(ins[f"v_cache_t_{h}"] @ probs)
        attn = ins["w_proj"] @ np.concatenate(heads).astype(np.float32)
        hidden = ins["w_fc"] @ ins["x"]
        c = np.float32(np.sqrt(2.0 / np.pi))
        act = (
            np.float32(0.5) * hidden
            * (np.float32(1.0)
               + np.tanh(c * (hidden + np.float32(0.044715) * hidden ** 3)))
        ).astype(np.float32)
        ff = ins["w_fc_proj"] @ act
        want = (ins["x"] + attn) + ff
        np.testing.assert_allclose(out, want, rtol=1e-4)


class TestSmallGridParams:
    @pytest.mark.parametrize(
        "workload",
        [va(1024), red(4096), mtv(64, 128), mmtv(2, 8, 32), ttv(4, 8, 64)],
        ids=lambda w: w.name,
    )
    def test_grids_stay_small_and_valid(self, workload):
        params = small_grid_params(workload)
        dpus = [v for k, v in params.items() if k.endswith("dpus")]
        assert all(1 <= v <= 8 for v in dpus)
        assert params["n_tasklets"] <= 4
        # Every grid dimension fits the workload's extent.
        if workload.name in ("mtv", "gemv"):
            assert params["m_dpus"] <= workload.shape[0]
        if workload.name in ("ttv", "mmtv"):
            assert params["i_dpus"] <= workload.shape[0]
            assert params["j_dpus"] <= workload.shape[1]

    def test_unknown_workload_rejected(self):
        class Fake:
            name = "conv"
            shape = (8,)

        with pytest.raises(KeyError):
            small_grid_params(Fake())
