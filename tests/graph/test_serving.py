"""Graph-keyed serving: whole decode steps batch dynamically."""

import numpy as np

import repro
from repro.graph import gptj_decoder_graph
from repro.serve import ExecutablePool, Request, Server, SyncClient

from .conftest import TINY


def _requests(graph, n, target="upmem"):
    return [
        Request(
            workload=graph,
            inputs=graph.random_inputs(seed=i),
            target=target,
        )
        for i in range(n)
    ]


class TestGraphServing:
    def test_decode_steps_batch_together(self, tiny_decoder):
        with Server(
            ExecutablePool(capacity=8), max_batch_size=8, max_wait_ticks=2
        ) as server:
            tickets = server.submit_many(_requests(tiny_decoder, 3))
            server.drain()
            metrics = server.metrics_dict()
        assert all(t.done for t in tickets)
        assert metrics["flushes"] == 1  # one graph program, one flush
        assert metrics["batch_histogram"] == {"3": 1}
        assert all(t.response.batch_size == 3 for t in tickets)
        assert tickets[0].response.latency_s > 0

    def test_served_outputs_bit_for_bit_match_direct_run(self, tiny_decoder):
        with Server(ExecutablePool(capacity=8), max_batch_size=4) as server:
            tickets = server.submit_many(_requests(tiny_decoder, 2))
            server.drain()
        exe = repro.compile(tiny_decoder, target="upmem")
        for i, ticket in enumerate(tickets):
            (want,) = exe.run(tiny_decoder.random_inputs(seed=i))
            (got,) = ticket.response.outputs
            assert got.tobytes() == want.tobytes()

    def test_structurally_equal_graphs_share_a_batch(self, tiny_decoder):
        """Two separately built decode-step graphs key identically, so
        their requests ride one flush."""
        other = gptj_decoder_graph(TINY, tokens=4)
        with Server(
            ExecutablePool(capacity=8), max_batch_size=8, max_wait_ticks=4
        ) as server:
            t1 = server.submit(
                Request(tiny_decoder, tiny_decoder.random_inputs(0))
            )
            t2 = server.submit(Request(other, other.random_inputs(1)))
            server.drain()
            metrics = server.metrics_dict()
        assert t1.batch_key == t2.batch_key
        assert metrics["flushes"] == 1
        assert t1.response.batch_size == 2

    def test_different_token_counts_never_alias(self, tiny_decoder):
        longer = gptj_decoder_graph(TINY, tokens=8)
        with Server(ExecutablePool(capacity=8), max_batch_size=8) as server:
            t1 = server.submit(
                Request(tiny_decoder, tiny_decoder.random_inputs(0))
            )
            t2 = server.submit(Request(longer, longer.random_inputs(0)))
            server.drain()
            metrics = server.metrics_dict()
        assert t1.batch_key != t2.batch_key
        assert metrics["flushes"] == 2

    def test_sync_client_serves_graphs(self, tiny_decoder):
        with Server(ExecutablePool(capacity=8)) as server:
            response = SyncClient(server).infer(
                tiny_decoder, tiny_decoder.random_inputs(3)
            )
        ref = tiny_decoder.reference_outputs(
            tiny_decoder.random_inputs(3)
        )["y"]
        np.testing.assert_allclose(
            response.outputs[0], ref, rtol=1e-3, atol=1e-5
        )
        assert response.workload == tiny_decoder.name
