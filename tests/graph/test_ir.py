"""Graph IR: construction, validation, ordering, identity."""

import numpy as np
import pytest

from repro.graph import GraphError, ModelGraph, gptj_decoder_graph
from repro.pipeline import workload_signature
from repro.workloads import mtv, va

from .conftest import TINY, chain_graph


def _params_mtv():
    return {
        "m_dpus": 4, "k_dpus": 1, "n_tasklets": 2, "cache": 16,
        "host_threads": 1, "unroll": 0,
    }


class TestConstruction:
    def test_duplicate_node_name_rejected(self):
        g = ModelGraph()
        g.add_input("x", (8,))
        g.add_input("y2", (8,))
        g.add_node("n", va(8), {"A": "x", "B": "y2"}, "t1")
        with pytest.raises(GraphError, match="already defined"):
            g.add_node("n", va(8), {"A": "x", "B": "y2"}, "t2")

    def test_duplicate_tensor_rejected(self):
        g = ModelGraph()
        g.add_input("x", (8,))
        with pytest.raises(GraphError, match="already defined"):
            g.add_input("x", (8,))
        g.add_input("b", (8,))
        g.add_node("n", va(8), {"A": "x", "B": "b"}, "t")
        with pytest.raises(GraphError, match="already defined"):
            g.add_node("m", va(8), {"A": "x", "B": "b"}, "t")

    def test_undefined_tensor_caught_by_validate(self):
        g = ModelGraph()
        g.add_input("x", (8,))
        g.add_node("n", va(8), {"A": "x", "B": "ghost"}, "t")
        with pytest.raises(GraphError, match="undefined tensor 'ghost'"):
            g.validate()

    def test_shape_mismatch_caught(self):
        g = ModelGraph()
        g.add_input("x", (16,))
        g.add_input("b", (8,))
        g.add_node("n", va(8), {"A": "x", "B": "b"}, "t")
        with pytest.raises(GraphError, match="expects shape"):
            g.validate()

    def test_unbound_workload_input_caught(self):
        g = ModelGraph()
        g.add_input("x", (8,))
        g.add_node("n", va(8), {"A": "x"}, "t")
        with pytest.raises(GraphError, match="does not bind"):
            g.validate()

    def test_unknown_binding_name_caught(self):
        g = ModelGraph()
        g.add_input("x", (8,))
        g.add_input("b", (8,))
        g.add_node("n", va(8), {"A": "x", "B": "b", "Z": "x"}, "t")
        with pytest.raises(GraphError, match="unknown workload inputs"):
            g.validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError, match="no nodes"):
            ModelGraph("empty").validate()


class TestOrdering:
    def test_forward_references_resolve(self):
        """Nodes may be added before their producers; topological order
        settles the schedule."""
        g = ModelGraph()
        g.add_input("x", (8,))
        g.add_input("b", (8,))
        g.add_node("late", va(8), {"A": "mid", "B": "b"}, "y")
        g.add_node("early", va(8), {"A": "x", "B": "b"}, "mid")
        g.validate()
        assert [n.name for n in g.topological_order()] == ["early", "late"]

    def test_cycle_detected(self):
        g = ModelGraph()
        g.add_input("b", (8,))
        g.add_node("p", va(8), {"A": "t2", "B": "b"}, "t1")
        g.add_node("q", va(8), {"A": "t1", "B": "b"}, "t2")
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()

    def test_order_is_deterministic_and_insertion_stable(self, tiny_decoder):
        order1 = [n.name for n in tiny_decoder.topological_order()]
        order2 = [n.name for n in tiny_decoder.topological_order()]
        assert order1 == order2
        rebuilt = [
            n.name
            for n in gptj_decoder_graph(TINY, tokens=4).topological_order()
        ]
        assert order1 == rebuilt

    def test_levels_respect_dependencies(self, tiny_decoder):
        level_of = {}
        for i, level in enumerate(tiny_decoder.levels()):
            for node in level:
                level_of[node.name] = i
        for node in tiny_decoder.nodes:
            for tensor in node.inputs.values():
                producer = tiny_decoder.producer(tensor)
                if producer is not None:
                    assert level_of[producer.name] < level_of[node.name]


class TestTensors:
    def test_outputs_are_unconsumed_tensors(self):
        g = chain_graph()
        assert g.output_names == ["y"]
        assert g.tensor_shape("y") == (16,)
        assert g.tensor_nbytes("t1") == 16 * 4

    def test_const_inputs_and_placeholders(self, tiny_decoder):
        assert "w_qkv" in tiny_decoder.const_inputs
        assert "x" not in tiny_decoder.const_inputs
        names = [t.name for t in tiny_decoder.inputs]
        assert names == tiny_decoder.input_names

    def test_reference_outputs_match_manual_chain(self):
        g = chain_graph()
        ins = g.random_inputs(3)
        out = g.reference_outputs(ins)["y"]
        want = ins["w2"] @ ((ins["w1"] @ ins["x"]) + ins["x2"])
        np.testing.assert_allclose(out, want, rtol=1e-5)


class TestSignature:
    def test_equal_graphs_share_signature(self):
        a = gptj_decoder_graph(TINY, tokens=4).structural_signature()
        b = gptj_decoder_graph(TINY, tokens=4).structural_signature()
        assert a == b

    def test_structure_changes_signature(self):
        base = gptj_decoder_graph(TINY, tokens=4)
        other_tokens = gptj_decoder_graph(TINY, tokens=8)
        assert (
            base.structural_signature()
            != other_tokens.structural_signature()
        )
        rewired = chain_graph()
        assert base.structural_signature() != rewired.structural_signature()

    def test_target_override_changes_signature(self):
        a, b = chain_graph(), chain_graph()
        b.nodes[1].target = "upmem"
        assert a.structural_signature() != b.structural_signature()

    def test_tags_change_signature(self):
        """Tags steer placement, placement picks the compiled program:
        tag-different graphs must never share a pool/batch key."""
        a, b = chain_graph(), chain_graph()
        b.nodes[1].tags = frozenset({"glue"})
        assert a.structural_signature() != b.structural_signature()

    def test_configured_target_override_never_aliases_kind(self):
        """A differently-configured Target instance of one kind is a
        different compile — same hardening as the serving pool's keys."""
        from repro.target import UpmemTarget
        from repro.upmem.config import UpmemConfig

        a, b = chain_graph(), chain_graph()
        a.nodes[0].target = UpmemTarget()
        b.nodes[0].target = UpmemTarget(config=UpmemConfig(n_ranks=2))
        assert a.structural_signature() != b.structural_signature()

    def test_workload_signature_delegates_to_graph(self):
        g = chain_graph()
        assert workload_signature(g) == g.structural_signature()
        assert workload_signature(g)[0] == "modelgraph"
        # Plain workloads keep the classic tuple shape.
        assert workload_signature(mtv(8, 8))[0] == "mtv"
