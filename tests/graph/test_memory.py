"""Memory planner: linear-scan reuse over the topological order."""

from repro.graph import ModelGraph, plan_memory
from repro.workloads import va

from .conftest import chain_graph


def _linear(n_nodes: int, width: int = 64) -> ModelGraph:
    """A straight chain of VA nodes: every intermediate dies after one
    use, so the planner should ping-pong between two slots."""
    g = ModelGraph("linear")
    g.add_input("x", (width,))
    g.add_input("b", (width,))
    prev = "x"
    for i in range(n_nodes):
        g.add_node(f"n{i}", va(width), {"A": prev, "B": "b"}, f"t{i}")
        prev = f"t{i}"
    return g


class TestLinearScan:
    def test_chain_reuses_dead_buffers(self):
        plan = plan_memory(_linear(6))
        # 6 intermediates, but never more than 2 live at once (the input
        # of the running node and its output).
        assert plan.naive_bytes == 6 * 64 * 4
        assert len(plan.slot_sizes) == 2
        assert plan.arena_bytes == 2 * 64 * 4
        assert plan.peak_live_bytes == 2 * 64 * 4
        assert plan.reuse_ratio == 3.0

    def test_no_two_live_tensors_share_a_slot(self, tiny_decoder):
        plan = plan_memory(tiny_decoder)
        for a in plan.assignments:
            for b in plan.assignments:
                if a.tensor == b.tensor or a.slot != b.slot:
                    continue
                # Live ranges in one slot must not overlap.
                assert a.end < b.start or b.end < a.start, (a, b)

    def test_slot_holds_its_largest_tensor(self, tiny_decoder):
        plan = plan_memory(tiny_decoder)
        for a in plan.assignments:
            assert plan.slot_sizes[a.slot] >= a.nbytes

    def test_graph_outputs_stay_live_to_the_end(self):
        g = chain_graph()
        plan = plan_memory(g)
        y = next(a for a in plan.assignments if a.tensor == "y")
        assert y.end == len(g.nodes)

    def test_decoder_peak_strictly_below_naive(self, tiny_decoder):
        plan = plan_memory(tiny_decoder)
        assert plan.arena_bytes < plan.naive_bytes
        assert plan.arena_bytes >= plan.peak_live_bytes
        assert plan.reuse_ratio > 1.0

    def test_weights_accounted_separately(self, tiny_decoder):
        plan = plan_memory(tiny_decoder)
        expected_weights = sum(
            tiny_decoder.tensor_nbytes(n)
            for n in tiny_decoder.const_inputs
        )
        assert plan.weight_bytes == expected_weights
        assert plan.input_bytes == tiny_decoder.tensor_nbytes("x")

    def test_plan_is_deterministic(self, tiny_decoder):
        a, b = plan_memory(tiny_decoder), plan_memory(tiny_decoder)
        assert a.assignments == b.assignments
        assert a.slot_sizes == b.slot_sizes
        assert a.to_dict() == b.to_dict()

    def test_to_dict_payload(self, tiny_decoder):
        payload = plan_memory(tiny_decoder).to_dict()
        assert set(payload) == {
            "arena_bytes", "naive_bytes", "peak_live_bytes",
            "weight_bytes", "input_bytes", "slots", "tensors",
            "reuse_ratio", "utilization", "fragmentation",
        }
        assert payload["tensors"] == len(tiny_decoder.nodes)

    def test_utilization_and_fragmentation(self, tiny_decoder):
        plan = plan_memory(tiny_decoder)
        assert plan.utilization == plan.peak_live_bytes / plan.arena_bytes
        assert plan.fragmentation == 1.0 - plan.utilization
        assert 0.0 < plan.utilization <= 1.0
        payload = plan.to_dict()
        assert payload["utilization"] == plan.utilization
        assert payload["fragmentation"] == plan.fragmentation

    def test_perfectly_packed_chain_has_no_fragmentation(self):
        # The VA chain ping-pongs two equal-size slots, both live at the
        # peak: the arena is exactly the working set.
        plan = plan_memory(_linear(6))
        assert plan.utilization == 1.0
        assert plan.fragmentation == 0.0


class TestArenaStats:
    def test_shared_vocabulary(self):
        from repro.graph.memory import arena_stats

        stats = arena_stats(100, 75)
        assert stats == {"utilization": 0.75, "fragmentation": 0.25}

    def test_empty_arena_is_fully_utilized_by_convention(self):
        from repro.graph.memory import arena_stats

        assert arena_stats(0, 0) == {
            "utilization": 1.0, "fragmentation": 0.0,
        }
