"""Tensor-expression DSL: placeholders, computes, reductions."""

import pytest

from repro import te
from repro.tir import BufferLoad


class TestPlaceholder:
    def test_shape_dtype_name(self):
        A = te.placeholder((4, 8), "float32", "A")
        assert A.shape == (4, 8)
        assert A.dtype == "float32"
        assert A.name == "A"

    def test_auto_name(self):
        A = te.placeholder((4,))
        assert A.name

    def test_indexing_builds_load(self):
        A = te.placeholder((4, 8), "float32", "A")
        load = A[1, 2]
        assert isinstance(load, BufferLoad)
        assert load.buffer is A.buffer

    def test_indexing_arity_checked(self):
        A = te.placeholder((4, 8), "float32", "A")
        with pytest.raises(ValueError):
            A[1]

    def test_indexing_with_itervar(self):
        A = te.placeholder((4,), "float32", "A")
        k = te.reduce_axis(4, "k")
        load = A[k]
        assert load.indices[0] is k.var


class TestCompute:
    def test_elementwise(self):
        A = te.placeholder((8,), "float32", "A")
        C = te.compute((8,), lambda i: A[i] + 1.0, "C")
        op = C.op
        assert not op.is_reduction
        assert len(op.axis) == 1
        assert C.shape == (8,)

    def test_multi_dim_axis_count(self):
        A = te.placeholder((4, 8), "float32", "A")
        C = te.compute((4, 8), lambda i, j: A[i, j] * 2.0, "C")
        assert len(C.op.axis) == 2

    def test_reduction(self):
        A = te.placeholder((4, 8), "float32", "A")
        k = te.reduce_axis(8, "k")
        C = te.compute((4,), lambda i: te.sum(A[i, k], axis=k), "C")
        assert C.op.is_reduction
        assert C.op.combiner == "add"
        assert C.op.reduce_axis[0] is k

    def test_max_reduce(self):
        A = te.placeholder((8,), "float32", "A")
        k = te.reduce_axis(8, "k")
        C = te.compute((1,), lambda i: te.max_reduce(A[k], axis=k), "C")
        assert C.op.combiner == "max"

    def test_min_reduce(self):
        A = te.placeholder((8,), "float32", "A")
        k = te.reduce_axis(8, "k")
        C = te.compute((1,), lambda i: te.min_reduce(A[k], axis=k), "C")
        assert C.op.combiner == "min"

    def test_reduce_requires_reduce_axis(self):
        A = te.placeholder((8,), "float32", "A")
        spatial = te.operation.IterVar(8, "i", "spatial")
        with pytest.raises(ValueError):
            te.sum(A[spatial], axis=spatial)

    def test_input_buffers_deduplicated(self):
        A = te.placeholder((8,), "float32", "A")
        B = te.placeholder((8,), "float32", "B")
        C = te.compute((8,), lambda i: A[i] + B[i] + A[i], "C")
        assert C.op.input_buffers() == [A.buffer, B.buffer]

    def test_output_shape_from_axis(self):
        C = te.compute((3, 5), lambda i, j: i + j, "C", dtype="int32")
        assert C.op.tensor.shape == (3, 5)


class TestIterVar:
    def test_reduce_axis_kind(self):
        k = te.reduce_axis(16, "k")
        assert k.is_reduce
        assert k.extent == 16

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            te.operation.IterVar(4, "x", "banana")

    def test_identity_value(self):
        from repro.te.operation import identity_value
        from repro.tir import FloatImm, IntImm

        assert isinstance(identity_value("add", "float32"), FloatImm)
        assert identity_value("add", "int32").value == 0
        assert identity_value("max", "float32").value < 0
        with pytest.raises(ValueError):
            identity_value("xor", "int32")

    def test_producers_registry(self):
        from repro.te.operation import PRODUCERS

        C = te.compute((4,), lambda i: i, "Creg", dtype="int32")
        assert PRODUCERS[C.buffer] is C
