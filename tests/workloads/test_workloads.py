"""Workload definitions: shapes, references, registry, GPT-J configs."""

import numpy as np
import pytest

from repro.workloads import (
    GPTJ_30B,
    GPTJ_6B,
    fc_mtv,
    fc_shapes,
    geva,
    gemv,
    make_workload,
    mha_mmtv,
    mmtv,
    mtv,
    red,
    size_labels,
    ttv,
    va,
    workload_names,
)


class TestReferences:
    def test_va(self):
        wl = va(64)
        ins = wl.random_inputs(0)
        np.testing.assert_allclose(
            wl.reference_output(ins), ins["A"] + ins["B"]
        )

    def test_geva_scales(self):
        wl = geva(64, c=2.0, d=3.0)
        ins = wl.random_inputs(0)
        np.testing.assert_allclose(
            wl.reference_output(ins), 2 * ins["A"] + 3 * ins["B"], rtol=1e-6
        )

    def test_red_scalar(self):
        wl = red(128)
        ins = wl.random_inputs(0)
        assert wl.reference_output(ins).shape == (1,)

    def test_mtv_gemv(self):
        ins = mtv(8, 16).random_inputs(0)
        np.testing.assert_allclose(
            mtv(8, 16).reference_output(ins), ins["A"] @ ins["B"], rtol=1e-5
        )
        g = gemv(8, 16, c=2.0)
        np.testing.assert_allclose(
            g.reference_output(ins), 2 * (ins["A"] @ ins["B"]), rtol=1e-5
        )

    def test_ttv_mmtv_shapes(self):
        t = ttv(2, 3, 8)
        assert t.reference_output(t.random_inputs(0)).shape == (2, 3)
        m = mmtv(2, 3, 8)
        assert m.reference_output(m.random_inputs(0)).shape == (2, 3)

    def test_mmtv_semantics(self):
        wl = mmtv(2, 3, 4)
        ins = wl.random_inputs(1)
        expected = np.einsum("ijl,il->ij", ins["A"], ins["B"])
        np.testing.assert_allclose(wl.reference_output(ins), expected, rtol=1e-5)

    def test_flops_positive(self):
        for wl in (va(8), red(8), mtv(4, 4), ttv(2, 2, 4)):
            assert wl.flops > 0

    def test_footprint(self):
        wl = mtv(1024, 1024)
        assert wl.footprint_mb == pytest.approx(4.0, rel=0.01)


class TestRegistry:
    def test_names(self):
        assert set(workload_names()) == {
            "va", "geva", "red", "mtv", "gemv", "ttv", "mmtv"
        }

    def test_size_labels(self):
        assert "64MB" in size_labels("mtv")

    def test_make_workload_sizes(self):
        wl = make_workload("mtv", "64MB")
        assert wl.shape == (4096, 4096)
        assert wl.footprint_mb == pytest.approx(64, rel=0.01)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_workload("mtv", "1TB")
        with pytest.raises(ValueError):
            make_workload("conv", "4MB")

    def test_unknown_workload_error_lists_valid_names(self):
        with pytest.raises(ValueError, match="unknown workload 'conv'") as exc:
            make_workload("conv", "4MB")
        for name in workload_names():
            assert name in str(exc.value)

    def test_unknown_size_error_lists_valid_labels(self):
        with pytest.raises(ValueError, match="unknown size '1TB'") as exc:
            make_workload("red", "1TB")
        for label in size_labels("red"):
            assert label in str(exc.value)
        # A bare KeyError must never leak from the registry lookup.
        assert not isinstance(exc.value, KeyError)

    def test_every_size_label_matches_byte_size(self):
        """Each entry's defining tensor is exactly its labelled size.

        The label counts the principal streamed tensor: the (single)
        input vector for VA/GEVA, the matrix/tensor operand for
        MTV/GEMV/TTV/MMTV, and — following the paper's halved-size
        scheme, where RED streams one tensor instead of VA's two — twice
        the input vector for RED.
        """
        from repro.workloads.registry import SIZED_WORKLOADS

        elem_bytes = 4  # float32
        for name, sizes in SIZED_WORKLOADS.items():
            for label, args in sizes.items():
                label_bytes = int(label[:-2]) * 1024 * 1024
                elems = 1
                for dim in args:
                    elems *= dim
                if name == "red":
                    elems *= 2  # halved-size scheme
                assert elems * elem_bytes == label_bytes, (
                    f"{name}/{label}: {args} is {elems * elem_bytes} bytes,"
                    f" label says {label_bytes}"
                )


class TestGptj:
    def test_fc_shapes_6b(self):
        shapes = {name: (m, k) for name, m, k in fc_shapes(GPTJ_6B)}
        assert shapes["qkv_proj"] == (4096, 4096)
        assert shapes["qkv_gen"] == (12288, 4096)
        assert shapes["fc"] == (16384, 4096)
        assert shapes["fc_proj"] == (4096, 16384)

    def test_fc_shapes_30b(self):
        shapes = {name: (m, k) for name, m, k in fc_shapes(GPTJ_30B)}
        assert shapes["qkv_proj"] == (7168, 7168)
        assert shapes["fc_proj"] == (7168, 28672)

    def test_mha_mmtv_shape(self):
        wl = mha_mmtv(GPTJ_6B, batch=4, tokens=128)
        assert wl.shape == (64, 128, 256)

    def test_fc_mtv_lookup(self):
        wl = fc_mtv(GPTJ_6B, "fc")
        assert wl.shape == (16384, 4096)
        with pytest.raises(KeyError):
            fc_mtv(GPTJ_6B, "conv")

    def test_head_counts(self):
        assert GPTJ_6B.n_heads == 16
        assert GPTJ_30B.n_heads == 28


class TestGptjByteSizes:
    """Byte-size sanity of the GPT-J helpers, both model configs.

    Same convention as the SIZED_WORKLOADS registry test: float32
    tensors, 4 bytes per element, sizes derived from d_model/n_heads.
    """

    ELEM = 4  # float32

    @pytest.mark.parametrize("config", [GPTJ_6B, GPTJ_30B],
                             ids=lambda c: c.name)
    def test_heads_partition_d_model(self, config):
        assert config.n_heads * config.head_dim == config.d_model
        assert config.d_ff == 4 * config.d_model

    @pytest.mark.parametrize("config", [GPTJ_6B, GPTJ_30B],
                             ids=lambda c: c.name)
    def test_mha_mmtv_bytes(self, config):
        batch, tokens = 2, 64
        wl = mha_mmtv(config, batch=batch, tokens=tokens)
        m = batch * config.n_heads
        assert wl.shape == (m, tokens, config.head_dim)
        # A: (m, tokens, head_dim) KV slab; B: (m, head_dim) queries.
        assert wl.bytes_in == self.ELEM * (
            m * tokens * config.head_dim + m * config.head_dim
        )
        assert wl.bytes_out == self.ELEM * m * tokens
        assert wl.params["model"] == config.name
        assert wl.const_inputs == frozenset({"A"})

    @pytest.mark.parametrize("config", [GPTJ_6B, GPTJ_30B],
                             ids=lambda c: c.name)
    def test_fc_shapes_bytes(self, config):
        d = config.d_model
        expected_mk = {
            "qkv_proj": (d, d),
            "qkv_gen": (3 * d, d),
            "fc": (4 * d, d),
            "fc_proj": (d, 4 * d),
        }
        shapes = fc_shapes(config)
        assert {name for name, _, _ in shapes} == set(expected_mk)
        for name, m, k in shapes:
            assert (m, k) == expected_mk[name]
            wl = fc_mtv(config, name)
            # A: (m, k) weight matrix; B: (k,) activation vector.
            assert wl.bytes_in == self.ELEM * (m * k + k)
            assert wl.bytes_out == self.ELEM * m
            assert wl.const_inputs == frozenset({"A"})
