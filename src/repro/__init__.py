"""ATiM reproduction: an autotuning tensor compiler for DRAM-PIM (UPMEM).

Public API::

    import repro
    from repro.workloads import mtv
    from repro.autotune import autotune

    exe = repro.compile(mtv(4096, 4096), target="upmem")
    out, = exe.run(A=a, B=b)
    outs = exe.run_batch([{"A": a0, "B": b0}, {"A": a1, "B": b1}])
    print(exe.latency, repro.list_targets())

Explicit schedules still compile the same way::

    sch = Schedule(...)              # Table-2 primitives
    exe = repro.compile(sch, target="upmem")
"""

import warnings as _warnings

from . import pipeline, te, tir
from .lowering import LowerOptions, lower
from .pipeline import PassContext, PassManager, get_pipeline
from .runtime import Module
from .runtime import build as _schedule_build
from .schedule import Schedule
from .target import (
    Executable,
    Target,
    TargetError,
    compile,
    get_target,
    list_targets,
    register_target,
)
from .upmem import DEFAULT_CONFIG, UpmemConfig
from . import serve
from . import graph
from .graph import ModelGraph
from . import obs
from .obs import Tracer, use_tracer

__version__ = "0.3.0"


def build(*args, **kwargs) -> Module:
    """Deprecated: use ``repro.compile(schedule, target="upmem")``.

    Compiles a schedule into an executable module via the ``build``
    pipeline; kept as a thin shim over the target-centric front end.
    """
    _warnings.warn(
        "repro.build is deprecated; use"
        " repro.compile(schedule, target=\"upmem\")",
        DeprecationWarning,
        stacklevel=2,
    )
    return _schedule_build(*args, **kwargs)


__all__ = [
    "te",
    "tir",
    "pipeline",
    "serve",
    "graph",
    "ModelGraph",
    "obs",
    "Tracer",
    "use_tracer",
    "compile",
    "Target",
    "TargetError",
    "Executable",
    "get_target",
    "list_targets",
    "register_target",
    "build",
    "Module",
    "lower",
    "LowerOptions",
    "PassContext",
    "PassManager",
    "get_pipeline",
    "Schedule",
    "UpmemConfig",
    "DEFAULT_CONFIG",
    "__version__",
]
