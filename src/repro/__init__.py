"""ATiM reproduction: an autotuning tensor compiler for DRAM-PIM (UPMEM).

Public API::

    from repro import te, build
    from repro.schedule import Schedule
    from repro.autotune import autotune

    A = te.placeholder((M, K), "float32", "A")
    ...
    mod = build(sch, name="mtv")
    out, = mod.run(A=a, B=b)
    print(mod.profile().latency.total)
"""

from . import pipeline, te, tir
from .lowering import LowerOptions, lower
from .pipeline import PassContext, PassManager, get_pipeline
from .runtime import Module, build
from .schedule import Schedule
from .upmem import DEFAULT_CONFIG, UpmemConfig

__version__ = "0.2.0"

__all__ = [
    "te",
    "tir",
    "pipeline",
    "build",
    "Module",
    "lower",
    "LowerOptions",
    "PassContext",
    "PassManager",
    "get_pipeline",
    "Schedule",
    "UpmemConfig",
    "DEFAULT_CONFIG",
    "__version__",
]
