"""ATiM reproduction: an autotuning tensor compiler for DRAM-PIM (UPMEM).

Public API::

    from repro import te, build
    from repro.schedule import Schedule
    from repro.autotune import autotune

    A = te.placeholder((M, K), "float32", "A")
    ...
    mod = build(sch, name="mtv")
    out, = mod.run(A=a, B=b)
    print(mod.profile().latency.total)
"""

from . import te, tir
from .lowering import LowerOptions, lower
from .runtime import Module, build
from .schedule import Schedule
from .upmem import DEFAULT_CONFIG, UpmemConfig

__version__ = "0.1.0"

__all__ = [
    "te",
    "tir",
    "build",
    "Module",
    "lower",
    "LowerOptions",
    "Schedule",
    "UpmemConfig",
    "DEFAULT_CONFIG",
    "__version__",
]
