"""``python -m repro.obs TRACE.json`` — run the trace lint.

Same checks as ``python -m repro.obs.lint`` without runpy's
already-imported-submodule warning (the package imports ``lint`` at
init time).
"""

import sys

from .lint import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
