"""The tracer: virtual-clock spans, instants and counters on tracks.

A *track* is one named timeline ("pipeline", "pool", "serve.device",
"kv-cache", ...) with its own monotonic virtual-clock cursor starting
at 0.  Simulated durations advance the cursor explicitly —
:meth:`Tracer.timed_span` for a cost of known length,
:meth:`Tracer.advance` for bare time, :meth:`Tracer.span` for a nested
region whose extent is whatever its children charged.  Nothing ever
moves a cursor backwards, so per-track timestamps are non-decreasing by
construction and the exported trace passes the B/E-balance and
monotonicity lint.

Determinism contract: all virtual timestamps derive from the simulated
cost models and the (deterministic) order instrumented code runs in on
the *calling* thread.  Instrumentation sites in this repository only
emit from deterministic single-threaded control flow — never from
inside worker-pool fan-out — so a traced run exports byte-identical
JSON at any ``max_workers`` and under any ``REPRO_SIM_MODE``.  The
tracer itself is still lock-protected, so stray multi-threaded emission
is safe (just unordered).

Wall-clock capture (``wall_clock=True``) additionally stamps events
with ``time.perf_counter()`` for host profiling; that is the one opt-in
that makes a trace machine-dependent.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry

__all__ = [
    "TraceEvent",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "tracing_enabled",
]


@dataclass(frozen=True)
class TraceEvent:
    """One raw event: span begin/end ("B"/"E"), instant ("i") or
    counter sample ("C"), stamped on a track's virtual timeline."""

    phase: str
    name: str
    track: str
    ts: float  # virtual seconds on the track's timeline
    cat: str = ""
    args: Optional[Dict[str, Any]] = None
    #: Host seconds (``time.perf_counter``); only in wall-clock mode.
    wall_ts: Optional[float] = None


@dataclass(frozen=True)
class SpanRecord:
    """One completed span (the B/E pair, folded for queries)."""

    name: str
    track: str
    ts: float
    dur: float
    cat: str = ""
    args: Optional[Dict[str, Any]] = None
    wall_dur: Optional[float] = None


class _OpenSpan:
    """Context-manager handle for one in-flight :meth:`Tracer.span`."""

    __slots__ = (
        "_tracer", "name", "track", "cat", "args", "dur_s", "ts_s",
        "_begin", "_wall0",
    )

    def __init__(self, tracer, name, track, cat, args, dur_s, ts_s):
        self._tracer = tracer
        self.name = name
        self.track = track
        self.cat = cat
        self.args = args
        self.dur_s = dur_s
        self.ts_s = ts_s
        self._begin = 0.0
        self._wall0 = None

    def __enter__(self) -> "_OpenSpan":
        self._tracer._begin_span(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._end_span(self)
        return False


class Tracer:
    """Collects spans/instants/counters; owns a :class:`MetricsRegistry`.

    One tracer is one trace.  Install it as the ambient tracer with
    :func:`use_tracer`/:func:`set_tracer`; instrumented code finds it
    via :func:`current_tracer` and checks :attr:`enabled` before doing
    any per-event work.
    """

    enabled = True

    def __init__(self, wall_clock: bool = False) -> None:
        self.wall_clock = wall_clock
        self.events: List[TraceEvent] = []
        self.spans: List[SpanRecord] = []
        self.metrics = MetricsRegistry()
        self._cursors: Dict[str, float] = {}
        self._depths: Dict[str, int] = {}
        self._lock = threading.RLock()

    # -- clocks -------------------------------------------------------------
    def now(self, track: str) -> float:
        """The track's virtual-clock cursor (seconds; 0.0 if unused)."""
        return self._cursors.get(track, 0.0)

    def tracks(self) -> List[str]:
        """Every track that has recorded at least one event, sorted."""
        with self._lock:
            return sorted({e.track for e in self.events})

    def advance(self, track: str, seconds: float) -> float:
        """Charge ``seconds`` of virtual time to ``track``; returns the
        new cursor.  Time only moves forward."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} s (negative)")
        with self._lock:
            now = self._cursors.get(track, 0.0) + seconds
            self._cursors[track] = now
            return now

    def _at(self, track: str, ts_s: Optional[float]) -> float:
        """Resolve an explicit/implicit timestamp against the cursor.
        Explicit timestamps may jump the cursor forward (e.g. to a
        serve flush's device start time) but never drag it back."""
        cur = self._cursors.get(track, 0.0)
        return cur if ts_s is None else max(cur, ts_s)

    def _wall(self) -> Optional[float]:
        return time.perf_counter() if self.wall_clock else None

    # -- spans --------------------------------------------------------------
    def span(
        self,
        name: str,
        track: str = "main",
        cat: str = "",
        args: Optional[Dict[str, Any]] = None,
        dur_s: Optional[float] = None,
        ts_s: Optional[float] = None,
    ) -> _OpenSpan:
        """Open a nested span as a context manager.

        The span begins at the track cursor (or ``ts_s`` if later) and
        ends wherever the cursor sits on exit — children opened inside
        (:meth:`timed_span`, :meth:`advance`) extend it.  ``dur_s``
        sets a minimum extent for spans whose cost is known up front.
        """
        return _OpenSpan(self, name, track, cat, args, dur_s, ts_s)

    def _begin_span(self, h: _OpenSpan) -> None:
        with self._lock:
            ts = self._at(h.track, h.ts_s)
            self._cursors[h.track] = ts
            self._depths[h.track] = self._depths.get(h.track, 0) + 1
            h._begin = ts
            h._wall0 = self._wall()
            self.events.append(
                TraceEvent("B", h.name, h.track, ts, h.cat, h.args, h._wall0)
            )

    def _end_span(self, h: _OpenSpan) -> None:
        with self._lock:
            end = self._cursors.get(h.track, 0.0)
            if h.dur_s is not None:
                end = max(end, h._begin + h.dur_s)
            self._cursors[h.track] = end
            self._depths[h.track] -= 1
            wall1 = self._wall()
            self.events.append(
                TraceEvent("E", h.name, h.track, end, h.cat, None, wall1)
            )
            self.spans.append(
                SpanRecord(
                    h.name,
                    h.track,
                    h._begin,
                    end - h._begin,
                    h.cat,
                    h.args,
                    None if h._wall0 is None else wall1 - h._wall0,
                )
            )

    def timed_span(
        self,
        name: str,
        track: str = "main",
        dur_s: float = 0.0,
        cat: str = "",
        args: Optional[Dict[str, Any]] = None,
        ts_s: Optional[float] = None,
    ) -> SpanRecord:
        """Record a complete span of known simulated duration and
        advance the track cursor past it."""
        if dur_s < 0:
            raise ValueError(f"span duration must be >= 0, got {dur_s}")
        with self._lock:
            ts = self._at(track, ts_s)
            end = ts + dur_s
            self._cursors[track] = end
            wall = self._wall()
            self.events.append(
                TraceEvent("B", name, track, ts, cat, args, wall)
            )
            self.events.append(
                TraceEvent("E", name, track, end, cat, None, wall)
            )
            record = SpanRecord(name, track, ts, dur_s, cat, args, None)
            self.spans.append(record)
            return record

    # -- points -------------------------------------------------------------
    def instant(
        self,
        name: str,
        track: str = "main",
        cat: str = "",
        args: Optional[Dict[str, Any]] = None,
        ts_s: Optional[float] = None,
    ) -> None:
        """Record a zero-duration event at the track cursor."""
        with self._lock:
            ts = self._at(track, ts_s)
            self._cursors[track] = ts
            self.events.append(
                TraceEvent("i", name, track, ts, cat, args, self._wall())
            )

    def counter(
        self,
        name: str,
        value: float,
        track: str = "metrics",
        cat: str = "",
    ) -> None:
        """Sample a counter series at the track cursor (Chrome "C")."""
        with self._lock:
            ts = self._cursors.get(track, 0.0)
            self.events.append(
                TraceEvent(
                    "C", name, track, ts, cat,
                    {"value": float(value)}, self._wall(),
                )
            )

    # -- queries ------------------------------------------------------------
    def top_spans(self, n: int = 5) -> List[SpanRecord]:
        """The ``n`` longest completed spans (ties broken by start
        time, track, name — a total, deterministic order)."""
        with self._lock:
            ordered = sorted(
                self.spans,
                key=lambda s: (-s.dur, s.ts, s.track, s.name),
            )
        return ordered[:n]

    def __len__(self) -> int:
        return len(self.events)


class _NullSpan:
    """Shared do-nothing context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Tracing disabled: every method is a no-op that allocates nothing.

    Instrumentation sites guard their per-event work (arg dict
    construction, label derivation) behind ``tracer.enabled`` so the
    disabled path costs one attribute read.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(wall_clock=False)

    def advance(self, track, seconds):  # noqa: D102 - no-op
        return 0.0

    def span(self, *args, **kwargs):
        return _NULL_SPAN

    def timed_span(self, *args, **kwargs):
        return None

    def instant(self, *args, **kwargs):
        return None

    def counter(self, *args, **kwargs):
        return None


#: The process-default tracer: tracing off.
NULL_TRACER = NullTracer()

_ACTIVE: List[Tracer] = [NULL_TRACER]


def current_tracer() -> Tracer:
    """The innermost active tracer (the shared null tracer when none)."""
    return _ACTIVE[-1]


def tracing_enabled() -> bool:
    return _ACTIVE[-1].enabled


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` at the current scope (``None`` disables).
    Returns the tracer it replaced, so callers can restore it."""
    previous = _ACTIVE[-1]
    _ACTIVE[-1] = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Optional[Tracer]):
    """Scope ``tracer`` as the ambient tracer for a ``with`` block."""
    _ACTIVE.append(tracer if tracer is not None else NULL_TRACER)
    try:
        yield _ACTIVE[-1]
    finally:
        _ACTIVE.pop()
