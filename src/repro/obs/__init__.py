"""Unified observability: virtual-clock tracing, metrics, exporters.

One timeline from compile to decode.  Every subsystem (pipeline, pool,
serve, graph, KV cache, weight residency, decode loop) reports into the
process-wide — but explicitly scoped — :class:`Tracer`: nested spans,
instant events and counter samples on named *tracks*, stamped with
**virtual-clock** times derived from the simulated cost models (never
wall time), so a trace is bit-for-bit identical at any host thread
count and under ``REPRO_SIM_MODE=verify``.  Wall-clock capture is an
opt-in (``Tracer(wall_clock=True)``) for host profiling and is the one
thing that makes a trace machine-dependent.

Tracing is off by default: the ambient tracer is a shared
:data:`NULL_TRACER` whose every method is a no-op, so instrumented hot
paths pay nothing when nobody is looking.  Scope a real tracer with
:func:`use_tracer` (or install one with :func:`set_tracer`), then
export:

* :func:`write_chrome_trace` — Chrome trace-event JSON (loads in
  Perfetto / ``chrome://tracing``): one process per subsystem, one
  thread per track, balanced B/E span events;
* :func:`write_jsonl` — a flat JSON-lines event log for ad-hoc tooling;
* :func:`trace_lint` — structural validation (valid JSON, monotonic
  timestamps per track, balanced B/E events), also runnable as
  ``python -m repro.obs.lint trace.json``.

::

    from repro.obs import Tracer, use_tracer, write_chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):
        engine.decode(tokens=5)
    write_chrome_trace(tracer, "decode_trace.json")
    for span in tracer.top_spans(5):
        print(span.name, span.dur)
"""

from .tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    TraceEvent,
    Tracer,
    current_tracer,
    set_tracer,
    tracing_enabled,
    use_tracer,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .export import (
    chrome_trace,
    jsonl_events,
    write_chrome_trace,
    write_jsonl,
)
from .lint import trace_lint

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "SpanRecord",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "tracing_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_events",
    "write_jsonl",
    "trace_lint",
]
