"""Trace exporters: Chrome trace-event JSON and a flat JSONL log.

The Chrome export loads directly in Perfetto / ``chrome://tracing``.
Track-to-lane mapping: the prefix before the first ``.`` in a track
name is its *subsystem* and becomes the Chrome ``pid`` (so "pipeline",
"serve.requests" and "serve.device" render as separate process groups
with named lanes); the full track name becomes the ``tid``.  Both are
assigned by sorted order, and the JSON is dumped with sorted keys, so
the same tracer contents always serialise to the same bytes.

Virtual seconds become Chrome microseconds (the unit the viewers
expect); values are rounded to 3 decimals (nanosecond grain) purely to
keep float formatting stable across platforms.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .tracer import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_events",
    "write_jsonl",
]


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to plain JSON types (tuples, numpy...)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        seq = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [_jsonable(v) for v in seq]
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    return repr(value)


def _lanes(tracer: Tracer) -> Dict[str, Tuple[int, int, str]]:
    """track -> (pid, tid, subsystem), assigned in sorted order."""
    tracks = tracer.tracks()
    subsystems = sorted({t.split(".", 1)[0] for t in tracks})
    pid_of = {s: i + 1 for i, s in enumerate(subsystems)}
    lanes: Dict[str, Tuple[int, int, str]] = {}
    tid = 0
    for track in tracks:
        tid += 1
        subsystem = track.split(".", 1)[0]
        lanes[track] = (pid_of[subsystem], tid, subsystem)
    return lanes


def _us(seconds: float) -> float:
    """Virtual seconds -> Chrome microseconds, nanosecond-rounded."""
    return round(seconds * 1e6, 3)


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's contents as a Chrome trace-event JSON object."""
    lanes = _lanes(tracer)
    events: List[Dict[str, Any]] = []
    named_pids = set()
    for track, (pid, tid, subsystem) in sorted(lanes.items()):
        if pid not in named_pids:
            named_pids.add(pid)
            events.append(
                {
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": subsystem},
                }
            )
        events.append(
            {
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track},
            }
        )
    for event in tracer.events:
        pid, tid, _ = lanes[event.track]
        out: Dict[str, Any] = {
            "ph": event.phase,
            "name": event.name,
            "pid": pid,
            "tid": tid,
            "ts": _us(event.ts),
        }
        if event.cat:
            out["cat"] = event.cat
        if event.phase == "i":
            out["s"] = "t"
        args = _jsonable(event.args) if event.args else None
        if event.wall_ts is not None:
            args = dict(args or {})
            args["wall_ms"] = round(event.wall_ts * 1e3, 6)
        if args:
            out["args"] = args
        events.append(out)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual",
            "generator": "repro.obs",
            "metrics": tracer.metrics.export(),
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> Dict[str, Any]:
    """Write the Chrome trace JSON to ``path`` (byte-deterministic for
    virtual-clock tracers); returns the exported object."""
    payload = chrome_trace(tracer)
    with open(path, "w") as f:
        json.dump(payload, f, sort_keys=True, indent=1)
        f.write("\n")
    return payload


def jsonl_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The raw event stream as flat JSON-safe dicts, one per event."""
    out = []
    for event in tracer.events:
        row: Dict[str, Any] = {
            "ph": event.phase,
            "name": event.name,
            "track": event.track,
            "ts": round(event.ts, 9),
        }
        if event.cat:
            row["cat"] = event.cat
        if event.args:
            row["args"] = _jsonable(event.args)
        if event.wall_ts is not None:
            row["wall_ts"] = event.wall_ts
        out.append(row)
    return out


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write one JSON object per line to ``path``; returns the count."""
    rows = jsonl_events(tracer)
    with open(path, "w") as f:
        for row in rows:
            json.dump(row, f, sort_keys=True)
            f.write("\n")
    return len(rows)
