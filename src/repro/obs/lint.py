"""Structural validation of Chrome trace-event JSON.

:func:`trace_lint` checks what the CI benchmark-smoke job needs to
trust an uploaded trace artifact:

* the file parses as JSON and has a non-empty ``traceEvents`` list;
* every event carries the required fields for its phase;
* per (pid, tid) lane, timestamps are monotonically non-decreasing;
* per lane, "B"/"E" events balance like parentheses and each "E"
  closes the "B" with the matching name.

Runnable standalone::

    python -m repro.obs.lint trace.json

exits 0 and prints a one-line summary when clean, exits 1 with the
problem list otherwise.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Tuple

__all__ = ["trace_lint"]

_TIMED_PHASES = ("B", "E", "i", "C", "X")


def trace_lint(payload: Any) -> List[str]:
    """Return the list of problems found (empty == clean).

    ``payload`` is a parsed trace object, a JSON string, or a path to a
    trace file.
    """
    if isinstance(payload, str):
        try:
            if payload.lstrip().startswith(("{", "[")):
                payload = json.loads(payload)
            else:
                with open(payload) as f:
                    payload = json.load(f)
        except (OSError, ValueError) as exc:
            return [f"not valid trace JSON: {exc}"]

    if isinstance(payload, dict):
        events = payload.get("traceEvents")
    elif isinstance(payload, list):
        events = payload
    else:
        return [f"trace must be an object or array, got {type(payload).__name__}"]
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        return ["traceEvents is empty"]

    problems: List[str] = []
    last_ts: Dict[Tuple[Any, Any], float] = {}
    stacks: Dict[Tuple[Any, Any], List[str]] = {}

    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{i} is not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            problems.append(f"event #{i} has no phase ('ph')")
            continue
        lane = (event.get("pid"), event.get("tid"))
        if phase == "M":
            continue
        if phase in _TIMED_PHASES:
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(
                    f"event #{i} ({phase} {event.get('name')!r}) has no"
                    " numeric ts"
                )
                continue
            prev = last_ts.get(lane)
            if prev is not None and ts < prev:
                problems.append(
                    f"event #{i} ({phase} {event.get('name')!r}) moves"
                    f" lane pid={lane[0]} tid={lane[1]} backwards:"
                    f" ts {ts} < {prev}"
                )
            last_ts[lane] = max(prev, ts) if prev is not None else ts
        if phase == "B":
            stacks.setdefault(lane, []).append(str(event.get("name")))
        elif phase == "E":
            stack = stacks.setdefault(lane, [])
            if not stack:
                problems.append(
                    f"event #{i} closes {event.get('name')!r} on lane"
                    f" pid={lane[0]} tid={lane[1]} with no open span"
                )
            else:
                opened = stack.pop()
                name = event.get("name")
                if name is not None and str(name) != opened:
                    problems.append(
                        f"event #{i} closes {name!r} but the open span on"
                        f" lane pid={lane[0]} tid={lane[1]} is {opened!r}"
                    )

    for lane, stack in sorted(stacks.items(), key=repr):
        if stack:
            problems.append(
                f"lane pid={lane[0]} tid={lane[1]} ends with unclosed"
                f" span(s): {stack}"
            )
    return problems


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.obs.lint TRACE.json", file=sys.stderr)
        return 2
    problems = trace_lint(argv[0])
    if problems:
        for problem in problems:
            print(f"trace-lint: {problem}", file=sys.stderr)
        print(f"trace-lint: {argv[0]}: {len(problems)} problem(s)")
        return 1
    print(f"trace-lint: {argv[0]}: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
