"""Labeled metric series: counters, gauges, histograms.

A :class:`MetricsRegistry` holds named metric families; each family
fans out into one series per distinct label set (Prometheus-style, but
in-process and JSON-safe).  Labels are plain ``str -> str`` mappings,
canonicalised by sorting, so ``{"a": "1", "b": "2"}`` and
``{"b": "2", "a": "1"}`` address the same series and ``export()``
output is byte-stable.

The registry makes no timing claims of its own — pair it with the
:class:`~repro.obs.tracer.Tracer` (every tracer owns one as
``tracer.metrics``) when samples should line up with a trace.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Labels = Optional[Dict[str, str]]
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Labels) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, bytes, hits)."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: Dict[_LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, labels: Labels = None) -> float:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            value = self._values.get(key, 0.0) + amount
            self._values[key] = value
            return value

    def value(self, labels: Labels = None) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def export(self) -> Dict[str, Any]:
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"name": self.name, "kind": self.kind, "series": series}


class Gauge:
    """A value that can go up and down (queue depth, bytes resident)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: Dict[_LabelKey, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, labels: Labels = None) -> float:
        with self._lock:
            self._values[_label_key(labels)] = float(value)
        return float(value)

    def add(self, amount: float, labels: Labels = None) -> float:
        key = _label_key(labels)
        with self._lock:
            value = self._values.get(key, 0.0) + amount
            self._values[key] = value
            return value

    def value(self, labels: Labels = None) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def export(self) -> Dict[str, Any]:
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"name": self.name, "kind": self.kind, "series": series}


class Histogram:
    """Observations bucketed by fixed edges, plus sum/count/min/max.

    ``edges`` are the *upper* bounds of the finite buckets; one
    overflow bucket catches everything above the last edge, so
    ``len(counts) == len(edges) + 1``.
    """

    kind = "histogram"

    DEFAULT_EDGES = (
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
    )

    def __init__(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        chosen = tuple(float(e) for e in (edges or self.DEFAULT_EDGES))
        if list(chosen) != sorted(chosen) or len(set(chosen)) != len(chosen):
            raise ValueError(
                f"histogram {name!r} edges must be strictly increasing,"
                f" got {chosen}"
            )
        self.edges = chosen
        self._series: Dict[_LabelKey, Dict[str, Any]] = {}
        self._lock = threading.Lock()

    def _blank(self) -> Dict[str, Any]:
        return {
            "counts": [0] * (len(self.edges) + 1),
            "sum": 0.0,
            "count": 0,
            "min": None,
            "max": None,
        }

    def observe(self, value: float, labels: Labels = None) -> None:
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.setdefault(key, self._blank())
            bucket = len(self.edges)
            for i, edge in enumerate(self.edges):
                if value <= edge:
                    bucket = i
                    break
            series["counts"][bucket] += 1
            series["sum"] += value
            series["count"] += 1
            series["min"] = (
                value if series["min"] is None else min(series["min"], value)
            )
            series["max"] = (
                value if series["max"] is None else max(series["max"], value)
            )

    def value(self, labels: Labels = None) -> Dict[str, Any]:
        series = self._series.get(_label_key(labels))
        if series is None:
            return self._blank()
        return {**series, "counts": list(series["counts"])}

    def export(self) -> Dict[str, Any]:
        with self._lock:
            series = [
                {
                    "labels": dict(key),
                    "counts": list(s["counts"]),
                    "sum": s["sum"],
                    "count": s["count"],
                    "min": s["min"],
                    "max": s["max"],
                }
                for key, s in sorted(self._series.items())
            ]
        return {
            "name": self.name,
            "kind": self.kind,
            "edges": list(self.edges),
            "series": series,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metric families, created on first use.

    ``registry.counter("pool.hits").inc(labels={"key": label})`` — the
    family is created if absent, re-fetched (and type-checked) if not.
    ``export()`` returns a JSON-safe dict, families and series sorted,
    suitable for ``json.dump(..., sort_keys=True)`` byte-stability.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as"
                    f" {metric.kind}, not {cls.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._get(name, Histogram, edges=edges)
        if edges is not None and tuple(float(e) for e in edges) != metric.edges:
            raise ValueError(
                f"histogram {name!r} already registered with edges"
                f" {metric.edges}"
            )
        return metric

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def export(self) -> Dict[str, Any]:
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.export() for name, metric in sorted(metrics)}
