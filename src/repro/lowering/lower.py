"""Lowering: scheduled stages → loop-based TIR → host/kernel split.

This implements paper §5.2.2:

* loop-nest construction from the schedule's leaf iteration variables,
* boundary-check insertion for imperfect tiles,
* WRAM cache / accumulator materialization with address calculation,
* per-DPU MRAM tile extraction and transfer generation,
* hierarchical reduction (``rfactor`` stages become kernel partials plus a
  host final reduction).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..schedule import Schedule, Stage, reconstruct_roots
from ..te import ComputeOp, IterVar
from ..te.operation import identity_value
from ..tir import (
    Add,
    Buffer,
    BufferLoad,
    BufferStore,
    For,
    ForKind,
    IfThenElse,
    Interval,
    IntImm,
    Max,
    Min,
    PrimExpr,
    SeqStmt,
    Stmt,
    Sub,
    Var,
    all_of,
    collect_loads,
    eval_interval,
    iter_stmts,
    seq,
    simplify,
    substitute,
    substitute_stmt,
)
from ..tir.visitor import StmtMutator
from .bounds import BoundsError, infer_region
from .module import GridDim, LoweredModule, LowerOptions, TransferSpec

__all__ = ["lower", "LoweringError"]


class LoweringError(ValueError):
    """The schedule cannot be lowered to a UPMEM program."""


_COMBINE = {"add": Add, "max": Max, "min": Min}


def lower(
    schedule: Schedule,
    name: str = "main",
    options: Optional[LowerOptions] = None,
) -> LoweredModule:
    """Lower a schedule into a :class:`LoweredModule`."""
    options = options or LowerOptions()

    kernel_builders: List[_StageBuilder] = []
    host_pre: List[Stmt] = []
    host_post: List[Stmt] = []
    host_parallel = 1
    seen_kernel = False
    inputs: List[Buffer] = []
    compute_buffers: List[Buffer] = []

    for stage in schedule.stages:
        if stage.kind == "placeholder":
            if stage.cache_source is None and stage.writeback_of is None:
                inputs.append(stage.op.output().buffer)
            continue
        if stage.kind != "compute":
            continue
        builder = _StageBuilder(schedule, stage, options)
        compute_buffers.append(stage.op.tensor.buffer)
        if builder.is_kernel:
            kernel_builders.append(builder)
            seen_kernel = True
        else:
            stmt = builder.build()
            if builder.wram_buffers:
                raise LoweringError(
                    f"host stage {stage.name!r} cannot allocate WRAM caches"
                )
            host_parallel = max(host_parallel, builder.host_parallel)
            (host_post if seen_kernel else host_pre).append(stmt)

    if not kernel_builders:
        raise LoweringError(
            "no stage is bound to a DPU grid (missing blockIdx bind)"
        )

    grid, kernel_body, wram_buffers, per_tasklet, n_tasklets = _assemble_kernel(
        kernel_builders
    )

    kernel_body, transfers, internal_mram = _extract_mram(
        kernel_body, grid, inputs, schedule
    )
    from ..tir import simplify_stmt

    simplified = simplify_stmt(kernel_body)
    if simplified is None:
        raise LoweringError("kernel simplified to nothing")
    kernel_body = simplified
    host_pre = [s for s in map(simplify_stmt, host_pre) if s is not None]
    host_post = [s for s in map(simplify_stmt, host_post) if s is not None]

    outputs = [t.buffer for t in schedule.outputs]
    intermediates = [b for b in compute_buffers if b not in outputs]

    return LoweredModule(
        name=name,
        grid=grid,
        kernel=kernel_body,
        transfers=transfers,
        host_pre=host_pre,
        host_post=host_post,
        inputs=inputs,
        outputs=outputs,
        intermediates=intermediates,
        mram_internal=internal_mram,
        wram_buffers=wram_buffers,
        wram_per_tasklet=per_tasklet,
        n_tasklets=n_tasklets,
        options=options,
        host_parallel_threads=host_parallel,
    )


# ---------------------------------------------------------------------------
# per-stage nest construction
# ---------------------------------------------------------------------------


class _StageBuilder:
    """Builds the loop nest of one compute stage."""

    def __init__(self, schedule: Schedule, stage: Stage, options: LowerOptions):
        self.schedule = schedule
        self.stage = stage
        self.op: ComputeOp = stage.op
        self.options = options
        self.leaves: List[IterVar] = list(stage.leaf_iter_vars)
        self.recon = {
            var: simplify(expr)
            for var, expr in reconstruct_roots(
                stage.root_iter_vars, stage.relations
            ).items()
        }
        self.body = simplify_loads(substitute(self.op.body, self.recon))
        self.idx_s = [self.recon[ax.var] for ax in self.op.axis]
        self.wram_buffers: List[Buffer] = []
        self.wram_per_tasklet: Dict[Buffer, bool] = {}
        self._rewrites: Dict[Buffer, Tuple[Buffer, List[PrimExpr]]] = {}
        self._init_emitted = False
        self._preds_spatial, self._preds_reduce = self._boundary_predicates()
        self._cache_at: Dict[IterVar, List[Stage]] = {}
        for cache_stage in stage.cache_reads.values():
            if cache_stage.attach is None:
                raise LoweringError(
                    f"cache stage {cache_stage.name!r} needs compute_at"
                )
            consumer, ivar = cache_stage.attach
            if consumer is not stage:
                raise LoweringError(
                    f"cache stage {cache_stage.name!r} attached to a"
                    " different stage than its consumer"
                )
            self._cache_at.setdefault(ivar, []).append(cache_stage)
        self._setup_accumulator()

    # -- classification -----------------------------------------------------
    @property
    def is_kernel(self) -> bool:
        return any(tag.startswith("blockIdx") for tag in self.stage.binds.values())

    @property
    def n_tasklets(self) -> int:
        for iv, tag in self.stage.binds.items():
            if tag == "threadIdx.x":
                return iv.extent
        return 1

    @property
    def host_parallel(self) -> int:
        for iv, ann in self.stage.annotations.items():
            if ann == "parallel":
                return iv.extent
        return 1

    # -- boundary predicates --------------------------------------------------
    def _boundary_predicates(self):
        env = {iv.var: Interval(0, iv.extent - 1) for iv in self.leaves}
        spatial: List[PrimExpr] = []
        reduce_: List[PrimExpr] = []
        if not self.options.boundary_checks:
            return spatial, reduce_
        for root in self.op.axis:
            pred = self._root_pred(root, env)
            if pred is not None:
                spatial.append(pred)
        for root in self.op.reduce_axis:
            pred = self._root_pred(root, env)
            if pred is not None:
                reduce_.append(pred)
        for pred in getattr(self.op, "predicates", []):
            reduce_.append(simplify(substitute(pred, self.recon)))
        return spatial, reduce_

    def _root_pred(self, root: IterVar, env) -> Optional[PrimExpr]:
        recon_expr = self.recon[root.var]
        if recon_expr is root.var:
            return None
        rng = eval_interval(recon_expr, env)
        if rng is not None and rng.hi is not None and rng.hi < root.extent:
            return None
        return simplify(recon_expr < root.extent)

    # -- accumulator (cache_write) ---------------------------------------------
    def _setup_accumulator(self) -> None:
        self.acc_buffer: Optional[Buffer] = None
        self.acc_base: List[PrimExpr] = []
        self._wb_pos: Optional[int] = None
        stage = self.stage
        if stage.write_cache_scope is None:
            return
        wb = stage.writeback
        if wb is None or wb.attach is None:
            raise LoweringError(
                f"stage {stage.name!r} has cache_write but the writeback"
                " stage was not placed with reverse_compute_at"
            )
        consumer, ivar = wb.attach
        if consumer is not stage:
            raise LoweringError("writeback must attach inside its own stage")
        pos = self.leaves.index(ivar)
        inner = {iv.var: iv.extent for iv in self.leaves[pos + 1 :]}
        try:
            base, extents = infer_region([self.idx_s], inner)
        except BoundsError as exc:
            raise LoweringError(f"cannot size write cache: {exc}") from exc
        out = self.op.tensor.buffer
        self.acc_buffer = Buffer(
            f"{out.name}_wram", extents, out.dtype, scope="wram"
        )
        self.acc_base = base
        self._wb_pos = pos
        self._register_wram(self.acc_buffer, pos)

    def _register_wram(self, buffer: Buffer, pos: int) -> None:
        inside_thread = any(
            self.stage.binds.get(iv) == "threadIdx.x" for iv in self.leaves[: pos + 1]
        )
        self.wram_buffers.append(buffer)
        self.wram_per_tasklet[buffer] = inside_thread

    # -- emission ----------------------------------------------------------------
    def build(self) -> Stmt:
        self._init_emitted = False
        return self._emit(0)

    def _first_reduce_pos(self) -> Optional[int]:
        for i, iv in enumerate(self.leaves):
            if iv.is_reduce:
                return i
        return None

    def _emit(self, pos: int) -> Stmt:
        if (
            self.op.is_reduction
            and not self._init_emitted
            and pos == self._first_reduce_pos()
        ):
            self._init_emitted = True
            init = self._emit_init(pos)
            rest = self._emit_loops(pos)
            return seq(init, rest)
        return self._emit_loops(pos)

    def _emit_loops(self, pos: int) -> Stmt:
        if pos == len(self.leaves):
            return self._innermost()
        iv = self.leaves[pos]
        parts: List[Stmt] = []
        registered: List[Buffer] = []
        for cache_stage in self._cache_at.get(iv, []):
            stmt, src = self._emit_cache(cache_stage, pos)
            parts.append(stmt)
            registered.append(src)
        parts.append(self._emit(pos + 1))
        if self._wb_pos is not None and pos == self._wb_pos:
            parts.append(self._emit_writeback())
        for src in registered:
            del self._rewrites[src]
        body = seq(*parts)
        return self._make_loop(iv, body)

    def _make_loop(self, iv: IterVar, body: Stmt) -> For:
        tag = self.stage.binds.get(iv)
        if tag is not None:
            return For(iv.var, iv.extent, body, ForKind.THREAD_BINDING, tag)
        ann = self.stage.annotations.get(iv)
        if ann == "unroll":
            return For(iv.var, iv.extent, body, ForKind.UNROLLED)
        if ann == "parallel":
            return For(iv.var, iv.extent, body, ForKind.PARALLEL)
        return For(iv.var, iv.extent, body, ForKind.SERIAL)

    # -- innermost statements ----------------------------------------------------
    def _acc_target(self) -> Tuple[Buffer, List[PrimExpr]]:
        if self.acc_buffer is not None:
            idx = [
                simplify(Sub(i, b)) for i, b in zip(self.idx_s, self.acc_base)
            ]
            return self.acc_buffer, idx
        return self.op.tensor.buffer, list(self.idx_s)

    def _innermost(self) -> Stmt:
        target, idx = self._acc_target()
        value = rewrite_cached_loads(self.body, self._rewrites)
        if self.op.is_reduction:
            combine = _COMBINE[self.op.combiner]
            value = combine(BufferLoad(target, idx), value)
        store: Stmt = BufferStore(target, value, idx)
        preds = list(self._preds_spatial) + list(self._preds_reduce)
        cond = all_of(preds)
        if cond is not None:
            store = IfThenElse(simplify(cond), store)
        return store

    def _emit_init(self, pos: int) -> Stmt:
        target, idx = self._acc_target()
        ident = identity_value(self.op.combiner, target.dtype)
        store: Stmt = BufferStore(target, ident, idx)
        if self.acc_buffer is None:
            cond = all_of(self._preds_spatial)
            if cond is not None:
                store = IfThenElse(simplify(cond), store)
        for iv in reversed([l for l in self.leaves[pos:] if not l.is_reduce]):
            store = For(iv.var, iv.extent, store, ForKind.SERIAL)
        return store

    # -- cache reads --------------------------------------------------------------
    def _emit_cache(self, cache_stage: Stage, pos: int) -> Tuple[Stmt, Buffer]:
        src = cache_stage.cache_source
        assert src is not None
        tuples = [
            [simplify(i) for i in ld.indices]
            for ld in collect_loads(self.body)
            if ld.buffer is src
        ]
        if not tuples:
            raise LoweringError(f"no loads of {src.name!r} to cache")
        inner = {iv.var: iv.extent for iv in self.leaves[pos + 1 :]}
        try:
            base, extents = infer_region(tuples, inner)
        except BoundsError as exc:
            raise LoweringError(
                f"cannot size cache for {src.name!r}: {exc}"
            ) from exc
        cbuf = Buffer(cache_stage.name, extents, src.dtype, scope="wram")
        self._register_wram(cbuf, pos)
        axes = [Var(f"{src.name}_c{d}") for d in range(len(extents))]
        src_idx = [simplify(Add(b, ax)) for b, ax in zip(base, axes)]
        store: Stmt = BufferStore(cbuf, BufferLoad(src, src_idx), list(axes))
        if self.options.boundary_checks:
            guards = []
            ranges = {iv.var: (0, iv.extent) for iv in self.leaves}
            for d, (idx, ax) in enumerate(zip(src_idx, axes)):
                ranges_d = dict(ranges)
                ranges_d[ax] = (0, extents[d])
                from ..tir import prove_lt

                if prove_lt(idx, IntImm(src.shape[d]), ranges_d) is not True:
                    guards.append(simplify(idx < src.shape[d]))
            cond = all_of(guards)
            if cond is not None:
                store = IfThenElse(cond, store)
        for ax, ext in zip(reversed(axes), reversed(extents)):
            store = For(ax, ext, store, ForKind.SERIAL)
        self._rewrites[src] = (cbuf, base)
        return store, src

    # -- writeback ----------------------------------------------------------------
    def _emit_writeback(self) -> Stmt:
        assert self.acc_buffer is not None
        out = self.op.tensor.buffer
        axes = [Var(f"{out.name}_wb{d}") for d in range(len(self.acc_buffer.shape))]
        dst_idx = [
            simplify(Add(b, ax)) for b, ax in zip(self.acc_base, axes)
        ]
        store: Stmt = BufferStore(
            out, BufferLoad(self.acc_buffer, list(axes)), dst_idx
        )
        if self.options.boundary_checks:
            guards = []
            ranges = {iv.var: (0, iv.extent) for iv in self.leaves}
            for d, (idx, ax) in enumerate(zip(dst_idx, axes)):
                ranges_d = dict(ranges)
                ranges_d[ax] = (0, self.acc_buffer.shape[d])
                from ..tir import prove_lt

                if prove_lt(idx, IntImm(out.shape[d]), ranges_d) is not True:
                    guards.append(simplify(idx < out.shape[d]))
            cond = all_of(guards)
            if cond is not None:
                store = IfThenElse(cond, store)
        for ax, ext in zip(reversed(axes), reversed(self.acc_buffer.shape)):
            store = For(ax, ext, store, ForKind.SERIAL)
        return store


# ---------------------------------------------------------------------------
# kernel assembly and MRAM extraction
# ---------------------------------------------------------------------------


def _assemble_kernel(builders: Sequence[_StageBuilder]):
    """Strip grid loops, unify grid vars, and join kernel stages."""
    canonical: Dict[str, GridDim] = {}
    bodies: List[Stmt] = []
    wram_buffers: List[Buffer] = []
    per_tasklet: Dict[Buffer, bool] = {}
    n_tasklets = 1

    for builder in builders:
        nest = builder.build()
        grid_vars: Dict[Var, Tuple[str, int]] = {}
        body = nest
        while (
            isinstance(body, For)
            and body.kind is ForKind.THREAD_BINDING
            and body.thread_tag.startswith("blockIdx")
        ):
            extent = body.extent
            if not isinstance(extent, IntImm):
                raise LoweringError("grid extents must be constant")
            grid_vars[body.var] = (body.thread_tag, extent.value)
            body = body.body
        if not grid_vars:
            raise LoweringError(
                f"stage {builder.stage.name!r}: blockIdx-bound loops must be"
                " the outermost loops of the stage"
            )
        for stmt in iter_stmts(body):
            if (
                isinstance(stmt, For)
                and stmt.kind is ForKind.THREAD_BINDING
                and stmt.thread_tag.startswith("blockIdx")
            ):
                raise LoweringError(
                    "blockIdx-bound loops must be outermost and contiguous"
                )
        mapping: Dict[Var, PrimExpr] = {}
        for var, (tag, extent) in grid_vars.items():
            dim = canonical.get(tag)
            if dim is None:
                dim = GridDim(tag, Var(tag.replace(".", "_")), extent)
                canonical[tag] = dim
            elif dim.extent != extent:
                raise LoweringError(
                    f"kernel stages disagree on {tag} extent:"
                    f" {dim.extent} vs {extent}"
                )
            mapping[var] = dim.var
        bodies.append(substitute_stmt(body, mapping))
        wram_buffers.extend(builder.wram_buffers)
        per_tasklet.update(builder.wram_per_tasklet)
        n_tasklets = max(n_tasklets, builder.n_tasklets)

    order = {"blockIdx.x": 0, "blockIdx.y": 1, "blockIdx.z": 2}
    grid = sorted(canonical.values(), key=lambda d: order[d.tag])
    if len(bodies) == 1:
        kernel = bodies[0]
    else:
        from ..tir import Call, Evaluate, Intrin

        joined: List[Stmt] = []
        for i, b in enumerate(bodies):
            if i:
                joined.append(Evaluate(Call(Intrin.BARRIER, [], "int32")))
            joined.append(b)
        kernel = SeqStmt(joined)
    return grid, kernel, wram_buffers, per_tasklet, n_tasklets


class _MramRewriter(StmtMutator):
    """Redirect global-buffer accesses inside the kernel to MRAM tiles."""

    def __init__(self, mapping: Dict[Buffer, Tuple[Buffer, List[PrimExpr]]]):
        self.mapping = mapping

    def visit_BufferLoad(self, node: BufferLoad) -> Optional[PrimExpr]:
        if node.buffer in self.mapping:
            local, base = self.mapping[node.buffer]
            idx = [
                simplify(Sub(self.visit(i), b))
                for i, b in zip(node.indices, base)
            ]
            return BufferLoad(local, idx)
        return self.generic_visit(node)

    def visit_BufferStore(self, node: BufferStore) -> Optional[Stmt]:
        value = self.visit(node.value)
        if node.buffer in self.mapping:
            local, base = self.mapping[node.buffer]
            idx = [
                simplify(Sub(self.visit(i), b))
                for i, b in zip(node.indices, base)
            ]
            return BufferStore(local, value, idx)
        idx = [self.visit(i) for i in node.indices]
        return BufferStore(node.buffer, value, idx)


def _extract_mram(
    kernel: Stmt,
    grid: List[GridDim],
    inputs: Sequence[Buffer],
    schedule: Schedule,
):
    """Compute per-DPU regions, rewrite accesses, emit transfer specs."""
    inner: Dict[Var, int] = {}
    for stmt in iter_stmts(kernel):
        if isinstance(stmt, For):
            extent = stmt.extent
            if not isinstance(extent, IntImm):
                raise LoweringError("kernel loop extents must be constant")
            inner[stmt.var] = extent.value

    accesses: Dict[Buffer, List[List[PrimExpr]]] = {}
    writes: Dict[Buffer, bool] = {}
    reads: Dict[Buffer, bool] = {}

    def record(buffer: Buffer, indices, is_write: bool) -> None:
        if buffer.scope != "global":
            return
        accesses.setdefault(buffer, []).append([simplify(i) for i in indices])
        if is_write:
            writes[buffer] = True
        else:
            reads[buffer] = True

    for stmt in iter_stmts(kernel):
        if isinstance(stmt, BufferStore):
            record(stmt.buffer, stmt.indices, True)
            for load in collect_loads(stmt.value):
                record(load.buffer, load.indices, False)
            for i in stmt.indices:
                for load in collect_loads(i):
                    record(load.buffer, load.indices, False)
        elif isinstance(stmt, IfThenElse):
            for load in collect_loads(stmt.condition):
                record(load.buffer, load.indices, False)

    mapping: Dict[Buffer, Tuple[Buffer, List[PrimExpr]]] = {}
    transfers: List[TransferSpec] = []
    internal: List[Buffer] = []
    output_buffers = {t.buffer for t in schedule.outputs}

    for buffer, tuples in accesses.items():
        try:
            base, extents = infer_region(tuples, inner)
        except BoundsError as exc:
            raise LoweringError(
                f"cannot tile buffer {buffer.name!r} per DPU: {exc}"
            ) from exc
        local = Buffer(f"{buffer.name}_mram", extents, buffer.dtype, scope="mram")
        mapping[buffer] = (local, base)
        written = writes.get(buffer, False)
        read = reads.get(buffer, False)
        if buffer in inputs:
            transfers.append(
                TransferSpec("h2d", buffer, local, tuple(base), tuple(extents))
            )
        elif written and (buffer in output_buffers or _read_by_host(buffer, schedule)):
            transfers.append(
                TransferSpec("d2h", buffer, local, tuple(base), tuple(extents))
            )
        elif written and read:
            internal.append(local)
        else:  # pragma: no cover - defensive
            internal.append(local)

    new_kernel = _MramRewriter(mapping).visit_stmt(kernel)
    assert new_kernel is not None
    return new_kernel, transfers, internal


def _read_by_host(buffer: Buffer, schedule: Schedule) -> bool:
    """Whether any host-side compute stage loads ``buffer``."""
    for stage in schedule.stages:
        if stage.kind != "compute":
            continue
        if any(tag.startswith("blockIdx") for tag in stage.binds.values()):
            continue
        if any(ld.buffer is buffer for ld in collect_loads(stage.op.body)):
            return True
    return False


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


class _LoadIndexSimplifier(StmtMutator):
    def visit_BufferLoad(self, node: BufferLoad) -> PrimExpr:
        return BufferLoad(node.buffer, [simplify(self.visit(i)) for i in node.indices])


def simplify_loads(expr: PrimExpr) -> PrimExpr:
    """Simplify every index expression inside ``expr``."""
    return _LoadIndexSimplifier().visit(expr)


def rewrite_cached_loads(
    expr: PrimExpr, rewrites: Dict[Buffer, Tuple[Buffer, List[PrimExpr]]]
) -> PrimExpr:
    """Redirect loads of cached buffers to their WRAM tiles."""
    if not rewrites:
        return expr

    class _Rewriter(StmtMutator):
        def visit_BufferLoad(self, node: BufferLoad) -> PrimExpr:
            if node.buffer in rewrites:
                cbuf, base = rewrites[node.buffer]
                idx = [
                    simplify(Sub(self.visit(i), b))
                    for i, b in zip(node.indices, base)
                ]
                return BufferLoad(cbuf, idx)
            return self.generic_visit(node)

    return _Rewriter().visit(expr)
