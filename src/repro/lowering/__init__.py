"""TIR lowering for the UPMEM target (paper §5.2.2)."""

from .bounds import BoundsError, infer_region, symbolic_bound
from .lower import LoweringError, lower
from .module import GridDim, LoweredModule, LowerOptions, TransferSpec

__all__ = [
    "lower",
    "LoweringError",
    "LoweredModule",
    "LowerOptions",
    "TransferSpec",
    "GridDim",
    "BoundsError",
    "infer_region",
    "symbolic_bound",
]
