"""Symbolic bounds inference for cache regions and per-DPU tiles.

Given an index expression over loop variables, computes its minimum /
maximum over a designated set of *inner* variables (the loops below an
attachment point), leaving outer variables symbolic.  All loop variables
are non-negative, which the rules below assume.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..tir import (
    Add,
    FloorDiv,
    FloorMod,
    IntImm,
    Max,
    Min,
    Mul,
    PrimExpr,
    Sub,
    Var,
    collect_vars,
    const_int,
    simplify,
)

__all__ = ["BoundsError", "symbolic_bound", "infer_region"]


class BoundsError(Exception):
    """The access pattern is outside the supported (quasi-affine) class."""


def _has_inner(expr: PrimExpr, inner: Dict[Var, int]) -> bool:
    return any(v in inner for v in collect_vars(expr))


def symbolic_bound(expr: PrimExpr, inner: Dict[Var, int], want_lo: bool) -> PrimExpr:
    """Lower (``want_lo``) or upper bound of ``expr`` over inner vars.

    ``inner`` maps each inner variable to its extent (range ``[0, ext)``).
    The result is an expression over the remaining (outer) variables.
    """
    result = _bound(expr, inner, want_lo)
    return simplify(result)


def _bound(expr: PrimExpr, inner: Dict[Var, int], lo: bool) -> PrimExpr:
    if not _has_inner(expr, inner):
        return expr
    if isinstance(expr, Var):
        return IntImm(0) if lo else IntImm(inner[expr] - 1)
    if isinstance(expr, Add):
        return Add(_bound(expr.a, inner, lo), _bound(expr.b, inner, lo))
    if isinstance(expr, Sub):
        return Sub(_bound(expr.a, inner, lo), _bound(expr.b, inner, not lo))
    if isinstance(expr, Mul):
        ca = const_int(expr.a)
        cb = const_int(expr.b)
        if cb is not None:
            side, c = expr.a, cb
        elif ca is not None:
            side, c = expr.b, ca
        else:
            # var*var products: one side must be inner-free; loop vars and
            # extents are non-negative, so bounds distribute.
            if not _has_inner(expr.a, inner):
                return Mul(expr.a, _bound(expr.b, inner, lo))
            if not _has_inner(expr.b, inner):
                return Mul(_bound(expr.a, inner, lo), expr.b)
            raise BoundsError(f"non-affine product of inner variables: {expr!r}")
        return Mul(_bound(side, inner, lo if c >= 0 else not lo), IntImm(c))
    if isinstance(expr, FloorDiv):
        c = const_int(expr.b)
        if c is None or c <= 0:
            raise BoundsError(f"floordiv by non-constant: {expr!r}")
        return FloorDiv(_bound(expr.a, inner, lo), IntImm(c))
    if isinstance(expr, FloorMod):
        c = const_int(expr.b)
        if c is None or c <= 0:
            raise BoundsError(f"floormod by non-constant: {expr!r}")
        return IntImm(0) if lo else IntImm(c - 1)
    if isinstance(expr, Min):
        return Min(_bound(expr.a, inner, lo), _bound(expr.b, inner, lo))
    if isinstance(expr, Max):
        return Max(_bound(expr.a, inner, lo), _bound(expr.b, inner, lo))
    raise BoundsError(f"unsupported expression in bounds inference: {expr!r}")


def infer_region(
    index_tuples: Sequence[Sequence[PrimExpr]],
    inner: Dict[Var, int],
) -> Tuple[List[PrimExpr], List[int]]:
    """Rectangular region covering all ``index_tuples`` over inner vars.

    Returns ``(base, extents)`` where ``base[d]`` is a symbolic origin and
    ``extents[d]`` a constant tile size.  All tuples must agree on the
    region (ATiM's sketches guarantee a single access pattern per cached
    buffer); disagreement raises :class:`BoundsError`.
    """
    if not index_tuples:
        raise BoundsError("no accesses to infer a region from")
    ndim = len(index_tuples[0])
    base: List[PrimExpr] = []
    extents: List[int] = []
    for d in range(ndim):
        lo_exprs = [symbolic_bound(t[d], inner, want_lo=True) for t in index_tuples]
        hi_exprs = [symbolic_bound(t[d], inner, want_lo=False) for t in index_tuples]
        lo = lo_exprs[0]
        for other in lo_exprs[1:]:
            if const_int(simplify(Sub(other, lo))) != 0:
                raise BoundsError(
                    "accesses disagree on cache region origin in dimension"
                    f" {d}: {lo!r} vs {other!r}"
                )
        extent_candidates = []
        for hi in hi_exprs:
            ext = const_int(simplify(Add(Sub(hi, lo), IntImm(1))))
            if ext is None:
                raise BoundsError(
                    f"cache region extent is not constant in dimension {d}"
                )
            extent_candidates.append(ext)
        ext = max(extent_candidates)
        if ext <= 0:
            raise BoundsError(f"empty cache region in dimension {d}")
        base.append(lo)
        extents.append(ext)
    return base, extents
