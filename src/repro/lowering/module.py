"""Lowered-program containers shared by the executor, analyzer and emitter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..tir import Buffer, PrimExpr, Stmt, Var

__all__ = ["TransferSpec", "GridDim", "LoweredModule", "LowerOptions"]

TRANSFER_MODES = ("element", "bulk", "parallel")


@dataclass
class LowerOptions:
    """Knobs of the lowering pipeline.

    transfer_mode:
        ``element`` — one intrinsic call per element (Fig. 7b);
        ``bulk`` — coalesced contiguous chunks (Fig. 7c);
        ``parallel`` — rank-parallel bulk pushes (Fig. 7d, ATiM default).
    boundary_checks:
        Insert boundary predicates for imperfect tiles.  Disabling them is
        only valid for perfectly aligned shapes (used in tests).
    optimize:
        Name of the PIM-aware optimization level applied after lowering:
        ``O0`` (none), ``O1`` (+DMA-aware boundary-check elimination),
        ``O2`` (+loop-bound tightening), ``O3`` (+invariant branch
        hoisting) — paper §5.3 / Fig. 13.
    """

    transfer_mode: str = "parallel"
    boundary_checks: bool = True
    optimize: str = "O3"

    def __post_init__(self) -> None:
        if self.transfer_mode not in TRANSFER_MODES:
            raise ValueError(f"transfer_mode must be one of {TRANSFER_MODES}")
        if self.optimize not in ("O0", "O1", "O2", "O3"):
            raise ValueError("optimize must be O0..O3")


@dataclass
class GridDim:
    """One DPU-grid dimension created by a ``blockIdx.*`` bind."""

    tag: str
    var: Var
    extent: int


@dataclass
class TransferSpec:
    """A host↔DPU transfer of one rectangular tile per DPU.

    ``base`` gives, per tensor dimension, the tile origin as an expression
    of the grid variables; ``shape`` is the (padded) tile extent.  The
    valid extent for a given DPU is ``min(shape_d, tensor_d - base_d)``.
    """

    direction: str  # "h2d" | "d2h"
    global_buffer: Buffer
    local_buffer: Buffer
    base: Tuple[PrimExpr, ...]
    shape: Tuple[int, ...]

    @property
    def tile_elems(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def tile_bytes(self) -> int:
        return self.tile_elems * self.global_buffer.elem_bytes


@dataclass
class LoweredModule:
    """The compiled form of one tensor program for the UPMEM target.

    Pieces (paper Fig. 5, step ③):

    * ``grid`` — DPU binding: one entry per ``blockIdx`` dimension.
    * ``kernel`` — per-DPU TIR, referencing MRAM tiles and WRAM caches.
    * ``transfers`` — host↔DPU data movement derived from the kernel's
      per-DPU regions (address calculation).
    * ``host_post`` — host-side statements (final reduction from
      ``rfactor``), executed after D2H.
    """

    name: str
    grid: List[GridDim]
    kernel: Stmt
    transfers: List[TransferSpec]
    host_pre: List[Stmt]
    host_post: List[Stmt]
    inputs: List[Buffer]
    outputs: List[Buffer]
    intermediates: List[Buffer] = field(default_factory=list)
    #: MRAM tiles written and read only inside the kernel (e.g. tasklet
    #: partials combined on-DPU) — allocated per DPU, never transferred.
    mram_internal: List[Buffer] = field(default_factory=list)
    wram_buffers: List[Buffer] = field(default_factory=list)
    # WRAM buffers allocated under the tasklet loop need one copy per
    # tasklet; maps buffer -> True when per-tasklet.
    wram_per_tasklet: Dict[Buffer, bool] = field(default_factory=dict)
    n_tasklets: int = 1
    options: LowerOptions = field(default_factory=LowerOptions)
    host_parallel_threads: int = 1
    #: Input tensor names placed in PIM memory once, outside the measured
    #: steady-state latency (weights / KV cache, paper §5.4).
    const_inputs: frozenset = frozenset()

    @property
    def n_dpus(self) -> int:
        n = 1
        for dim in self.grid:
            n *= dim.extent
        return n

    def grid_vars(self) -> List[Var]:
        return [dim.var for dim in self.grid]

    def wram_bytes_per_dpu(self) -> int:
        """Total WRAM footprint per DPU, counting per-tasklet privates."""
        total = 0
        for buf in self.wram_buffers:
            copies = self.n_tasklets if self.wram_per_tasklet.get(buf) else 1
            total += buf.nbytes * copies
        return total

    def transfer(self, direction: str) -> List[TransferSpec]:
        return [t for t in self.transfers if t.direction == direction]
