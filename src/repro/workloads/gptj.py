"""GPT-J layer shapes evaluated in the paper (§6, Fig. 10).

The MHA layer contributes MMTV operations shaped
``(batch × heads, tokens, 256)``; the FC layer contributes four MTV
operations (QKV generation, QKV projection, FC, FC projection).
GPT-J 6B has 16 heads with d_model 4096; the paper's "30B" configuration
uses 28 heads with d_model 7168.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .tensor_ops import Workload, mmtv, mtv

__all__ = ["GPTJConfig", "GPTJ_6B", "GPTJ_30B", "mha_mmtv", "fc_mtv", "fc_shapes"]


@dataclass(frozen=True)
class GPTJConfig:
    name: str
    n_heads: int
    d_model: int
    head_dim: int = 256

    @property
    def d_ff(self) -> int:
        return 4 * self.d_model


GPTJ_6B = GPTJConfig("gptj-6b", n_heads=16, d_model=4096)
GPTJ_30B = GPTJConfig("gptj-30b", n_heads=28, d_model=7168)


def mha_mmtv(config: GPTJConfig, batch: int, tokens: int) -> Workload:
    """The attention score/value MMTV of the MHA layer."""
    wl = mmtv(batch * config.n_heads, tokens, config.head_dim)
    wl.params.update(
        {"model": config.name, "batch": batch, "tokens": tokens}  # type: ignore[arg-type]
    )
    return wl


def fc_shapes(config: GPTJConfig) -> List[Tuple[str, int, int]]:
    """The four FC-layer MTV shapes (name, rows M, reduction K).

    Matches the paper's Fig. 10(b)/(d) columns — for GPT-J 6B:
    4096×4096 (QKV projection), 12288×4096 (QKV generation, 3·d),
    16384×4096 (FC, 4·d) and 4096×16384 (FC projection, transposed FC).
    """
    d = config.d_model
    return [
        ("qkv_proj", d, d),
        ("qkv_gen", 3 * d, d),
        ("fc", 4 * d, d),
        ("fc_proj", d, 4 * d),
    ]


def fc_mtv(config: GPTJConfig, which: str) -> Workload:
    """One of the FC-layer MTV operations by name."""
    for name, m, k in fc_shapes(config):
        if name == which:
            wl = mtv(m, k)
            wl.params.update({"model": config.name, "layer": which})  # type: ignore[arg-type]
            return wl
    raise KeyError(f"unknown FC layer {which!r}")
