"""The paper's benchmark tensor operations (§6).

Each factory returns a :class:`Workload` bundling the TE graph, a numpy
reference implementation, and bookkeeping (flop count, footprint) used by
the harness.  Sizes follow the paper: workloads are parameterized by their
logical dimensions, with the standard 4/64/256/512 MB instances defined in
:mod:`repro.workloads.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from .. import te
from ..te import Tensor

__all__ = [
    "Workload",
    "va",
    "geva",
    "red",
    "mtv",
    "gemv",
    "ttv",
    "mmtv",
]


@dataclass
class Workload:
    """A tensor program instance to compile and evaluate."""

    name: str
    inputs: List[Tensor]
    output: Tensor
    reference: Callable[..., np.ndarray]
    flops: float
    shape: Tuple[int, ...]
    #: Reduction extent (0 for element-wise ops) — drives sketch choice.
    reduce_extent: int = 0
    params: Dict[str, int] = field(default_factory=dict)
    #: Names of inputs resident in PIM memory across runs (weights, the
    #: KV cache): the paper's "constant tensors ... transferred once
    #: before kernel launches" (§5.4).
    const_inputs: frozenset = frozenset()

    @property
    def bytes_in(self) -> int:
        return sum(t.buffer.nbytes for t in self.inputs)

    @property
    def bytes_out(self) -> int:
        return self.output.buffer.nbytes

    @property
    def footprint_mb(self) -> float:
        return (self.bytes_in + self.bytes_out) / (1024.0 * 1024.0)

    def random_inputs(self, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {
            t.name: rng.random(t.shape, dtype=np.float32)
            for t in self.inputs
        }

    def reference_output(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        return self.reference(*[inputs[t.name] for t in self.inputs])


def va(n: int) -> Workload:
    """Vector addition: ``C(i) = A(i) + B(i)``."""
    A = te.placeholder((n,), "float32", "A")
    B = te.placeholder((n,), "float32", "B")
    C = te.compute((n,), lambda i: A[i] + B[i], "C")
    return Workload(
        name="va",
        inputs=[A, B],
        output=C,
        reference=lambda a, b: a + b,
        flops=float(n),
        shape=(n,),
        params={"n": n},
    )


def geva(n: int, c: float = 2.0, d: float = 3.0) -> Workload:
    """General vector addition: ``C(i) = c*A(i) + d*B(i)``."""
    A = te.placeholder((n,), "float32", "A")
    B = te.placeholder((n,), "float32", "B")
    C = te.compute((n,), lambda i: A[i] * c + B[i] * d, "C")
    return Workload(
        name="geva",
        inputs=[A, B],
        output=C,
        reference=lambda a, b: c * a + d * b,
        flops=3.0 * n,
        shape=(n,),
        params={"n": n},
    )


def red(n: int) -> Workload:
    """Reduction: ``b = sum_i A(i)``."""
    A = te.placeholder((n,), "float32", "A")
    k = te.reduce_axis(n, "k")
    C = te.compute((1,), lambda i: te.sum(A[k], axis=k), "C")
    return Workload(
        name="red",
        inputs=[A],
        output=C,
        reference=lambda a: np.asarray([a.sum()], dtype=np.float64),
        flops=float(n),
        shape=(n,),
        reduce_extent=n,
        params={"n": n},
    )


def mtv(m: int, k: int) -> Workload:
    """Matrix-vector product: ``C(i) = sum_j A(i,j) * B(j)``."""
    A = te.placeholder((m, k), "float32", "A")
    B = te.placeholder((k,), "float32", "B")
    kk = te.reduce_axis(k, "k")
    C = te.compute((m,), lambda i: te.sum(A[i, kk] * B[kk], axis=kk), "C")
    return Workload(
        name="mtv",
        inputs=[A, B],
        output=C,
        reference=lambda a, b: a @ b,
        flops=2.0 * m * k,
        shape=(m, k),
        reduce_extent=k,
        params={"m": m, "k": k},
        const_inputs=frozenset({"A"}),
    )


def gemv(m: int, k: int, c: float = 2.0) -> Workload:
    """Scaled matrix-vector product: ``C(i) = c * sum_j A(i,j) * B(j)``.

    The scale is folded into the reduction body (matching the PrIM-style
    formulation where the constant multiplies every product).
    """
    A = te.placeholder((m, k), "float32", "A")
    B = te.placeholder((k,), "float32", "B")
    kk = te.reduce_axis(k, "k")
    C = te.compute(
        (m,), lambda i: te.sum(A[i, kk] * B[kk] * c, axis=kk), "C"
    )
    return Workload(
        name="gemv",
        inputs=[A, B],
        output=C,
        reference=lambda a, b: c * (a @ b),
        flops=3.0 * m * k,
        shape=(m, k),
        reduce_extent=k,
        params={"m": m, "k": k},
        const_inputs=frozenset({"A"}),
    )


def ttv(m: int, n: int, k: int) -> Workload:
    """Tensor-times-vector: ``C(i,j) = sum_l A(i,j,l) * B(l)``."""
    A = te.placeholder((m, n, k), "float32", "A")
    B = te.placeholder((k,), "float32", "B")
    kk = te.reduce_axis(k, "k")
    C = te.compute(
        (m, n), lambda i, j: te.sum(A[i, j, kk] * B[kk], axis=kk), "C"
    )
    return Workload(
        name="ttv",
        inputs=[A, B],
        output=C,
        reference=lambda a, b: a @ b,
        flops=2.0 * m * n * k,
        shape=(m, n, k),
        reduce_extent=k,
        params={"m": m, "n": n, "k": k},
        const_inputs=frozenset({"A"}),
    )


def mmtv(m: int, n: int, k: int) -> Workload:
    """Batched matrix-vector: ``C(i,j) = sum_l A(i,j,l) * B(i,l)``.

    This is the multi-head-attention shape: ``m`` = batch × heads,
    ``n`` = tokens, ``k`` = head dimension.
    """
    A = te.placeholder((m, n, k), "float32", "A")
    B = te.placeholder((m, k), "float32", "B")
    kk = te.reduce_axis(k, "k")
    C = te.compute(
        (m, n), lambda i, j: te.sum(A[i, j, kk] * B[i, kk], axis=kk), "C"
    )
    return Workload(
        name="mmtv",
        inputs=[A, B],
        output=C,
        reference=lambda a, b: np.einsum("ijl,il->ij", a, b),
        flops=2.0 * m * n * k,
        shape=(m, n, k),
        reduce_extent=k,
        params={"m": m, "n": n, "k": k},
        const_inputs=frozenset({"A"}),
    )
