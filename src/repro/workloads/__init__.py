"""Benchmark workloads from the paper's evaluation (§6)."""

from .gptj import GPTJ_30B, GPTJ_6B, GPTJConfig, fc_mtv, fc_shapes, mha_mmtv
from .registry import SIZED_WORKLOADS, make_workload, size_labels, workload_names
from .tensor_ops import Workload, geva, gemv, mmtv, mtv, red, ttv, va

__all__ = [
    "Workload",
    "va",
    "geva",
    "red",
    "mtv",
    "gemv",
    "ttv",
    "mmtv",
    "make_workload",
    "workload_names",
    "size_labels",
    "SIZED_WORKLOADS",
    "GPTJConfig",
    "GPTJ_6B",
    "GPTJ_30B",
    "mha_mmtv",
    "fc_mtv",
    "fc_shapes",
]
