"""Standard workload instances: the paper's 4/64/256/512 MB size classes.

Sizes follow Fig. 9's annotations (e.g. MTV 64 MB = 4096×4096 float32,
RED 512 MB = 67,108,864 elements ... the paper's RED sizes are halved
relative to VA because RED streams a single tensor).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .tensor_ops import Workload, geva, gemv, mmtv, mtv, red, ttv, va

__all__ = ["SIZED_WORKLOADS", "make_workload", "workload_names", "size_labels"]

# name -> size label -> constructor arguments
SIZED_WORKLOADS: Dict[str, Dict[str, Tuple[int, ...]]] = {
    "va": {"4MB": (1048576,), "64MB": (16777216,), "256MB": (67108864,)},
    "geva": {"4MB": (1048576,), "64MB": (16777216,), "256MB": (67108864,)},
    "red": {
        "4MB": (524288,),
        "64MB": (8388608,),
        "256MB": (33554432,),
        "512MB": (67108864,),
    },
    "mtv": {
        "4MB": (1024, 1024),
        "64MB": (4096, 4096),
        "256MB": (8192, 8192),
        "512MB": (8192, 16384),
    },
    "gemv": {
        "4MB": (1024, 1024),
        "64MB": (4096, 4096),
        "256MB": (8192, 8192),
        "512MB": (8192, 16384),
    },
    "ttv": {
        "4MB": (32, 64, 512),
        "64MB": (128, 256, 512),
        "256MB": (256, 512, 512),
        "512MB": (512, 512, 512),
    },
    "mmtv": {
        "4MB": (32, 64, 512),
        "64MB": (128, 256, 512),
        "256MB": (256, 512, 512),
        "512MB": (512, 512, 512),
    },
}

_FACTORIES: Dict[str, Callable[..., Workload]] = {
    "va": va,
    "geva": geva,
    "red": red,
    "mtv": mtv,
    "gemv": gemv,
    "ttv": ttv,
    "mmtv": mmtv,
}


def make_workload(name: str, size: str) -> Workload:
    """Instantiate a standard workload, e.g. ``make_workload("mtv", "64MB")``.

    Unknown names raise :class:`ValueError` listing the valid workload
    names; unknown sizes list the valid size labels for that workload —
    never a bare :class:`KeyError` from the lookup internals.
    """
    try:
        sizes = SIZED_WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r};"
            f" valid workloads: {list(SIZED_WORKLOADS)}"
        ) from None
    try:
        args = sizes[size]
    except KeyError:
        raise ValueError(
            f"unknown size {size!r} for workload {name!r};"
            f" valid sizes: {list(sizes)}"
        ) from None
    return _FACTORIES[name](*args)


def workload_names() -> List[str]:
    return list(SIZED_WORKLOADS)


def size_labels(name: str) -> List[str]:
    return list(SIZED_WORKLOADS[name])
