"""The balanced evolutionary search and autotuning driver (§5.2.3, Fig. 6).

Mechanics per round:

1. build a candidate pool from mutated top-K database entries plus fresh
   random samples;
2. rank the pool with the learned cost model;
3. ε-greedy selection of the measurement batch (ε decays linearly from
   0.5 to 0.05 over the first 40% of trials when ``adaptive_epsilon``);
4. *balanced sampling*: during the first 40% of trials the batch draws an
   equal share from the ``rfactor`` and ``plain`` design subspaces so the
   inter-DPU-parallelism bias cannot drop non-rfactor candidates early;
5. "measure" the batch on the simulated UPMEM system, record, retrain.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..pipeline import ArtifactCache, CacheStats
from ..upmem.config import DEFAULT_CONFIG, UpmemConfig
from ..workloads import Workload
from .compile import CompileEngine
from .cost_model import CostModel
from .database import Database, TuningRecord
from .features import extract_features
from .sketch import param_space, subspace_of

__all__ = ["Candidate", "TuneResult", "Tuner", "autotune", "seed_params"]


def seed_params(
    space: Dict[str, List[int]], n_dpus: int
) -> List[Dict[str, int]]:
    """Canonical sketch defaults for a parameter space (one per design
    subspace), ordered best-guess first.

    Mirrors Ansor/MetaSchedule seeding the population with each sketch's
    default before evolution starts: a max-parallelism plain candidate
    and, where the space has a reduction dimension, an rfactor variant.
    Shared by the tuner's warm start and by targets that need a sensible
    un-tuned schedule (``repro.compile(workload, target=...)`` without
    explicit params).
    """
    seeds: List[Dict[str, int]] = []
    base: Dict[str, int] = {}
    budget = n_dpus
    for key, domain in space.items():
        if key in ("n_dpus", "i_dpus", "m_dpus"):
            base[key] = max(d for d in domain if d <= budget)
            budget //= base[key]
        elif key == "j_dpus":
            base[key] = max(d for d in domain if d <= max(1, budget))
            budget //= base[key]
        elif key == "k_dpus":
            base[key] = 1
        elif key == "n_tasklets":
            base[key] = 16 if 16 in domain else domain[-1]
        elif key == "cache":
            base[key] = 64 if 64 in domain else domain[-1]
        elif key == "host_threads":
            base[key] = domain[-1]
        else:
            base[key] = domain[0]
    seeds.append(base)
    if "k_dpus" in space and len(space["k_dpus"]) > 1:
        rf = dict(base)
        rf["k_dpus"] = max(d for d in space["k_dpus"] if d <= max(1, budget))
        if rf["k_dpus"] == 1 and len(space["k_dpus"]) > 1:
            # Trade spatial DPUs for reduction DPUs.
            shrink = "m_dpus" if "m_dpus" in rf else "i_dpus"
            domain = space[shrink]
            idx = domain.index(rf[shrink])
            rf[shrink] = domain[max(0, idx - 2)]
            rf["k_dpus"] = space["k_dpus"][min(2, len(space["k_dpus"]) - 1)]
        seeds.append(rf)
    if "dpu_combine" in space:
        alt = dict(base)
        alt["dpu_combine"] = 1
        seeds.append(alt)
    big_cache = dict(base)
    big_cache["cache"] = 256 if 256 in space.get("cache", []) else base["cache"]
    if big_cache != base:
        seeds.append(big_cache)
    return seeds


@dataclass
class Candidate:
    """An unmeasured schedule candidate."""

    params: Dict[str, int]
    subspace: str
    module: object = None  # LoweredModule once built
    features: Optional[np.ndarray] = None
    predicted: float = 0.0
    #: Sketch-default candidates are always measured in the first batch.
    is_seed: bool = False

    @property
    def key(self) -> Tuple:
        return tuple(sorted(self.params.items()))


@dataclass
class TuneResult:
    """Outcome of an autotuning run."""

    workload: Workload
    best_params: Dict[str, int]
    best_latency: float
    best_module: object
    database: Database
    #: (trial index, best latency so far) pairs for convergence plots.
    history: List[Tuple[int, float]] = field(default_factory=list)
    #: wall-clock seconds spent per round (Fig. 15 left).
    round_times: List[float] = field(default_factory=list)
    #: simulated latency of every measured candidate (Fig. 15 right).
    measured: List[float] = field(default_factory=list)
    #: compile-cache accounting (per-run deltas): repeated candidates
    #: skip re-lowering; ``disk_hits`` counts the subset served from a
    #: persistent cache tier.
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    compile_cache_disk_hits: int = 0

    @property
    def compile_cache_hit_rate(self) -> float:
        lookups = self.compile_cache_hits + self.compile_cache_misses
        return self.compile_cache_hits / lookups if lookups else 0.0

    def best_gflops(self) -> float:
        return self.workload.flops / self.best_latency / 1e9

    def gflops_curve(self) -> List[Tuple[int, float]]:
        return [
            (trial, self.workload.flops / lat / 1e9) for trial, lat in self.history
        ]


class Tuner:
    """Search driver for one workload."""

    def __init__(
        self,
        workload: Workload,
        config: Optional[UpmemConfig] = None,
        target: Optional[object] = None,
        n_trials: int = 256,
        batch_size: int = 16,
        seed: int = 0,
        balanced: bool = True,
        adaptive_epsilon: bool = True,
        optimize: str = "O3",
        top_k: int = 10,
        pool_multiplier: int = 4,
        seed_defaults: bool = True,
        engine: Optional[CompileEngine] = None,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        # ``target`` supersedes the raw-config interface: candidates are
        # sketched on the UPMEM grid but *scored* by the target's own
        # performance model, so the same search drives UPMEM, HBM-PIM or
        # any registered backend.  ``config`` is kept as sugar for an
        # UPMEM target with a custom machine description.
        from ..target import UpmemTarget, get_target

        if target is not None:
            if config is not None:
                raise ValueError("pass either target or config, not both")
            self.target = get_target(target)
        else:
            self.target = UpmemTarget(config=config or DEFAULT_CONFIG)
        self.workload = workload
        self.config = self.target.search_config
        self.n_trials = n_trials
        self.batch_size = batch_size
        self.rng = random.Random(seed)
        self.balanced = balanced
        self.adaptive_epsilon = adaptive_epsilon
        self.optimize = optimize
        self.top_k = top_k
        self.pool_multiplier = pool_multiplier
        #: Measure canonical sketch defaults first (Ansor-style warm
        #: start).  Disabled for search-dynamics studies (Fig. 14), where
        #: the cold-start bias between design subspaces is the subject.
        self.seed_defaults = seed_defaults
        self.space = param_space(workload, max_dpus=self.config.n_dpus)
        self.database = Database()
        self.cost_model = CostModel()
        #: Every candidate compiles through the shared pass pipeline via
        #: this engine; a tuner-private cache keeps artifacts scoped to
        #: the run (pass an engine or cache to share across runs —
        #: hit-rate accounting stays per-run either way).
        if engine is not None and cache is not None:
            raise ValueError("pass either engine or cache, not both")
        if engine is None:
            # `cache if ... is not None`: an empty ArtifactCache is falsy
            # (it has __len__), and a caller's fresh shared cache must
            # not be silently replaced by a private one.
            engine = CompileEngine(
                cache=cache if cache is not None else ArtifactCache()
            )
        self.engine = engine
        self._explore_until = int(0.4 * n_trials)

    # -- candidate construction ------------------------------------------------
    def _random_params(self) -> Dict[str, int]:
        return {k: self.rng.choice(v) for k, v in self.space.items()}

    def _mutate_params(self, params: Dict[str, int]) -> Dict[str, int]:
        new = dict(params)
        key = self.rng.choice(list(self.space))
        domain = self.space[key]
        idx = domain.index(new[key]) if new[key] in domain else 0
        step = self.rng.choice([-1, 1])
        new[key] = domain[max(0, min(len(domain) - 1, idx + step))]
        return new

    def _build(self, params: Dict[str, int]) -> Optional[Candidate]:
        artifact = self.engine.compile(
            self.workload,
            params,
            optimize=self.optimize,
            config=self.config,
            target=self.target,
        )
        if not artifact.ok or not artifact.verified:
            return None
        module = artifact.module
        cand = Candidate(
            params=params, subspace=subspace_of(self.workload.name, params)
        )
        cand.module = module
        cand.features = extract_features(module, self.config)
        return cand

    # -- search -------------------------------------------------------------------
    def epsilon(self, trial: int) -> float:
        """Exploration rate at a given trial (adaptive: 0.5 → 0.05)."""
        if not self.adaptive_epsilon:
            return 0.05
        if trial >= self._explore_until or self._explore_until == 0:
            return 0.05
        frac = trial / self._explore_until
        return 0.5 + (0.05 - 0.5) * frac

    def _seed_params(self) -> List[Dict[str, int]]:
        """Canonical defaults measured first (one per design subspace)."""
        return seed_params(self.space, self.config.n_dpus)

    def _sample_pool(self, size: int) -> List[Candidate]:
        pool: List[Candidate] = []
        seen = set()
        if self.seed_defaults and not len(self.database):
            for params in self._seed_params():
                cand = self._try_candidate(params, seen)
                if cand:
                    cand.is_seed = True
                    pool.append(cand)
        # Mutations of the current elite.
        for record in self.database.top_k(self.top_k):
            for _ in range(2):
                params = self._mutate_params(record.params)
                cand = self._try_candidate(params, seen)
                if cand:
                    pool.append(cand)
        # Fresh uniform samples (uniform across design subspaces).
        attempts = 0
        while len(pool) < size and attempts < size * 10:
            attempts += 1
            cand = self._try_candidate(self._random_params(), seen)
            if cand:
                pool.append(cand)
        return pool

    def _try_candidate(self, params: Dict[str, int], seen) -> Optional[Candidate]:
        key = tuple(sorted(params.items()))
        if key in seen or self.database.contains(params):
            return None
        seen.add(key)
        cand = self._build(params)
        return cand

    def _select_batch(
        self, pool: List[Candidate], trial: int
    ) -> List[Candidate]:
        if not pool:
            return []
        X = np.stack([c.features for c in pool])
        scores = self.cost_model.predict(X)
        for cand, score in zip(pool, scores):
            cand.predicted = float(score)
        eps = self.epsilon(trial)

        def greedy(cands: Sequence[Candidate], n: int) -> List[Candidate]:
            ranked = sorted(cands, key=lambda c: c.predicted)
            return list(ranked[:n])

        batch: List[Candidate] = []
        n = min(self.batch_size, len(pool))
        if self.balanced and trial < self._explore_until:
            # Equal representation of rfactor / plain subspaces early on.
            for tag in ("rfactor", "plain"):
                subset = [c for c in pool if c.subspace == tag]
                batch.extend(greedy(subset, n // 2))
            remaining = [c for c in pool if c not in batch]
            batch.extend(greedy(remaining, n - len(batch)))
        else:
            batch = greedy(pool, n)
        # ε-greedy: replace a fraction with random pool members (seeds
        # are exempt — sketch defaults are always measured).
        for i in range(len(batch)):
            if not batch[i].is_seed and self.rng.random() < eps:
                batch[i] = self.rng.choice(pool)
        for cand in pool:
            if cand.is_seed and cand not in batch:
                batch.insert(0, cand)
        # Dedupe while preserving order.
        unique: List[Candidate] = []
        keys = set()
        for c in batch:
            if c.key not in keys:
                keys.add(c.key)
                unique.append(c)
        return unique

    # -- measurement ----------------------------------------------------------------
    def _measure(self, cand: Candidate) -> float:
        return self.target.measure(cand.module, self.workload)

    def _measure_batch(self, batch: Sequence[Candidate]) -> List[float]:
        """Evaluate a measurement batch on the simulated system.

        Batched so the whole round shares one evaluation step (matching
        real-hardware drivers that upload and time a program batch).
        """
        return [self._measure(cand) for cand in batch]

    def tune(self) -> TuneResult:
        """Run the search; returns the best candidate and full history."""
        trial = 0
        history: List[Tuple[int, float]] = []
        round_times: List[float] = []
        measured: List[float] = []
        best: Optional[TuningRecord] = None
        stats_before = self.engine.stats.snapshot()

        while trial < self.n_trials:
            start = time.perf_counter()
            pool = self._sample_pool(self.batch_size * self.pool_multiplier)
            batch = self._select_batch(pool, trial)
            if not batch:
                break
            batch = batch[: self.n_trials - trial]
            latencies = self._measure_batch(batch)
            for cand, latency in zip(batch, latencies):
                measured.append(latency)
                record = TuningRecord(
                    params=cand.params,
                    subspace=cand.subspace,
                    latency=latency,
                    features=cand.features,
                    trial=trial,
                )
                self.database.add(record)
                trial += 1
                if best is None or latency < best.latency:
                    best = record
                history.append((trial, best.latency))
            X, y = self.database.training_data()
            self.cost_model.fit(X, y)
            round_times.append(time.perf_counter() - start)

        if best is None:
            raise RuntimeError(
                f"no valid candidate found for workload {self.workload.name!r}"
            )
        best_candidate = self._build(best.params)
        assert best_candidate is not None
        # Delta against the run's start so a shared engine still yields
        # per-run accounting.
        totals = self.engine.stats
        stats = CacheStats(
            hits=totals.hits - stats_before.hits,
            misses=totals.misses - stats_before.misses,
            disk_hits=totals.disk_hits - stats_before.disk_hits,
        )
        return TuneResult(
            workload=self.workload,
            best_params=best.params,
            best_latency=best.latency,
            best_module=best_candidate.module,
            database=self.database,
            history=history,
            round_times=round_times,
            measured=measured,
            compile_cache_hits=stats.hits,
            compile_cache_misses=stats.misses,
            compile_cache_disk_hits=stats.disk_hits,
        )


def autotune(
    workload: Workload,
    n_trials: int = 256,
    config: Optional[UpmemConfig] = None,
    target: Optional[object] = None,
    seed: int = 0,
    **kwargs,
) -> TuneResult:
    """Autotune a workload (ATiM's flow).

    ``target`` selects the backend whose performance model scores the
    candidates (default: the simulated UPMEM system); pass a kind string
    (``"upmem"``, ``"hbm-pim"``, ...) or a configured
    :class:`repro.target.Target` instance.
    """
    tuner = Tuner(
        workload,
        config=config,
        target=target,
        n_trials=n_trials,
        seed=seed,
        **kwargs,
    )
    return tuner.tune()
