"""The balanced evolutionary search and autotuning driver (§5.2.3, Fig. 6).

Mechanics per round:

1. build a candidate pool from mutated top-K database entries plus fresh
   random samples;
2. rank the pool with the learned cost model;
3. ε-greedy selection of the measurement batch (ε decays linearly from
   0.5 to 0.05 over the first 40% of trials when ``adaptive_epsilon``);
4. *balanced sampling*: during the first 40% of trials the batch draws an
   equal share from the ``rfactor`` and ``plain`` design subspaces so the
   inter-DPU-parallelism bias cannot drop non-rfactor candidates early;
5. "measure" the batch on the simulated UPMEM system, record, retrain.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..pipeline import ArtifactCache, CacheStats, tuning_key
from ..target.executor import Executor
from ..upmem.config import DEFAULT_CONFIG, UpmemConfig
from ..workloads import Workload
from .compile import CompileEngine
from .cost_model import CostModel
from .database import Database, TuningCache, TuningRecord
from .features import extract_features
from .sketch import param_space, subspace_of

__all__ = [
    "Candidate",
    "TuneResult",
    "Tuner",
    "autotune",
    "measure_stats",
    "seed_params",
    "tuned_params",
]

#: Process-wide measurement-memo accounting (mirrors the compile cache's
#: ``default_engine().stats``): every ``Tuner.tune`` adds its per-run
#: warm-start hits/misses here so the harness can report warm vs cold.
_MEASURE_STATS = CacheStats()


def measure_stats() -> CacheStats:
    """Snapshot of process-wide measurement-memo hit/miss counters."""
    return _MEASURE_STATS.snapshot()


def _resolve_target(target: Optional[object], config: Optional[UpmemConfig]):
    """The Tuner's target semantics, shared with the ``tuned_params``
    fast path so both compute identical ``tuning_key`` groups:
    ``target`` supersedes the raw-config interface; ``config`` is sugar
    for an UPMEM target with a custom machine description."""
    from ..target import UpmemTarget, get_target

    if target is not None:
        if config is not None:
            raise ValueError("pass either target or config, not both")
        return get_target(target)
    return UpmemTarget(config=config or DEFAULT_CONFIG)


def seed_params(
    space: Dict[str, List[int]], n_dpus: int
) -> List[Dict[str, int]]:
    """Canonical sketch defaults for a parameter space (one per design
    subspace), ordered best-guess first.

    Mirrors Ansor/MetaSchedule seeding the population with each sketch's
    default before evolution starts: a max-parallelism plain candidate
    and, where the space has a reduction dimension, an rfactor variant.
    Shared by the tuner's warm start and by targets that need a sensible
    un-tuned schedule (``repro.compile(workload, target=...)`` without
    explicit params).
    """
    seeds: List[Dict[str, int]] = []
    base: Dict[str, int] = {}
    budget = n_dpus
    for key, domain in space.items():
        if key in ("n_dpus", "i_dpus", "m_dpus"):
            base[key] = max(d for d in domain if d <= budget)
            budget //= base[key]
        elif key == "j_dpus":
            base[key] = max(d for d in domain if d <= max(1, budget))
            budget //= base[key]
        elif key == "k_dpus":
            base[key] = 1
        elif key == "n_tasklets":
            base[key] = 16 if 16 in domain else domain[-1]
        elif key == "cache":
            base[key] = 64 if 64 in domain else domain[-1]
        elif key == "host_threads":
            base[key] = domain[-1]
        else:
            base[key] = domain[0]
    seeds.append(base)
    if "k_dpus" in space and len(space["k_dpus"]) > 1:
        rf = dict(base)
        rf["k_dpus"] = max(d for d in space["k_dpus"] if d <= max(1, budget))
        if rf["k_dpus"] == 1 and len(space["k_dpus"]) > 1:
            # Trade spatial DPUs for reduction DPUs.
            shrink = "m_dpus" if "m_dpus" in rf else "i_dpus"
            domain = space[shrink]
            idx = domain.index(rf[shrink])
            rf[shrink] = domain[max(0, idx - 2)]
            rf["k_dpus"] = space["k_dpus"][min(2, len(space["k_dpus"]) - 1)]
        seeds.append(rf)
    if "dpu_combine" in space:
        alt = dict(base)
        alt["dpu_combine"] = 1
        seeds.append(alt)
    big_cache = dict(base)
    big_cache["cache"] = 256 if 256 in space.get("cache", []) else base["cache"]
    if big_cache != base:
        seeds.append(big_cache)
    return seeds


@dataclass
class Candidate:
    """An unmeasured schedule candidate."""

    params: Dict[str, int]
    subspace: str
    module: object = None  # LoweredModule once built
    features: Optional[np.ndarray] = None
    predicted: float = 0.0
    #: Sketch-default candidates are always measured in the first batch.
    is_seed: bool = False

    @property
    def key(self) -> Tuple:
        return tuple(sorted(self.params.items()))


@dataclass
class TuneResult:
    """Outcome of an autotuning run."""

    workload: Workload
    best_params: Dict[str, int]
    best_latency: float
    best_module: object
    database: Database
    #: (trial index, best latency so far) pairs for convergence plots.
    history: List[Tuple[int, float]] = field(default_factory=list)
    #: wall-clock seconds spent per round (Fig. 15 left).
    round_times: List[float] = field(default_factory=list)
    #: simulated latency of every measured candidate (Fig. 15 right).
    measured: List[float] = field(default_factory=list)
    #: compile-cache accounting (per-run deltas): repeated candidates
    #: skip re-lowering; ``disk_hits`` counts the subset served from a
    #: persistent cache tier.
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    compile_cache_disk_hits: int = 0
    #: warm-start accounting: measurements served from a persistent
    #: tuning database (``db=``/``resume=``) vs freshly simulated.
    measure_cache_hits: int = 0
    measure_cache_misses: int = 0
    #: group digest in the persistent store (empty when no ``db``).
    db_key: str = ""

    @property
    def compile_cache_hit_rate(self) -> float:
        lookups = self.compile_cache_hits + self.compile_cache_misses
        return self.compile_cache_hits / lookups if lookups else 0.0

    @property
    def measure_cache_hit_rate(self) -> float:
        lookups = self.measure_cache_hits + self.measure_cache_misses
        return self.measure_cache_hits / lookups if lookups else 0.0

    def best_gflops(self) -> float:
        return self.workload.flops / self.best_latency / 1e9

    def gflops_curve(self) -> List[Tuple[int, float]]:
        return [
            (trial, self.workload.flops / lat / 1e9) for trial, lat in self.history
        ]


class Tuner:
    """Search driver for one workload."""

    def __init__(
        self,
        workload: Workload,
        config: Optional[UpmemConfig] = None,
        target: Optional[object] = None,
        n_trials: int = 256,
        batch_size: int = 16,
        seed: int = 0,
        balanced: bool = True,
        adaptive_epsilon: bool = True,
        optimize: str = "O3",
        top_k: int = 10,
        pool_multiplier: int = 4,
        seed_defaults: bool = True,
        engine: Optional[CompileEngine] = None,
        cache: Optional[ArtifactCache] = None,
        parallel_measure: int = 1,
        db: Optional[object] = None,
        resume: bool = False,
    ) -> None:
        # Candidates are sketched on the UPMEM grid but *scored* by the
        # target's own performance model, so the same search drives
        # UPMEM, HBM-PIM or any registered backend.
        self.target = _resolve_target(target, config)
        self.workload = workload
        self.config = self.target.search_config
        self.n_trials = n_trials
        self.batch_size = batch_size
        self.seed = seed
        self.rng = random.Random(seed)
        self.balanced = balanced
        self.adaptive_epsilon = adaptive_epsilon
        self.optimize = optimize
        self.top_k = top_k
        self.pool_multiplier = pool_multiplier
        #: Measure canonical sketch defaults first (Ansor-style warm
        #: start).  Disabled for search-dynamics studies (Fig. 14), where
        #: the cold-start bias between design subspaces is the subject.
        self.seed_defaults = seed_defaults
        self.space = param_space(workload, max_dpus=self.config.n_dpus)
        self.database = Database()
        self.cost_model = CostModel()
        #: Every candidate compiles through the shared pass pipeline via
        #: this engine; a tuner-private cache keeps artifacts scoped to
        #: the run (pass an engine or cache to share across runs —
        #: hit-rate accounting stays per-run either way).
        if engine is not None and cache is not None:
            raise ValueError("pass either engine or cache, not both")
        if engine is None:
            # `cache if ... is not None`: an empty ArtifactCache is falsy
            # (it has __len__), and a caller's fresh shared cache must
            # not be silently replaced by a private one.
            engine = CompileEngine(
                cache=cache if cache is not None else ArtifactCache()
            )
        self.engine = engine
        #: Tiny budgets (``n_trials < 3``) used to floor this at 0, which
        #: made ``epsilon`` return 0.05 for every trial and skip
        #: exploration entirely; small runs get one exploratory trial.
        self._explore_until = max(1, int(0.4 * n_trials))
        #: Measurement fan-out: batch candidates are independent, so they
        #: shard across the same order-preserving thread pool
        #: ``Executable.run_batch`` uses; 1 = the sequential code path.
        self.parallel_measure = max(1, int(parallel_measure))
        self._executor = Executor(max_workers=self.parallel_measure)
        #: Persistent tuning store (warm start / resume).  ``db`` is a
        #: path or :class:`TuningCache`; measured records append to it
        #: after every batch.  ``resume`` additionally pre-loads this
        #: group's records as a measurement memo: the search *replays*
        #: deterministically from its seed, and candidates the store
        #: already knows skip re-measurement, so a killed-and-resumed run
        #: walks the exact trajectory (and history) of an uninterrupted
        #: one.
        self.tuning_cache = (
            TuningCache.ensure(db) if db is not None else None
        )
        if resume and self.tuning_cache is None:
            raise ValueError("resume=True requires a db to resume from")
        self.db_key = tuning_key(
            workload, self.config, self.target, opt_level=self.optimize
        )
        self._warm: Dict[Tuple, TuningRecord] = {}
        if resume and self.tuning_cache is not None:
            for record in self.tuning_cache.load(self.db_key).records():
                self._warm[record.key] = record
        self._measure_hits = 0
        self._measure_misses = 0

    # -- candidate construction ------------------------------------------------
    def _random_params(self) -> Dict[str, int]:
        return {k: self.rng.choice(v) for k, v in self.space.items()}

    def _mutate_params(self, params: Dict[str, int]) -> Dict[str, int]:
        """One-step mutation that always yields *different* params.

        Steps are reflected at domain edges (clamping used to mutate
        boundary candidates into themselves, wasting the elite-mutation
        slot on a duplicate ``seen`` then rejected), and only keys with
        more than one choice are eligible.
        """
        new = dict(params)
        keys = [k for k, domain in self.space.items() if len(domain) > 1]
        if not keys:
            return new
        key = self.rng.choice(keys)
        domain = self.space[key]
        idx = domain.index(new[key]) if new[key] in domain else 0
        step = self.rng.choice([-1, 1])
        nidx = idx + step
        if not 0 <= nidx < len(domain):
            nidx = idx - step  # reflect off the boundary
        new[key] = domain[nidx]
        return new

    def _build(self, params: Dict[str, int]) -> Optional[Candidate]:
        artifact = self.engine.compile(
            self.workload,
            params,
            optimize=self.optimize,
            config=self.config,
            target=self.target,
        )
        if not artifact.ok or not artifact.verified:
            return None
        module = artifact.module
        cand = Candidate(
            params=params, subspace=subspace_of(self.workload.name, params)
        )
        cand.module = module
        cand.features = extract_features(module, self.config)
        return cand

    # -- search -------------------------------------------------------------------
    def epsilon(self, trial: int) -> float:
        """Exploration rate at a given trial (adaptive: 0.5 → 0.05)."""
        if not self.adaptive_epsilon:
            return 0.05
        if trial >= self._explore_until:
            return 0.05
        frac = trial / self._explore_until
        return 0.5 + (0.05 - 0.5) * frac

    def _seed_params(self) -> List[Dict[str, int]]:
        """Canonical defaults measured first (one per design subspace)."""
        return seed_params(self.space, self.config.n_dpus)

    def _sample_pool(self, size: int) -> List[Candidate]:
        pool: List[Candidate] = []
        seen = set()
        if self.seed_defaults and not len(self.database):
            for params in self._seed_params():
                cand = self._try_candidate(params, seen)
                if cand:
                    cand.is_seed = True
                    pool.append(cand)
        # Mutations of the current elite.
        for record in self.database.top_k(self.top_k):
            for _ in range(2):
                params = self._mutate_params(record.params)
                cand = self._try_candidate(params, seen)
                if cand:
                    pool.append(cand)
        # Fresh uniform samples (uniform across design subspaces).
        attempts = 0
        while len(pool) < size and attempts < size * 10:
            attempts += 1
            cand = self._try_candidate(self._random_params(), seen)
            if cand:
                pool.append(cand)
        return pool

    def _try_candidate(self, params: Dict[str, int], seen) -> Optional[Candidate]:
        key = tuple(sorted(params.items()))
        if key in seen or self.database.contains(params):
            return None
        seen.add(key)
        cand = self._build(params)
        return cand

    def _select_batch(
        self, pool: List[Candidate], trial: int
    ) -> List[Candidate]:
        if not pool:
            return []
        X = np.stack([c.features for c in pool])
        scores = self.cost_model.predict(X)
        for cand, score in zip(pool, scores):
            cand.predicted = float(score)
        eps = self.epsilon(trial)

        def greedy(cands: Sequence[Candidate], n: int) -> List[Candidate]:
            ranked = sorted(cands, key=lambda c: c.predicted)
            return list(ranked[:n])

        batch: List[Candidate] = []
        n = min(self.batch_size, len(pool))
        if self.balanced and trial < self._explore_until:
            # Equal representation of rfactor / plain subspaces early on.
            for tag in ("rfactor", "plain"):
                subset = [c for c in pool if c.subspace == tag]
                batch.extend(greedy(subset, n // 2))
            remaining = [c for c in pool if c not in batch]
            batch.extend(greedy(remaining, n - len(batch)))
        else:
            batch = greedy(pool, n)
        # ε-greedy: replace a fraction with random pool members (seeds
        # are exempt — sketch defaults are always measured).
        for i in range(len(batch)):
            if not batch[i].is_seed and self.rng.random() < eps:
                batch[i] = self.rng.choice(pool)
        for cand in pool:
            if cand.is_seed and cand not in batch:
                batch.insert(0, cand)
        # Dedupe while preserving order.
        unique: List[Candidate] = []
        keys = set()
        for c in batch:
            if c.key not in keys:
                keys.add(c.key)
                unique.append(c)
        return unique

    # -- measurement ----------------------------------------------------------------
    def _measure(self, cand: Candidate) -> float:
        return self.target.measure(cand.module, self.workload)

    def _measure_batch(self, batch: Sequence[Candidate]) -> List[float]:
        """Evaluate a measurement batch on the simulated system.

        Batched so the whole round shares one evaluation step (matching
        real-hardware drivers that upload and time a program batch).
        Candidates already present in the warm-start memo reuse their
        stored latency; the rest fan out across ``parallel_measure``
        workers.  The pool map preserves submission order and each
        measurement is a pure function of (module, config), so results
        are bit-for-bit identical to the sequential path.
        """
        latencies: List[Optional[float]] = [None] * len(batch)
        fresh: List[int] = []
        for i, cand in enumerate(batch):
            record = self._warm.get(cand.key)
            if record is not None:
                latencies[i] = record.latency
                self._measure_hits += 1
            else:
                fresh.append(i)
                self._measure_misses += 1
        results = self._executor.map(
            self._measure, [batch[i] for i in fresh]
        )
        for i, latency in zip(fresh, results):
            latencies[i] = latency
        return latencies

    def tune(self) -> TuneResult:
        """Run the search; returns the best candidate and full history."""
        trial = 0
        history: List[Tuple[int, float]] = []
        round_times: List[float] = []
        measured: List[float] = []
        best: Optional[TuningRecord] = None
        stats_before = self.engine.stats.snapshot()
        self._measure_hits = 0
        self._measure_misses = 0

        while trial < self.n_trials:
            start = time.perf_counter()
            pool = self._sample_pool(self.batch_size * self.pool_multiplier)
            batch = self._select_batch(pool, trial)
            if not batch:
                break
            batch = batch[: self.n_trials - trial]
            latencies = self._measure_batch(batch)
            fresh_records: List[TuningRecord] = []
            for cand, latency in zip(batch, latencies):
                measured.append(latency)
                record = TuningRecord(
                    params=cand.params,
                    subspace=cand.subspace,
                    latency=latency,
                    features=cand.features,
                    trial=trial,
                )
                self.database.add(record)
                if cand.key not in self._warm:
                    fresh_records.append(record)
                trial += 1
                if best is None or latency < best.latency:
                    best = record
                history.append((trial, best.latency))
            if self.tuning_cache is not None:
                # Incremental persistence: a killed run keeps every batch
                # measured so far, and --resume replays past it for free.
                self.tuning_cache.append(
                    self.db_key,
                    fresh_records,
                    meta={
                        "workload": self.workload.name,
                        "target": self.target.kind,
                    },
                )
            X, y = self.database.training_data()
            self.cost_model.fit(X, y)
            round_times.append(time.perf_counter() - start)

        if best is None:
            raise RuntimeError(
                f"no valid candidate found for workload {self.workload.name!r}"
            )
        if self.tuning_cache is not None:
            # The run satisfied the *requested* budget either by
            # measuring n_trials candidates or by exhausting the valid
            # space first (``trial`` < n_trials with an empty batch), so
            # the marker records n_trials: an exhausted-space group must
            # still resolve instantly for the same budget instead of
            # re-searching on every tuned=True compile.
            self.tuning_cache.mark_complete(
                self.db_key,
                self.n_trials,
                meta={
                    "workload": self.workload.name,
                    "target": self.target.kind,
                    "seed": self.seed,
                    "measured_trials": trial,
                },
            )
        best_candidate = self._build(best.params)
        assert best_candidate is not None
        # Delta against the run's start so a shared engine still yields
        # per-run accounting.
        totals = self.engine.stats
        stats = CacheStats(
            hits=totals.hits - stats_before.hits,
            misses=totals.misses - stats_before.misses,
            disk_hits=totals.disk_hits - stats_before.disk_hits,
        )
        _MEASURE_STATS.hits += self._measure_hits
        _MEASURE_STATS.misses += self._measure_misses
        return TuneResult(
            workload=self.workload,
            best_params=best.params,
            best_latency=best.latency,
            best_module=best_candidate.module,
            database=self.database,
            history=history,
            round_times=round_times,
            measured=measured,
            compile_cache_hits=stats.hits,
            compile_cache_misses=stats.misses,
            compile_cache_disk_hits=stats.disk_hits,
            measure_cache_hits=self._measure_hits,
            measure_cache_misses=self._measure_misses,
            db_key=self.db_key if self.tuning_cache is not None else "",
        )


def autotune(
    workload: Workload,
    n_trials: int = 256,
    config: Optional[UpmemConfig] = None,
    target: Optional[object] = None,
    seed: int = 0,
    **kwargs,
) -> TuneResult:
    """Autotune a workload (ATiM's flow).

    ``target`` selects the backend whose performance model scores the
    candidates (default: the simulated UPMEM system); pass a kind string
    (``"upmem"``, ``"hbm-pim"``, ...) or a configured
    :class:`repro.target.Target` instance.

    Persistence/scale knobs forward to :class:`Tuner`:
    ``db=`` (path or :class:`TuningCache`) appends measured records to a
    persistent store, ``resume=True`` warm-starts from it, and
    ``parallel_measure=N`` shards each measurement batch across N
    workers (bit-for-bit identical results to serial).
    """
    tuner = Tuner(
        workload,
        config=config,
        target=target,
        n_trials=n_trials,
        seed=seed,
        **kwargs,
    )
    return tuner.tune()


def tuned_params(
    workload: Workload,
    target: Optional[object] = None,
    db: Optional[object] = None,
    n_trials: int = 64,
    seed: int = 0,
    resume: Optional[bool] = None,
    optimize: str = "O3",
    **kwargs,
) -> Dict[str, int]:
    """Best-known schedule params for a workload on a target.

    With a persistent ``db`` holding a *completed* search of at least
    ``n_trials`` for this (workload, target, config) group (searches
    append a ``run_complete`` marker when they finish), the stored best
    is returned without searching — a single file scan, no compile
    machinery.  Anything less — a cold store, or a group built only
    from interrupted runs, however many records they left — runs the
    search, warm-started and persisting into ``db`` when given, and
    returns its winner.  ``resume`` defaults to warm-starting whenever
    ``db`` is given; pass ``resume=False`` to persist without
    warm-starting (which also forces a fresh search).  This backs
    ``repro.compile(workload, target=..., tuned=True)``.
    """
    resume = db is not None if resume is None else resume
    if db is not None and resume:
        cache = TuningCache.ensure(db)
        resolved = _resolve_target(target, kwargs.get("config"))
        key = tuning_key(
            workload, resolved.search_config, resolved, opt_level=optimize
        )
        best, completed = cache.group_summary(key)
        if completed >= n_trials and best is not None:
            return dict(best.params)
    tuner = Tuner(
        workload,
        target=target,
        n_trials=n_trials,
        seed=seed,
        db=db,
        resume=resume,
        optimize=optimize,
        **kwargs,
    )
    return dict(tuner.tune().best_params)
