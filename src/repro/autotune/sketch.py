"""ATiM-extended sketch generation rules (paper §5.2.1, Fig. 6, Table 2).

A *sketch* is a parameterized schedule template implementing the tunable
host and kernel operations: host-to-DPU data distribution (split/reorder/
bind), reduction strategy (rfactor), multi-level tiling, intra-DPU caching
(cache_read/cache_write + compute_at) and host post-processing
(split + parallel).  A *candidate* is a sketch plus concrete parameter
values; the evolutionary search explores the joint space.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from ..schedule import Schedule, ScheduleError
from ..workloads import Workload

__all__ = [
    "SketchError",
    "generate_schedule",
    "param_space",
    "subspace_of",
    "DPU_CHOICES",
    "TASKLET_CHOICES",
    "CACHE_CHOICES",
]


class SketchError(ScheduleError):
    """The parameter combination cannot form a valid schedule."""


DPU_CHOICES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]
TASKLET_CHOICES = [1, 2, 4, 8, 16, 24]
CACHE_CHOICES = [8, 16, 32, 64, 128, 256, 512]
HOST_THREAD_CHOICES = [1, 4, 16, 32]


def _clamp_parts(nparts: int, extent: int) -> int:
    """Never split into more parts than iterations (oversubscription would
    inflate per-DPU regions with padded rows)."""
    return max(1, min(nparts, extent))


def _pow2_upto(limit: int, choices: List[int]) -> List[int]:
    picked = [c for c in choices if c <= max(1, limit)]
    return picked or [1]


def _tile_domain(extent: int, limit: int, choices: List[int]) -> List[int]:
    """Powers of two plus exact divisors of ``extent`` (perfect tiles).

    ATiM samples tile factors within loop bounds, so non-power-of-two
    extents (e.g. 448 = 28 heads x 16 batch) can still tile exactly.
    """
    domain = set(_pow2_upto(min(limit, extent), choices))
    d = 1
    while d * d <= extent:
        if extent % d == 0:
            for f in (d, extent // d):
                if 1 <= f <= min(limit, extent):
                    domain.add(f)
        d += 1
    return sorted(domain)


# ---------------------------------------------------------------------------
# parameter spaces
# ---------------------------------------------------------------------------


def param_space(workload: Workload, max_dpus: int = 2048) -> Dict[str, List[int]]:
    """Tunable-parameter domains for a workload (paper Table 2)."""
    name = workload.name
    if name in ("va", "geva"):
        (n,) = workload.shape
        return {
            "n_dpus": _pow2_upto(min(max_dpus, n), DPU_CHOICES),
            "n_tasklets": TASKLET_CHOICES,
            "cache": CACHE_CHOICES,
            "unroll": [0, 1],
        }
    if name == "red":
        (n,) = workload.shape
        return {
            "n_dpus": _pow2_upto(min(max_dpus, n // 64), DPU_CHOICES),
            "n_tasklets": TASKLET_CHOICES,
            "cache": CACHE_CHOICES,
            "dpu_combine": [0, 1],
            "host_threads": HOST_THREAD_CHOICES,
            "unroll": [0, 1],
        }
    if name in ("mtv", "gemv"):
        m, k = workload.shape
        return {
            "m_dpus": _tile_domain(m, max_dpus, DPU_CHOICES),
            "k_dpus": _pow2_upto(min(64, k // 64), DPU_CHOICES),
            "n_tasklets": TASKLET_CHOICES,
            "cache": CACHE_CHOICES,
            "host_threads": HOST_THREAD_CHOICES,
            "unroll": [0, 1],
        }
    if name in ("ttv", "mmtv"):
        m, n, k = workload.shape
        return {
            "i_dpus": _tile_domain(m, max_dpus, DPU_CHOICES),
            "j_dpus": _tile_domain(n, max_dpus, DPU_CHOICES),
            "k_dpus": _pow2_upto(min(8, k // 64), DPU_CHOICES),
            "n_tasklets": TASKLET_CHOICES,
            "cache": CACHE_CHOICES,
            "host_threads": HOST_THREAD_CHOICES,
            "unroll": [0, 1],
        }
    raise KeyError(f"no sketch for workload {name!r}")


def subspace_of(workload_name: str, params: Dict[str, int]) -> str:
    """Design-space tag used by balanced sampling (§5.2.3).

    Candidates factoring the reduction across DPUs (``rfactor``) form one
    subspace; plain spatial-only distribution forms the other.
    """
    if params.get("k_dpus", 1) > 1 or params.get("dpu_combine") is not None:
        if params.get("k_dpus", 1) > 1:
            return "rfactor"
    return "plain"


# ---------------------------------------------------------------------------
# sketches
# ---------------------------------------------------------------------------


def generate_schedule(workload: Workload, params: Dict[str, int]) -> Schedule:
    """Instantiate the sketch for ``workload`` with concrete parameters."""
    builder = _SKETCHES.get(workload.name)
    if builder is None:
        raise KeyError(f"no sketch for workload {workload.name!r}")
    try:
        return builder(workload, params)
    except ScheduleError as exc:
        raise SketchError(str(exc)) from exc


def _sketch_elementwise(workload: Workload, p: Dict[str, int]) -> Schedule:
    out = workload.output
    sch = Schedule(out)
    s = sch[out]
    (i,) = s.op.axis
    i_dpu, rest = s.split(i, nparts=_clamp_parts(p["n_dpus"], i.extent))
    i_thr, r2 = s.split(rest, nparts=_clamp_parts(p["n_tasklets"], rest.extent))
    i_blk, i_in = s.split(r2, factor=p["cache"])
    s.reorder(i_dpu, i_thr, i_blk, i_in)
    if p.get("unroll"):
        s.unroll(i_in)
    s.bind(i_dpu, "blockIdx.x")
    s.bind(i_thr, "threadIdx.x")
    for inp in workload.inputs:
        sch.cache_read(out, inp, "wram").compute_at(s, i_blk)
    sch.cache_write(out, "wram").reverse_compute_at(s, i_blk)
    return sch


def _sketch_red(workload: Workload, p: Dict[str, int]) -> Schedule:
    out = workload.output
    sch = Schedule(out)
    s = sch[out]
    (k,) = s.op.reduce_axis
    k_dpu, k_rest = s.split(k, nparts=_clamp_parts(p["n_dpus"], k.extent))
    cf = sch.rfactor(out, k_dpu)  # per-DPU partials
    scf = sch[cf]
    (kr,) = scf.op.reduce_axis
    k_thr, k_rest2 = scf.split(kr, nparts=_clamp_parts(p["n_tasklets"], kr.extent))
    cf2 = sch.rfactor(cf, k_thr)  # per-tasklet partials
    s2 = sch[cf2]
    thr_ax, dpu_ax, i_ax = s2.op.axis
    (k_in,) = s2.op.reduce_axis
    k_blk, k_elem = s2.split(k_in, factor=p["cache"])
    s2.reorder(dpu_ax, thr_ax, i_ax, k_blk, k_elem)
    if p.get("unroll"):
        s2.unroll(k_elem)
    s2.bind(dpu_ax, "blockIdx.x")
    s2.bind(thr_ax, "threadIdx.x")
    sch.cache_read(cf2, workload.inputs[0], "wram").compute_at(s2, k_blk)
    sch.cache_write(cf2, "wram").reverse_compute_at(s2, thr_ax)
    # Tasklet partials are combined on the DPU (ATiM/SimplePIM style) or
    # shipped to the host (PrIM sends every tasklet's result).
    if p.get("dpu_combine", 1):
        s_cf = sch[cf]
        rf_dpu_ax = s_cf.op.axis[0]
        s_cf.bind(rf_dpu_ax, "blockIdx.x")
    # Host final reduction over per-DPU (or per-tasklet) partials.
    s_final = sch[out]
    (krf,) = s_final.op.reduce_axis
    ko, _ki = s_final.split(krf, nparts=p.get("host_threads", 1))
    s_final.parallel(ko)
    return sch


def _sketch_matvec(workload: Workload, p: Dict[str, int]) -> Schedule:
    out = workload.output
    sch = Schedule(out)
    s = sch[out]
    (i,) = s.op.axis
    (k,) = s.op.reduce_axis
    k_dpus = p.get("k_dpus", 1)

    if k_dpus > 1:
        k_dpu, _k_rest = s.split(k, nparts=k_dpus)
        cf = sch.rfactor(out, k_dpu)
        stage = sch[cf]
        kd_ax, i_ax = stage.op.axis
        (k_inner,) = stage.op.reduce_axis
        target = cf
    else:
        stage = s
        kd_ax = None
        i_ax = i
        k_inner = k
        target = out

    m_dpu, m_rest = stage.split(i_ax, nparts=_clamp_parts(p["m_dpus"], i_ax.extent))
    m_thr, m_in = stage.split(m_rest, nparts=_clamp_parts(p["n_tasklets"], m_rest.extent))
    k_blk, k_elem = stage.split(k_inner, factor=p["cache"])
    order = [m_dpu] + ([kd_ax] if kd_ax is not None else [])
    order += [m_thr, m_in, k_blk, k_elem]
    stage.reorder(*order)
    if p.get("unroll"):
        stage.unroll(k_elem)
    stage.bind(m_dpu, "blockIdx.x")
    if kd_ax is not None:
        stage.bind(kd_ax, "blockIdx.y")
    stage.bind(m_thr, "threadIdx.x")
    for inp in workload.inputs:
        sch.cache_read(target, inp, "wram").compute_at(stage, k_blk)
    sch.cache_write(target, "wram").reverse_compute_at(stage, m_thr)

    if k_dpus > 1:
        s_final = sch[out]
        (i_f,) = s_final.op.axis
        fo, _fi = s_final.split(i_f, nparts=p.get("host_threads", 1))
        s_final.parallel(fo)
    return sch


def _sketch_batched(workload: Workload, p: Dict[str, int]) -> Schedule:
    out = workload.output
    sch = Schedule(out)
    s = sch[out]
    i, j = s.op.axis
    (k,) = s.op.reduce_axis
    k_dpus = p.get("k_dpus", 1)

    if k_dpus > 1:
        k_dpu, _k_rest = s.split(k, nparts=k_dpus)
        cf = sch.rfactor(out, k_dpu)
        stage = sch[cf]
        kd_ax, i_ax, j_ax = stage.op.axis
        (k_inner,) = stage.op.reduce_axis
        target = cf
    else:
        stage = s
        kd_ax = None
        i_ax, j_ax = i, j
        k_inner = k
        target = out

    i_dpu, i_in = stage.split(i_ax, nparts=_clamp_parts(p["i_dpus"], i_ax.extent))
    j_dpu, j_rest = stage.split(j_ax, nparts=_clamp_parts(p["j_dpus"], j_ax.extent))
    j_thr, j_in = stage.split(j_rest, nparts=_clamp_parts(p["n_tasklets"], j_rest.extent))
    k_blk, k_elem = stage.split(k_inner, factor=p["cache"])
    order = [i_dpu, j_dpu] + ([kd_ax] if kd_ax is not None else [])
    order += [i_in, j_thr, j_in, k_blk, k_elem]
    stage.reorder(*order)
    if p.get("unroll"):
        stage.unroll(k_elem)
    stage.bind(i_dpu, "blockIdx.x")
    stage.bind(j_dpu, "blockIdx.y")
    if kd_ax is not None:
        stage.bind(kd_ax, "blockIdx.z")
    stage.bind(j_thr, "threadIdx.x")
    for inp in workload.inputs:
        sch.cache_read(target, inp, "wram").compute_at(stage, k_blk)
    sch.cache_write(target, "wram").reverse_compute_at(stage, j_thr)

    if k_dpus > 1:
        s_final = sch[out]
        i_f, _j_f = s_final.op.axis
        fo, _fi = s_final.split(i_f, nparts=p.get("host_threads", 1))
        s_final.parallel(fo)
    return sch


_SKETCHES: Dict[str, Callable[[Workload, Dict[str, int]], Schedule]] = {
    "va": _sketch_elementwise,
    "geva": _sketch_elementwise,
    "red": _sketch_red,
    "mtv": _sketch_matvec,
    "gemv": _sketch_matvec,
    "ttv": _sketch_batched,
    "mmtv": _sketch_batched,
}
