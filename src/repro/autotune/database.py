"""Tuning-record database (the "best candidate database" of Fig. 6).

Two layers:

* :class:`Database` — the in-memory store one search run works against,
  deduplicated on parameter key (the best latency wins), with
  ``save``/``load``/``merge`` for explicit persistence.
* :class:`TuningCache` — a persistent JSON-lines file holding records for
  *many* (workload, target, config) groups, addressed by the digest from
  :func:`repro.pipeline.tuning_key`.  Records are appended incrementally
  (one line per measured candidate), so an interrupted run leaves a
  readable prefix behind and a later run can warm-start from it.

On-disk format (version ``1``): the first line is a header ::

    {"format": "repro-tuning-db", "version": 1}

and every further line is one record ::

    {"key": "<tuning_key digest>", "params": {...}, "subspace": "plain",
     "latency": 1.2e-3, "features": [...] | null, "trial": 7, ...}

or an event line (no ``params``; skipped by record loads), e.g. the
``run_complete`` marker a finished search appends so later consumers can
tell a completed budget from the union of interrupted runs ::

    {"key": "<digest>", "event": "run_complete", "n_trials": 64, ...}

Versioning policy: the header version is bumped on any
backwards-incompatible change to the line payload *or* whenever the
meaning of stored latencies changes (the digest already folds in the
compiler's ``CACHE_SCHEMA_VERSION``, so performance-model changes retire
old groups without a format bump).  Readers refuse files with a newer
version than they understand and tolerate a torn trailing line (the
signature of a killed writer).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "TuningRecord",
    "Database",
    "TuningCache",
    "DatabaseFormatError",
    "DB_FORMAT",
    "DB_SCHEMA_VERSION",
]

#: Magic string identifying a tuning-database file.
DB_FORMAT = "repro-tuning-db"
#: Bump on backwards-incompatible record-payload changes (see module doc).
DB_SCHEMA_VERSION = 1


class DatabaseFormatError(RuntimeError):
    """The on-disk file is not a tuning database this reader understands."""


@dataclass
class TuningRecord:
    """One measured candidate."""

    params: Dict[str, int]
    subspace: str
    latency: float
    features: Optional[np.ndarray] = None
    trial: int = 0
    #: :class:`TuningCache` group digest the record was loaded from
    #: ("" for in-run records and standalone snapshots); not serialized
    #: here — the cache line's ``key`` field carries it.
    group: str = ""

    @property
    def key(self) -> Tuple:
        return tuple(sorted(self.params.items()))

    def to_json(self) -> Dict:
        """JSON-safe payload (features become a plain list).

        A non-empty ``group`` is emitted as the line's ``key`` field so
        a :meth:`Database.save` → :meth:`Database.load` round-trip of a
        multi-group database preserves group identity (``TuningCache``
        appends overwrite it with the group being written to).
        """
        payload = {
            "params": dict(self.params),
            "subspace": self.subspace,
            "latency": float(self.latency),
            "features": (
                None if self.features is None
                else [float(x) for x in self.features]
            ),
            "trial": int(self.trial),
        }
        if self.group:
            payload["key"] = self.group
        return payload

    @classmethod
    def from_json(cls, payload: Dict) -> "TuningRecord":
        features = payload.get("features")
        return cls(
            params={str(k): int(v) for k, v in payload["params"].items()},
            subspace=payload.get("subspace", "plain"),
            latency=float(payload["latency"]),
            features=(
                None if features is None
                else np.asarray(features, dtype=np.float64)
            ),
            trial=int(payload.get("trial", 0)),
            group=str(payload.get("key", "")),
        )


class Database:
    """Measured candidates, ordered queries by latency.

    Deduplicated on the parameter key within each record's ``group``
    (in-run records all share the empty group, so a search run dedupes
    on params alone): re-adding a present key keeps whichever record has
    the *lower* latency, so ``top_k`` never returns the same schedule
    twice (duplicate elites would bias mutation toward whatever happened
    to repeat) and ``_seen`` tracks the best-known latency rather than
    the last write.  Records loaded from different :class:`TuningCache`
    groups (distinct workloads/targets) never collapse into each other,
    even when their param dicts coincide.
    """

    def __init__(self) -> None:
        self._records: List[TuningRecord] = []
        #: (group, params-key) -> position in ``_records``; the dedupe
        #: source of truth ``add``/``contains`` operate on.
        self._index: Dict[Tuple, int] = {}
        #: params-key -> best latency seen across *all* groups.  Not
        #: consulted by the search (``_index`` is); kept as the
        #: best-known-latency view whose min-not-last-write semantics a
        #: regression pinned after the duplicate-elite bug.
        self._seen: Dict[Tuple, float] = {}

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: TuningRecord) -> bool:
        """Insert a record; returns whether the database changed.

        A duplicate (group, params) key only replaces the stored record
        when it improves on the known latency.
        """
        dkey = (record.group, record.key)
        pos = self._index.get(dkey)
        changed = False
        if pos is None:
            self._index[dkey] = len(self._records)
            self._records.append(record)
            changed = True
        elif record.latency < self._records[pos].latency:
            self._records[pos] = record
            changed = True
        prev = self._seen.get(record.key)
        if prev is None or record.latency < prev:
            self._seen[record.key] = record.latency
        return changed

    def contains(self, params: Dict[str, int], group: str = "") -> bool:
        """Whether (group, params) has a record — group-aware like
        :meth:`add`, so a multi-group load never shadows another group's
        identical params (in-run searches use the default "" group)."""
        return (group, tuple(sorted(params.items()))) in self._index

    def records(self) -> List[TuningRecord]:
        return list(self._records)

    def top_k(self, k: int, subspace: Optional[str] = None) -> List[TuningRecord]:
        pool = [
            r
            for r in self._records
            if subspace is None or r.subspace == subspace
        ]
        pool.sort(key=lambda r: r.latency)
        return pool[:k]

    def best(self) -> Optional[TuningRecord]:
        top = self.top_k(1)
        return top[0] if top else None

    def training_data(self) -> Tuple[np.ndarray, np.ndarray]:
        rows = [r for r in self._records if r.features is not None]
        if not rows:
            return np.zeros((0, 0)), np.zeros(0)
        X = np.stack([r.features for r in rows])
        y = np.array([r.latency for r in rows])
        return X, y

    # -- persistence --------------------------------------------------------
    def merge(self, other: "Database") -> int:
        """Fold another database in (best-latency-wins); returns the
        number of records that changed this database."""
        return sum(1 for record in other.records() if self.add(record))

    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write all records as a standalone versioned JSON-lines file."""
        with open(path, "w") as fh:
            fh.write(json.dumps(_header()) + "\n")
            for record in self._records:
                fh.write(json.dumps(record.to_json(), sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "Database":
        """Read a file written by :meth:`save` (or a :class:`TuningCache`
        file — every record loads, deduplicated within its own group, so
        coincidentally equal param dicts from different workloads/targets
        stay distinct; note ``top_k``/``best`` over such a mixed load
        compare latencies across workloads)."""
        db = cls()
        for payload in _read_records(path):
            if "params" in payload:  # skip event/meta lines
                db.add(TuningRecord.from_json(payload))
        return db


# ---------------------------------------------------------------------------
# file helpers shared by Database and TuningCache
# ---------------------------------------------------------------------------


def _header() -> Dict:
    return {"format": DB_FORMAT, "version": DB_SCHEMA_VERSION}


def _parse_header(
    path: Union[str, os.PathLike], line: str, torn: bool
) -> Optional[Dict]:
    """Validate a header line; the single source of format/version policy
    for both the reader and the append path.

    Returns ``None`` when the line is our own torn first write (a prefix
    of the canonical header with no newline — a writer killed during the
    very first append): an empty store, not a foreign file.  Anything
    else that fails validation raises :class:`DatabaseFormatError`.
    """
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        if torn and json.dumps(_header()).startswith(line):
            return None
        raise DatabaseFormatError(f"{path}: unreadable header: {exc}") from None
    if not isinstance(header, dict) or header.get("format") != DB_FORMAT:
        raise DatabaseFormatError(f"{path}: not a {DB_FORMAT} file")
    version = header.get("version")
    if not isinstance(version, int) or version > DB_SCHEMA_VERSION:
        raise DatabaseFormatError(
            f"{path}: version {version!r} is newer than supported"
            f" ({DB_SCHEMA_VERSION}); refusing to guess at its payload"
        )
    return header


def _read_records(path: Union[str, os.PathLike]) -> Iterable[Dict]:
    """Yield record payloads, validating the header.

    A torn trailing line (killed writer — the file does not end in a
    newline) is skipped silently; a torn or wrong header, or a corrupt
    *complete* line anywhere, is a hard error — better to refuse than to
    warm-start from damaged or foreign data.
    """
    with open(path) as fh:
        text = fh.read()
    lines = text.splitlines()
    if not lines:
        return
    torn_tail = not text.endswith("\n")
    if _parse_header(path, lines[0], torn_tail and len(lines) == 1) is None:
        return
    for i, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) and torn_tail:
                continue  # torn final line from a killed writer
            raise DatabaseFormatError(f"{path}: corrupt record at line {i}")
        if not isinstance(payload, dict):
            # Valid JSON but not a record object (a stray `42`, an
            # array): damage, and never a torn-write artifact — no
            # prefix of an object line parses as complete non-dict JSON.
            raise DatabaseFormatError(f"{path}: corrupt record at line {i}")
        yield payload


class TuningCache:
    """Persistent multi-run tuning store: one JSON-lines file, records
    grouped by :func:`repro.pipeline.tuning_key` digests.

    ``append`` is the incremental write path the tuner uses after every
    measured batch: the file is opened, extended with a single write,
    flushed and closed, so a killed run loses at most its in-flight
    batch.  ``load``/``best`` read the whole file each call — tuning
    databases are thousands of records, not millions, and re-reading
    keeps later appends visible to long-lived readers.

    The store assumes **one writer at a time** (readers are always
    safe): the torn-tail heal in ``_append_lines`` cannot tell a dead
    writer's fragment from a live writer's in-flight batch.  Point
    concurrent sweeps at separate files and fold them together with
    :meth:`Database.merge`.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)

    @classmethod
    def ensure(cls, spec: Union[str, os.PathLike, "TuningCache"]) -> "TuningCache":
        """Pass instances through; treat anything else as a path."""
        return spec if isinstance(spec, TuningCache) else cls(spec)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def keys(self) -> List[str]:
        """Group digests present in the store, sorted."""
        if not self.exists():
            return []
        return sorted({p["key"] for p in _read_records(self.path) if "key" in p})

    def load(self, key: Optional[str] = None) -> Database:
        """Records for one group digest (or every record when ``key`` is
        None) as a deduplicated :class:`Database`."""
        db = Database()
        if not self.exists():
            return db
        for payload in _read_records(self.path):
            if key is not None and payload.get("key") != key:
                continue
            if "params" in payload:  # skip event/meta lines
                db.add(TuningRecord.from_json(payload))
        return db

    def best(self, key: str) -> Optional[TuningRecord]:
        """Best-known record for a group, or ``None``."""
        return self.group_summary(key)[0]

    def group_summary(self, key: str) -> Tuple[Optional[TuningRecord], int]:
        """(best record, largest completed budget) of a group — one file
        scan, no :class:`Database` construction; the lookup fast paths
        (``tuned=True``) stay O(file) even for huge stores."""
        best: Optional[TuningRecord] = None
        completed = 0
        if not self.exists():
            return None, 0
        for payload in _read_records(self.path):
            if payload.get("key") != key:
                continue
            if payload.get("event") == "run_complete":
                completed = max(completed, int(payload.get("n_trials", 0)))
            elif "params" in payload:
                record = TuningRecord.from_json(payload)
                if best is None or record.latency < best.latency:
                    best = record
        return best, completed

    def append(
        self,
        key: str,
        records: Sequence[TuningRecord],
        meta: Optional[Dict] = None,
    ) -> None:
        """Append records to a group (creating the file + header first).

        ``meta`` (e.g. workload name / target kind) is merged into each
        line for human readability; readers ignore unknown fields.
        """
        if not records:
            return
        lines = []
        for record in records:
            payload = dict(meta or {})
            payload.update(record.to_json())
            payload["key"] = key
            lines.append(payload)
        self._append_lines(lines)

    def mark_complete(
        self, key: str, n_trials: int, meta: Optional[Dict] = None
    ) -> None:
        """Record that a search over this group ran to completion.

        Written as an ``event`` line (skipped by record loads); consumers
        like ``tuned=True`` use :meth:`completed_trials` to decide
        whether a stored group already covers a requested search budget —
        record *count* alone cannot tell a finished run from the union
        of several interrupted or differently-seeded ones.
        """
        payload = dict(meta or {})
        payload.update(
            {"event": "run_complete", "key": key, "n_trials": int(n_trials)}
        )
        self._append_lines([payload])

    def completed_trials(self, key: str) -> int:
        """Largest completed-run trial budget recorded for a group."""
        return self.group_summary(key)[1]

    def _append_lines(self, payloads: Sequence[Dict]) -> None:
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._check_writable()
        if self.exists():
            # Heal a torn trailing line (killed mid-write): drop the
            # partial fragment so the next record starts on its own line
            # instead of gluing onto it — which would silently lose the
            # record now and poison every later load once more lines
            # push the glued fragment into the file's interior.  The
            # common case costs one seek + one byte; only an actual torn
            # tail rescans for the last intact line.
            with open(self.path, "rb+") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() > 0:
                    fh.seek(-1, os.SEEK_END)
                    if fh.read(1) != b"\n":
                        fh.seek(0)
                        data = fh.read()
                        fh.seek(data.rfind(b"\n") + 1)
                        fh.truncate()
        fresh = not self.exists() or os.path.getsize(self.path) == 0
        lines = [json.dumps(_header())] if fresh else []
        lines.extend(json.dumps(p, sort_keys=True) for p in payloads)
        # One write call per batch, so a kill leaves at most one torn
        # tail rather than interleaved half-batches.
        with open(self.path, "a") as fh:
            fh.write("\n".join(lines) + "\n")
            fh.flush()

    def _check_writable(self) -> None:
        """Refuse to touch a pre-existing file that is not ours.

        The torn-tail heal truncates, so appending to an arbitrary
        ``--db`` path (a notes file, a BENCH dump) must fail *before*
        damaging it, not on the next load.  A torn first write (a prefix
        of our own header, no newline) is still ours and stays writable.
        """
        if not self.exists() or os.path.getsize(self.path) == 0:
            return
        with open(self.path, "rb") as fh:
            # Capped read: the canonical header is ~45 bytes; a foreign
            # newline-less blob must not be slurped whole just to be
            # rejected (a capped fragment can never satisfy the
            # header-prefix tolerance, so it still raises).
            first = fh.readline(4096).decode("utf-8", errors="replace")
        # A None return (our own killed first write) is writable: the
        # heal resets the fragment and a fresh header is written.
        _parse_header(
            self.path, first.rstrip("\n"), torn=not first.endswith("\n")
        )
