"""Tuning-record database (the "best candidate database" of Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["TuningRecord", "Database"]


@dataclass
class TuningRecord:
    """One measured candidate."""

    params: Dict[str, int]
    subspace: str
    latency: float
    features: Optional[np.ndarray] = None
    trial: int = 0

    @property
    def key(self) -> Tuple:
        return tuple(sorted(self.params.items()))


class Database:
    """Measured candidates, ordered queries by latency."""

    def __init__(self) -> None:
        self._records: List[TuningRecord] = []
        self._seen: Dict[Tuple, float] = {}

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: TuningRecord) -> None:
        self._records.append(record)
        self._seen[record.key] = record.latency

    def contains(self, params: Dict[str, int]) -> bool:
        return tuple(sorted(params.items())) in self._seen

    def records(self) -> List[TuningRecord]:
        return list(self._records)

    def top_k(self, k: int, subspace: Optional[str] = None) -> List[TuningRecord]:
        pool = [
            r
            for r in self._records
            if subspace is None or r.subspace == subspace
        ]
        pool.sort(key=lambda r: r.latency)
        return pool[:k]

    def best(self) -> Optional[TuningRecord]:
        top = self.top_k(1)
        return top[0] if top else None

    def training_data(self) -> Tuple[np.ndarray, np.ndarray]:
        rows = [r for r in self._records if r.features is not None]
        if not rows:
            return np.zeros((0, 0)), np.zeros(0)
        X = np.stack([r.features for r in rows])
        y = np.array([r.latency for r in rows])
        return X, y
