"""Candidate compilation through the unified pipeline, with caching.

:class:`CompileEngine` is the single path from a (workload, params) pair
to a verified :class:`~repro.pipeline.CompiledArtifact`: sketch →
``build`` pipeline (lower + §5.3 passes) → lazy constraint verification
on first checked use, memoized in a content-addressed
:class:`~repro.pipeline.ArtifactCache`.
The tuner owns a private engine (so its hit-rate accounting is per-run);
:func:`compile_params` and the experiment harness share a process-wide
default engine, so re-profiling the same candidate across figures is
free.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..lowering import LoweredModule, LoweringError
from ..pipeline import (
    ArtifactCache,
    CompiledArtifact,
    PassContext,
    artifact_key,
    get_pipeline,
)
from ..schedule import ScheduleError
from ..upmem.config import DEFAULT_CONFIG, UpmemConfig
from ..workloads import Workload
from .sketch import SketchError, generate_schedule
from .verifier import verify

__all__ = ["CompileEngine", "compile_params", "default_engine"]


class CompileEngine:
    """Compiles tuning candidates via a named pipeline, cache-first.

    One engine wraps one :class:`ArtifactCache`; every compile outcome —
    including sketch/lowering rejections and verification verdicts — is
    cached, so repeated candidates cost one dictionary lookup.
    """

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        pipeline: str = "build",
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        self.pipeline = pipeline

    # -- cache accounting ---------------------------------------------------
    @property
    def stats(self):
        return self.cache.stats

    def compile(
        self,
        workload: Workload,
        params: Dict[str, int],
        optimize: str = "O3",
        config: Optional[UpmemConfig] = None,
        check: bool = True,
        target: object = None,
    ) -> CompiledArtifact:
        """Sketch → lower → optimize (→ verify); always returns an artifact.

        Check ``artifact.ok`` (and ``artifact.verified`` when ``check``)
        before using ``artifact.module``.  ``target`` (a
        :class:`repro.target.Target`, when compiling on behalf of one)
        contributes its ``cache_token()`` to the cache key: ``None`` for
        targets whose compilation the key already fully describes (they
        share artifacts with equivalent compiles), a stable token for
        targets that alter compilation beyond the standard knobs.

        **Immutability contract:** cache hits return the *shared* cached
        ``LoweredModule`` — callers must treat it as read-only (executing
        and profiling are fine; mutating attributes would corrupt every
        later caller hitting the same key).  Use
        ``dataclasses.replace(module, ...)`` to derive a variant.
        """
        # Normalize so config=None and an explicit DEFAULT_CONFIG share
        # one cache entry (callers spell the default both ways).
        config = config if config is not None else DEFAULT_CONFIG
        key = artifact_key(
            workload,
            params,
            config,
            opt_level=optimize,
            pipeline=self.pipeline,
            target=target,
        )
        from ..obs import current_tracer

        tracer = current_tracer()
        artifact = self.cache.get(key)
        if tracer.enabled:
            tracer.instant(
                f"artifact-cache {'miss' if artifact is None else 'hit'}",
                track="pipeline",
                cat="compile",
                args={
                    "workload": workload.name,
                    "opt_level": optimize,
                    "key": key[:12],
                },
            )
            tracer.metrics.counter("compile.cache").inc(
                labels={
                    "outcome": "miss" if artifact is None else "hit",
                    "workload": workload.name,
                }
            )
        if artifact is None:
            artifact = self.cache.put(
                self._compile(key, workload, params, optimize, config)
            )
        if check and artifact.ok and artifact.verified is None:
            artifact.verified, artifact.verify_reason = verify(
                artifact.module, config
            )
            # Re-put so a disk tier persists the verdict too.
            self.cache.put(artifact)
        return artifact

    def _compile(
        self,
        key: str,
        workload: Workload,
        params: Dict[str, int],
        optimize: str,
        config: Optional[UpmemConfig],
    ) -> CompiledArtifact:
        ctx = PassContext(
            config=config, opt_level=optimize, module_name=workload.name
        )
        try:
            schedule = generate_schedule(workload, params)
            module = get_pipeline(self.pipeline).run(schedule, ctx)
        except (SketchError, ScheduleError, LoweringError) as exc:
            return CompiledArtifact(
                key,
                None,
                error=f"{type(exc).__name__}: {exc}",
                opt_level=optimize,
                pipeline=self.pipeline,
                timings=list(ctx.timings),
            )
        module.const_inputs = frozenset(workload.const_inputs)
        # The default "build" pipeline has no VerifyPass, leaving
        # ``verified`` as None for compile() to fill lazily; a custom
        # pipeline that does verify (e.g. "autotune") pre-seeds the
        # verdict here.  Note such in-pipeline verification sees the
        # module before ``const_inputs`` is set — irrelevant to the
        # current verifier, which only reads capacity/grid structure.
        return CompiledArtifact(
            key,
            module,
            opt_level=optimize,
            pipeline=self.pipeline,
            verified=ctx.attrs.get("verify_ok"),
            verify_reason=ctx.attrs.get("verify_reason", ""),
            timings=list(ctx.timings),
        )


#: Process-wide engine shared by ``compile_params`` and the harness.
_DEFAULT_ENGINE = CompileEngine()


def default_engine() -> CompileEngine:
    """The shared process-wide compile engine (and its cache)."""
    return _DEFAULT_ENGINE


def compile_params(
    workload: Workload,
    params: Dict[str, int],
    optimize: str = "O3",
    config: Optional[UpmemConfig] = None,
    check: bool = True,
) -> Optional[LoweredModule]:
    """Sketch → lower → optimize → verify; ``None`` if invalid.

    Backwards-compatible façade over :func:`default_engine`.  The
    returned module may be shared with other callers via the cache —
    treat it as read-only (see :meth:`CompileEngine.compile`).
    """
    artifact = _DEFAULT_ENGINE.compile(
        workload, params, optimize=optimize, config=config, check=check
    )
    if not artifact.ok:
        return None
    if check and not artifact.verified:
        return None
    return artifact.module
