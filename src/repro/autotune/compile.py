"""Helper: compile a (workload, params) pair into a verified module."""

from __future__ import annotations

from typing import Dict, Optional

from ..lowering import LoweredModule, LowerOptions, LoweringError, lower
from ..optim import optimize_module
from ..schedule import ScheduleError
from ..upmem.config import UpmemConfig
from ..workloads import Workload
from .sketch import SketchError, generate_schedule
from .verifier import verify

__all__ = ["compile_params"]


def compile_params(
    workload: Workload,
    params: Dict[str, int],
    optimize: str = "O3",
    config: Optional[UpmemConfig] = None,
    check: bool = True,
) -> Optional[LoweredModule]:
    """Sketch → lower → optimize → verify; ``None`` if invalid."""
    try:
        schedule = generate_schedule(workload, params)
        module = lower(
            schedule,
            name=workload.name,
            options=LowerOptions(optimize=optimize),
        )
    except (SketchError, ScheduleError, LoweringError):
        return None
    module = optimize_module(module, optimize)
    module.const_inputs = frozenset(workload.const_inputs)
    if check:
        ok, _ = verify(module, config)
        if not ok:
            return None
    return module
