"""UPMEM constraint verifier (paper §5.2.4).

Filters schedule candidates that violate hardware limits before they are
"measured", keeping the evolutionary search efficient: DPU count, tasklet
count, WRAM capacity (including per-tasklet private caches), MRAM tile
capacity, and IRAM size via a static instruction estimate.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..lowering import LoweredModule
from ..tir import (
    BufferStore,
    DmaCopy,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    SeqStmt,
    Stmt,
)
from ..upmem.config import DEFAULT_CONFIG, UpmemConfig

__all__ = ["verify", "VerifyResult"]


VerifyResult = Tuple[bool, str]


def verify(module: LoweredModule, config: Optional[UpmemConfig] = None) -> VerifyResult:
    """Check a lowered module against UPMEM constraints.

    Returns ``(ok, reason)``; ``reason`` names the violated constraint.
    """
    cfg = config or DEFAULT_CONFIG
    n_dpus = module.n_dpus
    if n_dpus < 1:
        return False, "empty DPU grid"
    if n_dpus > cfg.n_dpus:
        return False, f"grid needs {n_dpus} DPUs > {cfg.n_dpus} available"
    if module.n_tasklets < 1 or module.n_tasklets > cfg.max_tasklets:
        return False, (
            f"{module.n_tasklets} tasklets outside 1..{cfg.max_tasklets}"
        )
    wram = module.wram_bytes_per_dpu()
    if wram > cfg.wram_bytes:
        return False, f"WRAM footprint {wram} B > {cfg.wram_bytes} B"
    mram = sum(t.tile_bytes for t in module.transfers) + sum(
        b.nbytes for b in module.mram_internal
    )
    if mram > cfg.mram_bytes:
        return False, f"MRAM footprint {mram} B > {cfg.mram_bytes} B"
    static_instrs = _static_instructions(module.kernel)
    if static_instrs > cfg.iram_instructions:
        return False, (
            f"~{static_instrs} static instructions exceed IRAM"
            f" ({cfg.iram_instructions})"
        )
    return True, "ok"


def _static_instructions(stmt: Stmt) -> int:
    """Rough static code-size estimate (unrolled loops replicate bodies)."""
    if isinstance(stmt, SeqStmt):
        return sum(_static_instructions(s) for s in stmt.stmts)
    if isinstance(stmt, For):
        body = _static_instructions(stmt.body)
        if stmt.kind is ForKind.UNROLLED:
            try:
                extent = stmt.extent.value  # type: ignore[attr-defined]
            except AttributeError:
                extent = 8
            return body * extent + 2
        return body + 4
    if isinstance(stmt, IfThenElse):
        total = 3 + _static_instructions(stmt.then_case)
        if stmt.else_case is not None:
            total += _static_instructions(stmt.else_case)
        return total
    if isinstance(stmt, BufferStore):
        return 4
    if isinstance(stmt, (DmaCopy, Evaluate)):
        return 4
    return 1
