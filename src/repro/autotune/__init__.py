"""Autotuning: sketches, verifier, cost model, balanced evolutionary search."""

from .compile import CompileEngine, compile_params, default_engine
from .cost_model import CostModel
from .database import Database, TuningRecord
from .features import FEATURE_NAMES, extract_features
from .sketch import (
    SketchError,
    generate_schedule,
    param_space,
    subspace_of,
)
from .tuner import Candidate, TuneResult, Tuner, autotune, seed_params
from .verifier import verify

__all__ = [
    "autotune",
    "CompileEngine",
    "compile_params",
    "default_engine",
    "Tuner",
    "TuneResult",
    "Candidate",
    "Database",
    "TuningRecord",
    "CostModel",
    "extract_features",
    "FEATURE_NAMES",
    "generate_schedule",
    "seed_params",
    "param_space",
    "subspace_of",
    "SketchError",
    "verify",
]
