"""Autotuning: sketches, verifier, cost model, balanced evolutionary search."""

from .compile import CompileEngine, compile_params, default_engine
from .cost_model import CostModel
from .database import (
    DB_SCHEMA_VERSION,
    Database,
    DatabaseFormatError,
    TuningCache,
    TuningRecord,
)
from .features import FEATURE_NAMES, extract_features
from .sketch import (
    SketchError,
    generate_schedule,
    param_space,
    subspace_of,
)
from .tuner import (
    Candidate,
    TuneResult,
    Tuner,
    autotune,
    measure_stats,
    seed_params,
    tuned_params,
)
from .verifier import verify

__all__ = [
    "autotune",
    "tuned_params",
    "measure_stats",
    "CompileEngine",
    "compile_params",
    "default_engine",
    "Tuner",
    "TuneResult",
    "Candidate",
    "Database",
    "TuningCache",
    "TuningRecord",
    "DatabaseFormatError",
    "DB_SCHEMA_VERSION",
    "CostModel",
    "extract_features",
    "FEATURE_NAMES",
    "generate_schedule",
    "seed_params",
    "param_space",
    "subspace_of",
    "SketchError",
    "verify",
]
