"""Schedule features for the learned cost model.

Features are static properties of the lowered module plus a one-DPU
instruction sketch — much cheaper than a full-system profile, mirroring
the role of feature extraction in TVM's cost model.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..lowering import LoweredModule
from ..tir import Interval
from ..upmem.analyzer import KernelAnalyzer, Mixed
from ..upmem.config import DEFAULT_CONFIG, UpmemConfig

__all__ = ["extract_features", "FEATURE_NAMES"]

FEATURE_NAMES = [
    "log_n_dpus",
    "n_tasklets",
    "log_wram_bytes",
    "log_h2d_bytes",
    "log_d2h_bytes",
    "log_h2d_pushes",
    "log_d2h_pushes",
    "log_slots_per_dpu",
    "log_branches_per_dpu",
    "log_dma_calls_per_dpu",
    "log_dma_bytes_per_dpu",
    "barriers",
    "has_host_post",
    "host_parallel",
    "grid_dims",
    "log_tile_bytes",
]


def _log1p(x: float) -> float:
    return math.log1p(max(0.0, x))


def extract_features(
    module: LoweredModule, config: UpmemConfig = DEFAULT_CONFIG
) -> np.ndarray:
    """Extract the feature vector for one lowered module."""
    h2d = module.transfer("h2d")
    d2h = module.transfer("d2h")
    n_dpus = module.n_dpus
    h2d_bytes = sum(t.tile_bytes for t in h2d) * n_dpus
    d2h_bytes = sum(t.tile_bytes for t in d2h) * n_dpus
    h2d_pushes = sum(t.tile_elems // t.shape[-1] for t in h2d)
    d2h_pushes = sum(t.tile_elems // t.shape[-1] for t in d2h)
    tile_bytes = sum(t.tile_bytes for t in module.transfers)

    analyzer = KernelAnalyzer(config)
    env = {dim.var: Interval.point(0) for dim in module.grid}
    try:
        cost = analyzer.dpu_cost(module.kernel, env)
        slots = cost.total.slots
        branches = cost.total.branches
        dma_calls = cost.total.dma_calls
        dma_bytes = cost.total.dma_bytes
        barriers = cost.total.barriers
    except Mixed:  # pragma: no cover - grid var 0 is always a point
        slots = branches = dma_calls = dma_bytes = barriers = 0.0

    return np.array(
        [
            _log1p(n_dpus),
            float(module.n_tasklets),
            _log1p(module.wram_bytes_per_dpu()),
            _log1p(h2d_bytes),
            _log1p(d2h_bytes),
            _log1p(h2d_pushes),
            _log1p(d2h_pushes),
            _log1p(slots),
            _log1p(branches),
            _log1p(dma_calls),
            _log1p(dma_bytes),
            float(barriers > 0),
            float(bool(module.host_post)),
            float(module.host_parallel_threads),
            float(len(module.grid)),
            _log1p(tile_bytes),
        ],
        dtype=np.float64,
    )
