"""Learned cost model guiding the evolutionary search.

The paper uses TVM's XGBoost ranker; offline we use ridge regression on
log-latency over the features of :mod:`repro.autotune.features`.  Any
rank-accurate regressor suffices — the search only uses predicted order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["CostModel"]


class CostModel:
    """Ridge regression on standardized features predicting log latency."""

    def __init__(self, l2: float = 1.0) -> None:
        self.l2 = l2
        self._weights: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._y_mean: float = 0.0

    @property
    def trained(self) -> bool:
        return self._weights is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Fit on measured latencies (seconds)."""
        if len(y) < 4:
            return
        logy = np.log(np.maximum(y, 1e-12))
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std < 1e-9] = 1.0
        Z = (X - self._mean) / self._std
        self._y_mean = float(logy.mean())
        n_features = Z.shape[1]
        gram = Z.T @ Z + self.l2 * np.eye(n_features)
        self._weights = np.linalg.solve(gram, Z.T @ (logy - self._y_mean))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted log latency; lower is better.

        Untrained models return zeros (uninformative — the search then
        behaves like random sampling, as in early TVM rounds).
        """
        if not self.trained or X.size == 0:
            return np.zeros(len(X))
        Z = (X - self._mean) / self._std
        return Z @ self._weights + self._y_mean

    def rank_error(self, X: np.ndarray, y: np.ndarray) -> float:
        """Fraction of discordant pairs on held data (diagnostic)."""
        if not self.trained or len(y) < 2:
            return 0.5
        pred = self.predict(X)
        order_true = np.argsort(y)
        order_pred = np.argsort(pred)
        rank_true = np.empty(len(y))
        rank_pred = np.empty(len(y))
        rank_true[order_true] = np.arange(len(y))
        rank_pred[order_pred] = np.arange(len(y))
        n = len(y)
        discordant = 0
        total = 0
        for i in range(n):
            for j in range(i + 1, n):
                total += 1
                if (rank_true[i] - rank_true[j]) * (
                    rank_pred[i] - rank_pred[j]
                ) < 0:
                    discordant += 1
        return discordant / max(1, total)
