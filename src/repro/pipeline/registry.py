"""Named pipeline registry.

Pipelines are registered as *factories* returning a fresh
:class:`PassManager`, so callers may freely insert/remove/reorder passes
on the instance they get without corrupting the registry.  Backend
extensions (e.g. ``repro.extensions.hbm_pim``) register target-specific
pipelines here instead of monkey-patching the compile flow.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .core import PassManager, PipelineError
from .passes import EmitSourcePass, LowerSchedulePass, VerifyPass, kernel_passes

__all__ = [
    "register_pipeline",
    "get_pipeline",
    "has_pipeline",
    "list_pipelines",
]

_PIPELINES: Dict[str, Callable[[], PassManager]] = {}


def register_pipeline(
    name: str, factory: Callable[[], PassManager], overwrite: bool = False
) -> None:
    """Register ``factory`` under ``name``; refuses silent clobbering."""
    if name in _PIPELINES and not overwrite:
        raise PipelineError(f"pipeline {name!r} is already registered")
    _PIPELINES[name] = factory


def get_pipeline(name: str) -> PassManager:
    """A fresh :class:`PassManager` instance for a registered pipeline."""
    try:
        factory = _PIPELINES[name]
    except KeyError:
        raise PipelineError(
            f"unknown pipeline {name!r}; registered: {sorted(_PIPELINES)}"
        ) from None
    return factory()


def has_pipeline(name: str) -> bool:
    return name in _PIPELINES


def list_pipelines() -> List[str]:
    return sorted(_PIPELINES)


# -- built-in pipelines ------------------------------------------------------


def _optimize_pipeline() -> PassManager:
    """The §5.3 kernel passes, gated by the context's opt level."""
    return PassManager(kernel_passes(), name="optimize")


def _build_pipeline() -> PassManager:
    """Full compile: lowering then PIM-aware kernel optimization."""
    return PassManager([LowerSchedulePass(), *kernel_passes()], name="build")


def _autotune_pipeline() -> PassManager:
    """Compile plus non-strict hardware-constraint verification."""
    return PassManager(
        [LowerSchedulePass(), *kernel_passes(), VerifyPass()], name="autotune"
    )


def _emit_pipeline() -> PassManager:
    """Compile and additionally render UPMEM-C into ``ctx.attrs``."""
    return PassManager(
        [LowerSchedulePass(), *kernel_passes(), EmitSourcePass()], name="emit"
    )


register_pipeline("optimize", _optimize_pipeline)
register_pipeline("build", _build_pipeline)
register_pipeline("autotune", _autotune_pipeline)
register_pipeline("emit", _emit_pipeline)
