"""Pass infrastructure: ``Pass``, ``PassContext``, ``PassManager``.

The compile flow (schedule → loop TIR → boundary checks → §5.3 passes →
host/kernel split → emission) used to be hard-wired into four call sites.
This module makes it a first-class object, in the spirit of TVM's pass
pipeline: a *pass* is a named transformation over a compile object (a
``Schedule``, a ``LoweredModule`` or a bare kernel ``Stmt``), a
*PassContext* carries target configuration, the optimization level and
observability hooks, and a *PassManager* composes passes into a named,
reorderable pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "OPT_LEVELS",
    "Pass",
    "FunctionPass",
    "PassContext",
    "PassInstrument",
    "PassManager",
    "PassTiming",
    "PipelineError",
]

#: PIM-aware optimization levels, paper §5.3 — the canonical definition
#: (``optim.LEVELS`` is an alias of this tuple).
OPT_LEVELS = ("O0", "O1", "O2", "O3")


class PipelineError(RuntimeError):
    """A pipeline was misconfigured or a pass misbehaved."""


class PassInstrument:
    """Observability hook invoked around every executed pass.

    Subclass and override either method; instruments are registered on a
    :class:`PassContext` and fire for every pass a ``PassManager`` runs
    under that context.
    """

    def run_before_pass(self, pass_name: str, obj: Any, ctx: "PassContext") -> None:
        """Called immediately before a pass runs."""

    def run_after_pass(self, pass_name: str, obj: Any, ctx: "PassContext") -> None:
        """Called immediately after a pass returns (``obj`` is its output)."""


@dataclass
class PassTiming:
    """Wall-clock record of one pass execution (or gate skip)."""

    name: str
    seconds: float
    skipped: bool = False


@dataclass
class PassContext:
    """Shared state threaded through every pass of a pipeline run.

    ``attrs`` is a scratch dictionary passes use to publish side outputs
    (emitted source, verification results, backend estimates) without
    widening the module type.
    """

    #: Target hardware description (``UpmemConfig``); ``None`` = default.
    config: Any = None
    opt_level: str = "O3"
    #: Lowering knobs (``LowerOptions``); defaulted from ``opt_level``.
    options: Any = None
    module_name: str = "main"
    instruments: List[PassInstrument] = field(default_factory=list)
    #: Record a printable IR snapshot after every pass.
    dump_ir: bool = False
    timings: List[PassTiming] = field(default_factory=list)
    ir_dumps: List[Tuple[str, str]] = field(default_factory=list)
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.opt_level not in OPT_LEVELS:
            raise ValueError(f"opt_level must be one of {OPT_LEVELS}")
        if self.options is None:
            from ..lowering import LowerOptions

            self.options = LowerOptions(optimize=self.opt_level)

    # -- ambient context ----------------------------------------------------
    _CURRENT: ClassVar[List["PassContext"]] = []

    def __enter__(self) -> "PassContext":
        PassContext._CURRENT.append(self)
        return self

    def __exit__(self, *exc) -> None:
        PassContext._CURRENT.pop()

    @classmethod
    def current(cls) -> Optional["PassContext"]:
        """Innermost active context, or ``None`` outside any ``with`` block."""
        return cls._CURRENT[-1] if cls._CURRENT else None

    # -- reporting ----------------------------------------------------------
    def timing_report(self) -> str:
        """One line per pass: name, milliseconds, gate status."""
        lines = []
        for t in self.timings:
            status = "skipped" if t.skipped else f"{t.seconds * 1e3:8.3f} ms"
            lines.append(f"{t.name:<32} {status}")
        return "\n".join(lines)


class Pass:
    """One named transformation in a compile pipeline.

    Subclasses implement :meth:`run`; ``min_level`` gates the pass on the
    context's optimization level (a pass below the level is recorded as
    skipped, preserving O0–O3 semantics under a single pipeline).
    """

    name: str = "pass"
    min_level: str = "O0"

    def enabled(self, ctx: PassContext) -> bool:
        return OPT_LEVELS.index(ctx.opt_level) >= OPT_LEVELS.index(self.min_level)

    def run(self, obj: Any, ctx: PassContext) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} min_level={self.min_level}>"


class FunctionPass(Pass):
    """Adapt a plain ``obj -> obj`` callable into a :class:`Pass`."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        name: Optional[str] = None,
        min_level: str = "O0",
    ) -> None:
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "function_pass")
        self.min_level = min_level

    def run(self, obj: Any, ctx: PassContext) -> Any:
        return self.fn(obj)


def _snapshot(obj: Any) -> str:
    """Best-effort printable IR for ``dump_ir``."""
    from ..tir import Stmt, stmt_to_str

    kernel = getattr(obj, "kernel", None)
    if isinstance(kernel, Stmt):
        return stmt_to_str(kernel)
    if isinstance(obj, Stmt):
        return stmt_to_str(obj)
    return repr(obj)


class PassManager:
    """An ordered, named, reorderable sequence of passes.

    ``run`` threads a compile object through every enabled pass, firing
    the context's instruments and recording per-pass wall-clock (and IR
    snapshots when ``ctx.dump_ir``).  The pass list is mutable so callers
    and backend extensions can insert, remove or reorder stages.
    """

    def __init__(self, passes: Sequence[Pass] = (), name: str = "pipeline") -> None:
        self.name = name
        self.passes: List[Pass] = list(passes)

    # -- composition --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.passes)

    def __iter__(self):
        return iter(self.passes)

    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]

    def index(self, name: str) -> int:
        for i, p in enumerate(self.passes):
            if p.name == name:
                return i
        raise KeyError(f"pipeline {self.name!r} has no pass named {name!r}")

    def append(self, p: Pass) -> "PassManager":
        self.passes.append(p)
        return self

    def insert_before(self, name: str, p: Pass) -> "PassManager":
        self.passes.insert(self.index(name), p)
        return self

    def insert_after(self, name: str, p: Pass) -> "PassManager":
        self.passes.insert(self.index(name) + 1, p)
        return self

    def remove(self, name: str) -> Pass:
        return self.passes.pop(self.index(name))

    def reorder(self, names: Sequence[str]) -> "PassManager":
        """Rearrange into the given complete order of pass names."""
        if sorted(names) != sorted(self.pass_names()):
            raise PipelineError(
                f"reorder of {self.name!r} must mention each pass exactly"
                f" once (got {list(names)}, have {self.pass_names()})"
            )
        by_name = {p.name: p for p in self.passes}
        self.passes = [by_name[n] for n in names]
        return self

    # -- execution ----------------------------------------------------------
    def run(self, obj: Any, ctx: Optional[PassContext] = None) -> Any:
        from ..obs import current_tracer

        tracer = current_tracer()
        ctx = ctx or PassContext.current() or PassContext()
        with ctx:
            # Compilation is host work: passes occupy zero virtual time,
            # so the trace records order/structure (plus wall_ms when the
            # tracer opts into wall-clock capture), not fake durations.
            pipeline_span = (
                tracer.span(
                    f"pipeline {self.name}",
                    track="pipeline",
                    cat="compile",
                    args={"pipeline": self.name, "module": ctx.module_name},
                )
                if tracer.enabled
                else None
            )
            if pipeline_span is not None:
                pipeline_span.__enter__()
            try:
                for p in self.passes:
                    if not p.enabled(ctx):
                        ctx.timings.append(PassTiming(p.name, 0.0, skipped=True))
                        if tracer.enabled:
                            tracer.instant(
                                f"skip {p.name}", track="pipeline", cat="compile"
                            )
                        continue
                    for ins in ctx.instruments:
                        ins.run_before_pass(p.name, obj, ctx)
                    start = time.perf_counter()
                    out = p.run(obj, ctx)
                    if out is None:
                        raise PipelineError(
                            f"pass {p.name!r} in pipeline {self.name!r} returned None"
                        )
                    obj = out
                    wall = time.perf_counter() - start
                    ctx.timings.append(PassTiming(p.name, wall))
                    if tracer.enabled:
                        args = {"opt_level": ctx.opt_level}
                        if tracer.wall_clock:
                            args["wall_ms"] = wall * 1e3
                        tracer.timed_span(
                            p.name,
                            track="pipeline",
                            cat="compile",
                            dur_s=0.0,
                            args=args,
                        )
                    if ctx.dump_ir:
                        ctx.ir_dumps.append((p.name, _snapshot(obj)))
                    for ins in ctx.instruments:
                        ins.run_after_pass(p.name, obj, ctx)
            finally:
                if pipeline_span is not None:
                    pipeline_span.__exit__(None, None, None)
        return obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PassManager {self.name!r}: {' -> '.join(self.pass_names())}>"
