"""Unified compile pipeline: passes, contexts, managers and artifacts.

Every compile in the repository — ``repro.compile`` (for any target),
``optimize_module``, the autotuner's candidate compiler and the
experiment harness — routes through a :class:`PassManager` over the same
named passes, with a :class:`PassContext` carrying configuration and
observability hooks and an :class:`ArtifactCache` memoizing
:class:`CompiledArtifact` results.

Quick tour::

    from repro.pipeline import PassContext, get_pipeline

    ctx = PassContext(opt_level="O2", dump_ir=True)
    module = get_pipeline("build").run(schedule, ctx)
    print(ctx.timing_report())
"""

from .core import (
    OPT_LEVELS,
    FunctionPass,
    Pass,
    PassContext,
    PassInstrument,
    PassManager,
    PassTiming,
    PipelineError,
)
from .artifact import (
    ArtifactCache,
    CacheStats,
    CompiledArtifact,
    artifact_key,
    tuning_key,
    workload_signature,
)
from .passes import (
    EliminateCopyChecks,
    EmitSourcePass,
    HoistInvariantBranches,
    KernelPass,
    LowerSchedulePass,
    TightenLoopBounds,
    VerifyPass,
    kernel_passes,
)
from .registry import (
    get_pipeline,
    has_pipeline,
    list_pipelines,
    register_pipeline,
)

__all__ = [
    "OPT_LEVELS",
    "Pass",
    "FunctionPass",
    "KernelPass",
    "PassContext",
    "PassInstrument",
    "PassManager",
    "PassTiming",
    "PipelineError",
    "LowerSchedulePass",
    "EliminateCopyChecks",
    "TightenLoopBounds",
    "HoistInvariantBranches",
    "VerifyPass",
    "EmitSourcePass",
    "kernel_passes",
    "ArtifactCache",
    "CacheStats",
    "CompiledArtifact",
    "artifact_key",
    "tuning_key",
    "workload_signature",
    "register_pipeline",
    "get_pipeline",
    "has_pipeline",
    "list_pipelines",
]
