"""Concrete passes composing the ATiM compile flow.

The stages the paper describes — schedule → loop TIR (§5.2.2), the O1–O3
PIM-aware kernel optimizations (§5.3), hardware-constraint verification
(§5.2.4) and UPMEM-C emission — each become one named :class:`Pass` so
pipelines can compose, reorder and instrument them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional

from ..lowering import LoweredModule, LowerOptions, lower
from ..optim.dma_elim import eliminate_copy_checks
from ..optim.hoist import hoist_invariant_branches
from ..optim.tighten import tighten_loop_bounds
from ..tir import Stmt
from .core import Pass, PassContext, PipelineError

__all__ = [
    "LowerSchedulePass",
    "KernelPass",
    "EliminateCopyChecks",
    "TightenLoopBounds",
    "HoistInvariantBranches",
    "VerifyPass",
    "EmitSourcePass",
    "kernel_passes",
]


class LowerSchedulePass(Pass):
    """Schedule → :class:`LoweredModule` (loop nests, boundary checks,
    WRAM materialization, MRAM tiling and host/kernel split)."""

    name = "lower"

    def run(self, schedule, ctx: PassContext) -> LoweredModule:
        options = ctx.options or LowerOptions(optimize=ctx.opt_level)
        return lower(schedule, name=ctx.module_name, options=options)


class KernelPass(Pass):
    """A kernel-level ``Stmt -> Stmt`` rewrite lifted to module level.

    Accepts either a :class:`LoweredModule` (rewrites its ``kernel``) or a
    bare kernel :class:`Stmt`, so the same pass objects back both
    ``optimize_module`` and ``optimize_kernel``.
    """

    def __init__(
        self,
        fn: Callable[[Stmt], Stmt],
        name: Optional[str] = None,
        min_level: str = "O0",
    ) -> None:
        self.fn = fn
        self.name = name or fn.__name__
        self.min_level = min_level

    def run(self, obj, ctx: PassContext):
        if isinstance(obj, LoweredModule):
            kernel = self.fn(obj.kernel)
            if kernel is obj.kernel:
                return obj
            return replace(obj, kernel=kernel)
        if isinstance(obj, Stmt):
            return self.fn(obj)
        raise PipelineError(
            f"kernel pass {self.name!r} needs a LoweredModule or Stmt,"
            f" got {type(obj).__name__}"
        )


class EliminateCopyChecks(KernelPass):
    """O1 — DMA-aware boundary-check elimination (paper §5.3.1)."""

    def __init__(self) -> None:
        super().__init__(
            eliminate_copy_checks, name="eliminate_copy_checks", min_level="O1"
        )


class TightenLoopBounds(KernelPass):
    """O2 — loop-bound tightening for imperfect tiles (paper §5.3.2)."""

    def __init__(self) -> None:
        super().__init__(
            tighten_loop_bounds, name="tighten_loop_bounds", min_level="O2"
        )


class HoistInvariantBranches(KernelPass):
    """O3 — invariant branch hoisting out of hot loops (paper §5.3.3)."""

    def __init__(self) -> None:
        super().__init__(
            hoist_invariant_branches, name="hoist_invariant_branches", min_level="O3"
        )


def kernel_passes() -> List[KernelPass]:
    """Fresh instances of the §5.3 kernel passes in canonical O1→O3 order."""
    return [EliminateCopyChecks(), TightenLoopBounds(), HoistInvariantBranches()]


class VerifyPass(Pass):
    """UPMEM constraint verification (paper §5.2.4).

    Publishes ``ctx.attrs["verify_ok"]`` / ``ctx.attrs["verify_reason"]``;
    with ``strict=True`` a violation aborts the pipeline instead.
    """

    name = "verify"

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict

    def run(self, module: LoweredModule, ctx: PassContext) -> LoweredModule:
        from ..autotune.verifier import verify

        ok, reason = verify(module, ctx.config)
        ctx.attrs["verify_ok"] = ok
        ctx.attrs["verify_reason"] = reason
        if self.strict and not ok:
            raise PipelineError(f"verification failed: {reason}")
        return module


class EmitSourcePass(Pass):
    """Render UPMEM-C kernel source and host pseudocode into ``ctx.attrs``
    (``kernel_c`` / ``host_pseudocode``) for inspection and reports."""

    name = "emit_source"

    def run(self, module: LoweredModule, ctx: PassContext) -> LoweredModule:
        from ..upmem.emitter import emit_host_pseudocode, emit_kernel_c

        ctx.attrs["kernel_c"] = emit_kernel_c(module)
        ctx.attrs["host_pseudocode"] = emit_host_pseudocode(module)
        return module
