"""Compiled-artifact layer: content-addressed caching of lowered modules.

Tuning measures thousands of candidates, and many of them recur — pool
candidates built but not measured one round are resampled the next, the
harness re-profiles identical (workload, params) pairs across figures,
and the winning candidate is rebuilt after the search.  A
:class:`CompiledArtifact` wraps the outcome of one compile (including
*negative* outcomes, so invalid parameter combinations are rejected
without re-sketching), keyed by a digest of (workload signature, schedule
params, hardware config, opt level, pipeline name).  The cache is
in-memory with an optional on-disk tier that persists across processes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "CompiledArtifact",
    "ArtifactCache",
    "CacheStats",
    "CACHE_SCHEMA_VERSION",
    "artifact_key",
    "tuning_key",
    "workload_signature",
]

#: Mixed into every artifact key; bump whenever compiler behavior changes
#: (lowering, a §5.3 pass, the performance-relevant module layout) or the
#: key payload itself changes shape, so a persistent disk tier never
#: serves artifacts produced by older compiler code.
#: v3: int32 buffers are now actually int32 (were widened to int64).
CACHE_SCHEMA_VERSION = 3


def _tensor_signature(tensor: Any) -> tuple:
    """(name, dtype, shape) of a TE tensor, tolerant of plain objects."""
    buffer = getattr(tensor, "buffer", None)
    if buffer is None:
        return (repr(tensor),)
    return (buffer.name, buffer.dtype, tuple(buffer.shape))


def workload_signature(workload: Any) -> tuple:
    """Stable identity of a workload for cache keying.

    Uses the declared structure — name, shape, reduction, tensor dtypes
    and the compute expression — rather than object identity, so equal
    workloads constructed separately share artifacts while same-named
    workloads with different bodies or dtypes do not alias.

    Objects that know their own structural identity (a
    :class:`repro.graph.ModelGraph` spanning many workloads) expose a
    ``structural_signature()`` method, used verbatim — that is how
    graph-keyed serving requests batch by graph structure.
    """
    custom = getattr(workload, "structural_signature", None)
    if callable(custom):
        return custom()
    output = getattr(workload, "output", None)
    op = getattr(output, "op", None)
    body = getattr(op, "body", None)
    return (
        getattr(workload, "name", str(workload)),
        tuple(getattr(workload, "shape", ())),
        getattr(workload, "reduce_extent", 0),
        tuple(sorted(getattr(workload, "const_inputs", ()) or ())),
        tuple(sorted((getattr(workload, "params", None) or {}).items())),
        tuple(_tensor_signature(t) for t in getattr(workload, "inputs", ())),
        _tensor_signature(output) if output is not None else None,
        repr(body) if body is not None else None,
        # The combiner lives outside ``body`` on ComputeOp: sum vs max
        # over the same element expression must not share a key.
        getattr(op, "combiner", None),
    )


def artifact_key(
    workload: Any = None,
    params: Optional[Dict[str, int]] = None,
    config: Any = None,
    opt_level: str = "O3",
    pipeline: str = "build",
    target: Any = None,
    extra: Any = None,
) -> str:
    """Content-addressed digest identifying one compile's inputs.

    ``target`` is a :class:`repro.target.Target` (its ``cache_token()``
    enters the key — ``None`` when the other key fields already fully
    describe the target's compilation) or any stable raw token.
    """
    token = target.cache_token() if hasattr(target, "cache_token") else target
    payload = (
        CACHE_SCHEMA_VERSION,
        workload_signature(workload) if workload is not None else None,
        tuple(sorted((params or {}).items())),
        repr(config),
        opt_level,
        pipeline,
        token,
        extra,
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def tuning_key(
    workload: Any,
    config: Any = None,
    target: Any = None,
    opt_level: str = "O3",
) -> str:
    """Digest grouping tuning records by (workload, target, config,
    opt level).

    The persistent tuning database shares this machinery with the
    artifact cache so the two stay in lockstep: measured latencies depend
    on the same compiler behavior ``CACHE_SCHEMA_VERSION`` tracks, so a
    compiler bump retires stale tuning groups exactly as it retires
    stale artifacts.  ``opt_level`` is part of the key because the same
    candidate measures differently under O0 vs O3 — warm-starting across
    levels would serve stale latencies.  Unlike :func:`artifact_key`,
    schedule params are *not* part of the key — a group holds every
    measured candidate of one search space.
    """
    token = target.cache_token() if hasattr(target, "cache_token") else None
    kind = getattr(target, "kind", target if isinstance(target, str) else None)
    payload = (
        CACHE_SCHEMA_VERSION,
        workload_signature(workload) if workload is not None else None,
        repr(config),
        kind,
        token,
        opt_level,
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


@dataclass
class CompiledArtifact:
    """Outcome of compiling one (workload, params) candidate.

    ``module`` is ``None`` for negative artifacts (the sketch or lowering
    rejected the parameters); ``error`` then names the failure.
    ``verified`` is tri-state: ``None`` until a verifying caller runs the
    hardware-constraint check, then the cached verdict.
    """

    key: str
    module: Any = None
    error: str = ""
    verified: Optional[bool] = None
    verify_reason: str = ""
    opt_level: str = "O3"
    pipeline: str = "build"
    #: Per-pass wall-clock of the producing run (name, seconds, skipped).
    timings: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.module is not None


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.disk_hits)


class ArtifactCache:
    """Content-addressed artifact store: in-memory LRU + optional disk tier.

    ``disk_dir`` enables persistence: artifacts are pickled to
    ``<disk_dir>/<key>.pkl`` with atomic renames, so concurrent processes
    sharing a directory never observe torn files.  Disk loads count as
    hits (and ``disk_hits``) because the expensive re-lowering is skipped.
    """

    def __init__(
        self, disk_dir: Optional[str] = None, max_entries: int = 4096
    ) -> None:
        self.disk_dir = disk_dir
        self.max_entries = max_entries
        self._mem: "OrderedDict[str, CompiledArtifact]" = OrderedDict()
        self.stats = CacheStats()
        if disk_dir:
            os.makedirs(disk_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, key: str) -> bool:
        return key in self._mem or self._on_disk(key)

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"{key}.pkl")

    def _on_disk(self, key: str) -> bool:
        return bool(self.disk_dir) and os.path.exists(self._disk_path(key))

    def get(self, key: str) -> Optional[CompiledArtifact]:
        art = self._mem.get(key)
        if art is not None:
            self._mem.move_to_end(key)
            self.stats.hits += 1
            return art
        if self._on_disk(key):
            try:
                with open(self._disk_path(key), "rb") as fh:
                    art = pickle.load(fh)
            except Exception:
                # Torn/stale/cross-version pickles degrade to a miss (a
                # recompile), never to a crashed lookup.
                art = None
            if art is not None:
                self._remember(key, art)
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return art
        self.stats.misses += 1
        return None

    def put(self, artifact: CompiledArtifact) -> CompiledArtifact:
        self._remember(artifact.key, artifact)
        if self.disk_dir:
            self._write_disk(artifact)
        return artifact

    def _remember(self, key: str, artifact: CompiledArtifact) -> None:
        module = artifact.module
        if module is not None and getattr(module, "plan_key", None) is None:
            # Stamp the content hash on the lowered module so the
            # vectorizer's compiled-plan cache (repro.upmem.vectorize)
            # can key plans by it instead of by object identity.
            try:
                module.plan_key = artifact.key
            except (AttributeError, TypeError):  # frozen/slotted stand-ins
                pass
        self._mem[key] = artifact
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    def _write_disk(self, artifact: CompiledArtifact) -> None:
        path = self._disk_path(artifact.key)
        fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(artifact, fh)
            os.replace(tmp, path)
        except Exception:  # pragma: no cover - defensive
            # The disk tier is an optimization: a module that cannot be
            # pickled (or a full disk) must not fail the compile that
            # produced it, and the temp file must not leak.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def clear(self) -> None:
        """Drop the in-memory tier (disk files are left in place)."""
        self._mem.clear()
