"""PIM-aware tensor-level optimizations (paper §5.3)."""

from .dma_elim import eliminate_copy_checks
from .hoist import hoist_invariant_branches
from .pipeline import LEVELS, optimize_kernel, optimize_module
from .tighten import tighten_loop_bounds

__all__ = [
    "eliminate_copy_checks",
    "tighten_loop_bounds",
    "hoist_invariant_branches",
    "optimize_kernel",
    "optimize_module",
    "LEVELS",
]
