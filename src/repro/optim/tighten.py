"""Loop-bound tightening (paper §5.3.2, Fig. 8c).

When a loop body is exactly ``if <affine cond>: S`` (the structure the TIR
lowering guarantees for boundary-checked loops), an upper-bound conjunct
that is monotone in the loop variable can be intersected with the loop
extent: ``for k in range(16): if k + j*16 < K: S`` becomes
``for k in range(min(16, K - j*16)): S``.  Dead iterations are skipped at
run time instead of being tested and rejected.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..tir import (
    And,
    For,
    ForKind,
    IfThenElse,
    IntImm,
    LT,
    Max,
    Min,
    PrimExpr,
    SeqStmt,
    Stmt,
    affine_coeffs,
    all_of,
    simplify,
)
from ..tir.visitor import StmtMutator

__all__ = ["tighten_loop_bounds"]


def _conjuncts(cond: PrimExpr) -> List[PrimExpr]:
    if isinstance(cond, And):
        return _conjuncts(cond.a) + _conjuncts(cond.b)
    return [cond]


def _tighten_extent(
    loop_var, extent: PrimExpr, cond: PrimExpr
) -> Optional[PrimExpr]:
    """New extent implied by ``cond`` (a ``lhs < rhs`` check), or None.

    For ``a*v + b < C`` with ``a > 0``: ``v < ceil((C - b) / a)``, i.e.
    ``extent' = min(extent, floordiv(C - b - 1, a) + 1)``.
    """
    if not isinstance(cond, LT):
        return None
    diff = simplify(cond.a - cond.b)  # a*v + b - C < 0
    dec = affine_coeffs(diff)
    if dec is None:
        return None
    coeffs, const = dec
    a = coeffs.get(loop_var)
    if a is None or a <= 0:
        return None
    rest = IntImm(const)
    for var, c in coeffs.items():
        if var is loop_var:
            continue
        rest = rest + var * c
    # a*v + rest < 0  =>  v <= floor((-rest - 1) / a)
    bound = simplify(((IntImm(0) - rest) - 1) // a + 1)
    tightened = simplify(Min(extent, Max(bound, IntImm(0))))
    return tightened


class _Tightener(StmtMutator):
    def visit_For(self, node: For) -> Optional[Stmt]:
        body = self.visit_stmt(node.body)
        if body is None:
            return None
        if body is not node.body:
            node = node.with_body(body)
        if node.kind is ForKind.THREAD_BINDING:
            return node
        guarded = node.body
        if not (isinstance(guarded, IfThenElse) and guarded.else_case is None):
            return node
        extent = node.extent
        remaining: List[PrimExpr] = []
        changed = False
        for conj in _conjuncts(guarded.condition):
            new_extent = _tighten_extent(node.var, extent, conj)
            if new_extent is not None:
                extent = new_extent
                changed = True
            else:
                remaining.append(conj)
        if not changed:
            return node
        cond = all_of(remaining)
        new_body: Stmt = (
            guarded.then_case
            if cond is None
            else IfThenElse(simplify(cond), guarded.then_case)
        )
        return For(node.var, simplify(extent), new_body, node.kind, node.thread_tag)


def tighten_loop_bounds(kernel: Stmt) -> Stmt:
    """Apply §5.3.2 to a kernel statement tree."""
    result = _Tightener().visit_stmt(kernel)
    assert result is not None
    return result
