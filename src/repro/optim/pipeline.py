"""PIM-aware optimization pipeline: O0 → O3 (paper §5.3 / Fig. 13).

These entry points are thin wrappers over the unified pass pipeline in
:mod:`repro.pipeline`: the §5.3 passes are registered as level-gated
kernel passes of the named ``"optimize"`` pipeline, so the same pass
definitions serve ``repro.build``, the autotuner's compile engine and
direct callers of :func:`optimize_kernel` (the registry hands each
caller a fresh pipeline instance).
"""

from __future__ import annotations

from ..lowering import LoweredModule
from ..pipeline.core import OPT_LEVELS as LEVELS
from ..tir import Stmt

__all__ = ["optimize_module", "optimize_kernel", "LEVELS"]


def optimize_kernel(kernel: Stmt, level: str = "O3") -> Stmt:
    """Apply the §5.3 passes to a kernel statement.

    ``O0`` — none; ``O1`` — DMA-aware boundary-check elimination;
    ``O2`` — + loop-bound tightening; ``O3`` — + invariant branch hoisting.
    """
    from ..pipeline import PassContext, get_pipeline

    if level not in LEVELS:
        raise ValueError(f"unknown optimization level {level!r}")
    return get_pipeline("optimize").run(kernel, PassContext(opt_level=level))


def optimize_module(
    module: LoweredModule, level: str = "O3", config=None
) -> LoweredModule:
    """Return a copy of ``module`` with the optimized kernel (``module``
    itself when every pass is an identity)."""
    from ..pipeline import PassContext, get_pipeline

    if level not in LEVELS:
        raise ValueError(f"unknown optimization level {level!r}")
    ctx = PassContext(config=config, opt_level=level, module_name=module.name)
    return get_pipeline("optimize").run(module, ctx)
