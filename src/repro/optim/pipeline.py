"""PIM-aware optimization pipeline: O0 → O3 (paper §5.3 / Fig. 13)."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..lowering import LoweredModule
from ..tir import Stmt
from .dma_elim import eliminate_copy_checks
from .hoist import hoist_invariant_branches
from .tighten import tighten_loop_bounds

__all__ = ["optimize_module", "optimize_kernel", "LEVELS"]

LEVELS = ("O0", "O1", "O2", "O3")


def optimize_kernel(kernel: Stmt, level: str = "O3") -> Stmt:
    """Apply the §5.3 passes to a kernel statement.

    ``O0`` — none; ``O1`` — DMA-aware boundary-check elimination;
    ``O2`` — + loop-bound tightening; ``O3`` — + invariant branch hoisting.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown optimization level {level!r}")
    rank = LEVELS.index(level)
    if rank >= 1:
        kernel = eliminate_copy_checks(kernel)
    if rank >= 2:
        kernel = tighten_loop_bounds(kernel)
    if rank >= 3:
        kernel = hoist_invariant_branches(kernel)
    return kernel


def optimize_module(
    module: LoweredModule, level: str = "O3", config=None
) -> LoweredModule:
    """Return a copy of ``module`` with the optimized kernel."""
    kernel = optimize_kernel(module.kernel, level)
    if kernel is module.kernel:
        return module
    return replace(module, kernel=kernel)
