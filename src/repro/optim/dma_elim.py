"""DMA-aware boundary-check elimination (paper §5.3.1, Fig. 8b).

Copy loops between MRAM and WRAM are guarded by boundary checks on
imperfect tiles.  Because MRAM tiles are locally padded (allocated in
multiples of the tile size) and the same checks still guard the compute
and the host readout, the copy-side checks are redundant: we remove them,
and the now-unconditional contiguous loops become single DMA bursts
(``mram_read``/``mram_write``).  Outer loops whose iterations advance both
sides contiguously are merged into the burst ("repeated until further
unrolling is impossible").
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..tir import (
    Buffer,
    BufferLoad,
    BufferStore,
    DmaCopy,
    For,
    ForKind,
    IfThenElse,
    IntImm,
    PrimExpr,
    SeqStmt,
    Stmt,
    Var,
    affine_coeffs,
    simplify,
    substitute,
)
from ..tir.visitor import StmtMutator

__all__ = ["eliminate_copy_checks"]

_COPY_SCOPES = {("mram", "wram"), ("wram", "mram")}


def _is_copy_store(stmt: Stmt) -> bool:
    """A pure element copy between WRAM and MRAM."""
    if not isinstance(stmt, BufferStore):
        return False
    if not isinstance(stmt.value, BufferLoad):
        return False
    return (stmt.value.buffer.scope, stmt.buffer.scope) in _COPY_SCOPES


def _strip_guard(stmt: Stmt) -> Optional[BufferStore]:
    """Unwrap ``if boundary: copy`` into the bare copy, if applicable."""
    if isinstance(stmt, IfThenElse) and stmt.else_case is None:
        inner = stmt.then_case
        if _is_copy_store(inner):
            return inner  # type: ignore[return-value]
        return None
    if _is_copy_store(stmt):
        return stmt  # type: ignore[return-value]
    return None


def _stride_of(indices: Tuple[PrimExpr, ...], buffer: Buffer, var: Var) -> Optional[int]:
    """Stride of ``var`` in the flattened (row-major) index, or None."""
    flat = buffer.flat_index(list(indices))
    dec = affine_coeffs(flat)
    if dec is None:
        return None
    coeffs, _ = dec
    return coeffs.get(var, 0)


def _zero_var(exprs, var: Var):
    return [simplify(substitute(e, {var: IntImm(0)})) for e in exprs]


class _DmaEliminator(StmtMutator):
    """Bottom-up rewrite of guarded copy loops into DMA bursts."""

    def visit_For(self, node: For) -> Optional[Stmt]:
        body = self.visit_stmt(node.body)
        if body is None:
            return None
        node = node.with_body(body) if body is not node.body else node
        if node.kind is ForKind.THREAD_BINDING:
            return node
        extent = node.extent
        if not isinstance(extent, IntImm):
            return node

        copy = _strip_guard(node.body)
        if copy is not None:
            stmt = self._loop_to_dma(node, copy, extent.value)
            if stmt is not None:
                return stmt
            # Even without contiguity the guard is still removable.
            if copy is not node.body:
                return node.with_body(copy)
            return node

        if isinstance(node.body, DmaCopy):
            merged = self._merge_outer(node, node.body, extent.value)
            if merged is not None:
                return merged
        return node

    def _loop_to_dma(
        self, loop: For, copy: BufferStore, extent: int
    ) -> Optional[Stmt]:
        load: BufferLoad = copy.value  # type: ignore[assignment]
        v = loop.var
        dst_stride = _stride_of(copy.indices, copy.buffer, v)
        src_stride = _stride_of(load.indices, load.buffer, v)
        if dst_stride != 1 or src_stride != 1:
            return None
        return DmaCopy(
            copy.buffer,
            _zero_var(copy.indices, v),
            load.buffer,
            _zero_var(load.indices, v),
            extent,
        )

    def _merge_outer(self, loop: For, dma: DmaCopy, extent: int) -> Optional[Stmt]:
        v = loop.var
        dst_stride = _stride_of(dma.dst_base, dma.dst, v)
        src_stride = _stride_of(dma.src_base, dma.src, v)
        if dst_stride != dma.size or src_stride != dma.size:
            return None
        return DmaCopy(
            dma.dst,
            _zero_var(dma.dst_base, v),
            dma.src,
            _zero_var(dma.src_base, v),
            dma.size * extent,
        )


def eliminate_copy_checks(kernel: Stmt) -> Stmt:
    """Apply §5.3.1 to a kernel statement tree."""
    result = _DmaEliminator().visit_stmt(kernel)
    assert result is not None
    return result
