"""Invariant branch hoisting with partial-dead-code sinking (§5.3.3, Fig. 8d).

Two cooperating rewrites, iterated to a fixpoint:

1. *Unswitching*: ``for j: if c: S`` where ``c`` does not depend on ``j``
   becomes ``if c: for j: S``.
2. *PDCE sinking*: in a sequence ``[fill...; if c: consume]`` where the
   fills only write WRAM buffers that are read solely inside the guarded
   consumer, the fills are partially dead outside ``c`` and are sunk into
   the branch — which then lets rewrite (1) hoist ``c`` above enclosing
   loops that the fills previously pinned.

The lowering invariant making (2) safe is that all consumers of a caching
loop sit under the boundary condition (§5.3 of the paper).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..tir import (
    Buffer,
    BufferLoad,
    BufferStore,
    DmaCopy,
    For,
    ForKind,
    IfThenElse,
    SeqStmt,
    Stmt,
    collect_loads,
    collect_vars,
    iter_stmts,
    seq,
)
from ..tir.visitor import StmtMutator

__all__ = ["hoist_invariant_branches"]


def _written_wram(stmt: Stmt) -> Optional[Set[Buffer]]:
    """WRAM buffers written by a pure fill statement; None if not a fill.

    A fill is a (nest of) copy statements whose only side effects are
    stores into WRAM buffers.
    """
    written: Set[Buffer] = set()
    for s in iter_stmts(stmt):
        if isinstance(s, BufferStore):
            if s.buffer.scope != "wram":
                return None
            written.add(s.buffer)
        elif isinstance(s, DmaCopy):
            if s.dst.scope != "wram":
                return None
            written.add(s.dst)
        elif isinstance(s, IfThenElse) and s.else_case is not None:
            return None
        elif not isinstance(s, (For, SeqStmt, IfThenElse)):
            return None
    return written if written else None


def _buffers_read(stmt: Stmt) -> Set[Buffer]:
    bufs: Set[Buffer] = set()
    for s in iter_stmts(stmt):
        if isinstance(s, BufferStore):
            for load in collect_loads(s.value):
                bufs.add(load.buffer)
            for i in s.indices:
                for load in collect_loads(i):
                    bufs.add(load.buffer)
        elif isinstance(s, IfThenElse):
            for load in collect_loads(s.condition):
                bufs.add(load.buffer)
        elif isinstance(s, DmaCopy):
            bufs.add(s.src)
    return bufs


class _Hoister(StmtMutator):
    def __init__(self) -> None:
        self.changed = False

    # (1) loop unswitching --------------------------------------------------
    def visit_For(self, node: For) -> Optional[Stmt]:
        body = self.visit_stmt(node.body)
        if body is None:
            return None
        if body is not node.body:
            node = node.with_body(body)
        if node.kind is ForKind.THREAD_BINDING:
            return node
        inner = node.body
        if (
            isinstance(inner, IfThenElse)
            and inner.else_case is None
            and node.var not in collect_vars(inner.condition)
        ):
            self.changed = True
            return IfThenElse(
                inner.condition,
                For(node.var, node.extent, inner.then_case, node.kind,
                    node.thread_tag),
            )
        return node

    # (2) PDCE sinking -----------------------------------------------------------
    def visit_SeqStmt(self, node: SeqStmt) -> Optional[Stmt]:
        stmts: List[Stmt] = []
        for s in node.stmts:
            ns = self.visit_stmt(s)
            if ns is not None:
                stmts.append(ns)
        if not stmts:
            return None

        result: List[Stmt] = []
        i = 0
        while i < len(stmts):
            s = stmts[i]
            if isinstance(s, IfThenElse) and s.else_case is None and result:
                sinkable: List[Stmt] = []
                consumed = _buffers_read(s.then_case)
                guard_reads = {ld.buffer for ld in collect_loads(s.condition)}
                while result:
                    candidate = result[-1]
                    written = _written_wram(candidate)
                    if (
                        written
                        and written <= consumed
                        and not (written & guard_reads)
                        and not self._read_elsewhere(written, stmts, i, s)
                    ):
                        sinkable.insert(0, result.pop())
                    else:
                        break
                if sinkable:
                    self.changed = True
                    s = IfThenElse(s.condition, seq(*sinkable, s.then_case))
            result.append(s)
            i += 1
        if len(result) == 1:
            return result[0]
        return SeqStmt(result)

    @staticmethod
    def _read_elsewhere(
        written: Set[Buffer], stmts: List[Stmt], guard_pos: int, guard: Stmt
    ) -> bool:
        """Whether the filled buffers are read outside the guarded branch."""
        for j, other in enumerate(stmts):
            if j == guard_pos:
                continue
            if _buffers_read(other) & written:
                return True
        return False


def hoist_invariant_branches(kernel: Stmt, max_iter: int = 8) -> Stmt:
    """Apply §5.3.3 to a kernel statement tree (iterated to fixpoint)."""
    current = kernel
    for _ in range(max_iter):
        hoister = _Hoister()
        result = hoister.visit_stmt(current)
        assert result is not None
        current = result
        if not hoister.changed:
            break
    return current
