"""Tensor-expression operations: placeholders and index-wise computes."""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..tir import Buffer, BufferLoad, PrimExpr, Var, as_expr, const

__all__ = [
    "IterVar",
    "Tensor",
    "Operation",
    "PlaceholderOp",
    "ComputeOp",
    "Reduce",
    "placeholder",
    "compute",
    "reduce_axis",
    "sum",
    "max_reduce",
    "min_reduce",
]

_name_counter = itertools.count()


def _fresh_name(prefix: str) -> str:
    return f"{prefix}_{next(_name_counter)}"


class IterVar:
    """An iteration axis: a variable plus its extent and kind.

    ``kind`` is ``"spatial"`` for data-parallel axes or ``"reduce"`` for
    reduction axes.  Schedule relations (split/fuse) derive new IterVars
    from these roots.
    """

    __slots__ = ("var", "extent", "kind")

    def __init__(self, extent: int, name: str, kind: str = "spatial") -> None:
        if kind not in ("spatial", "reduce"):
            raise ValueError(f"bad IterVar kind {kind!r}")
        self.var = Var(name)
        self.extent = int(extent)
        self.kind = kind

    @property
    def name(self) -> str:
        return self.var.name

    @property
    def is_reduce(self) -> bool:
        return self.kind == "reduce"

    def __repr__(self) -> str:
        tag = "R" if self.is_reduce else "S"
        return f"IterVar({self.name}: {self.extent} {tag})"


class Reduce:
    """Marker returned by reducers inside a compute body.

    Holds the element expression, reduction axes, identity element and a
    combiner name (``add``/``max``/``min``).
    """

    __slots__ = ("expr", "axes", "combiner", "identity")

    def __init__(
        self,
        expr: PrimExpr,
        axes: Sequence[IterVar],
        combiner: str,
        identity,
    ) -> None:
        if not axes:
            raise ValueError("reduction requires at least one axis")
        if any(not ax.is_reduce for ax in axes):
            raise ValueError("reduction axes must be created via te.reduce_axis")
        self.expr = as_expr(expr)
        self.axes: Tuple[IterVar, ...] = tuple(axes)
        self.combiner = combiner
        self.identity = identity


class Operation:
    """Base class for tensor operations."""

    name: str

    def output(self) -> "Tensor":
        raise NotImplementedError


# Buffer -> producing Tensor, used by Schedule to walk the operation graph.
PRODUCERS: dict = {}


class Tensor:
    """A multi-dimensional value produced by an operation.

    Indexing a tensor inside a compute body yields a :class:`BufferLoad`
    against the tensor's backing buffer; the scheduler may later redirect
    that load to an MRAM tile or a WRAM cache.
    """

    __slots__ = ("op", "buffer")

    def __init__(self, op: Operation, buffer: Buffer) -> None:
        self.op = op
        self.buffer = buffer
        PRODUCERS[buffer] = self

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.buffer.shape

    @property
    def dtype(self) -> str:
        return self.buffer.dtype

    @property
    def name(self) -> str:
        return self.buffer.name

    @property
    def ndim(self) -> int:
        return self.buffer.ndim

    def __getitem__(self, indices) -> BufferLoad:
        if not isinstance(indices, tuple):
            indices = (indices,)
        exprs = [ix.var if isinstance(ix, IterVar) else as_expr(ix) for ix in indices]
        if len(exprs) != self.buffer.ndim:
            raise ValueError(
                f"tensor {self.name!r} is {self.buffer.ndim}-D,"
                f" got {len(exprs)} indices"
            )
        return BufferLoad(self.buffer, exprs)

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return f"Tensor({self.name}: {self.dtype}[{dims}])"


class PlaceholderOp(Operation):
    """An input tensor."""

    def __init__(self, name: str, shape: Sequence[int], dtype: str) -> None:
        self.name = name
        self.tensor = Tensor(self, Buffer(name, shape, dtype, scope="global"))

    def output(self) -> Tensor:
        return self.tensor


class ComputeOp(Operation):
    """An index-wise computation, optionally with a reduction.

    Attributes
    ----------
    axis:
        Spatial iteration axes (one per output dimension).
    reduce_axis:
        Reduction axes (empty for element-wise ops).
    body:
        Scalar expression for one output element in terms of axis vars.
    combiner / identity:
        Reduction combiner name and identity element (``None`` for
        element-wise computes).
    """

    def __init__(
        self,
        name: str,
        axis: Sequence[IterVar],
        reduce_axis: Sequence[IterVar],
        body: PrimExpr,
        dtype: str,
        combiner: Optional[str] = None,
        identity=None,
    ) -> None:
        self.name = name
        self.axis: Tuple[IterVar, ...] = tuple(axis)
        self.reduce_axis: Tuple[IterVar, ...] = tuple(reduce_axis)
        self.body = body
        self.combiner = combiner
        self.identity = identity
        shape = tuple(ax.extent for ax in axis)
        self.tensor = Tensor(self, Buffer(name, shape, dtype, scope="global"))

    @property
    def is_reduction(self) -> bool:
        return bool(self.reduce_axis)

    def output(self) -> Tensor:
        return self.tensor

    def input_buffers(self) -> List[Buffer]:
        """Buffers loaded by the body (deduplicated, in first-use order)."""
        from ..tir import collect_loads

        seen: List[Buffer] = []
        for load in collect_loads(self.body):
            if load.buffer not in seen:
                seen.append(load.buffer)
        return seen


def placeholder(
    shape: Sequence[int], dtype: str = "float32", name: Optional[str] = None
) -> Tensor:
    """Declare an input tensor."""
    return PlaceholderOp(name or _fresh_name("ph"), shape, dtype).output()


def reduce_axis(extent: int, name: Optional[str] = None) -> IterVar:
    """Declare a reduction axis of the given extent."""
    return IterVar(extent, name or _fresh_name("k"), kind="reduce")


def sum(expr, axis: Union[IterVar, Sequence[IterVar]]) -> Reduce:
    """Sum-reduce ``expr`` over ``axis``."""
    axes = [axis] if isinstance(axis, IterVar) else list(axis)
    return Reduce(expr, axes, "add", 0)


def max_reduce(expr, axis: Union[IterVar, Sequence[IterVar]]) -> Reduce:
    """Max-reduce ``expr`` over ``axis``."""
    axes = [axis] if isinstance(axis, IterVar) else list(axis)
    return Reduce(expr, axes, "max", float("-inf"))


def min_reduce(expr, axis: Union[IterVar, Sequence[IterVar]]) -> Reduce:
    """Min-reduce ``expr`` over ``axis``."""
    axes = [axis] if isinstance(axis, IterVar) else list(axis)
    return Reduce(expr, axes, "min", float("inf"))


def compute(
    shape: Sequence[int],
    fcompute: Callable,
    name: Optional[str] = None,
    dtype: Optional[str] = None,
) -> Tensor:
    """Define ``out[i...] = fcompute(i...)``.

    ``fcompute`` receives one :class:`Var` per output dimension and returns
    either a scalar expression or a :class:`Reduce` built by :func:`sum` /
    :func:`max_reduce` / :func:`min_reduce`.
    """
    name = name or _fresh_name("compute")
    axis = [IterVar(extent, f"{name}_i{d}") for d, extent in enumerate(shape)]
    result = fcompute(*[ax.var for ax in axis])
    if isinstance(result, Reduce):
        body = result.expr
        out_dtype = dtype or body.dtype
        return ComputeOp(
            name,
            axis,
            result.axes,
            body,
            out_dtype,
            combiner=result.combiner,
            identity=result.identity,
        ).output()
    body = as_expr(result)
    out_dtype = dtype or body.dtype
    return ComputeOp(name, axis, (), body, out_dtype).output()


def identity_value(combiner: str, dtype: str) -> PrimExpr:
    """IR constant for a combiner's identity element."""
    if combiner == "add":
        return const(0, dtype)
    if combiner == "max":
        return const(-3.0e38 if dtype.startswith("float") else -(2**31) + 1, dtype)
    if combiner == "min":
        return const(3.0e38 if dtype.startswith("float") else 2**31 - 1, dtype)
    raise ValueError(f"unknown combiner {combiner!r}")
