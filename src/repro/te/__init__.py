"""Tensor-expression DSL: declare computations, then schedule them.

This is the high-level entry point mirroring TVM's ``te`` module::

    A = te.placeholder((M, K), "float32", "A")
    B = te.placeholder((K,), "float32", "B")
    k = te.reduce_axis(K, "k")
    C = te.compute((M,), lambda i: te.sum(A[i, k] * B[k], axis=[k]), "C")

Computations stay abstract; :class:`repro.schedule.Schedule` decides how
they are tiled, distributed across DPUs and cached in WRAM.
"""

from .operation import (
    ComputeOp,
    IterVar,
    Operation,
    PlaceholderOp,
    Reduce,
    Tensor,
    compute,
    max_reduce,
    min_reduce,
    placeholder,
    reduce_axis,
    sum,
)

__all__ = [
    "Tensor",
    "IterVar",
    "Operation",
    "PlaceholderOp",
    "ComputeOp",
    "Reduce",
    "placeholder",
    "compute",
    "reduce_axis",
    "sum",
    "max_reduce",
    "min_reduce",
]
