"""PrIM-style baselines (paper §6, "Experimental setup").

Three configurations are reproduced as schedules with PrIM's documented
parameters — the point being that their *structure* matches PrIM's
hand-written kernels:

* **PrIM** — default parameters from the PrIM repository: 1-D tiling over
  the outermost spatial dimension only, 16 tasklets, 1024-byte WRAM
  caching tiles (the programming guide's recommendation), per-tasklet
  partials shipped to the host for RED, DPU counts from paper Table 3.
* **PrIM(E)** — PrIM with the DPU count grid-searched (2^n, 5 ≤ n ≤ 11
  for MMTV, 8 ≤ n ≤ 11 otherwise).
* **PrIM+search** — DPU count, tasklet count and caching tile size all
  grid-searched, but still 1-D tiling (no reduction-dimension tiling) —
  the contrast with ATiM's joint search space.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Optional, Tuple

from ..autotune.compile import compile_params
from ..lowering import LoweredModule
from ..upmem.config import DEFAULT_CONFIG, UpmemConfig
from ..upmem.system import PerformanceModel, ProfileResult
from ..workloads import Workload

__all__ = [
    "prim_params",
    "prim_module",
    "prim_profile",
    "prim_e_profile",
    "prim_search_profile",
    "PRIM_DEFAULT_DPUS",
    "PRIM_E_TASKLET_RANGE",
    "PRIM_E_CACHE_RANGE",
    "PRIM_SEARCH_TASKLET_RANGE",
    "PRIM_SEARCH_CACHE_RANGE",
]

#: Paper Table 3, "PrIM DPUs" column, keyed by (workload, size label).
PRIM_DEFAULT_DPUS: Dict[Tuple[str, str], int] = {
    ("red", "4MB"): 256,
    ("red", "64MB"): 1024,
    ("red", "256MB"): 1024,
    ("red", "512MB"): 1024,
    ("mtv", "4MB"): 256,
    ("mtv", "64MB"): 256,
    ("mtv", "256MB"): 512,
    ("mtv", "512MB"): 512,
    ("gemv", "4MB"): 256,
    ("gemv", "64MB"): 256,
    ("gemv", "256MB"): 512,
    ("gemv", "512MB"): 512,
    ("ttv", "4MB"): 256,
    ("ttv", "64MB"): 1024,
    ("ttv", "256MB"): 2048,
    ("ttv", "512MB"): 2048,
    ("mmtv", "4MB"): 64,
    ("mmtv", "64MB"): 512,
    ("mmtv", "256MB"): 2048,
    ("mmtv", "512MB"): 2048,
    ("va", "4MB"): 2048,
    ("va", "64MB"): 2048,
    ("va", "256MB"): 2048,
    ("geva", "4MB"): 1024,
    ("geva", "64MB"): 1024,
    ("geva", "256MB"): 2048,
}

_PRIM_TASKLETS = 16
_PRIM_CACHE_ELEMS = 256  # 1024 bytes of float32, the PrIM guide default

#: Grid-search domains of the PrIM(E) / PrIM+search variants (§6): one
#: definition shared by the profile functions below and the ``prim``
#: target, so the two surfaces can never drift apart.
PRIM_E_TASKLET_RANGE = (_PRIM_TASKLETS,)
PRIM_E_CACHE_RANGE = (_PRIM_CACHE_ELEMS,)
PRIM_SEARCH_TASKLET_RANGE = (1, 2, 4, 8, 16, 24)
PRIM_SEARCH_CACHE_RANGE = (8, 16, 32, 64, 128, 256)


def _default_dpus(workload: Workload, size: Optional[str]) -> int:
    if size is not None:
        key = (workload.name, size)
        if key in PRIM_DEFAULT_DPUS:
            return PRIM_DEFAULT_DPUS[key]
    # Fallback heuristic matching PrIM's choices: elementwise kernels use
    # the full system; everything else distributes the outer spatial dim.
    if workload.name in ("va", "geva"):
        return 2048
    if workload.name == "red":
        return 1024
    outer = workload.shape[0]
    if workload.name in ("ttv", "mmtv"):
        outer = workload.shape[0] * workload.shape[1]
    dpus = 1
    while dpus * 2 <= min(2048, outer):
        dpus *= 2
    return max(64, min(512, dpus)) if workload.name in ("mtv", "gemv") else dpus


def prim_params(
    workload: Workload,
    n_dpus: Optional[int] = None,
    n_tasklets: int = _PRIM_TASKLETS,
    cache: int = _PRIM_CACHE_ELEMS,
    size: Optional[str] = None,
) -> Dict[str, int]:
    """Sketch parameters reproducing a PrIM kernel's structure."""
    dpus = n_dpus or _default_dpus(workload, size)
    name = workload.name
    if name in ("va", "geva"):
        return {"n_dpus": dpus, "n_tasklets": n_tasklets, "cache": cache}
    if name == "red":
        # PrIM ships every tasklet's partial to the host (dpu_combine=0).
        return {
            "n_dpus": dpus,
            "n_tasklets": n_tasklets,
            "cache": cache,
            "dpu_combine": 0,
            "host_threads": 1,
        }
    if name in ("mtv", "gemv"):
        return {
            "m_dpus": min(dpus, workload.shape[0]),
            "k_dpus": 1,
            "n_tasklets": n_tasklets,
            "cache": cache,
            "host_threads": 1,
        }
    if name in ("ttv", "mmtv"):
        m, n, _k = workload.shape
        i_dpus = min(dpus, m)
        j_dpus = max(1, min(dpus // i_dpus, n))
        return {
            "i_dpus": i_dpus,
            "j_dpus": j_dpus,
            "k_dpus": 1,
            "n_tasklets": n_tasklets,
            "cache": cache,
            "host_threads": 1,
        }
    raise KeyError(f"no PrIM baseline for {name!r}")


def prim_module(
    workload: Workload,
    size: Optional[str] = None,
    config: Optional[UpmemConfig] = None,
    **overrides,
) -> LoweredModule:
    """Build the PrIM-default module for a workload."""
    params = prim_params(workload, size=size, **overrides)
    module = compile_params(workload, params, optimize="O3", config=config)
    if module is None:
        raise RuntimeError(
            f"PrIM baseline parameters invalid for {workload.name}: {params}"
        )
    return module


def prim_profile(
    workload: Workload,
    size: Optional[str] = None,
    config: Optional[UpmemConfig] = None,
) -> ProfileResult:
    """Deprecated: use ``repro.compile(workload, target="prim")``."""
    warnings.warn(
        "prim_profile is deprecated; use"
        " repro.compile(workload, target=\"prim\", size=...).profile()",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..target import PrimTarget

    return PrimTarget(config=config).compile(workload, size=size).profile()


def _grid_search(
    workload: Workload,
    dpu_range: Iterable[int],
    tasklet_range: Iterable[int],
    cache_range: Iterable[int],
    config: Optional[UpmemConfig],
) -> Tuple[ProfileResult, Dict[str, int]]:
    cfg = config or DEFAULT_CONFIG
    model = PerformanceModel(cfg)
    best: Optional[Tuple[float, ProfileResult, Dict[str, int]]] = None
    for dpus in dpu_range:
        for tasklets in tasklet_range:
            for cache in cache_range:
                params = prim_params(
                    workload, n_dpus=dpus, n_tasklets=tasklets, cache=cache
                )
                module = compile_params(workload, params, "O3", cfg)
                if module is None:
                    continue
                prof = model.profile(module)
                key = prof.latency.total
                if best is None or key < best[0]:
                    best = (key, prof, params)
    if best is None:
        raise RuntimeError(f"no valid PrIM configuration for {workload.name}")
    return best[1], best[2]


def _dpu_search_range(workload: Workload) -> List[int]:
    if workload.name == "mmtv":
        return [2**n for n in range(5, 12)]
    return [2**n for n in range(8, 12)]


def prim_e_profile(
    workload: Workload, config: Optional[UpmemConfig] = None
) -> ProfileResult:
    """PrIM(E): DPU count selected by grid search."""
    prof, _params = _grid_search(
        workload,
        _dpu_search_range(workload),
        PRIM_E_TASKLET_RANGE,
        PRIM_E_CACHE_RANGE,
        config,
    )
    return prof


def prim_search_profile(
    workload: Workload, config: Optional[UpmemConfig] = None
) -> Tuple[ProfileResult, Dict[str, int]]:
    """PrIM+search: DPUs × tasklets × caching tile grid search."""
    return _grid_search(
        workload,
        _dpu_search_range(workload),
        PRIM_SEARCH_TASKLET_RANGE,
        PRIM_SEARCH_CACHE_RANGE,
        config,
    )
