"""CPU (and GPU) roofline models standing in for TVM-autotuned baselines.

The paper compares against TVM MetaSchedule on a dual-socket Xeon Gold
5220R.  For the memory-bound tensor operations evaluated, an autotuned CPU
kernel runs at streaming-bandwidth speed; the effective bandwidth constant
is calibrated so the paper's PIM-vs-CPU crossovers hold (CPU competitive
at 4 MB, PIM ahead up to ~23× at ≥64 MB for reductions).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from ..workloads import Workload

__all__ = ["CpuModel", "GpuModel", "cpu_latency", "gpu_latency"]


@dataclass(frozen=True)
class CpuModel:
    """Roofline model of the autotuned CPU baseline."""

    #: Effective streaming bandwidth of the TVM-autotuned kernel (bytes/s).
    #: STREAM peak on the testbed is higher; autotuned tensor kernels with
    #: write-allocate traffic and NUMA effects sustain far less.
    effective_bandwidth: float = 14.0e9
    #: Peak arithmetic throughput (flops/s) across cores.
    peak_flops: float = 4.0e11
    #: Fixed per-invocation overhead (dispatch, threading fork/join).
    overhead_s: float = 30.0e-6
    #: Per-iteration cost of an (unpredicted-free) boundary check; branch
    #: predictors and wide issue make this a ~1-3% effect on CPUs (Fig. 4).
    boundary_check_overhead: float = 0.02

    def latency(self, workload: Workload, boundary_checks: bool = False) -> float:
        bytes_moved = workload.bytes_in + workload.bytes_out
        time = max(
            bytes_moved / self.effective_bandwidth,
            workload.flops / self.peak_flops,
        )
        if boundary_checks:
            time *= 1.0 + self.boundary_check_overhead
        return time + self.overhead_s


@dataclass(frozen=True)
class GpuModel:
    """Roofline model of an A5000-class GPU (used only for Fig. 4)."""

    effective_bandwidth: float = 600.0e9
    peak_flops: float = 2.0e13
    overhead_s: float = 12.0e-6
    #: Latency hiding makes boundary checks nearly free on GPUs (Fig. 4).
    boundary_check_overhead: float = 0.01

    def latency(self, workload: Workload, boundary_checks: bool = False) -> float:
        bytes_moved = workload.bytes_in + workload.bytes_out
        time = max(
            bytes_moved / self.effective_bandwidth,
            workload.flops / self.peak_flops,
        )
        if boundary_checks:
            time *= 1.0 + self.boundary_check_overhead
        return time + self.overhead_s


def cpu_latency(workload: Workload, model: Optional[CpuModel] = None) -> float:
    """Deprecated: use ``repro.compile(workload, target="cpu").latency``.

    Latency of the CPU-autotuned baseline for a workload (seconds).
    """
    warnings.warn(
        "cpu_latency is deprecated; use"
        " repro.compile(workload, target=\"cpu\").latency",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..target import CpuTarget

    return CpuTarget(model=model).compile(workload).latency


def gpu_latency(workload: Workload, model: Optional[GpuModel] = None) -> float:
    """Deprecated: use ``repro.compile(workload, target="gpu").latency``.

    Latency of the GPU baseline for a workload (seconds).
    """
    warnings.warn(
        "gpu_latency is deprecated; use"
        " repro.compile(workload, target=\"gpu\").latency",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..target import GpuTarget

    return GpuTarget(model=model).compile(workload).latency
