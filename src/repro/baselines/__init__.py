"""Baselines the paper compares against: PrIM, SimplePIM, CPU, GPU."""

from .cpu import CpuModel, GpuModel, cpu_latency, gpu_latency
from .prim import (
    PRIM_DEFAULT_DPUS,
    prim_e_profile,
    prim_module,
    prim_params,
    prim_profile,
    prim_search_profile,
)
from .simplepim import SIMPLEPIM_WORKLOADS, simplepim_build, simplepim_profile

__all__ = [
    "CpuModel",
    "GpuModel",
    "cpu_latency",
    "gpu_latency",
    "prim_params",
    "prim_module",
    "prim_profile",
    "prim_e_profile",
    "prim_search_profile",
    "PRIM_DEFAULT_DPUS",
    "simplepim_build",
    "simplepim_profile",
    "SIMPLEPIM_WORKLOADS",
]
