"""SimplePIM baseline (Chen et al., PACT 2023) — VA and RED only.

SimplePIM's map/reduce framework is reproduced as a schedule plus its
documented framework overheads (paper §7.1):

* **VA/GEVA (map)**: the handler-based runtime gathers the *entire* output
  tensor on the host with a full-size copy on the host side, making D2H
  4–11× more expensive than PrIM/ATiM.
* **RED (reduce)**: one partial per DPU is transferred (efficient), but
  each partial-reduction step synchronizes all tasklets with a global
  barrier (log2(T) rounds) instead of PrIM/ATiM's two-thread handshake,
  and the host final reduction pays per-element library-call overhead.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import replace
from typing import Optional, Tuple

from ..autotune.compile import compile_params
from ..lowering import LoweredModule
from ..upmem.config import DEFAULT_CONFIG, UpmemConfig
from ..upmem.system import Latency, PerformanceModel, ProfileResult
from ..workloads import Workload

__all__ = ["simplepim_build", "simplepim_profile", "SIMPLEPIM_WORKLOADS"]

SIMPLEPIM_WORKLOADS = ("va", "geva", "red")

#: SimplePIM handler defaults.
_TASKLETS = 16
_CACHE = 256
#: Host-side overhead per output element for the framework's extra copy.
_HOST_COPY_BANDWIDTH = 3.0e9
#: Overhead of the host final reduction's internal library calls (s/elem).
_HOST_REDUCE_OVERHEAD = 4.0e-8


def simplepim_build(
    workload: Workload, config: Optional[UpmemConfig] = None
) -> Tuple[LoweredModule, ProfileResult]:
    """The SimplePIM implementation of a workload: the compiled module
    (its structure matches the framework's handlers) plus the latency
    profile with the documented framework overheads applied."""
    if workload.name not in SIMPLEPIM_WORKLOADS:
        raise KeyError(
            f"SimplePIM provides only {SIMPLEPIM_WORKLOADS}, not"
            f" {workload.name!r}"
        )
    cfg = config or DEFAULT_CONFIG
    model = PerformanceModel(cfg)

    if workload.name in ("va", "geva"):
        params = {"n_dpus": cfg.n_dpus, "n_tasklets": _TASKLETS, "cache": _CACHE}
        module = compile_params(workload, params, "O3", cfg)
        assert module is not None
        prof = model.profile(module)
        # Whole-tensor host-side copy after D2H (the framework gathers and
        # re-materializes the full output array).
        extra_d2h = workload.bytes_out / _HOST_COPY_BANDWIDTH
        latency = replace(prof.latency, d2h=prof.latency.d2h + extra_d2h)
        return module, ProfileResult(
            latency=latency,
            dpu=prof.dpu,
            kernel_counts=prof.kernel_counts,
            n_dpus=prof.n_dpus,
            n_tasklets=prof.n_tasklets,
        )

    # RED: one value per DPU (dpu_combine=1) but global-barrier tree
    # reduction on the DPU and call-heavy host reduction.
    params = {
        "n_dpus": 1024,
        "n_tasklets": _TASKLETS,
        "cache": _CACHE,
        "dpu_combine": 1,
        "host_threads": 1,
    }
    module = compile_params(workload, params, "O3", cfg)
    assert module is not None
    prof = model.profile(module)
    barrier_rounds = math.ceil(math.log2(_TASKLETS))
    extra_kernel = (
        barrier_rounds * _TASKLETS * cfg.barrier_cycles * cfg.cycle_time_s
    )
    extra_host = module.n_dpus * _HOST_REDUCE_OVERHEAD
    latency = replace(
        prof.latency,
        kernel=prof.latency.kernel + extra_kernel,
        host=prof.latency.host + extra_host,
    )
    return module, ProfileResult(
        latency=latency,
        dpu=prof.dpu,
        kernel_counts=prof.kernel_counts,
        n_dpus=prof.n_dpus,
        n_tasklets=prof.n_tasklets,
    )


def simplepim_profile(
    workload: Workload, config: Optional[UpmemConfig] = None
) -> ProfileResult:
    """Deprecated: use ``repro.compile(workload, target="simplepim")``.

    Latency profile of the SimplePIM implementation of a workload.
    """
    warnings.warn(
        "simplepim_profile is deprecated; use"
        " repro.compile(workload, target=\"simplepim\").profile()",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..target import SimplePimTarget, TargetError

    try:
        return SimplePimTarget(config=config).compile(workload).profile()
    except TargetError as exc:
        # Preserve this shim's historical contract (KeyError on
        # unsupported workloads).
        raise KeyError(str(exc)) from None
