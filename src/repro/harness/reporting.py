"""Plain-text rendering of experiment rows (the harness's "plots")."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "render_curve", "summarize_speedups"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    if isinstance(value, dict):
        return ",".join(f"{k}={v}" for k, v in value.items())
    return str(value)


def render_table(rows: List[Dict], columns: Sequence[str] = None, title: str = "") -> str:
    """Render a list of dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_curve(points, title: str = "", width: int = 60) -> str:
    """ASCII rendering of an (x, y) curve (e.g. GFLOPS vs trials)."""
    if not points:
        return f"{title}\n(no points)"
    ys = [y for _x, y in points]
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    lines = [title] if title else []
    step = max(1, len(points) // 20)
    for x, y in points[::step]:
        bar = "#" * int((y - lo) / span * width)
        lines.append(f"{x:>6}  {y:10.3f}  {bar}")
    return "\n".join(lines)


def summarize_speedups(rows: List[Dict], key: str) -> Dict[str, float]:
    """Geometric mean / max of a speedup column."""
    import math

    values = [r[key] for r in rows if key in r and r[key] > 0]
    if not values:
        return {"gmean": 0.0, "max": 0.0, "min": 0.0}
    gmean = math.exp(sum(math.log(v) for v in values) / len(values))
    return {"gmean": gmean, "max": max(values), "min": min(values)}
