"""Experiment harness: one driver per paper figure/table + text reports."""

from .experiments import (
    compare_targets,
    fig3a_cache_tile_sweep,
    fig3b_tiling_schemes,
    fig3c_dpu_sweep,
    fig4_boundary_checks,
    fig9_tensor_ops,
    fig10_gptj,
    fig11_mmtv_scaling,
    fig12_pim_opts,
    fig13_breakdown,
    fig14_search_strategies,
    fig15_tuning_overhead,
    compile_cache_stats,
    measure_cache_stats,
    profile_params,
    table3_parameters,
)
from .reporting import render_curve, render_table, summarize_speedups

__all__ = [
    "profile_params",
    "compile_cache_stats",
    "measure_cache_stats",
    "compare_targets",
    "fig3a_cache_tile_sweep",
    "fig3b_tiling_schemes",
    "fig3c_dpu_sweep",
    "fig4_boundary_checks",
    "fig9_tensor_ops",
    "table3_parameters",
    "fig10_gptj",
    "fig11_mmtv_scaling",
    "fig12_pim_opts",
    "fig13_breakdown",
    "fig14_search_strategies",
    "fig15_tuning_overhead",
    "render_table",
    "render_curve",
    "summarize_speedups",
]
