"""Command-line harness: regenerate any paper experiment.

Usage::

    python -m repro.harness fig3a
    python -m repro.harness fig9 --workloads mtv red --sizes 64MB --trials 64
    python -m repro.harness fig12
    python -m repro.harness fig14 --trials 256
    python -m repro.harness all --trials 32
    python -m repro.harness fig9 --json results/BENCH_fig9.json
    python -m repro.harness fig15 --db results/tune.jsonl --resume \
        --parallel-measure 4
    python -m repro.harness fig16 --requests 64 --json BENCH_fig16.json
    python -m repro.harness fig17 --layers 3 --tokens 5 \
        --trace BENCH_fig17_trace.json

``--json`` writes the raw figure rows plus compile-cache and
tuning-database statistics as machine-readable JSON
(``BENCH_*.json``-style, with a ``schema_version`` field), so
successive runs can be diffed to track the performance trajectory
across PRs.

``--trace PATH`` records every experiment in the run into a
:mod:`repro.obs` virtual-clock tracer and writes a Chrome trace-event
JSON — deterministic (bit-for-bit identical at any ``--max-workers``)
and viewable in Perfetto.  ``--trace-jsonl PATH`` additionally dumps
the flat event log.

``--db PATH`` appends every measured tuning candidate to a persistent
JSON-lines database; ``--resume`` warm-starts searches from it (an
interrupted sweep replays instantly up to where it died), and
``--parallel-measure N`` shards each measurement batch across N workers
with bit-for-bit identical results.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import experiments
from .reporting import render_curve, render_table


def _print_rows(rows, title: str) -> None:
    print(render_table(rows, title=title))
    print()


def _tuning_kwargs(args: argparse.Namespace) -> dict:
    """Persistent-tuning knobs shared by every search-driven experiment."""
    return {
        "db": args.db,
        "resume": args.resume,
        "parallel_measure": args.parallel_measure,
    }


def run_experiment(name: str, args: argparse.Namespace):
    """Run one experiment: prints its text report, returns its raw data."""
    if name == "fig3a":
        data = experiments.fig3a_cache_tile_sweep()
        _print_rows(data, "Fig 3a")
    elif name == "fig3b":
        data = experiments.fig3b_tiling_schemes()
        _print_rows(data, "Fig 3b")
    elif name == "fig3c":
        data = experiments.fig3c_dpu_sweep()
        _print_rows(data, "Fig 3c")
    elif name == "fig4":
        data = experiments.fig4_boundary_checks()
        _print_rows(data, "Fig 4")
    elif name == "fig9":
        data = experiments.fig9_tensor_ops(
            workloads=args.workloads or None,
            sizes=args.sizes or None,
            n_trials=args.trials,
            seed=args.seed,
            **_tuning_kwargs(args),
        )
        _print_rows(data, "Fig 9")
    elif name == "tab3":
        data = experiments.table3_parameters(
            workloads=args.workloads or None, n_trials=args.trials,
            seed=args.seed, **_tuning_kwargs(args),
        )
        _print_rows(data, "Table 3")
    elif name == "fig10":
        data = experiments.fig10_gptj(
            n_trials=args.trials, seed=args.seed, **_tuning_kwargs(args)
        )
        _print_rows(data, "Fig 10")
    elif name == "fig11":
        data = experiments.fig11_mmtv_scaling(
            n_trials=args.trials, seed=args.seed, **_tuning_kwargs(args)
        )
        _print_rows(data, "Fig 11")
    elif name == "fig12":
        data = experiments.fig12_pim_opts()
        _print_rows(data, "Fig 12")
    elif name == "fig13":
        data = experiments.fig13_breakdown()
        _print_rows(data, "Fig 13")
    elif name == "fig14":
        data = experiments.fig14_search_strategies(
            n_trials=args.trials, seed=args.seed, **_tuning_kwargs(args)
        )
        for label, curve in data.items():
            print(render_curve(curve, title=f"Fig 14: {label}"))
            print()
    elif name == "fig15":
        data = experiments.fig15_tuning_overhead(
            n_trials=args.trials, seed=args.seed, **_tuning_kwargs(args)
        )
        print("Fig 15: UPMEM candidate latencies (s):")
        print(sorted(data["upmem_measured"])[:10], "...")
        print("CPU candidate latencies (s):")
        print(sorted(data["cpu_measured"])[:10], "...")
        hits = int(data["measure_cache_hits"][0])
        misses = int(data["measure_cache_misses"][0])
        print(f"measurements: {hits} warm (from --db) / {misses} cold")
    elif name == "fig16":
        data = experiments.fig16_serving(
            n_requests=args.requests, seed=args.seed
        )
        _print_rows(data["rows"], "Fig 16 (serving: dynamic batching)")
    elif name == "fig18":
        data = experiments.fig18_cluster(
            n_requests=args.requests, n_workers=args.workers,
            seed=args.seed, max_workers=args.max_workers,
        )
        _print_rows(
            data["rows"],
            "Fig 18 (cluster: whole-request vs continuous batching)",
        )
        fault = data.get("fault_scenario")
        if fault:
            order = " -> ".join(
                f"w{t['worker']}:{t['to']}" for t in fault["transitions"]
            )
            print(
                f"fault scenario: {len(fault['faults'])} fault(s);"
                f" {fault['recovered_sessions']} session(s) replayed"
                f" ({fault['replays']} replays,"
                f" digests {'OK' if fault['replay_ok'] else 'MISMATCH'});"
                f" {fault['completed']} completed; {order}"
            )
    elif name == "sim_speed":
        data = experiments.sim_speed(seed=args.seed)
        _print_rows(data, "Simulator speed (scalar vs vector)")
    elif name == "fig17" and args.layers > 1:
        data = experiments.fig17_multilayer(
            layers=args.layers, tokens=args.tokens, seed=args.seed,
            max_workers=args.max_workers,
        )
        _print_rows(
            data["rows"],
            f"Fig 17 (full-model decode: {data['graph']},"
            f" {args.tokens} tokens)",
        )
        _print_rows(
            data["per_layer"],
            "Fig 17: per-layer totals (compute / transfers / staging"
            " / cache growth)",
        )
        print(
            f"replans: {data['replans']} (page-boundary epochs);"
            f" programs compiled: {data['compiled_programs']};"
            f" residency: {data['residency']['stages']} stages /"
            f" {data['residency']['evictions']} evictions"
            f" ({data['residency_policy']},"
            f" budget {data['mram_budget_layers']} layers);"
            f" cache: {data['cache']['pages_allocated']} pages,"
            f" fragmentation {data['cache']['fragmentation']:.3f}"
        )
    elif name == "fig17":
        data = experiments.fig17_end_to_end(
            tokens=args.tokens, seed=args.seed,
            max_workers=args.max_workers,
        )
        _print_rows(
            data["rows"],
            f"Fig 17 (end-to-end decode step: {data['graph']})",
        )
        mixed_rows = data["breakdown"].get("mixed") or next(
            iter(data["breakdown"].values())
        )
        _print_rows(mixed_rows, "Fig 17: per-node breakdown (mixed)")
        mem = data["memory"]
        print(
            f"memory plan: arena {mem['arena_bytes']} B over"
            f" {mem['slots']} slots vs naive {mem['naive_bytes']} B"
            f" ({mem['reuse_ratio']:.2f}x reuse;"
            f" peak live {mem['peak_live_bytes']} B;"
            f" utilization {mem['utilization']:.2f})"
        )
    else:
        raise SystemExit(f"unknown experiment {name!r}")
    return data


EXPERIMENTS = (
    "fig3a", "fig3b", "fig3c", "fig4", "fig9", "tab3", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
    "fig18", "sim_speed",
)


def _jsonable(obj):
    """Best-effort conversion of experiment data to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return obj if obj == obj and abs(obj) != float("inf") else repr(obj)
    if hasattr(obj, "item"):  # numpy scalars
        return _jsonable(obj.item())
    return repr(obj)


#: Version of the ``--json`` dump layout.  Bump when the payload's
#: structure changes so downstream tooling can detect format drift.
#: History: 1 = implicit/unversioned (PRs 1-7); 2 = adds this field;
#: 3 = fig18 cluster payloads, ``settings.workers``, and versioned
#: ServerMetrics dicts (``schema_version`` inside ``metrics``).
JSON_SCHEMA_VERSION = 3


def write_json(path: str, results, args: argparse.Namespace) -> None:
    """Dump figure rows + compile/tuning cache stats as JSON."""
    stats = experiments.compile_cache_stats()
    measure = experiments.measure_cache_stats()
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "experiments": _jsonable(results),
        "cache_stats": {
            "hits": stats.hits,
            "misses": stats.misses,
            "disk_hits": stats.disk_hits,
            "hit_rate": stats.hit_rate,
        },
        "tuning_stats": {
            # warm = measurements replayed from the persistent --db
            # store, cold = freshly simulated candidates.
            "measure_hits": measure.hits,
            "measure_misses": measure.misses,
            "warm_hit_rate": measure.hit_rate,
        },
        "settings": {
            "trials": args.trials,
            "seed": args.seed,
            "workloads": args.workloads,
            "sizes": args.sizes,
            "db": args.db,
            "resume": args.resume,
            "parallel_measure": args.parallel_measure,
            "requests": args.requests,
            "tokens": args.tokens,
            "layers": args.layers,
            "workers": args.workers,
        },
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the ATiM paper's figures and tables.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    parser.add_argument("--trials", type=int, default=48,
                        help="autotuning trials per workload")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workloads", nargs="*", default=None)
    parser.add_argument("--sizes", nargs="*", default=None)
    parser.add_argument(
        "--requests", type=int, default=32, metavar="N",
        help="traffic-trace length for the serving experiments"
             " (fig16, fig18)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="simulated cluster workers for fig18 (not host threads;"
             " see --max-workers)",
    )
    parser.add_argument(
        "--tokens", type=int, default=16, metavar="T",
        help="decode positions for the end-to-end graph experiment"
             " (fig17)",
    )
    parser.add_argument(
        "--layers", type=int, default=1, metavar="N",
        help="decoder layers for fig17; >1 switches to the full-model"
             " decode engine (paged KV cache + weight residency)",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print compile-cache hit/miss counters after the run",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also dump figure rows + cache stats as JSON to PATH",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON of the run to PATH"
             " (virtual-clock spans; loads in Perfetto /"
             " chrome://tracing)",
    )
    parser.add_argument(
        "--trace-jsonl", metavar="PATH", default=None,
        help="also write the raw trace events as JSON-lines to PATH",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None, metavar="N",
        help="host thread-pool width for graph/decode experiments"
             " (fig17); results and traces are bit-for-bit identical"
             " at any value",
    )
    parser.add_argument(
        "--db", metavar="PATH", default=None,
        help="persistent tuning database (JSON-lines); measured"
             " candidates append to it as the search runs",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="warm-start searches from --db (replays an interrupted or"
             " prior run's measurements instead of re-simulating)",
    )
    parser.add_argument(
        "--parallel-measure", type=int, default=1, metavar="N",
        help="shard each measurement batch across N workers"
             " (results are bit-for-bit identical to serial)",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.db:
        parser.error("--resume requires --db PATH")

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    from ..obs import Tracer, use_tracer

    tracer = Tracer() if (args.trace or args.trace_jsonl) else None
    results = {}
    with use_tracer(tracer):
        for name in names:
            results[name] = run_experiment(name, args)
    if args.trace:
        from ..obs import trace_lint, write_chrome_trace

        payload = write_chrome_trace(tracer, args.trace)
        print(
            f"wrote Chrome trace ({len(tracer.events)} events,"
            f" {len(tracer.tracks())} tracks) to {args.trace}"
        )
        problems = trace_lint(payload)
        if problems:
            for problem in problems:
                print(f"trace-lint: {problem}", file=sys.stderr)
            return 1
    if args.trace_jsonl:
        from ..obs import write_jsonl

        count = write_jsonl(tracer, args.trace_jsonl)
        print(f"wrote {count} trace events to {args.trace_jsonl}")
    if args.json:
        write_json(args.json, results, args)
        print(f"wrote JSON results to {args.json}")
    if args.cache_stats:
        stats = experiments.compile_cache_stats()
        print(
            f"compile cache: {stats.hits} hits / {stats.misses} misses"
            f" ({stats.hit_rate:.1%} hit rate)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
