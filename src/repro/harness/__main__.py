"""Command-line harness: regenerate any paper experiment.

Usage::

    python -m repro.harness fig3a
    python -m repro.harness fig9 --workloads mtv red --sizes 64MB --trials 64
    python -m repro.harness fig12
    python -m repro.harness fig14 --trials 256
    python -m repro.harness all --trials 32
"""

from __future__ import annotations

import argparse
import sys

from . import experiments
from .reporting import render_curve, render_table


def _print_rows(rows, title: str) -> None:
    print(render_table(rows, title=title))
    print()


def run_experiment(name: str, args: argparse.Namespace) -> None:
    if name == "fig3a":
        _print_rows(experiments.fig3a_cache_tile_sweep(), "Fig 3a")
    elif name == "fig3b":
        _print_rows(experiments.fig3b_tiling_schemes(), "Fig 3b")
    elif name == "fig3c":
        _print_rows(experiments.fig3c_dpu_sweep(), "Fig 3c")
    elif name == "fig4":
        _print_rows(experiments.fig4_boundary_checks(), "Fig 4")
    elif name == "fig9":
        rows = experiments.fig9_tensor_ops(
            workloads=args.workloads or None,
            sizes=args.sizes or None,
            n_trials=args.trials,
            seed=args.seed,
        )
        _print_rows(rows, "Fig 9")
    elif name == "tab3":
        rows = experiments.table3_parameters(
            workloads=args.workloads or None, n_trials=args.trials,
            seed=args.seed,
        )
        _print_rows(rows, "Table 3")
    elif name == "fig10":
        rows = experiments.fig10_gptj(n_trials=args.trials, seed=args.seed)
        _print_rows(rows, "Fig 10")
    elif name == "fig11":
        _print_rows(
            experiments.fig11_mmtv_scaling(n_trials=args.trials, seed=args.seed),
            "Fig 11",
        )
    elif name == "fig12":
        _print_rows(experiments.fig12_pim_opts(), "Fig 12")
    elif name == "fig13":
        _print_rows(experiments.fig13_breakdown(), "Fig 13")
    elif name == "fig14":
        curves = experiments.fig14_search_strategies(
            n_trials=args.trials, seed=args.seed
        )
        for label, curve in curves.items():
            print(render_curve(curve, title=f"Fig 14: {label}"))
            print()
    elif name == "fig15":
        data = experiments.fig15_tuning_overhead(
            n_trials=args.trials, seed=args.seed
        )
        print("Fig 15: UPMEM candidate latencies (s):")
        print(sorted(data["upmem_measured"])[:10], "...")
        print("CPU candidate latencies (s):")
        print(sorted(data["cpu_measured"])[:10], "...")
    else:
        raise SystemExit(f"unknown experiment {name!r}")


EXPERIMENTS = (
    "fig3a", "fig3b", "fig3c", "fig4", "fig9", "tab3", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the ATiM paper's figures and tables.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    parser.add_argument("--trials", type=int, default=48,
                        help="autotuning trials per workload")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workloads", nargs="*", default=None)
    parser.add_argument("--sizes", nargs="*", default=None)
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print compile-cache hit/miss counters after the run",
    )
    args = parser.parse_args(argv)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        run_experiment(name, args)
    if args.cache_stats:
        stats = experiments.compile_cache_stats()
        print(
            f"compile cache: {stats.hits} hits / {stats.misses} misses"
            f" ({stats.hit_rate:.1%} hit rate)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
