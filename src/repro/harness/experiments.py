"""Experiment drivers regenerating the paper's figures and tables.

Each function returns structured rows (lists of dicts) that the benchmark
suite asserts on and the reporting module renders as text tables.  Trial
counts default far below the paper's 1000 so the full suite runs in
minutes; pass larger ``n_trials`` to tighten results.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autotune import Tuner, autotune, measure_stats
from ..autotune.compile import default_engine
from ..pipeline import CacheStats
from ..baselines import CpuModel, GpuModel
from ..target import CpuTarget, PrimTarget, SimplePimTarget, Target
from ..upmem.config import DEFAULT_CONFIG, UpmemConfig
from ..upmem.system import PerformanceModel, ProfileResult
from ..workloads import (
    GPTJ_30B,
    GPTJ_6B,
    Workload,
    fc_mtv,
    fc_shapes,
    gemv,
    make_workload,
    mha_mmtv,
    mmtv,
    mtv,
    va,
)

__all__ = [
    "profile_params",
    "compile_cache_stats",
    "measure_cache_stats",
    "compare_targets",
    "fig3a_cache_tile_sweep",
    "fig3b_tiling_schemes",
    "fig3c_dpu_sweep",
    "fig4_boundary_checks",
    "fig9_tensor_ops",
    "table3_parameters",
    "fig10_gptj",
    "fig11_mmtv_scaling",
    "fig12_pim_opts",
    "fig13_breakdown",
    "fig14_search_strategies",
    "fig15_tuning_overhead",
    "fig16_serving",
    "fig17_end_to_end",
    "sim_speed",
]


def profile_params(
    workload: Workload,
    params: Dict[str, int],
    optimize: str = "O3",
    config: Optional[UpmemConfig] = None,
) -> ProfileResult:
    """Compile and profile one parameter setting (no verification skip).

    Compiles through the process-wide engine, so sweeps that revisit a
    (workload, params, level) point — common across figures — reuse the
    cached artifact instead of re-lowering.
    """
    cfg = config or DEFAULT_CONFIG
    artifact = default_engine().compile(
        workload, params, optimize=optimize, config=cfg, check=False
    )
    if not artifact.ok:
        raise ValueError(
            f"invalid params {params} for {workload.name}: {artifact.error}"
        )
    return PerformanceModel(cfg).profile(artifact.module)


def compile_cache_stats() -> CacheStats:
    """Hit/miss counters of the harness's shared compile cache."""
    return default_engine().stats.snapshot()


def measure_cache_stats() -> CacheStats:
    """Warm-vs-cold measurement counters across every tuning run in the
    process: hits are candidates served from a persistent ``--db``
    store, misses were freshly simulated."""
    return measure_stats()


# ---------------------------------------------------------------------------
# Fig. 3 — motivation sweeps
# ---------------------------------------------------------------------------


def fig3a_cache_tile_sweep(
    m: int = 512, k: int = 512, tiles: Sequence[int] = (4, 8, 16, 32, 64, 128, 256)
) -> List[Dict]:
    """Kernel latency of a single-DPU GEMV vs WRAM caching tile size."""
    rows = []
    wl = gemv(m, k)
    for tile in tiles:
        params = {
            "m_dpus": 1,
            "k_dpus": 1,
            "n_tasklets": 16,
            "cache": tile,
            "host_threads": 1,
        }
        prof = profile_params(wl, params)
        rows.append(
            {
                "cache_elems": tile,
                "kernel_ms": prof.latency.kernel * 1e3,
                "dma_calls": prof.dpu.dma_calls,
            }
        )
    return rows


def fig3b_tiling_schemes(m: int = 8192, k: int = 8192, n_dpus: int = 2048) -> List[Dict]:
    """Total latency of GEMV across 2-D tiling schemes on a fixed grid."""
    rows = []
    wl = gemv(m, k)
    m_dpus = n_dpus
    while m_dpus >= 4:
        k_dpus = n_dpus // m_dpus
        if k_dpus > 64 or m_dpus > m:
            m_dpus //= 2
            continue
        params = {
            "m_dpus": m_dpus,
            "k_dpus": k_dpus,
            "n_tasklets": 16,
            "cache": 64,
            "host_threads": 16,
        }
        try:
            prof = profile_params(wl, params)
        except ValueError:
            m_dpus //= 2
            continue
        rows.append(
            {
                "tile_shape": f"{m // m_dpus}x{k // max(1, k_dpus)}",
                "m_dpus": m_dpus,
                "k_dpus": k_dpus,
                "h2d_ms": prof.latency.h2d * 1e3,
                "kernel_ms": prof.latency.kernel * 1e3,
                "d2h_reduce_ms": prof.latency.d2h_plus_host * 1e3,
                "total_ms": prof.latency.total * 1e3,
            }
        )
        m_dpus //= 2
    return rows


def fig3c_dpu_sweep(
    m: int = 512, k: int = 512, dpu_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
) -> List[Dict]:
    """Best total latency per DPU count (tile shapes swept per count)."""
    rows = []
    wl = gemv(m, k)
    for n in dpu_counts:
        best = None
        m_dpus = n
        while m_dpus >= 1:
            k_dpus = n // m_dpus
            if m_dpus * k_dpus == n and m_dpus <= m and 1 <= k_dpus <= min(64, k):
                params = {
                    "m_dpus": m_dpus,
                    "k_dpus": k_dpus,
                    "n_tasklets": 16,
                    "cache": 32,
                    "host_threads": 16,
                }
                try:
                    prof = profile_params(wl, params)
                except ValueError:
                    prof = None
                if prof is not None:
                    t = prof.latency.total
                    if best is None or t < best["total_ms"] / 1e3:
                        best = {
                            "n_dpus": n,
                            "tile_shape": f"{math.ceil(m/m_dpus)}x{math.ceil(k/k_dpus)}",
                            "total_ms": t * 1e3,
                        }
            m_dpus //= 2
        if best:
            rows.append(best)
    return rows


# ---------------------------------------------------------------------------
# Fig. 4 — boundary-check overhead across platforms
# ---------------------------------------------------------------------------


def fig4_boundary_checks(
    sizes: Sequence[Tuple[int, int]] = (
        (542, 542), (713, 542), (990, 542),
        (542, 713), (713, 713), (990, 713),
        (542, 990), (713, 990), (990, 990),
    ),
) -> List[Dict]:
    """Kernel speedup from eliminating redundant boundary checks.

    UPMEM numbers come from the simulator (per-iteration checks = O1 vs
    tightened bounds = O2+O3); CPU/GPU penalties come from their roofline
    models (branch prediction hides the check).
    """
    cpu = CpuModel()
    gpu = GpuModel()
    rows = []
    for m, k in sizes:
        wl = gemv(m, k)
        params = {
            "m_dpus": 64,
            "k_dpus": 1,
            "n_tasklets": 16,
            "cache": 64,
            "host_threads": 1,
        }
        with_checks = profile_params(wl, params, optimize="O1")
        without = profile_params(wl, params, optimize="O3")
        upmem_speedup = with_checks.latency.kernel / without.latency.kernel
        rows.append(
            {
                "shape": f"{m}x{k}",
                "upmem_speedup": upmem_speedup,
                "cpu_speedup": cpu.latency(wl, True) / cpu.latency(wl, False),
                "gpu_speedup": gpu.latency(wl, True) / gpu.latency(wl, False),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 9 / Table 3 — autotuned tensor-program performance
# ---------------------------------------------------------------------------
#
# Every "ATiM vs the world" figure is one generic loop over baseline
# :class:`~repro.target.Target` objects: each target compiles the
# workload its own way and reports a uniform ``latency``, so adding a
# backend to a comparison means appending a Target instance, not wiring
# a new special case.


def _baseline_targets(config: Optional[UpmemConfig] = None) -> Tuple[Target, ...]:
    """The paper's baseline systems as Target objects (Fig. 9 order)."""
    return (
        PrimTarget(config=config),
        PrimTarget(variant="e", config=config),
        PrimTarget(variant="search", config=config),
        SimplePimTarget(config=config),
        CpuTarget(),
    )


def compare_targets(
    workload: Workload,
    targets: Sequence[Target],
    n_trials: int = 48,
    seed: int = 0,
    size: Optional[str] = None,
    meta: Optional[Dict] = None,
    db: Optional[str] = None,
    resume: bool = False,
    parallel_measure: int = 1,
) -> Dict:
    """One comparison row: every baseline target vs autotuned ATiM.

    Produces ``<label>_ms`` and ``atim_speedup_vs_<label>`` columns per
    supporting target plus ``atim_ms`` / ``atim_params``; targets that
    do not support the workload (e.g. SimplePIM outside va/geva/red) are
    skipped, matching the paper's figures.  ``db``/``resume``/
    ``parallel_measure`` forward to the tuning run (persistent
    warm-start and measurement fan-out).
    """
    row: Dict = dict(meta or {})
    latencies: Dict[str, float] = {}
    for target in targets:
        if not target.supports(workload):
            continue
        exe = target.compile(workload, size=size)
        latencies[target.label] = exe.latency
        row[f"{target.label}_ms"] = exe.latency * 1e3
        if exe.params is not None and target.label != "prim":
            row[f"{target.label}_params"] = exe.params
    tune = autotune(
        workload, n_trials=n_trials, seed=seed, engine=default_engine(),
        db=db, resume=resume, parallel_measure=parallel_measure,
    )
    row["atim_ms"] = tune.best_latency * 1e3
    for label, latency in latencies.items():
        row[f"atim_speedup_vs_{label}"] = latency / tune.best_latency
    row["atim_params"] = tune.best_params
    return row


_FIG9_SIZES = {
    "va": ("4MB", "64MB", "256MB"),
    "geva": ("4MB", "64MB", "256MB"),
    "red": ("4MB", "64MB", "256MB", "512MB"),
    "mtv": ("4MB", "64MB", "256MB", "512MB"),
    "gemv": ("4MB", "64MB", "256MB", "512MB"),
    "ttv": ("4MB", "64MB", "256MB", "512MB"),
    "mmtv": ("4MB", "64MB", "256MB", "512MB"),
}


def fig9_tensor_ops(
    workloads: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[str]] = None,
    n_trials: int = 48,
    seed: int = 0,
    db: Optional[str] = None,
    resume: bool = False,
    parallel_measure: int = 1,
) -> List[Dict]:
    """PrIM / PrIM(E) / PrIM+search / SimplePIM / ATiM / CPU comparison."""
    targets = _baseline_targets()
    rows = []
    for name in workloads or _FIG9_SIZES:
        for size in sizes or _FIG9_SIZES[name]:
            if sizes is not None and size not in _FIG9_SIZES[name]:
                continue
            wl = make_workload(name, size)
            rows.append(
                compare_targets(
                    wl,
                    targets,
                    n_trials=n_trials,
                    seed=seed,
                    size=size,
                    meta={"workload": name, "size": size},
                    db=db,
                    resume=resume,
                    parallel_measure=parallel_measure,
                )
            )
    return rows


def table3_parameters(
    workloads: Optional[Sequence[str]] = None,
    n_trials: int = 48,
    seed: int = 0,
    db: Optional[str] = None,
    resume: bool = False,
    parallel_measure: int = 1,
) -> List[Dict]:
    """Autotuned parameters (Table 3): PrIM defaults vs searches vs ATiM."""
    prim_default = PrimTarget()
    prim_search = PrimTarget(variant="search")
    rows = []
    for name in workloads or ("red", "mtv", "gemv", "ttv", "mmtv", "va", "geva"):
        for size in _FIG9_SIZES[name]:
            wl = make_workload(name, size)
            tune = autotune(
                wl, n_trials=n_trials, seed=seed, engine=default_engine(),
                db=db, resume=resume, parallel_measure=parallel_measure,
            )
            rows.append(
                {
                    "workload": name,
                    "size": size,
                    "prim_defaults": prim_default.params_for(wl, size=size),
                    "prim_search": prim_search.params_for(wl),
                    "atim": tune.best_params,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 10 / Fig. 11 — GPT-J layers
# ---------------------------------------------------------------------------


#: Fig. 10/11 compare against the PrIM variants and the CPU roofline.
def _gptj_targets() -> Tuple[Target, ...]:
    return (PrimTarget(), PrimTarget(variant="search"), CpuTarget())


def fig10_gptj(
    models=(GPTJ_6B, GPTJ_30B),
    batches: Sequence[int] = (1, 4, 16),
    tokens: Sequence[int] = (64, 128, 256, 512),
    include_mtv: bool = True,
    n_trials: int = 32,
    seed: int = 0,
    db: Optional[str] = None,
    resume: bool = False,
    parallel_measure: int = 1,
) -> List[Dict]:
    """MHA MMTV and FC MTV layers of GPT-J 6B/30B."""
    targets = _gptj_targets()
    tuning = dict(db=db, resume=resume, parallel_measure=parallel_measure)
    rows = []
    for config in models:
        for batch in batches:
            for tok in tokens:
                wl = mha_mmtv(config, batch, tok)
                rows.append(
                    compare_targets(
                        wl,
                        targets,
                        n_trials=n_trials,
                        seed=seed,
                        meta=dict(
                            model=config.name, op="mmtv", batch=batch, tokens=tok
                        ),
                        **tuning,
                    )
                )
        if include_mtv:
            for layer, m, k in fc_shapes(config):
                wl = fc_mtv(config, layer)
                rows.append(
                    compare_targets(
                        wl,
                        targets,
                        n_trials=n_trials,
                        seed=seed,
                        meta=dict(
                            model=config.name, op="mtv", layer=layer, m=m, k=k
                        ),
                        **tuning,
                    )
                )
    return rows


def fig11_mmtv_scaling(
    spatial_sizes: Sequence[Tuple[int, int]] = (
        (16, 64), (16, 128), (32, 160), (64, 256), (128, 320),
        (256, 512),
    ),
    k: int = 256,
    n_trials: int = 32,
    seed: int = 0,
    db: Optional[str] = None,
    resume: bool = False,
    parallel_measure: int = 1,
) -> List[Dict]:
    """ATiM speedup over PrIM(+search) vs MMTV spatial-dimension size."""
    targets = (PrimTarget(), PrimTarget(variant="search"))
    rows = []
    for m, n in spatial_sizes:
        wl = mmtv(m, n, k)
        row = compare_targets(
            wl,
            targets,
            n_trials=n_trials,
            seed=seed,
            meta={"spatial": m * n, "shape": f"{m}x{n}x{k}"},
            db=db,
            resume=resume,
            parallel_measure=parallel_measure,
        )
        rows.append(
            {
                "spatial": row["spatial"],
                "shape": row["shape"],
                "speedup_vs_prim": row["atim_speedup_vs_prim"],
                "speedup_vs_prim_search": row["atim_speedup_vs_prim_search"],
                "uses_rfactor": row["atim_params"].get("k_dpus", 1) > 1,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 12 / Fig. 13 — PIM-aware optimization ablation
# ---------------------------------------------------------------------------

_OPT_LEVELS = ("O0", "O1", "O2", "O3")


def fig12_pim_opts(
    lengths: Sequence[int] = (72, 91, 123, 145, 164, 196, 212, 245),
    va_lengths: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
) -> List[Dict]:
    """Kernel latency under O0..O3 for misaligned MTV and VA shapes."""
    rows = []

    def sweep(wl: Workload, params: Dict[str, int], tag: str, misalign: str):
        entry = {"case": tag, "misalignment": misalign}
        for level in _OPT_LEVELS:
            prof = profile_params(wl, params, optimize=level)
            entry[f"kernel_ms_{level}"] = prof.latency.kernel * 1e3
        entry["speedup_o3_vs_o0"] = (
            entry["kernel_ms_O0"] / entry["kernel_ms_O3"]
        )
        rows.append(entry)

    mtv_params = {
        "m_dpus": 16,
        "k_dpus": 1,
        "n_tasklets": 8,
        "cache": 16,
        "host_threads": 1,
    }
    for length in lengths:
        sweep(mtv(256, length), mtv_params, f"mtv_256x{length}", "cols")
        sweep(mtv(length, 256), mtv_params, f"mtv_{length}x256", "rows")
        sweep(mtv(length, length), mtv_params, f"mtv_{length}x{length}", "both")
    for length in va_lengths:
        wl = va(length * 100000)
        params = {"n_dpus": 32, "n_tasklets": 8, "cache": 64}
        sweep(wl, params, f"va_{length}x100000", "va")
    return rows


def fig13_breakdown(
    gemv_shape: Tuple[int, int] = (245, 245), va_len: int = 25000
) -> List[Dict]:
    """Single-DPU cycle attribution and instruction counts, O0..O3."""
    rows = []
    cases = [
        (
            gemv(*gemv_shape),
            {
                "m_dpus": 1,
                "k_dpus": 1,
                "n_tasklets": 8,
                "cache": 16,
                "host_threads": 1,
            },
            f"gemv_{gemv_shape[0]}x{gemv_shape[1]}",
        ),
        (va(va_len), {"n_dpus": 1, "n_tasklets": 8, "cache": 64}, f"va_{va_len}"),
    ]
    for wl, params, tag in cases:
        base_instr = None
        for level in _OPT_LEVELS:
            prof = profile_params(wl, params, optimize=level)
            frac = prof.dpu.fractions()
            if base_instr is None:
                base_instr = max(1.0, prof.dpu.instructions)
            rows.append(
                {
                    "case": tag,
                    "level": level,
                    "issuable": frac["issuable"],
                    "idle_memory": frac["idle_memory"],
                    "idle_core": frac["idle_core"],
                    "instructions_norm": prof.dpu.instructions / base_instr,
                    "dma_calls": prof.dpu.dma_calls,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 14 / Fig. 15 — search efficiency
# ---------------------------------------------------------------------------


def fig14_search_strategies(
    m: int = 8192,
    k: int = 8192,
    n_trials: int = 128,
    seed: int = 0,
    db: Optional[str] = None,
    resume: bool = False,
    parallel_measure: int = 1,
) -> Dict[str, List[Tuple[int, float]]]:
    """GFLOPS-vs-trials convergence for the four search variants.

    With ``db``/``resume``, repeated sweeps replay measured candidates
    from the persistent store instead of re-simulating them (the curves
    are identical either way — the search replays deterministically);
    warm-vs-cold totals land in :func:`measure_cache_stats`.
    """
    wl = mtv(m, k)
    variants = {
        "default_tvm": dict(balanced=False, adaptive_epsilon=False),
        "balanced_sampling": dict(balanced=True, adaptive_epsilon=False),
        "adaptive_epsilon": dict(balanced=False, adaptive_epsilon=True),
        "atim": dict(balanced=True, adaptive_epsilon=True),
    }
    curves: Dict[str, List[Tuple[int, float]]] = {}
    for name, flags in variants.items():
        # Cold start (no seeded defaults): the subject is the search's
        # own exploration dynamics, as in the paper's Fig. 14.
        tuner = Tuner(
            wl, n_trials=n_trials, seed=seed, seed_defaults=False,
            engine=default_engine(), db=db, resume=resume,
            parallel_measure=parallel_measure, **flags
        )
        result = tuner.tune()
        curves[name] = result.gflops_curve()
    return curves


def fig15_tuning_overhead(
    m: int = 4096, k: int = 4096, n_trials: int = 64, seed: int = 0,
    db: Optional[str] = None, resume: bool = False,
    parallel_measure: int = 1,
) -> Dict[str, List[float]]:
    """Per-round tuning times and candidate latency scatter, CPU vs UPMEM.

    The CPU comparator is a parameter sweep over the roofline model
    (thread count / tile size) — stable latencies; UPMEM candidates show
    the long tail of bad tiling configurations the paper observes.

    The returned ``measure_cache_hits`` / ``measure_cache_misses``
    single-element lists say how much of the search was warm (served
    from a persistent ``db``) vs cold (freshly simulated), so overhead
    numbers from sweeps with and without ``--db``/``--resume`` are
    directly comparable.
    """
    wl = mtv(m, k)
    # Private engine on purpose: this figure *measures* per-round tuning
    # overhead, so it must not start from a cache warmed by whichever
    # experiments ran earlier in the process.  (The tuner's own intra-run
    # caching remains in effect — that is part of the system under
    # measurement.)
    tuner = Tuner(
        wl, n_trials=n_trials, seed=seed, db=db, resume=resume,
        parallel_measure=parallel_measure,
    )
    result = tuner.tune()

    cpu_model = CpuModel()
    base = cpu_model.latency(wl)
    cpu_measured = []
    rng_state = 12345
    for threads in (1, 2, 4, 8, 16, 32, 48):
        for tile in (8, 16, 32, 64, 128, 256):
            # Deterministic pseudo-variation around the roofline: thread
            # under-subscription and tile misfit slow the kernel.
            factor = max(1.0, 48 / threads * 0.12) * (
                1.0 + abs(math.log2(tile / 64.0)) * 0.05
            )
            cpu_measured.append(base * factor)
    return {
        "upmem_round_times": result.round_times,
        "upmem_measured": result.measured,
        "cpu_measured": cpu_measured,
        "upmem_best": [result.best_latency],
        "measure_cache_hits": [float(result.measure_cache_hits)],
        "measure_cache_misses": [float(result.measure_cache_misses)],
    }


# ---------------------------------------------------------------------------
# Simulator raw speed — scalar interpreter vs vectorized NumPy backend
# ---------------------------------------------------------------------------


def sim_speed(
    cases: Sequence[Tuple[str, str]] = (
        ("mtv", "4MB"),
        ("mmtv", "4MB"),
        ("va", "4MB"),
        ("red", "4MB"),
    ),
    seed: int = 0,
) -> List[Dict]:
    """Functional-simulation wall-clock: scalar vs vector, same module.

    Each case compiles one untuned O3 module, runs it once under the
    scalar :class:`~repro.upmem.Interpreter` and once under the
    vectorized NumPy backend (``REPRO_SIM_MODE`` pinned per executor,
    so the ambient knob does not skew the comparison), and checks the
    two output buffers byte-for-byte.  Plan construction happens
    outside the timed region — it is a once-per-module cost served from
    the plan cache on every later run, exactly as in tuning loops.
    """
    from ..target import default_params
    from ..upmem import FunctionalExecutor
    from ..upmem.vectorize import plan_for

    rows = []
    for name, size in cases:
        wl = make_workload(name, size)
        artifact = default_engine().compile(
            wl, default_params(wl), optimize="O3", check=False
        )
        if not artifact.ok:
            raise ValueError(f"seed params invalid for {name}/{size}")
        module = artifact.module
        inputs = wl.random_inputs(seed)
        plan_for(module)  # warm the plan cache
        t0 = time.perf_counter()
        (vec,) = FunctionalExecutor(module, mode="vector").run(inputs)
        vector_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        (sca,) = FunctionalExecutor(module, mode="scalar").run(inputs)
        scalar_s = time.perf_counter() - t0
        rows.append(
            {
                "workload": name,
                "size": size,
                "scalar_s": scalar_s,
                "vector_s": vector_s,
                "speedup": scalar_s / vector_s,
                "bit_identical": vec.tobytes() == sca.tobytes(),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 16 — serving throughput/tail-latency under dynamic batching
# ---------------------------------------------------------------------------


def fig16_serving(
    n_requests: int = 32,
    batch_sizes: Sequence[int] = (1, 4, 16),
    targets: Sequence[str] = ("upmem", "cpu"),
    pattern: str = "burst",
    seed: int = 0,
    tokens: int = 16,
    max_wait_ticks: int = 4,
    queue_limit: Optional[int] = None,
    pool_capacity: int = 8,
    execute: bool = True,
) -> Dict:
    """Serve one seeded GPT-J + tensor-op traffic trace at several
    dynamic-batching limits, per target.

    Every (target, max_batch) cell replays the *same* trace — generated
    once from ``seed`` — through a fresh :class:`repro.serve.Server`, so
    throughput (completed requests per simulated second) and tail
    latency differences come purely from the batching policy and the
    target's execution model.  Returns ``{"rows": [...], "metrics":
    {label: full metrics dict}}``; the metrics dicts (p50/p95/p99, pool
    hit rate, rejected counts, batch histogram) land verbatim in the
    harness's ``--json`` dump.
    """
    from ..serve import (
        ExecutablePool,
        Server,
        generate_trace,
        gptj_serving_mix,
        replay_trace,
    )

    mix = gptj_serving_mix(tokens=tokens)
    trace = generate_trace(
        n_requests,
        sorted(mix),
        pattern=pattern,
        seed=seed,
        burst=16,
        gap_ticks=8,
    )
    rows: List[Dict] = []
    metrics: Dict[str, Dict] = {}
    for target in targets:
        for max_batch in batch_sizes:
            with Server(
                ExecutablePool(capacity=pool_capacity),
                max_batch_size=max_batch,
                max_wait_ticks=max_wait_ticks,
                queue_limit=queue_limit,
                execute=execute,
            ) as server:
                replay_trace(server, trace, mix, target=target)
                snapshot = server.metrics_dict()
            metrics[f"{target}_b{max_batch}"] = snapshot
            rows.append(
                {
                    "target": target,
                    "max_batch": max_batch,
                    "requests": snapshot["submitted"],
                    "completed": snapshot["completed"],
                    "rejected": snapshot["rejected"],
                    "flushes": snapshot["flushes"],
                    "mean_batch": snapshot["mean_batch"],
                    "throughput_rps": snapshot["throughput_rps"],
                    "mean_ms": snapshot["latency_ms"]["mean"],
                    "p50_ms": snapshot["latency_ms"]["p50"],
                    "p95_ms": snapshot["latency_ms"]["p95"],
                    "p99_ms": snapshot["latency_ms"]["p99"],
                    "pool_hit_rate": snapshot["pool"]["hit_rate"],
                }
            )
    return {"rows": rows, "metrics": metrics, "n_requests": n_requests}


# ---------------------------------------------------------------------------
# Fig. 17 — whole-model decode step: placement, memory, end-to-end latency
# ---------------------------------------------------------------------------


def fig17_end_to_end(
    tokens: int = 16,
    config=None,
    placements: Sequence[str] = ("upmem", "cpu", "mixed"),
    seed: int = 0,
    execute: bool = True,
    max_workers: Optional[int] = None,
) -> Dict:
    """One GPT-J decoder-layer decode step as a model graph, end to end.

    Not a paper figure: the graph subsystem's headline experiment.  The
    same :class:`~repro.graph.ModelGraph` compiles under three placement
    policies — everything-PIM (matvecs on upmem, glue on the host),
    everything-CPU, and a mixed split (attention on PIM, FC layers on
    the CPU roofline) — and reports a per-node latency breakdown
    (compute vs boundary transfers vs one-time weight staging) plus the
    memory planner's arena against the naive no-reuse allocation.

    ``config`` defaults to the scaled :data:`repro.graph.GPTJ_SIM`
    configuration (same topology as GPT-J 6B) so each placement also
    *executes* functionally and is checked against the NumPy reference;
    pass ``execute=False`` for timing-only sweeps at bigger shapes.
    """
    from ..graph import compile_graph, gptj_decoder_graph, place, plan_memory
    from ..graph.builder import GPTJ_SIM

    graph = gptj_decoder_graph(config or GPTJ_SIM, tokens=tokens)
    plan = plan_memory(graph)
    inputs = graph.random_inputs(seed=seed) if execute else None
    reference = graph.reference_outputs(inputs) if execute else None

    rows: List[Dict] = []
    breakdown: Dict[str, List[Dict]] = {}
    for policy in placements:
        placement = place(graph, policy=policy)
        exe = compile_graph(
            graph, placement=placement, max_workers=max_workers
        )
        profile = exe.profile()
        # Replay this placement's cost breakdown into the ambient tracer
        # (a no-op unless the harness installed one via --trace).
        exe.trace(name=f"fig17 {policy}")
        matches = None
        if execute:
            (out,) = exe.run(inputs)
            matches = bool(
                np.allclose(out, reference["y"], rtol=1e-3, atol=1e-5)
            )
        kinds = [placement[n.name].kind for n in graph.nodes]
        rows.append(
            {
                "placement": policy,
                "nodes": len(graph),
                "pim_nodes": sum(k == "upmem" for k in kinds),
                "host_nodes": sum(k != "upmem" for k in kinds),
                "total_ms": profile.total * 1e3,
                "steady_state_ms": profile.steady_state_s * 1e3,
                "compute_ms": sum(c.compute_s for c in profile.nodes) * 1e3,
                "h2d_ms": sum(c.h2d_s for c in profile.nodes) * 1e3,
                "d2h_ms": sum(c.d2h_s for c in profile.nodes) * 1e3,
                "staging_ms": profile.staging_s * 1e3,
                "matches_reference": matches,
            }
        )
        breakdown[policy] = [c.to_dict() for c in profile.nodes]
    return {
        "rows": rows,
        "breakdown": breakdown,
        "memory": plan.to_dict(),
        "graph": graph.name,
        "tokens": tokens,
    }


def fig17_multilayer(
    layers: int = 3,
    tokens: int = 6,
    prompt_tokens: int = 4,
    page_tokens: int = 4,
    config=None,
    seed: int = 0,
    policy: str = "upmem",
    max_workers: Optional[int] = None,
    mram_budget_layers: Optional[int] = None,
    residency_policy: str = "belady",
) -> Dict:
    """Full-model decode: N layers x T tokens over managed device memory.

    The :class:`~repro.decode.DecodeEngine` run behind
    ``python -m repro.harness fig17 --layers N --tokens T``: per-step
    and per-layer breakdowns of compute, boundary transfers, weight
    stage/evict traffic and KV cache-extension transfers, with the
    KV cache growing page by page (graphs rebuild only at page
    boundaries, and even then only the capacity-sized attention
    programs compile — ``compiled_programs`` per step proves it).

    ``mram_budget_layers`` caps device weight residency in units of one
    layer's weights; the default ``layers - 1`` (for ``layers > 1``)
    deliberately undersizes the budget so the stage/evict schedule is
    visible in the per-layer rows.  Every reported number is
    deterministic: bit-for-bit identical at any ``max_workers``.
    """
    from ..decode import DecodeEngine
    from ..graph.builder import GPTJ_SIM

    cfg = config or GPTJ_SIM
    if mram_budget_layers is None:
        mram_budget_layers = layers - 1 if layers > 1 else 1
    layer_nbytes = 12 * cfg.d_model * cfg.d_model * 4
    engine = DecodeEngine(
        config=cfg,
        layers=layers,
        page_tokens=page_tokens,
        policy=policy,
        max_workers=max_workers,
        mram_budget_bytes=mram_budget_layers * layer_nbytes,
        residency_policy=residency_policy,
        seed=seed,
    )
    result = engine.decode(tokens=tokens, prompt_tokens=prompt_tokens)
    payload = result.to_dict()
    payload["rows"] = payload.pop("steps")
    payload["graph"] = engine._epoch_graph.name
    payload["mram_budget_layers"] = mram_budget_layers
    payload["residency_policy"] = residency_policy
    return payload


def fig18_cluster(
    n_requests: int = 24,
    n_workers: int = 2,
    seed: int = 7,
    max_batch: int = 8,
    max_workers: Optional[int] = None,
    fault: bool = True,
) -> Dict:
    """Fig 18: continuous vs. whole-request batching on a multi-tenant
    cluster, plus a seeded fault-injection recovery scenario.

    Replays one seeded diurnal+bursty multi-tenant trace (mixed model
    sizes, per-tenant quotas and SLO classes) through two identically
    configured clusters that differ only in batching mode:
    ``continuous`` admits at iteration granularity and retires sessions
    individually; ``whole`` is the PR-4-era baseline — a worker admits
    a batch only when idle and seals until the whole batch completes.
    Rows report throughput (tokens/s), p99 TTFT/TPOT, KV-pool
    utilization and mean batch occupancy.

    The fault scenario re-runs the continuous cluster with one seeded
    worker kill placed mid-decode: the supervisor detects the death by
    missed heartbeats, fences the worker, re-queues its orphaned
    sessions, and surviving workers replay them (every replayed token's
    digest checked against the original stream) — the payload records
    recovery order and the replay verdict.
    """
    from ..cluster import (
        Cluster, ClusterConfig, FaultEvent, FaultInjector,
        default_tenants, generate_cluster_trace, sessions_from_trace,
    )

    tenants = default_tenants()
    trace = generate_cluster_trace(
        n_requests, tenants, seed=seed,
        mean_interarrival_s=0.02, burst_prob=0.3, burst_size=4,
        decode_tokens=(2, 14),
    )

    def build(mode: str) -> Cluster:
        return Cluster(
            ClusterConfig(
                n_workers=n_workers, mode=mode, max_batch=max_batch,
                max_workers=max_workers,
            ),
            tenants=tenants,
        )

    rows: List[Dict] = []
    summaries: Dict[str, Dict] = {}
    for mode in ("whole", "continuous"):
        result = build(mode).run(sessions_from_trace(trace, tenants))
        summary = result.summary()
        summaries[mode] = summary
        rows.append(
            {
                "mode": mode,
                "completed": summary["completed"],
                "tokens_per_s": summary["throughput_tokens_per_s"],
                "p99_ttft_ms": summary["p99_ttft_ms"],
                "p99_tpot_ms": summary["p99_tpot_ms"],
                "kv_utilization": summary["kv_utilization"],
                "mean_batch": summary["mean_batch_occupancy"],
                "preemptions": summary["preemptions"],
            }
        )

    payload: Dict = {
        "rows": rows,
        "summaries": summaries,
        "tenants": [t.name for t in tenants],
        "n_workers": n_workers,
        "seed": seed,
    }

    if fault:
        # Kill worker 0 mid-trace: by 0.12 virtual seconds the trace
        # has mid-stream sessions in flight on both workers, so the
        # recovery path actually replays decoded tokens.
        injector = FaultInjector.from_events(
            [FaultEvent(at_s=0.12, worker=0, kind="kill")],
            n_workers=n_workers,
        )
        cluster = Cluster(
            ClusterConfig(
                n_workers=n_workers, mode="continuous",
                max_batch=max_batch, max_workers=max_workers,
            ),
            tenants=tenants, faults=injector,
        )
        result = cluster.run(sessions_from_trace(trace, tenants))
        summary = result.summary()
        payload["fault_scenario"] = {
            "faults": [
                {"at_s": e.at_s, "worker": e.worker, "kind": e.kind}
                for e in injector.fired
            ],
            "completed": summary["completed"],
            "replays": summary["replays"],
            "replay_ok": summary["replay_ok"],
            "throughput_tokens_per_s": summary["throughput_tokens_per_s"],
            "transitions": [
                {"tick": t, "worker": w, "from": old, "to": new}
                for t, w, old, new in result.supervisor_transitions
            ],
            "recovered_sessions": sum(
                1 for s in result.sessions if s.replays > 0
            ),
        }
    return payload
