"""The serving front end: admission, batching, dispatch, accounting.

:class:`Server` is a discrete-event model of one PIM inference server
driven by a deterministic virtual clock:

* **time** — ``tick()`` advances the arrival clock in fixed
  ``tick_seconds`` steps; batching decisions consume only tick counts
  (never wall time), execution durations come from the targets'
  simulated/analytic performance models.  The same traffic trace
  therefore produces bit-identical batches, responses and metrics on
  any machine and at any host thread count.
* **admission** — a bounded pending queue; requests beyond
  ``queue_limit`` are rejected at submit time and counted per workload.
* **batching** — pending requests group by compiled-program identity
  and flush on max-batch-size or max-wait (see
  :class:`~repro.serve.scheduler.DynamicBatcher`).
* **dispatch** — a flush compiles-or-reuses its executable through the
  :class:`~repro.serve.pool.ExecutablePool` and runs the whole batch
  via ``Executable.run_batch`` on one persistent
  :class:`~repro.target.Executor` thread pool, so outputs are
  bit-for-bit what individual ``run()`` calls would produce.
* **failure isolation** — a flush that raises (bad input names, a
  target that cannot execute, an invalid compile) fails only its own
  group: those tickets turn ``failed`` with the error recorded, no
  time is charged to the simulated device, and serving continues.
* **device model** — flushes execute serially on the simulated device:
  a flush starts at ``max(now, busy_until)`` and occupies it for a
  modeled duration in which dispatch+launch overhead is paid once per
  flush, kernels run concurrently across idle DPU-group replicas of
  the program, per-request transfers serialize on the host<->PIM bus,
  and constant/weight transfer is charged only when the pool (re)loads
  the program — the paper's "constant tensors transferred once" §5.4.

After a flush the server drops its reference to each request's input
arrays, so serving long traces holds only pending inputs plus outputs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import current_tracer
from ..target import Executor
from .metrics import ServerMetrics
from .pool import ExecutablePool
from .request import Request, Response, Ticket
from .scheduler import DynamicBatcher, PendingRequest

__all__ = ["Server", "SyncClient", "ServeError"]


class ServeError(RuntimeError):
    """A request could not be served (rejected or unservable)."""


def _workload_name(request: Request) -> str:
    """The metrics-bucket name of a request's workload — one rule shared
    by rejection, completion and failure accounting."""
    return getattr(request.workload, "name", str(request.workload))


class Server:
    """Async-style inference server over compiled PIM executables."""

    def __init__(
        self,
        pool: Optional[ExecutablePool] = None,
        max_batch_size: int = 16,
        max_wait_ticks: int = 4,
        queue_limit: Optional[int] = 64,
        tick_seconds: float = 1e-4,
        dispatch_overhead_s: float = 1e-4,
        max_workers: Optional[int] = None,
        execute: bool = True,
    ) -> None:
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if tick_seconds <= 0:
            raise ValueError(f"tick_seconds must be > 0, got {tick_seconds}")
        # `pool or ...` would discard a caller's *empty* pool (len 0 is
        # falsy), silently serving from a default one.
        self.pool = pool if pool is not None else ExecutablePool()
        self.batcher = DynamicBatcher(max_batch_size, max_wait_ticks)
        self.metrics = ServerMetrics()
        self.queue_limit = queue_limit
        self.tick_seconds = tick_seconds
        #: Per-flush host-side cost (request handling, command assembly,
        #: rank broadcast setup) — the overhead dynamic batching exists
        #: to amortize; see :meth:`_batch_duration` for the full model.
        self.dispatch_overhead_s = dispatch_overhead_s
        #: ``execute=False`` skips functional execution (responses carry
        #: ``outputs=None``) while keeping the full timing model — for
        #: latency-only targets and pure scheduling studies.
        self.execute = execute
        self._executor = Executor(max_workers, persistent=True)
        self._tick = 0
        self._now = 0.0  # arrival clock: _tick * tick_seconds
        self._busy_until = 0.0  # simulated device availability
        self._seq = 0
        #: Batch-key -> derived unit costs.  Keyed by program identity
        #: (not ``id(exe)``): an evicted-and-recompiled program must
        #: never collide with a recycled object address, and identical
        #: keys derive identical costs by construction.
        self._duration_cache: Dict[Tuple, Tuple[float, float, float, float]] = {}
        #: Keys whose constant-input (weight) staging transfer has been
        #: incurred by a pool load but not yet charged to a *successful*
        #: flush.  A loading flush that fails leaves the program
        #: resident with its staging bill outstanding; the next
        #: successful flush pays it (otherwise the charge would be lost
        #: and later latencies understated).
        self._unpaid_staging: set = set()
        self._closed = False

    # -- clocks -------------------------------------------------------------
    @property
    def current_tick(self) -> int:
        return self._tick

    @property
    def now(self) -> float:
        """Arrival-clock timestamp in simulated seconds."""
        return self._now

    @property
    def elapsed(self) -> float:
        """Simulated seconds the trace has spanned so far (arrival clock
        or device busy time, whichever is further along)."""
        return max(self._now, self._busy_until)

    def tick(self, n: int = 1) -> List[Response]:
        """Advance the virtual clock ``n`` ticks, flushing aged groups.

        Returns the responses completed by those flushes.
        """
        self._check_open()
        responses: List[Response] = []
        for _ in range(n):
            self._tick += 1
            self._now = self._tick * self.tick_seconds
            for key in self.batcher.due(self._tick):
                responses.extend(self._flush(key))
        return responses

    # -- submission ---------------------------------------------------------
    def submit(self, request: Request) -> Ticket:
        """Admit one request; may trigger an immediate size-based flush.

        Returns a :class:`Ticket`: ``rejected`` when the pending queue
        is full, otherwise ``queued`` (and ``done`` with a response as
        soon as its group flushes).
        """
        self._check_open()
        tracer = current_tracer()
        name = _workload_name(request)
        if self.execute and request.inputs is None:
            # Catch input-less requests at admission — most commonly a
            # Request object resubmitted after being served (the server
            # nulls inputs on completion).  Failing here keeps the
            # mistake from blast-failing whatever group it would join.
            self.metrics.record_reject(name)
            if tracer.enabled:
                tracer.instant(
                    "reject", track="serve.requests", cat="serve",
                    args={"workload": name, "reason": "no-inputs"},
                    ts_s=self._now,
                )
            return Ticket(
                request,
                status="rejected",
                reject_reason=(
                    "request has no inputs (already served once?);"
                    " executing servers need an inputs dict"
                ),
            )
        if (
            self.queue_limit is not None
            and self.batcher.pending >= self.queue_limit
        ):
            self.metrics.record_reject(name)
            if tracer.enabled:
                tracer.instant(
                    "reject", track="serve.requests", cat="serve",
                    args={"workload": name, "reason": "queue-full"},
                    ts_s=self._now,
                )
            return Ticket(
                request,
                status="rejected",
                reject_reason=(
                    f"pending queue full ({self.queue_limit} requests)"
                ),
            )
        try:
            key = self.pool.key_for(
                request.workload, request.target, request.params
            )
        except Exception as exc:
            # An unresolvable target (unknown kind, ...) is unservable:
            # reject at admission rather than failing a whole group.
            self.metrics.record_reject(name)
            if tracer.enabled:
                tracer.instant(
                    "reject", track="serve.requests", cat="serve",
                    args={"workload": name, "reason": "unservable"},
                    ts_s=self._now,
                )
            return Ticket(
                request,
                status="rejected",
                reject_reason=f"{type(exc).__name__}: {exc}",
            )
        request.request_id = self._seq
        ticket = Ticket(request, batch_key=key)
        entry = PendingRequest(self._seq, ticket, self._tick, self._now)
        self._seq += 1
        self.metrics.record_submit(name)
        if tracer.enabled:
            tracer.instant(
                "admit", track="serve.requests", cat="serve",
                args={
                    "rid": request.request_id,
                    "workload": name,
                    "key": self.pool.key_label(key),
                },
                ts_s=self._now,
            )
        if self.batcher.add(key, entry):
            self._flush(key)
        return ticket

    def submit_many(self, requests: Sequence[Request]) -> List[Ticket]:
        """Submit in order; one ticket per request."""
        return [self.submit(request) for request in requests]

    def drain(self) -> List[Response]:
        """Flush every pending group (oldest first) and return the
        responses those flushes produced.  An empty queue returns ``[]``
        without compiling anything or touching the thread pool."""
        self._check_open()
        responses: List[Response] = []
        for key in self.batcher.drain_keys():
            responses.extend(self._flush(key))
        return responses

    def flush_ticket(self, ticket: Ticket) -> Optional[Response]:
        """Force the group containing ``ticket``'s request to flush now
        (the synchronous-client path).  Returns its response."""
        self._check_open()
        if ticket.status == "queued" and ticket.batch_key is not None:
            # The admission-time key, not a recomputation: if the
            # workload mutated since submit, a fresh key would miss the
            # group the request is actually queued under.
            self._flush(ticket.batch_key)
        return ticket.response

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut down the persistent dispatch pool (pending requests stay
        queued; ``drain()`` before closing to complete them)."""
        self._executor.close()
        self._closed = True

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError("server is closed")

    # -- dispatch -----------------------------------------------------------
    def _flush(self, key: Tuple) -> List[Response]:
        group = self.batcher.take(key)
        if not group:
            return []
        first = group[0].ticket.request
        try:
            exe, loaded = self.pool.get(
                first.workload, first.target, first.params, key=key
            )
            if loaded:
                self._unpaid_staging.add(key)
            duration = self._batch_duration(
                exe, len(group), key in self._unpaid_staging, key
            )
            if self.execute:
                outputs = exe.run_batch(
                    [entry.ticket.request.inputs or {} for entry in group],
                    executor=self._executor,
                )
            else:
                outputs = [None] * len(group)
        except Exception as exc:
            # Isolate the failure to this group: its tickets fail
            # visibly (bad input names, a target that cannot execute,
            # an invalid compile), nothing is charged to the simulated
            # device, and every other pending/ future request is
            # unaffected.
            self._fail_group(group, exc)
            return []
        self._unpaid_staging.discard(key)  # staging charge now paid
        start = max(self._now, self._busy_until)
        finish = start + duration
        self._busy_until = finish
        self.metrics.record_flush(len(group))
        tracer = current_tracer()
        if tracer.enabled:
            # Device occupancy goes on its own track: flush starts jump
            # to the device clock (always >= the previous finish), so the
            # lane stays monotonic even while admits trail on the
            # arrival-clock "serve.requests" track.
            tracer.timed_span(
                f"flush {_workload_name(first)}",
                track="serve.device",
                cat="serve",
                dur_s=duration,
                ts_s=start,
                args={
                    "batch": len(group),
                    "key": self.pool.key_label(key),
                    "loaded": loaded,
                    "rids": [entry.ticket.request.request_id for entry in group],
                },
            )
            tracer.metrics.histogram("serve.batch_size").observe(len(group))
        responses: List[Response] = []
        for entry, outs in zip(group, outputs):
            request = entry.ticket.request
            response = Response(
                request_id=request.request_id,
                workload=_workload_name(request),
                outputs=outs,
                latency_s=finish - entry.arrival_s,
                queue_s=start - entry.arrival_s,
                execute_s=duration,
                batch_size=len(group),
                arrival_tick=entry.arrival_tick,
                finish_s=finish,
            )
            entry.ticket.response = response
            entry.ticket.status = "done"
            request.inputs = None  # release input arrays once served
            self.metrics.record_completion(
                response.workload, response.latency_s, response.queue_s
            )
            if tracer.enabled:
                tracer.instant(
                    "respond", track="serve.device", cat="serve",
                    args={
                        "rid": response.request_id,
                        "latency_s": response.latency_s,
                    },
                    ts_s=finish,
                )
            responses.append(response)
        return responses

    def _fail_group(self, group: Sequence[Any], exc: Exception) -> None:
        reason = f"{type(exc).__name__}: {exc}"
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant(
                "flush.fail", track="serve.device", cat="serve",
                args={"batch": len(group), "reason": reason},
            )
        for entry in group:
            ticket = entry.ticket
            ticket.status = "failed"
            ticket.error = reason
            # Unlike served requests, failed ones keep their inputs: an
            # innocent request caught in a poisoned group must stay
            # resubmittable as-is.
            self.metrics.record_failure(_workload_name(ticket.request))

    # -- timing model -------------------------------------------------------
    def _batch_duration(
        self, exe: Any, batch_size: int, staging_due: bool, key: Tuple
    ) -> float:
        """Simulated device occupancy of one flush.

        The batch executes the way ``run_batch`` actually runs it on the
        simulated machine — replicated across idle DPU groups — so the
        model splits one request's latency into:

        * **per flush**: server dispatch overhead + the target's kernel
          launch, paid once however many requests ride along;
        * **parallel**: kernel time, paid per *round* — the machine fits
          ``total_dpus // program_dpus`` concurrent program replicas, so
          a batch no larger than that runs its kernels simultaneously;
        * **serialized**: dynamic input H2D + D2H + host reduction, paid
          per request — every replica shares one host<->PIM bus;
        * **on load**: the constant-input (weight) share of H2D
          (``staging_due``), charged on the first successful flush after
          the pool (re)staged the program — the paper's "constant
          tensors transferred once" (§5.4).

        Targets without a DPU grid (rooflines, estimators) get one
        group, degrading gracefully to launch amortization only.
        """
        launch, kernel, serial, const_h2d = self._unit_costs(exe, key)
        groups = self._replica_groups(exe)
        rounds = -(-batch_size // groups)  # ceil division
        duration = (
            self.dispatch_overhead_s
            + launch
            + rounds * kernel
            + batch_size * serial
        )
        if staging_due:
            duration += const_h2d
        return duration

    def _unit_costs(
        self, exe: Any, key: Tuple
    ) -> Tuple[float, float, float, float]:
        """(launch, parallel kernel, serialized per-request, const H2D)."""
        cached = self._duration_cache.get(key)
        if cached is not None:
            return cached
        try:
            latency = getattr(exe.profile(), "latency", None)
        except Exception:
            latency = None
        if latency is not None and hasattr(latency, "total"):
            total = latency.total
            launch = getattr(latency, "launch", 0.0)
            h2d = getattr(latency, "h2d", 0.0)
            kernel = getattr(latency, "kernel", 0.0)
        else:  # latency-only targets (e.g. estimators)
            total, launch, h2d, kernel = exe.latency, 0.0, 0.0, 0.0
        const_h2d = h2d * self._const_input_fraction(exe.workload)
        serial = max(total - launch - kernel - const_h2d, 0.0)
        costs = (launch, kernel, serial, const_h2d)
        self._duration_cache[key] = costs
        return costs

    @staticmethod
    def _replica_groups(exe: Any) -> int:
        """How many copies of the program the machine runs concurrently."""
        program_dpus = getattr(getattr(exe, "lowered", None), "n_dpus", 0)
        total_dpus = getattr(
            getattr(getattr(exe, "target", None), "config", None), "n_dpus", 0
        )
        if program_dpus and total_dpus:
            return max(1, total_dpus // program_dpus)
        return 1

    @staticmethod
    def _const_input_fraction(workload: Any) -> float:
        """Byte share of inputs that stay resident (weights, KV cache)."""
        const_names = getattr(workload, "const_inputs", None)
        inputs = getattr(workload, "inputs", None)
        if not const_names or not inputs:
            return 0.0
        total = sum(t.buffer.nbytes for t in inputs)
        if not total:
            return 0.0
        const = sum(
            t.buffer.nbytes for t in inputs if t.name in const_names
        )
        return const / total

    # -- reporting ----------------------------------------------------------
    def metrics_dict(self) -> Dict:
        """Metrics + pool stats snapshot (the ``--json`` payload)."""
        return self.metrics.to_dict(
            elapsed_s=self.elapsed, pool_stats=self.pool.stats()
        )


class SyncClient:
    """Blocking in-process client: submit one request, flush, return.

    Batching still applies — a sync call rides with (and completes) any
    compatible requests already pending for the same program.
    """

    def __init__(self, server: Server) -> None:
        self.server = server

    def infer(
        self,
        workload: Any,
        inputs: Optional[Dict[str, np.ndarray]] = None,
        target: Any = "upmem",
        params: Optional[Dict[str, int]] = None,
        **named: np.ndarray,
    ) -> Response:
        data = dict(inputs or {})
        data.update(named)
        ticket = self.server.submit(
            Request(workload=workload, inputs=data, target=target, params=params)
        )
        if ticket.rejected:
            raise ServeError(f"request rejected: {ticket.reject_reason}")
        response = self.server.flush_ticket(ticket)
        if ticket.failed:
            raise ServeError(f"request failed: {ticket.error}")
        assert response is not None  # flush_ticket completes queued tickets
        return response
