"""Serving telemetry: admission counters and latency aggregation.

Everything here is computed from *simulated* per-request latencies (the
virtual clock and the targets' analytic/simulated performance models),
so the numbers are deterministic for a given traffic trace regardless of
host thread count or machine speed.  :meth:`ServerMetrics.to_dict`
returns a JSON-safe dict the harness embeds in its ``--json`` dumps.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["METRICS_SCHEMA_VERSION", "LatencyStats", "ServerMetrics"]

#: Version of the :meth:`ServerMetrics.to_dict` payload shape.
#:
#: History:
#:   1 — PR 4–8 (implicit; no version field): request-level counters,
#:       latency/queue-wait percentiles, per-workload buckets,
#:       batch histogram, optional pool stats.
#:   2 — PR 9: adds ``schema_version`` itself, token-level serving
#:       series ``ttft_ms``/``tpot_ms`` (time-to-first-token and
#:       time-per-output-token, populated by iteration-granularity
#:       servers), and ``per_tenant`` counters (submitted / rejected /
#:       rejected_slo / completed / failed / preempted / tokens).
METRICS_SCHEMA_VERSION = 2


class LatencyStats:
    """Streaming collection of latencies with percentile queries.

    Percentiles use the nearest-rank method on the sorted sample — exact,
    deterministic, and honest about small samples (no interpolation
    inventing latencies nobody experienced).
    """

    def __init__(self) -> None:
        self._values: List[float] = []
        self._sorted = True

    def add(self, value: float) -> None:
        self._values.append(float(value))
        self._sorted = False

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100].

        ``percentile(0)`` is defined as the sample **minimum** (and
        ``percentile(100)`` the maximum) — the nearest-rank rank formula
        clamps to rank 1, and that contract is explicit so dashboards
        can rely on ``p0``/``p100`` as min/max.  An empty sample returns
        0.0 for any ``p``; ``p`` outside [0, 100] raises.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile p must be in [0, 100], got {p}")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(1, math.ceil(p / 100.0 * len(self._values)))
        return self._values[min(rank, len(self._values)) - 1]

    @property
    def min(self) -> float:
        """Sample minimum (== ``percentile(0)``); 0.0 when empty."""
        return self.percentile(0)

    @property
    def max(self) -> float:
        """Sample maximum (== ``percentile(100)``); 0.0 when empty."""
        return self.percentile(100)

    def histogram(
        self, bins: Union[int, Sequence[float]] = 10, scale: float = 1.0
    ) -> Dict:
        """Bucket the sample into a JSON-safe histogram.

        ``bins`` is either a bin *count* (equal-width edges spanning
        [min, max] of the scaled sample) or an explicit increasing edge
        sequence (in scaled units).  Returns ``{"edges": [...],
        "counts": [...]}`` with ``len(counts) == len(edges) - 1``;
        values are assigned half-open ``[lo, hi)`` except the last bin,
        which is closed so the maximum lands inside.  Degenerate
        samples (empty, or all values equal with an integer ``bins``)
        still return well-formed edges.
        """
        values = sorted(v * scale for v in self._values)
        if isinstance(bins, int):
            if bins < 1:
                raise ValueError(f"bins must be >= 1, got {bins}")
            lo = values[0] if values else 0.0
            hi = values[-1] if values else 1.0
            if hi <= lo:  # all-equal or empty: give the bins width
                hi = lo + 1.0
            width = (hi - lo) / bins
            edges = [lo + i * width for i in range(bins)] + [hi]
        else:
            edges = [float(e) for e in bins]
            if len(edges) < 2 or edges != sorted(edges) or len(set(edges)) != len(edges):
                raise ValueError(
                    f"explicit edges must be >= 2 strictly increasing"
                    f" values, got {edges}"
                )
        counts = [0] * (len(edges) - 1)
        for v in values:
            if v < edges[0] or v > edges[-1]:
                continue  # explicit edges may not cover the sample
            for i in range(len(counts)):
                last = i == len(counts) - 1
                if edges[i] <= v < edges[i + 1] or (last and v == edges[-1]):
                    counts[i] += 1
                    break
        return {"edges": edges, "counts": counts}

    def to_dict(self, scale: float = 1.0) -> Dict[str, float]:
        """Summary dict; ``scale`` converts units (e.g. 1e3 for ms)."""
        return {
            "count": self.count,
            "mean": self.mean * scale,
            "p50": self.percentile(50) * scale,
            "p95": self.percentile(95) * scale,
            "p99": self.percentile(99) * scale,
        }


class ServerMetrics:
    """Counters + latency aggregation for one :class:`Server` lifetime."""

    def __init__(self) -> None:
        self.submitted = 0
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.flushes = 0
        self.latency = LatencyStats()
        self.queue_wait = LatencyStats()
        #: Time to first token per request (iteration-level serving).
        self.ttft = LatencyStats()
        #: Mean time per output token per request (decode cadence).
        self.tpot = LatencyStats()
        #: Flush-size histogram: batch size -> number of flushes.
        self.batch_sizes: Dict[int, int] = {}
        #: Workload name -> {submitted, rejected, completed} counters.
        self.per_workload: Dict[str, Dict[str, int]] = {}
        self._per_workload_latency: Dict[str, LatencyStats] = {}
        #: Tenant -> admission/completion counters (multi-tenant serving).
        self.per_tenant: Dict[str, Dict[str, int]] = {}

    # -- recording ----------------------------------------------------------
    def _workload_bucket(self, name: str) -> Dict[str, int]:
        return self.per_workload.setdefault(
            name,
            {"submitted": 0, "rejected": 0, "completed": 0, "failed": 0},
        )

    def record_submit(self, workload: str) -> None:
        self.submitted += 1
        self.accepted += 1
        self._workload_bucket(workload)["submitted"] += 1

    def record_reject(self, workload: str) -> None:
        self.submitted += 1
        self.rejected += 1
        bucket = self._workload_bucket(workload)
        bucket["submitted"] += 1
        bucket["rejected"] += 1

    def record_failure(self, workload: str) -> None:
        self.failed += 1
        self._workload_bucket(workload)["failed"] += 1

    def record_flush(self, batch_size: int) -> None:
        self.flushes += 1
        self.batch_sizes[batch_size] = self.batch_sizes.get(batch_size, 0) + 1

    def record_completion(
        self, workload: str, latency_s: float, queue_s: float
    ) -> None:
        self.completed += 1
        self.latency.add(latency_s)
        self.queue_wait.add(queue_s)
        self._workload_bucket(workload)["completed"] += 1
        self._per_workload_latency.setdefault(workload, LatencyStats()).add(
            latency_s
        )

    # -- token-level + tenant recording (iteration-granularity serving) ----
    def _tenant_bucket(self, tenant: str) -> Dict[str, int]:
        return self.per_tenant.setdefault(
            tenant,
            {
                "submitted": 0, "rejected": 0, "rejected_slo": 0,
                "completed": 0, "failed": 0, "preempted": 0, "tokens": 0,
            },
        )

    def record_tenant_submit(self, tenant: str) -> None:
        self._tenant_bucket(tenant)["submitted"] += 1

    def record_tenant_reject(self, tenant: str, slo: bool = False) -> None:
        bucket = self._tenant_bucket(tenant)
        bucket["submitted"] += 1
        bucket["rejected"] += 1
        if slo:
            # SLO-unsatisfiable at submit time — refused up front
            # instead of being left to time out in-queue.
            bucket["rejected_slo"] += 1

    def record_tenant_failure(self, tenant: str) -> None:
        self._tenant_bucket(tenant)["failed"] += 1

    def record_tenant_preemption(self, tenant: str) -> None:
        self._tenant_bucket(tenant)["preempted"] += 1

    def record_token_latencies(
        self, tenant: str, ttft_s: float, tpot_s: float, tokens: int
    ) -> None:
        """A finished request's token-level serving latencies: time to
        first token, mean time per subsequent output token, and the
        token count (for tenant throughput accounting)."""
        self.ttft.add(ttft_s)
        self.tpot.add(tpot_s)
        bucket = self._tenant_bucket(tenant)
        bucket["completed"] += 1
        bucket["tokens"] += tokens

    # -- reporting ----------------------------------------------------------
    @property
    def mean_batch(self) -> float:
        if not self.flushes:
            return 0.0
        total = sum(size * n for size, n in self.batch_sizes.items())
        return total / self.flushes

    def throughput(self, elapsed_s: float) -> float:
        """Completed requests per simulated second."""
        if elapsed_s <= 0:
            return 0.0
        return self.completed / elapsed_s

    def to_dict(
        self, elapsed_s: float = 0.0, pool_stats: Optional[Dict] = None
    ) -> Dict:
        """JSON-safe snapshot for ``--json`` dumps and reports."""
        payload = {
            "schema_version": METRICS_SCHEMA_VERSION,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "flushes": self.flushes,
            "mean_batch": self.mean_batch,
            "batch_histogram": {
                str(k): v for k, v in sorted(self.batch_sizes.items())
            },
            "elapsed_s": elapsed_s,
            "throughput_rps": self.throughput(elapsed_s),
            "latency_ms": self.latency.to_dict(scale=1e3),
            "queue_wait_ms": self.queue_wait.to_dict(scale=1e3),
            "ttft_ms": self.ttft.to_dict(scale=1e3),
            "tpot_ms": self.tpot.to_dict(scale=1e3),
            "per_tenant": {
                name: dict(counts)
                for name, counts in sorted(self.per_tenant.items())
            },
            "per_workload": {
                name: dict(
                    counts,
                    latency_ms=self._per_workload_latency[name].to_dict(1e3),
                )
                if name in self._per_workload_latency
                else dict(counts)
                for name, counts in sorted(self.per_workload.items())
            },
        }
        if pool_stats is not None:
            payload["pool"] = dict(pool_stats)
        return payload
