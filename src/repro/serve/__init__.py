"""``repro.serve`` — async inference serving over compiled PIM programs.

The subsystem that turns the compile stack into a request/response
service: a :class:`Server` admits :class:`Request` objects, groups them
by compiled-program identity under a deterministic virtual clock
(:class:`DynamicBatcher`), dispatches each flush through a resident
:class:`ExecutablePool` onto a persistent thread pool, and aggregates
simulated latency/throughput telemetry (:class:`ServerMetrics`).

Quick tour::

    from repro.serve import ExecutablePool, Request, Server
    from repro.workloads import mtv

    wl = mtv(512, 512)
    with Server(ExecutablePool(capacity=4), max_batch_size=16) as srv:
        tickets = srv.submit_many(
            [Request(wl, wl.random_inputs(seed=i)) for i in range(100)]
        )
        srv.drain()
        print(srv.metrics_dict()["latency_ms"]["p99"])

Everything is deterministic for a given traffic trace: batching
decisions consume only virtual-clock ticks, latencies come from the
targets' simulated performance models, and ``run_batch`` outputs are
bit-for-bit identical to individual ``run()`` calls at any thread count.
"""

from .metrics import METRICS_SCHEMA_VERSION, LatencyStats, ServerMetrics
from .pool import ExecutablePool
from .request import Request, Response, Ticket
from .scheduler import DynamicBatcher, PendingRequest
from .server import ServeError, Server, SyncClient
from .traffic import (
    MixEntry,
    TraceEvent,
    generate_trace,
    gptj_serving_mix,
    replay_trace,
)

__all__ = [
    "Request",
    "Response",
    "Ticket",
    "Server",
    "SyncClient",
    "ServeError",
    "DynamicBatcher",
    "PendingRequest",
    "ExecutablePool",
    "LatencyStats",
    "ServerMetrics",
    "METRICS_SCHEMA_VERSION",
    "MixEntry",
    "TraceEvent",
    "generate_trace",
    "gptj_serving_mix",
    "replay_trace",
]
