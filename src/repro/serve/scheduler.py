"""Dynamic batching policy over a deterministic virtual clock.

Pending requests group by their compilation key (workload structure,
target kind, schedule params — see
:meth:`~repro.serve.pool.ExecutablePool.key_for`); a group flushes when
it reaches ``max_batch_size`` or when its oldest member has aged
``max_wait_ticks`` virtual-clock ticks.  The decision path uses *only*
the tick counter — never wall time — so a given traffic trace always
produces the same batch composition, on any machine, at any host thread
count.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .request import Ticket

__all__ = ["PendingRequest", "DynamicBatcher"]


@dataclass
class PendingRequest:
    """A queued ticket plus its arrival coordinates."""

    seq: int  # global submission order — the determinism anchor
    ticket: Ticket
    arrival_tick: int
    arrival_s: float  # simulated arrival timestamp (metrics only)


class DynamicBatcher:
    """Size-or-age grouping of pending requests, FIFO within a group."""

    def __init__(self, max_batch_size: int = 16, max_wait_ticks: int = 4) -> None:
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_wait_ticks < 0:
            raise ValueError(
                f"max_wait_ticks must be >= 0, got {max_wait_ticks}"
            )
        self.max_batch_size = max_batch_size
        self.max_wait_ticks = max_wait_ticks
        self._groups: "OrderedDict[Tuple, List[PendingRequest]]" = OrderedDict()

    # -- queue state --------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(group) for group in self._groups.values())

    @property
    def pending(self) -> int:
        return len(self)

    def groups(self) -> Dict[Tuple, int]:
        """Current group sizes (diagnostics)."""
        return {key: len(group) for key, group in self._groups.items()}

    # -- mutation -----------------------------------------------------------
    def add(self, key: Tuple, entry: PendingRequest) -> bool:
        """Queue an entry under its batch key; True when the group is now
        full and must flush."""
        self._groups.setdefault(key, []).append(entry)
        return len(self._groups[key]) >= self.max_batch_size

    def take(self, key: Tuple) -> List[PendingRequest]:
        """Pop a whole group (empty list when the key has no entries)."""
        return self._groups.pop(key, [])

    # -- flush policy -------------------------------------------------------
    def due(self, tick: int) -> List[Tuple]:
        """Keys whose oldest entry has waited ``max_wait_ticks`` by
        ``tick``, ordered by that entry's submission sequence (oldest
        first) so flush order is reproducible."""
        ripe = [
            (group[0].seq, key)
            for key, group in self._groups.items()
            if group and tick - group[0].arrival_tick >= self.max_wait_ticks
        ]
        ripe.sort()
        return [key for _seq, key in ripe]

    def drain_keys(self) -> List[Tuple]:
        """Every non-empty key, oldest-first — the ``drain()`` order."""
        ripe = sorted(
            (group[0].seq, key) for key, group in self._groups.items() if group
        )
        return [key for _seq, key in ripe]
