"""Seeded synthetic traffic for serving experiments.

A *trace* is a list of :class:`TraceEvent` — (arrival tick, workload
name, per-request input seed) — generated once from an rng seed and then
replayable against any server configuration: every decision the server
makes depends only on the trace and its own deterministic knobs, so two
replays (or two batch-size settings over the same trace) are directly
comparable.

The default mix mirrors the paper's serving story: the GPT-J 6B MHA
MMTV at decode-time token counts, an FC-shaped MTV (scaled down so the
functional simulator executes promptly) and element-wise/reduction
tensor ops riding along.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..workloads import GPTJ_6B, Workload, mha_mmtv, mtv, red, va
from .request import Request, Ticket
from .server import Server

__all__ = [
    "TraceEvent",
    "MixEntry",
    "gptj_serving_mix",
    "generate_trace",
    "replay_trace",
]

#: Arrival patterns understood by :func:`generate_trace`.
PATTERNS = ("burst", "uniform", "poisson")


@dataclass(frozen=True)
class TraceEvent:
    """One request arrival: when, which program, which inputs."""

    tick: int
    workload: str  # key into the trace's workload mix
    input_seed: int


@dataclass(frozen=True)
class MixEntry:
    """One mix member: the workload plus the schedule params requests
    are served with (``None`` lets the pool pick — canonical defaults,
    or database-tuned params for a ``tuned=True`` pool)."""

    workload: Workload
    params: Optional[Dict[str, int]] = None


def gptj_serving_mix(tokens: int = 16) -> Dict[str, MixEntry]:
    """Name -> :class:`MixEntry` mix for the serving benchmark.

    ``mha_mmtv`` is the genuine GPT-J 6B attention shape at ``tokens``
    decode positions; ``fc_mtv`` keeps the FC layer's matrix-vector
    structure at reduced size (the full 16384x4096 FC is minutes of
    functional simulation per request); ``va``/``red`` are the paper's
    element-wise and reduction tensor ops as background traffic.

    Each entry still pins explicit schedule params (pinned params are
    part of the batching key, so the benchmark's grouping story stays
    deterministic), but at PR-6-era grid sizes: the vectorized
    functional simulator executes the DPU grid as a lane axis, so a
    64-DPU grid costs barely more host time than the 8-DPU grids the
    scalar interpreter forced.  Grids stay well under the 2048-DPU
    machine so a flush still replicates across idle DPU groups —
    exactly the regime a PIM server batches for.
    """
    fc = mtv(128, 256)
    fc.params.update({"model": GPTJ_6B.name, "layer": "fc_scaled"})
    return {
        "mha_mmtv": MixEntry(
            mha_mmtv(GPTJ_6B, batch=1, tokens=tokens),
            {
                "i_dpus": 16,
                "j_dpus": 4,
                "k_dpus": 1,
                "n_tasklets": 8,
                "cache": 256,
                "host_threads": 4,
                "unroll": 0,
            },
        ),
        "fc_mtv": MixEntry(
            fc,
            {
                "m_dpus": 64,
                "k_dpus": 1,
                "n_tasklets": 8,
                "cache": 128,
                "host_threads": 2,
                "unroll": 0,
            },
        ),
        "va": MixEntry(
            va(32768),
            {"n_dpus": 64, "n_tasklets": 8, "cache": 128, "unroll": 0},
        ),
        "red": MixEntry(
            red(32768),
            {
                "n_dpus": 64,
                "n_tasklets": 8,
                "cache": 128,
                "dpu_combine": 0,
                "host_threads": 2,
                "unroll": 0,
            },
        ),
    }


def generate_trace(
    n_requests: int,
    workloads: Sequence[str],
    pattern: str = "burst",
    seed: int = 0,
    burst: int = 8,
    gap_ticks: int = 4,
) -> List[TraceEvent]:
    """Deterministic arrival trace over a named workload mix.

    Patterns (all on the virtual tick grid):

    * ``burst`` — ``burst`` requests land together every ``gap_ticks``
      (the bursty decode traffic a batcher exists for);
    * ``uniform`` — one request per tick;
    * ``poisson`` — Poisson-distributed inter-arrival ticks with mean
      ``gap_ticks / burst`` (open-loop random load).

    Workloads are drawn independently per event from ``workloads`` with
    equal probability; ``input_seed`` is unique per event so every
    request carries distinct input tensors.
    """
    if pattern not in PATTERNS:
        raise ValueError(f"pattern must be one of {PATTERNS}, got {pattern!r}")
    if not workloads:
        raise ValueError("workloads must name at least one mix entry")
    rng = np.random.default_rng(seed)
    names = list(workloads)
    events: List[TraceEvent] = []
    tick = 0
    for i in range(n_requests):
        if pattern == "burst":
            tick = (i // max(1, burst)) * gap_ticks
        elif pattern == "uniform":
            tick = i
        else:  # poisson
            tick += int(rng.poisson(gap_ticks / max(1, burst)))
        name = names[int(rng.integers(len(names)))]
        events.append(
            TraceEvent(tick=tick, workload=name, input_seed=seed * 100003 + i)
        )
    return events


def replay_trace(
    server: Server,
    trace: Sequence[TraceEvent],
    mix: Dict[str, MixEntry],
    target: str = "upmem",
    with_inputs: bool = True,
) -> List[Ticket]:
    """Drive a server through a trace: tick to each arrival, submit,
    drain at the end.  Returns every ticket in submission order.

    ``with_inputs=False`` submits input-less requests — pair it with a
    ``Server(execute=False)`` timing-only study.
    """
    tickets: List[Ticket] = []
    for event in trace:
        if event.tick > server.current_tick:
            server.tick(event.tick - server.current_tick)
        entry = mix[event.workload]
        inputs = (
            entry.workload.random_inputs(seed=event.input_seed)
            if with_inputs
            else None
        )
        tickets.append(
            server.submit(
                Request(
                    workload=entry.workload,
                    inputs=inputs,
                    target=target,
                    params=entry.params,
                )
            )
        )
    server.drain()
    return tickets
