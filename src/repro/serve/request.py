"""Request/response surface of the serving subsystem.

A :class:`Request` names a workload, its input tensors and the target to
run on; the server answers with a :class:`Response` carrying the outputs
plus the simulated timing the request experienced (queue wait inside the
virtual clock, execution share of its batch).  :meth:`Server.submit
<repro.serve.server.Server.submit>` returns a :class:`Ticket` — the
in-process handle tracking one request from admission to completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["Request", "Response", "Ticket"]


@dataclass
class Request:
    """One inference call: a workload instance plus concrete inputs.

    Requests batch together only when they agree on the full compilation
    identity — workload structure, target kind and schedule params — so
    a flush always executes one compiled program.
    """

    workload: Any  # repro.workloads.Workload
    inputs: Optional[Dict[str, np.ndarray]] = None
    target: Any = "upmem"  # registered kind string or Target instance
    params: Optional[Dict[str, int]] = None
    #: Assigned by the server at admission (submission order).
    request_id: Optional[int] = None


@dataclass
class Response:
    """Outcome of one served request."""

    request_id: int
    workload: str
    #: Output arrays — bit-for-bit what ``Executable.run(inputs)`` would
    #: return (``None`` when the server runs with ``execute=False``).
    outputs: Optional[List[np.ndarray]]
    #: End-to-end simulated latency: queue wait + batch execution.
    latency_s: float
    #: Simulated seconds spent waiting (batching delay + device busy).
    queue_s: float
    #: Simulated duration of the batch this request rode in.
    execute_s: float
    #: Size of that batch.
    batch_size: int
    #: Virtual-clock tick the request arrived on.
    arrival_tick: int
    #: Simulated timestamp the batch finished.
    finish_s: float


@dataclass
class Ticket:
    """In-process future: admission verdict now, response after flush."""

    request: Request
    status: str = "queued"  # queued | rejected | done | failed
    response: Optional[Response] = None
    #: Why admission failed (empty for accepted requests).
    reject_reason: str = field(default="")
    #: Why execution failed (set with ``status="failed"`` when the
    #: flush carrying this request raised — bad input names, a target
    #: that cannot execute, ...).
    error: str = field(default="")
    #: Server-internal: the batching key assigned at admission.  Kept on
    #: the ticket so forced flushes target the group the request was
    #: actually queued under, even if the workload mutated since.
    batch_key: Optional[tuple] = None

    @property
    def done(self) -> bool:
        return self.status == "done"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    @property
    def failed(self) -> bool:
        return self.status == "failed"
