"""Executable residency pool: lazy compilation with LRU eviction.

A serving process cannot afford to recompile per request, nor to keep
every program it has ever seen resident (real PIM deployments are bound
by MRAM capacity for staged weights; here residency also carries the
compiled module).  The pool compiles lazily per (workload, target,
params) key, reuses the process-wide artifact cache underneath (so an
evicted-then-reloaded program re-wraps the cached lowered module instead
of re-lowering), warm-starts schedule parameters from a persistent
tuning database when ``tuned=True``, and evicts least-recently-used
entries beyond ``capacity``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple

from ..pipeline import workload_signature
from ..target import Executable, Target, get_target

__all__ = ["ExecutablePool"]


def _target_identity(target: Any) -> Tuple:
    """(kind, config repr, cache token): the compile-relevant identity.

    Mirrors what the artifact cache keys on — kind alone would alias
    differently-configured instances of one backend, silently batching
    requests onto (and timing them against) the wrong machine.  A kind
    string resolves through the registry *per call* (construction is
    cheap), so it shares identity with an explicitly constructed
    default target and tracks ``register_target(..., overwrite=True)``
    re-registrations instead of serving a stale cached identity.
    """
    if not isinstance(target, Target):
        target = get_target(str(target))
    return (
        target.kind,
        repr(getattr(target, "config", None)),
        target.cache_token(),
    )


class ExecutablePool:
    """LRU cache of compiled :class:`~repro.target.Executable` objects."""

    def __init__(
        self,
        capacity: int = 8,
        opt_level: str = "O3",
        tuned: bool = False,
        db: Optional[Any] = None,
        tune_trials: int = 64,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.opt_level = opt_level
        #: With ``tuned=True`` (and typically a ``db`` pointing at a
        #: persistent :class:`~repro.autotune.TuningCache`), compiles
        #: resolve autotuned parameters — a stored completed search is
        #: a single file scan, so serving warm-starts from prior tuning
        #: runs without searching inline.
        self.tuned = tuned
        self.db = db
        self.tune_trials = tune_trials
        self._entries: "OrderedDict[Tuple, Executable]" = OrderedDict()
        self._pinned: set = set()
        self._key_hits: Dict[Tuple, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- keying -------------------------------------------------------------
    @staticmethod
    def key_for(
        workload: Any, target: Any, params: Optional[Dict[str, int]] = None
    ) -> Tuple:
        """Batching/residency identity of one compiled program.

        Structural workload signature (not object identity) + target
        identity (kind, configuration, cache token) + explicit params:
        two separately constructed but equal workloads share an
        executable; differently parameterized or differently configured
        requests never do.  The signature walks the workload's compute
        expression, so it is memoized on the instance — a traffic
        stream re-submitting the same workload object derives it once.
        The memo revalidates against ``workload.params`` (the one field
        the codebase mutates in place, e.g. the GPT-J factories tagging
        model/layer), so a post-construction params update never serves
        a stale key; tensors and compute expressions are treated as
        immutable, as everywhere else in the repository.
        """
        fingerprint = tuple(
            sorted((getattr(workload, "params", None) or {}).items())
        )
        memo = getattr(workload, "_structural_signature", None)
        if memo is None or memo[0] != fingerprint:
            memo = (fingerprint, workload_signature(workload))
            try:
                workload._structural_signature = memo
            except (AttributeError, TypeError):  # frozen/slotted objects
                pass
        return (
            memo[1],
            _target_identity(target),
            tuple(sorted((params or {}).items())),
        )

    @staticmethod
    def key_label(key: Tuple) -> str:
        """Readable, deterministic label for a pool key.

        ``"<workload>@<target-kind>[params]#<digest>"`` — the digest (8
        hex chars of the full key's sha1) keeps labels unique when two
        structurally different workloads share a name, while the prefix
        keeps stats/trace output human-scannable.
        """
        try:
            name = str(key[0][0])
        except (IndexError, TypeError):
            name = "?"
        try:
            kind = str(key[1][0])
        except (IndexError, TypeError):
            kind = "?"
        params = ""
        try:
            if key[2]:
                params = "[" + ",".join(f"{k}={v}" for k, v in key[2]) + "]"
        except (IndexError, TypeError):
            pass
        digest = hashlib.sha1(repr(key).encode()).hexdigest()[:8]
        return f"{name}@{kind}{params}#{digest}"

    # -- lookup -------------------------------------------------------------
    def get(
        self,
        workload: Any,
        target: Any = "upmem",
        params: Optional[Dict[str, int]] = None,
        key: Optional[Tuple] = None,
    ) -> Tuple[Executable, bool]:
        """Resident executable for the key, compiling on miss.

        Returns ``(executable, loaded)`` where ``loaded`` says this call
        compiled/staged the program (a pool miss) — the server charges
        the one-time weight-staging transfer to loading flushes only.
        ``key`` accepts a precomputed :meth:`key_for` result so hot
        paths that already hold one (the server computes it at submit)
        skip re-deriving the structural workload signature.
        """
        from ..obs import current_tracer

        tracer = current_tracer()
        if key is None:
            key = self.key_for(workload, target, params)
        exe = self._entries.get(key)
        if exe is not None:
            self.hits += 1
            self._key_hits[key] = self._key_hits.get(key, 0) + 1
            self._entries.move_to_end(key)
            if tracer.enabled:
                tracer.instant(
                    "pool.hit", track="pool", cat="pool",
                    args={"key": self.key_label(key)},
                )
            return exe, False
        self.misses += 1
        if tracer.enabled:
            tracer.instant(
                "pool.miss", track="pool", cat="pool",
                args={"key": self.key_label(key)},
            )
            with tracer.span(
                "pool.load", track="pool", cat="pool",
                args={"key": self.key_label(key)},
            ):
                exe = self._compile(workload, target, params)
        else:
            exe = self._compile(workload, target, params)
        self._entries[key] = exe
        while len(self._entries) > self.capacity:
            victim = next(
                (k for k in self._entries if k not in self._pinned), None
            )
            if victim is None:
                # Every resident program is pinned: run over capacity
                # rather than drop something a live decode loop holds.
                break
            del self._entries[victim]
            self.evictions += 1
            if tracer.enabled:
                tracer.instant(
                    "pool.evict", track="pool", cat="pool",
                    args={"key": self.key_label(victim)},
                )
        return exe, True

    def _compile(
        self, workload: Any, target: Any, params: Optional[Dict[str, int]]
    ) -> Executable:
        from ..target.compile import compile as _compile

        return _compile(
            workload,
            target=get_target(target),
            opt_level=self.opt_level,
            params=params,
            tuned=self.tuned and params is None,
            db=self.db,
            tune_trials=self.tune_trials,
        )

    def prewarm(
        self, specs: Iterable[Tuple[Any, Any, Optional[Dict[str, int]]]]
    ) -> int:
        """Compile (workload, target, params) triples ahead of traffic.

        Routes through :meth:`get`, so prewarmed programs are resident
        (up to ``capacity``) and their lowered modules land in the
        process-wide artifact cache — steady-state flushes then never
        stall on compilation even after an eviction.  Returns the number
        of programs this call actually compiled.
        """
        loaded = 0
        for workload, target, params in specs:
            _, was_loaded = self.get(workload, target, params)
            loaded += int(was_loaded)
        return loaded

    # -- residency control --------------------------------------------------
    def pin(self, key: Tuple) -> None:
        """Exempt ``key`` from LRU eviction until :meth:`unpin`.

        A decode loop's current working set (the capacity-epoch attention
        programs plus the capacity-independent FC/glue programs every
        step reuses) must stay resident across thousands of steps even
        while other traffic churns the pool; pinning models the MRAM
        reservation a real deployment would hold for them.  Pinning a
        key not (yet) resident is allowed — it takes effect when the key
        is compiled.  If every resident entry is pinned the pool runs
        over ``capacity`` instead of evicting.
        """
        from ..obs import current_tracer

        self._pinned.add(key)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant(
                "pool.pin", track="pool", cat="pool",
                args={"key": self.key_label(key)},
            )

    def unpin(self, key: Tuple) -> None:
        """Release a pin; the entry rejoins the ordinary LRU order.
        Unpinning an unknown key is a no-op."""
        from ..obs import current_tracer

        self._pinned.discard(key)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant(
                "pool.unpin", track="pool", cat="pool",
                args={"key": self.key_label(key)},
            )

    def pinned_keys(self) -> set:
        return set(self._pinned)

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "resident": len(self._entries),
            "pinned": len(self._pinned),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            # Per-program hit counts under readable labels, sorted so the
            # dict is deterministic for JSON dumps and test assertions.
            "per_key_hits": dict(
                sorted(
                    (self.key_label(k), n) for k, n in self._key_hits.items()
                )
            ),
        }
