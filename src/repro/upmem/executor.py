"""Functional execution of lowered modules on the simulated UPMEM system.

Runs the full offload sequence per DPU — H2D tile copies, kernel
execution, D2H copies — followed by the host post-processing statements,
against numpy buffers.  This validates the entire compiler (schedules,
boundary checks, caching, address calculation, transfers, hierarchical
reduction) end to end.

Three execution modes, selected by the ``REPRO_SIM_MODE`` environment
variable or a per-executor override:

``vector`` (default)
    The TIR->NumPy compiled plan from :mod:`repro.upmem.vectorize`:
    all grid points of a chunk execute as one batched lane axis.
``scalar``
    The reference :class:`~repro.upmem.interp.Interpreter`, walking the
    AST point by point.
``verify``
    Runs *both* paths and asserts their outputs are identical down to
    the last bit (the equivalence gate); raises :class:`VerifyMismatch`
    otherwise.  Results returned are the vector path's.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..lowering import LoweredModule, TransferSpec
from ..tir import Buffer, Var
from .interp import Interpreter, _np_dtype

__all__ = ["FunctionalExecutor", "VerifyMismatch", "sim_mode", "SIM_MODES"]

SIM_MODES = ("vector", "scalar", "verify")


class VerifyMismatch(AssertionError):
    """The vector and scalar paths disagreed on output bytes."""


def sim_mode(override: Optional[str] = None) -> str:
    """Resolve the functional-simulation mode (env knob, default vector)."""
    mode = override or os.environ.get("REPRO_SIM_MODE", "vector")
    mode = mode.strip().lower()
    if mode not in SIM_MODES:
        raise ValueError(
            f"REPRO_SIM_MODE must be one of {SIM_MODES}, got {mode!r}"
        )
    return mode


class FunctionalExecutor:
    """Executes a :class:`LoweredModule` for correctness checking.

    The offload sequence is exposed in three phases — :meth:`prepare`
    (bind inputs, allocate outputs, run host-side preamble),
    :meth:`run_points` (simulate a subset of the DPU grid) and
    :meth:`finalize` (host post-processing) — so callers can shard grid
    points across threads: every DPU reads shared input arrays and
    writes its own disjoint tile regions, making per-DPU-group execution
    order-independent.  :meth:`run` composes the three sequentially.
    """

    def __init__(
        self, module: LoweredModule, mode: Optional[str] = None
    ) -> None:
        self.module = module
        self.mode = mode  # None -> read REPRO_SIM_MODE per phase
        self._grid_points: Optional[List[tuple]] = None

    # -- mode plumbing ------------------------------------------------------
    def _mode(self) -> str:
        return sim_mode(self.mode)

    def _plan(self):
        from .vectorize import plan_for

        return plan_for(self.module)

    def _host_program(self, which: str):
        from .vectorize import host_program_for

        return host_program_for(self.module, which)

    def prepare(self, inputs: Dict[str, np.ndarray]) -> Dict[Buffer, np.ndarray]:
        """Bind named inputs, allocate outputs, run the host preamble."""
        module = self.module
        arrays: Dict[Buffer, np.ndarray] = {}
        for buf in module.inputs:
            try:
                arr = inputs[buf.name]
            except KeyError:
                raise KeyError(
                    f"missing input {buf.name!r}; expected"
                    f" {[b.name for b in module.inputs]}"
                ) from None
            arr = np.asarray(arr, dtype=_np_dtype(buf))
            if tuple(arr.shape) != buf.shape:
                raise ValueError(
                    f"input {buf.name!r} has shape {arr.shape}, expected"
                    f" {buf.shape}"
                )
            arrays[buf] = arr
        for buf in module.outputs + module.intermediates:
            arrays.setdefault(buf, np.zeros(buf.shape, _np_dtype(buf)))

        mode = self._mode()
        if not module.host_pre:
            return arrays
        if mode == "scalar":
            host = Interpreter(arrays)
            for stmt in module.host_pre:
                host.run(stmt, {})
            return arrays
        if mode == "vector":
            self._host_program("pre").run(arrays)
            return arrays
        # verify: run the compiled program for real, the interpreter on
        # copies, and compare every buffer bitwise.
        shadow = {buf: arr.copy() for buf, arr in arrays.items()}
        self._host_program("pre").run(arrays)
        host = Interpreter(shadow)
        for stmt in module.host_pre:
            host.run(stmt, {})
        _compare_buffers(arrays, shadow, "host_pre")
        return arrays

    def grid_points(self) -> List[tuple]:
        """All DPU grid coordinates in canonical (row-major) order."""
        if self._grid_points is None:
            extents = [dim.extent for dim in self.module.grid]
            self._grid_points = list(
                itertools.product(*[range(e) for e in extents])
            )
        return self._grid_points

    def run_points(
        self,
        arrays: Dict[Buffer, np.ndarray],
        points: Sequence[tuple],
    ) -> None:
        """Simulate the given DPU grid points against shared arrays."""
        mode = self._mode()
        if mode == "scalar":
            self._run_points_scalar(arrays, points)
            return
        if mode == "vector":
            self._plan().run_points(arrays, points)
            return
        self._run_points_verify(arrays, points)

    def finalize(self, arrays: Dict[Buffer, np.ndarray]) -> List[np.ndarray]:
        """Run host post-processing; returns the output arrays."""
        module = self.module
        mode = self._mode()
        if module.host_post:
            if mode == "scalar":
                host = Interpreter(arrays)
                for stmt in module.host_post:
                    host.run(stmt, {})
            elif mode == "vector":
                self._host_program("post").run(arrays)
            else:
                shadow = {buf: arr.copy() for buf, arr in arrays.items()}
                self._host_program("post").run(arrays)
                host = Interpreter(shadow)
                for stmt in module.host_post:
                    host.run(stmt, {})
                _compare_buffers(arrays, shadow, "host_post")
        return [arrays[buf] for buf in module.outputs]

    def run(self, inputs: Dict[str, np.ndarray]) -> List[np.ndarray]:
        """Execute with named input arrays; returns the output arrays."""
        arrays = self.prepare(inputs)
        self.run_points(arrays, self.grid_points())
        return self.finalize(arrays)

    # -- scalar reference path ----------------------------------------------
    def _run_points_scalar(
        self,
        arrays: Dict[Buffer, np.ndarray],
        points: Sequence[tuple],
    ) -> None:
        module = self.module
        grid_vars = module.grid_vars()
        # One shared local store and Interpreter for the whole shard:
        # global entries alias the shared arrays, per-DPU tiles are
        # re-bound (fresh) for every point below.
        local: Dict[Buffer, np.ndarray] = dict(arrays)
        interp = Interpreter(local)
        baseline = None
        for point in points:
            env: Dict[Var, int] = dict(zip(grid_vars, point))
            self._run_dpu(arrays, local, interp, env)
            if baseline is None:
                baseline = set(local)
            elif len(local) != len(baseline):
                # Kernel-side Allocate: drop so the next point re-zeros.
                for buf in set(local) - baseline:
                    del local[buf]

    def _run_dpu(
        self,
        global_arrays: Dict[Buffer, np.ndarray],
        local: Dict[Buffer, np.ndarray],
        interp: Interpreter,
        env: Dict[Var, int],
    ) -> None:
        module = self.module

        # H2D: fill MRAM tiles from the valid global region, zero-pad the
        # rest (local padding, §5.3.1).
        for spec in module.transfers:
            tile = np.zeros(spec.shape, _np_dtype(spec.local_buffer))
            local[spec.local_buffer] = tile
            if spec.direction == "h2d":
                src = global_arrays[spec.global_buffer]
                base, valid = self._valid_region(spec, interp, env)
                if all(v > 0 for v in valid):
                    src_slices = tuple(
                        slice(b, b + v) for b, v in zip(base, valid)
                    )
                    dst_slices = tuple(slice(0, v) for v in valid)
                    tile[dst_slices] = src[src_slices]
        for buf in module.mram_internal:
            local[buf] = np.zeros(buf.shape, _np_dtype(buf))
        for buf in module.wram_buffers:
            local[buf] = np.zeros(buf.shape, _np_dtype(buf))

        interp.run(module.kernel, dict(env))

        # D2H: copy the valid tile region back to the host tensor.
        for spec in module.transfers:
            if spec.direction != "d2h":
                continue
            dst = global_arrays[spec.global_buffer]
            tile = local[spec.local_buffer]
            base, valid = self._valid_region(spec, interp, env)
            if all(v > 0 for v in valid):
                dst_slices = tuple(slice(b, b + v) for b, v in zip(base, valid))
                src_slices = tuple(slice(0, v) for v in valid)
                dst[dst_slices] = tile[src_slices]

    # -- equivalence gate ----------------------------------------------------
    def _run_points_verify(
        self,
        arrays: Dict[Buffer, np.ndarray],
        points: Sequence[tuple],
    ) -> None:
        """Run both paths; compare this shard's D2H regions bitwise.

        Only the regions written by *these* points are compared — under
        ``run_batch`` other threads own the rest of the output arrays.
        """
        points = list(points)
        module = self.module
        d2h = module.transfer("d2h")
        shadow = dict(arrays)
        for spec in d2h:
            shadow[spec.global_buffer] = arrays[spec.global_buffer].copy()
        self._plan().run_points(arrays, points)
        self._run_points_scalar(shadow, points)
        probe = Interpreter({})
        grid_vars = module.grid_vars()
        for point in points:
            env = dict(zip(grid_vars, point))
            for spec in d2h:
                base, valid = self._valid_region(spec, probe, env)
                if not all(v > 0 for v in valid):
                    continue
                region = tuple(
                    slice(b, b + v) for b, v in zip(base, valid)
                )
                got = arrays[spec.global_buffer][region]
                want = shadow[spec.global_buffer][region]
                if got.tobytes() != want.tobytes():
                    raise VerifyMismatch(
                        f"vector/scalar mismatch in {spec.global_buffer.name}"
                        f" at grid point {point}"
                    )

    @staticmethod
    def _valid_region(
        spec: TransferSpec, interp: Interpreter, env: Dict[Var, int]
    ):
        base = [int(interp.eval(b, env)) for b in spec.base]
        valid = [
            max(0, min(ext, dim - b))
            for b, ext, dim in zip(base, spec.shape, spec.global_buffer.shape)
        ]
        return base, valid


def _compare_buffers(
    got: Dict[Buffer, np.ndarray],
    want: Dict[Buffer, np.ndarray],
    phase: str,
) -> None:
    for buf, arr in want.items():
        other = got.get(buf)
        if other is None or other.tobytes() != arr.tobytes():
            raise VerifyMismatch(
                f"vector/scalar mismatch in {buf.name} after {phase}"
            )
