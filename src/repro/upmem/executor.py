"""Functional execution of lowered modules on the simulated UPMEM system.

Runs the full offload sequence per DPU — H2D tile copies, kernel
interpretation, D2H copies — followed by the host post-processing
statements, against numpy buffers.  This validates the entire compiler
(schedules, boundary checks, caching, address calculation, transfers,
hierarchical reduction) end to end.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..lowering import LoweredModule, TransferSpec
from ..tir import Buffer, Var
from .interp import Interpreter, _np_dtype

__all__ = ["FunctionalExecutor"]


class FunctionalExecutor:
    """Executes a :class:`LoweredModule` for correctness checking.

    The offload sequence is exposed in three phases — :meth:`prepare`
    (bind inputs, allocate outputs, run host-side preamble),
    :meth:`run_points` (simulate a subset of the DPU grid) and
    :meth:`finalize` (host post-processing) — so callers can shard grid
    points across threads: every DPU reads shared input arrays and
    writes its own disjoint tile regions, making per-DPU-group execution
    order-independent.  :meth:`run` composes the three sequentially.
    """

    def __init__(self, module: LoweredModule) -> None:
        self.module = module

    def prepare(self, inputs: Dict[str, np.ndarray]) -> Dict[Buffer, np.ndarray]:
        """Bind named inputs, allocate outputs, run the host preamble."""
        module = self.module
        arrays: Dict[Buffer, np.ndarray] = {}
        for buf in module.inputs:
            try:
                arr = inputs[buf.name]
            except KeyError:
                raise KeyError(
                    f"missing input {buf.name!r}; expected"
                    f" {[b.name for b in module.inputs]}"
                ) from None
            arr = np.asarray(arr, dtype=_np_dtype(buf))
            if tuple(arr.shape) != buf.shape:
                raise ValueError(
                    f"input {buf.name!r} has shape {arr.shape}, expected"
                    f" {buf.shape}"
                )
            arrays[buf] = arr
        for buf in module.outputs + module.intermediates:
            arrays.setdefault(buf, np.zeros(buf.shape, _np_dtype(buf)))

        host = Interpreter(arrays)
        for stmt in module.host_pre:
            host.run(stmt, {})
        return arrays

    def grid_points(self) -> List[tuple]:
        """All DPU grid coordinates in canonical (row-major) order."""
        extents = [dim.extent for dim in self.module.grid]
        return list(itertools.product(*[range(e) for e in extents]))

    def run_points(
        self,
        arrays: Dict[Buffer, np.ndarray],
        points: Sequence[tuple],
    ) -> None:
        """Simulate the given DPU grid points against shared arrays."""
        grid_vars = self.module.grid_vars()
        for point in points:
            env: Dict[Var, int] = dict(zip(grid_vars, point))
            self._run_dpu(arrays, env)

    def finalize(self, arrays: Dict[Buffer, np.ndarray]) -> List[np.ndarray]:
        """Run host post-processing; returns the output arrays."""
        module = self.module
        host = Interpreter(arrays)
        for stmt in module.host_post:
            host.run(stmt, {})
        return [arrays[buf] for buf in module.outputs]

    def run(self, inputs: Dict[str, np.ndarray]) -> List[np.ndarray]:
        """Execute with named input arrays; returns the output arrays."""
        arrays = self.prepare(inputs)
        self.run_points(arrays, self.grid_points())
        return self.finalize(arrays)

    # -- one DPU ------------------------------------------------------------
    def _run_dpu(self, global_arrays: Dict[Buffer, np.ndarray], env: Dict[Var, int]):
        module = self.module
        local: Dict[Buffer, np.ndarray] = dict(global_arrays)
        interp = Interpreter(local)

        # H2D: fill MRAM tiles from the valid global region, zero-pad the
        # rest (local padding, §5.3.1).
        for spec in module.transfers:
            tile = np.zeros(spec.shape, _np_dtype(spec.local_buffer))
            local[spec.local_buffer] = tile
            if spec.direction == "h2d":
                src = global_arrays[spec.global_buffer]
                base, valid = self._valid_region(spec, interp, env)
                if all(v > 0 for v in valid):
                    src_slices = tuple(
                        slice(b, b + v) for b, v in zip(base, valid)
                    )
                    dst_slices = tuple(slice(0, v) for v in valid)
                    tile[dst_slices] = src[src_slices]
        for buf in module.mram_internal:
            local[buf] = np.zeros(buf.shape, _np_dtype(buf))
        for buf in module.wram_buffers:
            local[buf] = np.zeros(buf.shape, _np_dtype(buf))

        interp.run(module.kernel, dict(env))

        # D2H: copy the valid tile region back to the host tensor.
        for spec in module.transfers:
            if spec.direction != "d2h":
                continue
            dst = global_arrays[spec.global_buffer]
            tile = local[spec.local_buffer]
            base, valid = self._valid_region(spec, interp, env)
            if all(v > 0 for v in valid):
                dst_slices = tuple(slice(b, b + v) for b, v in zip(base, valid))
                src_slices = tuple(slice(0, v) for v in valid)
                dst[dst_slices] = tile[src_slices]

    @staticmethod
    def _valid_region(
        spec: TransferSpec, interp: Interpreter, env: Dict[Var, int]
    ):
        base = [int(interp.eval(b, env)) for b in spec.base]
        valid = [
            max(0, min(ext, dim - b))
            for b, ext, dim in zip(base, spec.shape, spec.global_buffer.shape)
        ]
        return base, valid
