"""System-level performance model: transfers, kernel, host post-processing.

Combines the per-DPU timing walk (:mod:`repro.upmem.analyzer`) with the
host-link transfer model and the host CPU model to produce the same
latency breakdown the paper reports (H2D / Kernel / D2H / host reduction,
Figs. 9–10), plus the per-DPU cycle attribution used for Fig. 13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lowering import LoweredModule
from ..tir import ForKind, For, Stmt
from .analyzer import DpuCost, KernelAnalyzer, grouped
from .config import DEFAULT_CONFIG, UpmemConfig
from .isa import Counts

__all__ = ["Latency", "DpuProfile", "ProfileResult", "PerformanceModel"]


@dataclass
class Latency:
    """End-to-end latency breakdown in seconds."""

    h2d: float = 0.0
    kernel: float = 0.0
    d2h: float = 0.0
    host: float = 0.0
    launch: float = 0.0

    @property
    def total(self) -> float:
        return self.h2d + self.kernel + self.d2h + self.host + self.launch

    @property
    def d2h_plus_host(self) -> float:
        """The paper's combined "D2H + reduction" bar."""
        return self.d2h + self.host

    def scaled(self, factor: float) -> "Latency":
        return Latency(
            self.h2d * factor,
            self.kernel * factor,
            self.d2h * factor,
            self.host * factor,
            self.launch * factor,
        )


@dataclass
class DpuProfile:
    """Cycle attribution of the busiest DPU (Fig. 13)."""

    cycles: float = 0.0
    issuable: float = 0.0
    idle_memory: float = 0.0
    idle_core: float = 0.0
    instructions: float = 0.0
    dma_calls: float = 0.0
    dma_bytes: float = 0.0

    def fractions(self) -> Dict[str, float]:
        if self.cycles <= 0:
            return {"issuable": 0.0, "idle_memory": 0.0, "idle_core": 0.0}
        return {
            "issuable": self.issuable / self.cycles,
            "idle_memory": self.idle_memory / self.cycles,
            "idle_core": self.idle_core / self.cycles,
        }


@dataclass
class ProfileResult:
    """Simulated execution profile of one lowered module."""

    latency: Latency
    dpu: DpuProfile
    kernel_counts: Counts
    n_dpus: int
    n_tasklets: int

    @property
    def total_seconds(self) -> float:
        return self.latency.total

    def gflops(self, flop_count: float) -> float:
        return flop_count / self.total_seconds / 1e9


class PerformanceModel:
    """Evaluates lowered modules on the simulated UPMEM system."""

    def __init__(self, config: Optional[UpmemConfig] = None) -> None:
        self.config = config or DEFAULT_CONFIG

    # -- public -----------------------------------------------------------------
    def profile(self, module: LoweredModule) -> ProfileResult:
        cfg = self.config
        analyzer = KernelAnalyzer(cfg)
        grid_vars = [(dim.var, dim.extent) for dim in module.grid]
        groups = grouped(
            grid_vars, {}, lambda env: analyzer.dpu_cost(module.kernel, env)
        )

        worst_time = 0.0
        worst: Tuple[float, DpuCost] = (0.0, DpuCost())
        total_counts = Counts()
        for count, cost in groups:
            seconds, _parts = self._dpu_time(cost)
            total_counts += cost.total.scaled(count)
            if seconds > worst_time:
                worst_time = seconds
                worst = (seconds, cost)

        profile = self._dpu_profile(*worst)

        latency = Latency(
            h2d=self._transfer_time(module, "h2d"),
            kernel=worst_time,
            d2h=self._transfer_time(module, "d2h"),
            host=self._host_time(module),
            launch=cfg.launch_overhead_s,
        )
        return ProfileResult(
            latency=latency,
            dpu=profile,
            kernel_counts=total_counts,
            n_dpus=module.n_dpus,
            n_tasklets=module.n_tasklets,
        )

    # -- DPU timing ---------------------------------------------------------------
    def _dpu_time(self, cost: DpuCost) -> Tuple[float, Dict[str, float]]:
        cfg = self.config
        total = cost.total
        compute_cycles = total.slots + total.branches * cfg.branch_penalty_cycles
        pipeline_floor = cfg.pipeline_depth * (
            cost.max_tasklet_slots
            + cost.max_tasklet_branches * cfg.branch_penalty_cycles
        )
        compute_time = max(compute_cycles, pipeline_floor)
        dma_time = (
            total.dma_calls * cfg.dma_setup_cycles
            + total.dma_bytes * cfg.dma_cycles_per_byte
        )
        tasklets = max(1, cost.n_tasklets)
        if tasklets >= 2:
            cycles = max(compute_time, dma_time) + min(compute_time, dma_time) / tasklets
        else:
            cycles = compute_time + dma_time
        cycles += total.barriers * cfg.barrier_cycles
        if total.dma_calls > 0:
            avg_burst = (
                cfg.dma_setup_cycles
                + total.dma_bytes / total.dma_calls * cfg.dma_cycles_per_byte
            )
            cycles += 0.5 * min(tasklets, total.dma_calls) * avg_burst
        parts = {
            "compute": compute_time,
            "dma": dma_time,
            "cycles": cycles,
        }
        return cycles * cfg.cycle_time_s, parts

    def _dpu_profile(self, seconds: float, cost: DpuCost) -> DpuProfile:
        cfg = self.config
        cycles = seconds / cfg.cycle_time_s
        total = cost.total
        dma_time = (
            total.dma_calls * cfg.dma_setup_cycles
            + total.dma_bytes * cfg.dma_cycles_per_byte
        )
        issuable = min(total.slots, cycles)
        idle = max(0.0, cycles - issuable)
        idle_memory = min(idle, dma_time)
        idle_core = max(0.0, idle - idle_memory)
        return DpuProfile(
            cycles=cycles,
            issuable=issuable,
            idle_memory=idle_memory,
            idle_core=idle_core,
            instructions=total.slots + total.branches,
            dma_calls=total.dma_calls,
            dma_bytes=total.dma_bytes,
        )

    # -- transfers -------------------------------------------------------------------
    def _transfer_time(self, module: LoweredModule, direction: str) -> float:
        cfg = self.config
        specs = module.transfer(direction)
        if not specs:
            return 0.0
        n_dpus = module.n_dpus
        ranks_used = max(1, math.ceil(n_dpus / cfg.dpus_per_rank))
        aggregate = (
            cfg.h2d_bandwidth_gbps if direction == "h2d" else cfg.d2h_bandwidth_gbps
        ) * 1e9
        bandwidth = aggregate * min(1.0, ranks_used / cfg.n_ranks)
        serial_bandwidth = cfg.serial_copy_bandwidth_gbps * 1e9

        mode = module.options.transfer_mode
        time = 0.0
        for spec in specs:
            rows = spec.tile_elems // spec.shape[-1]
            total_bytes = spec.tile_bytes * n_dpus
            if (
                direction == "h2d"
                and spec.global_buffer.name in module.const_inputs
            ):
                # Constant tensor (weight / KV cache): placed once before
                # kernel launches, outside steady-state latency (§5.4).
                continue
            if direction == "h2d" and cfg.resident_partitioned_inputs:
                # One partitioned copy of each input is resident in PIM
                # memory (weights / KV cache placed once); only duplicated
                # bytes — broadcast tiles or padded rows overlapping other
                # DPUs' data — move per run.
                total_bytes = max(
                    0.0, total_bytes - spec.global_buffer.nbytes
                )
                if total_bytes == 0.0:
                    continue
            if mode == "element":
                calls = spec.tile_elems * n_dpus
                time += calls * cfg.copy_call_overhead_s
                time += total_bytes / serial_bandwidth
            elif mode == "bulk":
                calls = rows * n_dpus
                time += calls * cfg.copy_call_overhead_s
                time += total_bytes / serial_bandwidth
            else:  # parallel (rank-level push_xfer)
                time += rows * cfg.xfer_call_overhead_s
                time += total_bytes / bandwidth
        return time

    # -- host post-processing ------------------------------------------------------------
    def _host_time(self, module: LoweredModule) -> float:
        cfg = self.config
        stmts = list(module.host_pre) + list(module.host_post)
        if not stmts:
            return 0.0
        elems = 0.0
        reads = 0.0
        for stmt in stmts:
            e, r = _host_work(stmt)
            elems += e
            reads += r
        threads = max(1, min(module.host_parallel_threads, cfg.host_threads))
        bytes_touched = (elems + reads) * 4.0
        bw = min(threads * cfg.host_thread_bandwidth, cfg.host_mem_bandwidth)
        time = max(bytes_touched / bw, (elems + reads) * cfg.host_op_overhead_s / threads)
        if threads > 1:
            time += cfg.host_parallel_overhead_s
        return time


def _host_work(stmt: Stmt) -> Tuple[float, float]:
    """(stores, loads) executed by a host statement tree."""
    from ..tir import BufferStore, IfThenElse, SeqStmt, collect_loads

    if isinstance(stmt, For):
        e, r = _host_work(stmt.body)
        try:
            extent = stmt.extent.value  # type: ignore[attr-defined]
        except AttributeError:
            extent = 1
        return e * extent, r * extent
    if isinstance(stmt, SeqStmt):
        e = r = 0.0
        for s in stmt.stmts:
            ei, ri = _host_work(s)
            e += ei
            r += ri
        return e, r
    if isinstance(stmt, IfThenElse):
        e, r = _host_work(stmt.then_case)
        if stmt.else_case is not None:
            e2, r2 = _host_work(stmt.else_case)
            e, r = max(e, e2), max(r, r2)
        return e, r
    if isinstance(stmt, BufferStore):
        return 1.0, float(len(collect_loads(stmt.value)))
    return 0.0, 0.0
