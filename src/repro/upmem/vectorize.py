"""TIR -> NumPy compiler: vectorized functional execution of lowered modules.

Compiles a :class:`LoweredModule`'s kernel and host statements *once* into
a tree of closure-based ops that execute all DPU grid points of a chunk as
one batched "lane" axis — one lane per grid point — instead of re-walking
the AST per point.  Inner ``For`` loops over affine buffer indices are
further vectorized across the loop axis (sequential ``np.add.accumulate``
for reductions, injective scatter for maps), and ``DmaCopy`` becomes a
flat slice copy over all lanes at once.

The compiled program is **bit-for-bit identical** to the scalar
:class:`~repro.upmem.interp.Interpreter` reference semantics:

* float arithmetic batches elementwise ops whose operand/result dtypes
  match the scalar path exactly (NEP 50 makes ``np.float32`` scalars and
  float32 arrays behave identically against Python scalars);
* reductions use ``np.add.accumulate``, which is strictly sequential —
  the same left fold as the scalar loop (``np.sum``/``einsum`` pairwise
  summation would *not* be bit-identical and is deliberately avoided);
* ``sqrt`` upcasts to float64 first (``math.sqrt`` semantics), ``exp``
  routes through ``math.exp`` per element (``np.exp`` differs in ulps);
* anything out of model falls back, per statement subtree, to the scalar
  ``Interpreter`` run lane by lane (identical by construction).

Tasklet loops are executed as ordinary serial loops over batched lanes:
tasklets on one DPU may legally overlap in their padded DMA writebacks,
so their relative order is preserved exactly as the scalar interpreter
runs them.
"""

from __future__ import annotations

import math
import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple
import weakref

import numpy as np

from ..lowering import LoweredModule, TransferSpec
from ..tir import (
    Add,
    Allocate,
    And,
    BinaryOp,
    Buffer,
    BufferLoad,
    BufferStore,
    Call,
    Cast,
    CmpOp,
    DmaCopy,
    Evaluate,
    FloatImm,
    For,
    IfThenElse,
    IntImm,
    Max,
    Min,
    Mul,
    Not,
    Or,
    PrimExpr,
    Select,
    SeqStmt,
    Stmt,
    Sub,
    Var,
    collect_loads,
    collect_vars,
)
from .interp import _INTRINSICS, InterpError, Interpreter, _np_dtype

__all__ = [
    "VectorizeError",
    "KernelPlan",
    "HostProgram",
    "plan_for",
    "host_program_for",
]


class VectorizeError(Exception):
    """A construct outside the vectorizer's model (triggers fallback)."""


# Dependence flags of a compiled expression: which batch axes its runtime
# value varies along.  0 means a plain Python/numpy scalar.
LANE = 1  # varies per lane (grid point / host lane-loop iteration)
AXIS = 2  # varies along the vectorized inner-loop axis

_BIG_PY_OPS = {
    Add: lambda a, b: a + b,
    Sub: lambda a, b: a - b,
    Mul: lambda a, b: a * b,
}

# ``exp`` must match math.exp per element; np.exp differs in the last ulp.
_VEXP = np.frompyfunc(math.exp, 1, 1)


def _contains_var(expr: PrimExpr, var: Var) -> bool:
    return var in collect_vars(expr)


def _loads_buffer(expr: PrimExpr, buffer: Buffer) -> bool:
    return any(ld.buffer is buffer for ld in collect_loads(expr))


def _affine_coeff(expr: PrimExpr, var: Var) -> Optional[int]:
    """Constant integer coefficient of ``var`` in ``expr`` (None: non-affine)."""
    if expr is var:
        return 1
    if not _contains_var(expr, var):
        return 0
    if isinstance(expr, Add):
        a, b = _affine_coeff(expr.a, var), _affine_coeff(expr.b, var)
        return None if a is None or b is None else a + b
    if isinstance(expr, Sub):
        a, b = _affine_coeff(expr.a, var), _affine_coeff(expr.b, var)
        return None if a is None or b is None else a - b
    if isinstance(expr, Mul):
        if isinstance(expr.a, IntImm):
            c = _affine_coeff(expr.b, var)
            return None if c is None else c * expr.a.value
        if isinstance(expr.b, IntImm):
            c = _affine_coeff(expr.a, var)
            return None if c is None else c * expr.b.value
        return None
    return None


def _expr_eq(a: PrimExpr, b: PrimExpr) -> bool:
    """Structural equality (Vars compare by identity, like the IR)."""
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, (IntImm, FloatImm)):
        return a.value == b.value and a.dtype == b.dtype
    if isinstance(a, Var):
        return False
    if isinstance(a, (BinaryOp, CmpOp, And, Or)):
        return _expr_eq(a.a, b.a) and _expr_eq(a.b, b.b)
    if isinstance(a, Not):
        return _expr_eq(a.a, b.a)
    if isinstance(a, Select):
        return (
            _expr_eq(a.cond, b.cond)
            and _expr_eq(a.true_value, b.true_value)
            and _expr_eq(a.false_value, b.false_value)
        )
    if isinstance(a, BufferLoad):
        return (
            a.buffer is b.buffer
            and len(a.indices) == len(b.indices)
            and all(_expr_eq(x, y) for x, y in zip(a.indices, b.indices))
        )
    if isinstance(a, Cast):
        return a.dtype == b.dtype and _expr_eq(a.value, b.value)
    if isinstance(a, Call):
        return (
            a.op == b.op
            and len(a.args) == len(b.args)
            and all(_expr_eq(x, y) for x, y in zip(a.args, b.args))
        )
    return False


class _Ctx:
    """Runtime state of one batched execution (one lane chunk)."""

    __slots__ = (
        "plan",
        "bufs",
        "env",
        "mask",
        "lanes",
        "lane_vals",
        "L",
        "axis_k",
        "vmask",
    )

    def __init__(self, plan, bufs, lane_vals, L):
        self.plan = plan
        self.bufs = bufs  # Buffer -> ndarray (batched arrays lead with L)
        self.env: Dict[Var, int] = {}  # serial loop variables (scalars)
        self.mask = None  # (L,) bool of active lanes, or None == all
        self.lanes = np.arange(L)
        self.lane_vals = lane_vals  # Var -> (L,) int64
        self.L = L
        self.axis_k = None  # arange(n) while inside a vectorized axis op
        self.vmask = None  # validity mask of axis positions, or None

    def get_array(self, buffer: Buffer) -> np.ndarray:
        arr = self.bufs.get(buffer)
        if arr is None:
            shape = buffer.shape
            if buffer in self.plan.batched:
                shape = (self.L,) + tuple(shape)
            arr = np.zeros(shape, _np_dtype(buffer))
            self.bufs[buffer] = arr
        return arr


def _check_scalar_index(buffer: Buffer, d: int, i) -> int:
    i = int(i)
    if i < 0 or i >= buffer.shape[d]:
        raise InterpError(f"index {i} out of bounds for {buffer!r}")
    return i


def _check_array_index(ctx: _Ctx, buffer: Buffer, d: int, i: np.ndarray):
    """Bounds-check an index array; clip inactive/invalid positions."""
    dim = buffer.shape[d]
    bad = (i < 0) | (i >= dim)
    if bad.any():
        if ctx.mask is not None:
            if i.ndim == 2:
                bad = bad & ctx.mask[:, None]
            else:
                bad = bad & ctx.mask
        if ctx.vmask is not None:
            bad = bad & ctx.vmask
        if bad.any():
            raise InterpError(f"index out of bounds for {buffer!r}")
        return np.clip(i, 0, dim - 1)
    return i


class _ExprCompiler:
    """Compiles a PrimExpr to ``(fn(ctx) -> value, dep_flags)``.

    ``dep == 0`` subtrees evaluate with plain Python semantics — exactly
    the scalar interpreter.  Batched subtrees evaluate with numpy ufuncs
    whose elementwise results are bitwise identical to the scalar ops.
    In *axis mode* (``axis_var`` set), lane-dependent values carry shape
    ``(L, 1)`` and axis-dependent values ``(n,)`` so they broadcast to
    ``(L, n)``.
    """

    def __init__(self, plan, axis_var: Optional[Var] = None):
        self.plan = plan
        self.axis_var = axis_var

    def compile(self, e: PrimExpr) -> Tuple[Callable, int]:
        if isinstance(e, IntImm):
            v = e.value
            return (lambda ctx: v), 0
        if isinstance(e, FloatImm):
            v = e.value
            return (lambda ctx: v), 0
        if isinstance(e, Var):
            return self._var(e)
        if isinstance(e, Min) or isinstance(e, Max):
            return self._minmax(e)
        if isinstance(e, And):
            return self._and_or(e, is_and=True)
        if isinstance(e, Or):
            return self._and_or(e, is_and=False)
        if isinstance(e, (BinaryOp, CmpOp)):
            return self._binary(e)
        if isinstance(e, Not):
            a, da = self.compile(e.a)
            if da == 0:
                return (lambda ctx: not a(ctx)), 0
            return (lambda ctx: np.logical_not(a(ctx))), da
        if isinstance(e, Select):
            return self._select(e)
        if isinstance(e, BufferLoad):
            return self._load(e)
        if isinstance(e, Cast):
            return self._cast(e)
        if isinstance(e, Call):
            return self._call(e)
        raise VectorizeError(f"cannot vectorize {type(e).__name__}")

    # -- leaves -------------------------------------------------------------
    def _var(self, e: Var) -> Tuple[Callable, int]:
        if self.axis_var is not None and e is self.axis_var:
            return (lambda ctx: ctx.axis_k), AXIS
        if e in self.plan.lane_vars:
            if self.axis_var is not None:
                return (lambda ctx: ctx.lane_vals[e][:, None]), LANE
            return (lambda ctx: ctx.lane_vals[e]), LANE

        def fn(ctx):
            try:
                return ctx.env[e]
            except KeyError:
                raise InterpError(f"unbound variable {e.name}") from None

        return fn, 0

    # -- arithmetic ---------------------------------------------------------
    def _binary(self, e) -> Tuple[Callable, int]:
        a, da = self.compile(e.a)
        b, db = self.compile(e.b)
        dep = da | db
        op = _BINOPS[type(e)]
        return (lambda ctx: op(a(ctx), b(ctx))), dep

    def _minmax(self, e) -> Tuple[Callable, int]:
        a, da = self.compile(e.a)
        b, db = self.compile(e.b)
        dep = da | db
        if dep == 0:
            fn = min if isinstance(e, Min) else max
            return (lambda ctx: fn(a(ctx), b(ctx))), 0
        ufn = np.minimum if isinstance(e, Min) else np.maximum
        return (lambda ctx: ufn(a(ctx), b(ctx))), dep

    def _and_or(self, e, is_and: bool) -> Tuple[Callable, int]:
        a, da = self.compile(e.a)
        b, db = self.compile(e.b)
        dep = da | db
        if dep == 0:
            if is_and:
                return (lambda ctx: bool(a(ctx)) and bool(b(ctx))), 0
            return (lambda ctx: bool(a(ctx)) or bool(b(ctx))), 0
        ufn = np.logical_and if is_and else np.logical_or
        return (lambda ctx: ufn(a(ctx), b(ctx))), dep

    def _select(self, e: Select) -> Tuple[Callable, int]:
        c, dc = self.compile(e.cond)
        t, dt = self.compile(e.true_value)
        f, df = self.compile(e.false_value)
        if dc == 0:
            # Lazy, like the scalar interpreter.
            return (lambda ctx: t(ctx) if c(ctx) else f(ctx)), dt | df
        return (lambda ctx: np.where(c(ctx), t(ctx), f(ctx))), dc | dt | df

    def _cast(self, e: Cast) -> Tuple[Callable, int]:
        v, dv = self.compile(e.value)
        to_int = e.dtype.startswith("int")
        if dv == 0:
            # Scalar semantics: int()/float() — float() widens to float64.
            if to_int:
                return (lambda ctx: int(v(ctx))), 0
            return (lambda ctx: float(v(ctx))), 0
        if to_int:
            return (lambda ctx: np.asarray(v(ctx)).astype(np.int64)), dv
        return (lambda ctx: np.asarray(v(ctx)).astype(np.float64)), dv

    def _call(self, e: Call) -> Tuple[Callable, int]:
        fns = [self.compile(a) for a in e.args]
        deps = 0
        for _, d in fns:
            deps |= d
        if e.op not in _INTRINSICS:
            raise VectorizeError(f"unknown intrinsic {e.op!r}")
        if deps == 0:
            sfn = _INTRINSICS[e.op]
            args = [f for f, _ in fns]
            return (lambda ctx: sfn(*[f(ctx) for f in args])), 0
        (a0, _) = fns[0]
        if e.op == "abs":
            return (lambda ctx: np.abs(a0(ctx))), deps
        if e.op == "sqrt":
            # math.sqrt computes in float64 regardless of input width.
            return (
                lambda ctx: np.sqrt(np.asarray(a0(ctx)).astype(np.float64))
            ), deps
        if e.op == "exp":
            return (
                lambda ctx: _VEXP(a0(ctx)).astype(np.float64)
            ), deps
        raise VectorizeError(f"cannot batch intrinsic {e.op!r}")

    # -- memory -------------------------------------------------------------
    def _load(self, e: BufferLoad) -> Tuple[Callable, int]:
        buffer = e.buffer
        idx_fns = [self.compile(i) for i in e.indices]
        idx_dep = 0
        for _, d in idx_fns:
            idx_dep |= d
        batched = buffer in self.plan.batched
        dep = (LANE | idx_dep) if batched else idx_dep
        axis_mode = self.axis_var is not None
        fns = [f for f, _ in idx_fns]

        def fn(ctx):
            arr = ctx.get_array(buffer)
            idx = [f(ctx) for f in fns]
            if batched:
                if all(not isinstance(i, np.ndarray) for i in idx):
                    sl = tuple(
                        _check_scalar_index(buffer, d, i)
                        for d, i in enumerate(idx)
                    )
                    v = arr[(slice(None),) + sl]
                    if axis_mode:
                        v = v[:, None]
                    return v
                rows = ctx.lanes[:, None] if axis_mode else ctx.lanes
                full = tuple(
                    _check_array_index(ctx, buffer, d, i)
                    if isinstance(i, np.ndarray)
                    else _check_scalar_index(buffer, d, i)
                    for d, i in enumerate(idx)
                )
                return arr[(rows,) + full]
            if all(not isinstance(i, np.ndarray) for i in idx):
                sl = tuple(
                    _check_scalar_index(buffer, d, i)
                    for d, i in enumerate(idx)
                )
                return arr[sl]
            full = tuple(
                _check_array_index(ctx, buffer, d, i)
                if isinstance(i, np.ndarray)
                else _check_scalar_index(buffer, d, i)
                for d, i in enumerate(idx)
            )
            return arr[full]

        return fn, dep


_BINOPS = {}


def _init_binops():
    import operator
    from ..tir import EQ, GE, GT, LE, LT, NE, FloorDiv, FloorMod

    _BINOPS.update(
        {
            Add: operator.add,
            Sub: operator.sub,
            Mul: operator.mul,
            FloorDiv: operator.floordiv,
            FloorMod: operator.mod,
            LT: operator.lt,
            LE: operator.le,
            GT: operator.gt,
            GE: operator.ge,
            EQ: operator.eq,
            NE: operator.ne,
        }
    )


_init_binops()


# ---------------------------------------------------------------------------
# statement ops
# ---------------------------------------------------------------------------


class _SeqOp:
    def __init__(self, ops):
        self.ops = ops

    def run(self, ctx):
        for op in self.ops:
            op.run(ctx)


class _NoOp:
    def run(self, ctx):
        pass


class _StoreOp:
    def __init__(self, plan, stmt: BufferStore, ec: "_ExprCompiler"):
        self.buffer = stmt.buffer
        self.batched = stmt.buffer in plan.batched
        if not self.batched and not plan.allow_shared_store:
            raise VectorizeError("store to shared (non-batched) buffer")
        self.vfn, _ = ec.compile(stmt.value)
        self.idx_fns = [ec.compile(i)[0] for i in stmt.indices]

    def run(self, ctx):
        buffer = self.buffer
        arr = ctx.get_array(buffer)
        idx = [f(ctx) for f in self.idx_fns]
        val = self.vfn(ctx)
        if self.batched:
            if all(not isinstance(i, np.ndarray) for i in idx):
                sl = tuple(
                    _check_scalar_index(buffer, d, i)
                    for d, i in enumerate(idx)
                )
                view = arr[(slice(None),) + sl]
                if ctx.mask is None:
                    np.copyto(view, val, casting="unsafe")
                else:
                    np.copyto(view, val, where=ctx.mask, casting="unsafe")
                return
            rows = ctx.lanes
            full = [
                _check_array_index(ctx, buffer, d, i)
                if isinstance(i, np.ndarray)
                else _check_scalar_index(buffer, d, i)
                for d, i in enumerate(idx)
            ]
            if ctx.mask is not None:
                sel = ctx.mask
                rows = rows[sel]
                full = [i[sel] if isinstance(i, np.ndarray) else i for i in full]
                if isinstance(val, np.ndarray):
                    val = val[sel]
            arr[(rows,) + tuple(full)] = val
            return
        # Shared buffer (host lane mode, pre-verified injective, or L == 1).
        if all(not isinstance(i, np.ndarray) for i in idx):
            sl = tuple(
                _check_scalar_index(buffer, d, i) for d, i in enumerate(idx)
            )
            if ctx.mask is None:
                arr[sl] = val if not isinstance(val, np.ndarray) else val[0]
                return
            sel = ctx.mask
            if not sel.any():
                return
            v = val[sel][-1] if isinstance(val, np.ndarray) else val
            arr[sl] = v
            return
        full = [
            _check_array_index(ctx, buffer, d, i)
            if isinstance(i, np.ndarray)
            else _check_scalar_index(buffer, d, i)
            for d, i in enumerate(idx)
        ]
        if ctx.mask is not None:
            sel = ctx.mask
            full = [i[sel] if isinstance(i, np.ndarray) else i for i in full]
            if isinstance(val, np.ndarray):
                val = val[sel]
        arr[tuple(full)] = val


class _IfOp:
    def __init__(self, plan, stmt: IfThenElse, sc: "_StmtCompiler"):
        self.cfn, self.cdep = sc.expr.compile(stmt.condition)
        self.then_op = sc.compile(stmt.then_case)
        self.else_op = (
            sc.compile(stmt.else_case) if stmt.else_case is not None else None
        )

    def run(self, ctx):
        c = self.cfn(ctx)
        if self.cdep == 0:
            if c:
                self.then_op.run(ctx)
            elif self.else_op is not None:
                self.else_op.run(ctx)
            return
        c = np.asarray(c, dtype=bool)
        old = ctx.mask
        mt = c if old is None else (c & old)
        try:
            if mt.any():
                ctx.mask = None if (old is None and mt.all()) else mt
                self.then_op.run(ctx)
            if self.else_op is not None:
                mf = ~c if old is None else (~c & old)
                if mf.any():
                    ctx.mask = None if (old is None and mf.all()) else mf
                    self.else_op.run(ctx)
        finally:
            ctx.mask = old


class _ForOp:
    def __init__(self, var, efn, edep, body_op):
        self.var = var
        self.efn = efn
        self.edep = edep
        self.body_op = body_op

    def run(self, ctx):
        ext = self.efn(ctx)
        var, body = self.var, self.body_op
        if self.edep == 0:
            for i in range(int(ext)):
                ctx.env[var] = i
                body.run(ctx)
            ctx.env.pop(var, None)
            return
        # Lane-dependent extent: iterate to the max, masking finished lanes.
        ext = np.asarray(ext)
        n = int(ext.max()) if ext.size else 0
        old = ctx.mask
        try:
            for i in range(n):
                active = ext > i
                if old is None:
                    ctx.mask = None if active.all() else active
                else:
                    m = active & old
                    if not m.any():
                        break
                    ctx.mask = m
                ctx.env[var] = i
                body.run(ctx)
        finally:
            ctx.mask = old
            ctx.env.pop(var, None)


class _AllocOp:
    def __init__(self, plan, stmt: Allocate, sc: "_StmtCompiler"):
        self.buffer = stmt.buffer
        if plan.kind == "lane":
            # A temp shared by all lanes would be written concurrently.
            raise VectorizeError("Allocate inside a lane-batched loop")
        plan.batched_alloc(self.buffer)
        self.body_op = sc.compile(stmt.body)

    def run(self, ctx):
        ctx.get_array(self.buffer)  # setdefault semantics
        self.body_op.run(ctx)


class _EvalOp:
    def __init__(self, stmt: Evaluate):
        if stmt.call.op != "barrier":
            raise VectorizeError(f"side-effecting call {stmt.call.op!r}")

    def run(self, ctx):
        pass  # tasklets execute serially; a barrier is a no-op


class _DmaOp:
    def __init__(self, plan, stmt: DmaCopy, ec: "_ExprCompiler"):
        self.dst, self.src = stmt.dst, stmt.src
        self.dst_b = stmt.dst in plan.batched
        self.src_b = stmt.src in plan.batched
        if not self.dst_b and not plan.allow_shared_store:
            raise VectorizeError("DMA into shared (non-batched) buffer")
        self.n = stmt.size
        self.dfns = [ec.compile(i) for i in stmt.dst_base]
        self.sfns = [ec.compile(i) for i in stmt.src_base]

    @staticmethod
    def _offset(ctx, fns, shape):
        """Flat element offset with per-dim clipping (ravel mode="clip")."""
        off = 0
        stride = 1
        strides = []
        for dim in reversed(shape):
            strides.append(stride)
            stride *= dim
        strides.reverse()
        for (f, dep), dim, s in zip(fns, shape, strides):
            v = f(ctx)
            if isinstance(v, np.ndarray):
                v = np.clip(v, 0, dim - 1)
            else:
                v = min(max(int(v), 0), dim - 1)
            off = off + v * s
        return off

    def run(self, ctx):
        dst = ctx.get_array(self.dst)
        src = ctx.get_array(self.src)
        dsize, ssize = self.dst.size, self.src.size
        doff = self._offset(ctx, self.dfns, self.dst.shape)
        soff = self._offset(ctx, self.sfns, self.src.shape)
        n = self.n
        scalar = not isinstance(doff, np.ndarray) and not isinstance(
            soff, np.ndarray
        )
        if scalar and ctx.mask is None:
            n_eff = min(n, dsize - doff, ssize - soff)
            if n_eff < 0:
                raise InterpError("DMA base outside buffer")
            if n_eff == 0:
                return
            if self.dst_b:
                d2 = dst.reshape(ctx.L, dsize)
                if self.src_b:
                    s2 = src.reshape(ctx.L, ssize)
                    d2[:, doff : doff + n_eff] = s2[:, soff : soff + n_eff]
                else:
                    s1 = src.reshape(ssize)
                    d2[:, doff : doff + n_eff] = s1[soff : soff + n_eff]
            else:
                d1 = dst.reshape(dsize)
                s1 = src.reshape(-1)[-ssize:] if not self.src_b else None
                if self.src_b:
                    # L == 1 shared-dst case
                    s2 = src.reshape(ctx.L, ssize)
                    d1[doff : doff + n_eff] = s2[0, soff : soff + n_eff]
                else:
                    d1[doff : doff + n_eff] = s1[soff : soff + n_eff]
            return
        # General path: per-lane offsets and/or an active-lane mask.
        L = ctx.L
        doff_a = np.broadcast_to(np.asarray(doff), (L,))
        soff_a = np.broadcast_to(np.asarray(soff), (L,))
        ne = np.minimum(n, np.minimum(dsize - doff_a, ssize - soff_a))
        k = np.arange(n)
        valid = k < ne[:, None]
        if ctx.mask is not None:
            valid = valid & ctx.mask[:, None]
        if not valid.any():
            return
        didx = np.minimum(doff_a[:, None] + k, dsize - 1)
        sidx = np.minimum(soff_a[:, None] + k, ssize - 1)
        if self.src_b:
            s2 = src.reshape(L, ssize)
            svals = s2[ctx.lanes[:, None], sidx]
        else:
            svals = src.reshape(ssize)[sidx]
        sel = valid
        if self.dst_b:
            d2 = dst.reshape(L, dsize)
            rows = np.broadcast_to(ctx.lanes[:, None], sel.shape)
            d2[rows[sel], didx[sel]] = np.broadcast_to(svals, sel.shape)[sel]
        else:
            d1 = dst.reshape(dsize)
            d1[didx[sel]] = np.broadcast_to(svals, sel.shape)[sel]


class _FallbackOp:
    """Runs one statement subtree through the scalar Interpreter, per lane."""

    def __init__(self, plan, stmt: Stmt):
        self.plan = plan
        self.stmt = stmt
        plan.fallbacks.append(stmt)

    def run(self, ctx):
        plan = self.plan
        if plan.kind == "single":
            env = dict(ctx.env)
            Interpreter(ctx.bufs).run(self.stmt, env)
            return
        mask = ctx.mask
        batched = plan.batched
        for lane in range(ctx.L):
            if mask is not None and not mask[lane]:
                continue
            local = {
                buf: (arr[lane] if buf in batched else arr)
                for buf, arr in ctx.bufs.items()
            }
            env: Dict[Var, int] = {
                v: int(vals[lane]) for v, vals in ctx.lane_vals.items()
            }
            env.update(ctx.env)
            Interpreter(local).run(self.stmt, env)


class _VecReduceOp:
    """``for k in extent: T[i] = T[i] + rest(k)`` as one sequential scan.

    ``np.add.accumulate`` is a strict left fold, so the partial sums match
    the scalar loop bit for bit.  Lane-dependent extents gather the prefix
    at each lane's own trip count.  Falls back to the generic masked loop
    when an enclosing mask is active or the value dtype is off-model.
    """

    def __init__(self, plan, target, idx_fns, efn, edep, rfn, generic):
        self.plan = plan
        self.target = target
        self.batched = target in plan.batched
        self.idx_fns = idx_fns
        self.efn, self.edep = efn, edep
        self.rfn = rfn
        self.generic = generic

    def run(self, ctx):
        if ctx.mask is not None:
            return self.generic.run(ctx)
        buffer = self.target
        arr = ctx.get_array(buffer)
        ext = self.efn(ctx)
        idx = [f(ctx) for f in self.idx_fns]
        scalar_idx = all(not isinstance(i, np.ndarray) for i in idx)
        view = None
        if self.batched:
            if scalar_idx:
                sl = tuple(
                    _check_scalar_index(buffer, d, i)
                    for d, i in enumerate(idx)
                )
                view = arr[(slice(None),) + sl]  # (L,) view
                acc = view
                windex = None
            else:
                full = tuple(
                    _check_array_index(ctx, buffer, d, i)
                    if isinstance(i, np.ndarray)
                    else _check_scalar_index(buffer, d, i)
                    for d, i in enumerate(idx)
                )
                windex = (ctx.lanes,) + full
                acc = arr[windex]
        else:
            full = tuple(
                _check_array_index(ctx, buffer, d, i)
                if isinstance(i, np.ndarray)
                else _check_scalar_index(buffer, d, i)
                for d, i in enumerate(idx)
            )
            windex = full
            acc = arr[full]
        if isinstance(ext, np.ndarray):
            n = int(ext.max()) if ext.size else 0
        else:
            n = int(ext)
        if n <= 0:
            return
        old_k, old_v = ctx.axis_k, ctx.vmask
        ctx.axis_k = np.arange(n)
        if isinstance(ext, np.ndarray):
            ctx.vmask = ctx.axis_k < ext[:, None]
        try:
            vals = self.rfn(ctx)
        finally:
            ctx.axis_k, ctx.vmask = old_k, old_v
        npt = arr.dtype
        vals = np.asarray(vals)
        if vals.dtype != npt:
            # Per-step cast rounding differs from one wide accumulate.
            return self.generic.run(ctx)
        w = np.empty((ctx.L, n + 1), npt)
        w[:, 0] = acc
        w[:, 1:] = vals
        np.add.accumulate(w, axis=1, out=w)
        if isinstance(ext, np.ndarray):
            res = w[ctx.lanes, np.clip(ext, 0, n)]
        else:
            res = w[:, n]
        if view is not None:
            np.copyto(view, res, casting="unsafe")
        elif self.batched:
            arr[windex] = res
        elif scalar_idx:
            arr[windex] = res[0]
        else:
            arr[windex] = res


class _VecMapOp:
    """An innermost loop whose store index is injective in the loop var."""

    def __init__(self, target, batched, idx_fns, efn, edep, vfn, cfn):
        self.target = target
        self.batched = batched
        self.idx_fns = idx_fns
        self.efn, self.edep = efn, edep
        self.vfn = vfn
        self.cfn = cfn  # optional guard, compiled in axis mode

    def run(self, ctx):
        buffer = self.target
        arr = ctx.get_array(buffer)
        ext = self.efn(ctx)
        if isinstance(ext, np.ndarray):
            n = int(ext.max()) if ext.size else 0
        else:
            n = int(ext)
        if n <= 0:
            return
        L = ctx.L
        sel = None  # (L, n) selection of positions actually stored
        if isinstance(ext, np.ndarray):
            sel = np.arange(n) < ext[:, None]
        if ctx.mask is not None:
            m = ctx.mask[:, None]
            sel = m if sel is None else (sel & m)
        old_k, old_v = ctx.axis_k, ctx.vmask
        ctx.axis_k = np.arange(n)
        ctx.vmask = sel
        try:
            idx = [f(ctx) for f in self.idx_fns]
            if self.cfn is not None:
                c = self.cfn[0](ctx)
                if self.cfn[1] == 0:
                    if not c:
                        return
                else:
                    c = np.asarray(c, dtype=bool)
                    sel = c if sel is None else (sel & c)
                    if not sel.any():
                        return
            val = self.vfn(ctx)
            full = [
                _check_array_index(ctx, buffer, d, i)
                if isinstance(i, np.ndarray)
                else _check_scalar_index(buffer, d, i)
                for d, i in enumerate(idx)
            ]
        finally:
            ctx.axis_k, ctx.vmask = old_k, old_v
        if sel is None:
            if self.batched:
                arr[(ctx.lanes[:, None],) + tuple(full)] = val
            else:
                arr[tuple(full)] = val
            return
        sel = np.broadcast_to(sel, (L, n))
        full = [
            np.broadcast_to(i, (L, n))[sel]
            if isinstance(i, np.ndarray)
            else i
            for i in full
        ]
        if isinstance(val, np.ndarray):
            val = np.broadcast_to(val, (L, n))[sel]
        if self.batched:
            rows = np.broadcast_to(ctx.lanes[:, None], (L, n))[sel]
            arr[(rows,) + tuple(full)] = val
        else:
            arr[tuple(full)] = val


# ---------------------------------------------------------------------------
# statement compiler
# ---------------------------------------------------------------------------


class _StmtCompiler:
    def __init__(self, plan):
        self.plan = plan
        self.expr = _ExprCompiler(plan)

    def compile(self, stmt: Stmt):
        """Compile one statement; unsupported subtrees become fallbacks."""
        try:
            return self._compile(stmt)
        except VectorizeError:
            return _FallbackOp(self.plan, stmt)

    def _compile(self, stmt: Stmt):
        if isinstance(stmt, SeqStmt):
            return _SeqOp([self.compile(s) for s in stmt.stmts])
        if isinstance(stmt, For):
            return self._compile_for(stmt)
        if isinstance(stmt, IfThenElse):
            return _IfOp(self.plan, stmt, self)
        if isinstance(stmt, BufferStore):
            return _StoreOp(self.plan, stmt, self.expr)
        if isinstance(stmt, DmaCopy):
            return _DmaOp(self.plan, stmt, self.expr)
        if isinstance(stmt, Allocate):
            return _AllocOp(self.plan, stmt, self)
        if isinstance(stmt, Evaluate):
            return _EvalOp(stmt)
        raise VectorizeError(f"cannot vectorize {type(stmt).__name__}")

    def _compile_for(self, stmt: For):
        efn, edep = self.expr.compile(stmt.extent)
        if edep & AXIS:
            raise VectorizeError("axis-dependent loop extent")
        op = self._try_reduce(stmt, efn, edep)
        if op is not None:
            return op
        op = self._try_map(stmt, efn, edep)
        if op is not None:
            return op
        body_op = self._compile(stmt.body)
        return _ForOp(stmt.var, efn, edep, body_op)

    def _generic_for(self, stmt: For, efn, edep):
        return _ForOp(stmt.var, efn, edep, self.compile(stmt.body))

    def _try_reduce(self, stmt: For, efn, edep):
        var, body = stmt.var, stmt.body
        if not isinstance(body, BufferStore):
            return None
        val = body.value
        if not isinstance(val, Add):
            return None
        target, idx = body.buffer, body.indices
        if any(_contains_var(i, var) for i in idx):
            return None
        for acc, rest in ((val.a, val.b), (val.b, val.a)):
            if (
                isinstance(acc, BufferLoad)
                and acc.buffer is target
                and len(acc.indices) == len(idx)
                and all(_expr_eq(x, y) for x, y in zip(acc.indices, idx))
            ):
                break
        else:
            return None
        if _loads_buffer(rest, target):
            return None
        if getattr(rest, "dtype", None) != target.dtype:
            return None
        if target not in self.plan.batched and not self.plan.allow_shared_store:
            return None
        ax = _ExprCompiler(self.plan, axis_var=var)
        try:
            rfn, _ = ax.compile(rest)
        except VectorizeError:
            return None
        idx_fns = [self.expr.compile(i)[0] for i in idx]
        generic = self._generic_for(stmt, efn, edep)
        return _VecReduceOp(
            self.plan, target, idx_fns, efn, edep, rfn, generic
        )

    def _try_map(self, stmt: For, efn, edep):
        var, body = stmt.var, stmt.body
        cond = None
        if (
            isinstance(body, IfThenElse)
            and body.else_case is None
            and isinstance(body.then_case, BufferStore)
        ):
            cond, store = body.condition, body.then_case
        elif isinstance(body, BufferStore):
            store = body
        else:
            return None
        target = store.buffer
        if _loads_buffer(store.value, target):
            return None
        if cond is not None and _loads_buffer(cond, target):
            return None
        pos = None
        for d, i in enumerate(store.indices):
            if _contains_var(i, var):
                if pos is not None:
                    return None
                coeff = _affine_coeff(i, var)
                if coeff is None or coeff == 0:
                    return None
                pos = d
        if pos is None:
            return None
        batched = target in self.plan.batched
        if not batched and self.plan.kind != "single":
            # In lane mode an unbatched scatter may collide across lanes;
            # the generic masked loop handles it safely instead.
            return None
        ax = _ExprCompiler(self.plan, axis_var=var)
        try:
            idx_fns = [ax.compile(i)[0] for i in store.indices]
            vfn, _ = ax.compile(store.value)
            cfn = ax.compile(cond) if cond is not None else None
        except VectorizeError:
            return None
        return _VecMapOp(target, batched, idx_fns, efn, edep, vfn, cfn)


# ---------------------------------------------------------------------------
# whole-module plans
# ---------------------------------------------------------------------------


class KernelPlan:
    """Compiled batched execution of a module's per-DPU offload sequence.

    One lane per grid point: H2D tile fills gather all lanes at once, the
    kernel op tree runs over ``(L, ...)`` batched local buffers, and D2H
    scatters every lane's valid tile region back to the host tensors.
    Chunks the lane axis to bound peak memory.
    """

    kind = "kernel"
    allow_shared_store = False

    def __init__(self, module: LoweredModule) -> None:
        self.module = module
        self.lane_vars = set(module.grid_vars())
        self.batched = {s.local_buffer for s in module.transfers}
        self.batched |= set(module.mram_internal)
        self.batched |= set(module.wram_buffers)
        self.fallbacks: List[Stmt] = []
        ec = _ExprCompiler(self)
        # (spec, base_fns-or-None) in transfer order; fns only for h2d.
        self._tiles = [
            (
                spec,
                [ec.compile(b) for b in spec.base]
                if spec.direction == "h2d"
                else None,
            )
            for spec in module.transfers
        ]
        self._d2h = [
            (spec, [ec.compile(b) for b in spec.base])
            for spec in module.transfer("d2h")
        ]
        self.kernel_op = _StmtCompiler(self).compile(module.kernel)
        self._bytes_per_lane = max(
            1, sum(buf.nbytes for buf in self.batched)
        )

    # -- driving ------------------------------------------------------------
    def max_lanes(self, total: int) -> int:
        env = os.environ.get("REPRO_VECTOR_LANES")
        if env:
            return max(1, min(total, int(env)))
        budget = 256 * 1024 * 1024
        return max(1, min(total, budget // self._bytes_per_lane))

    def run_points(
        self,
        arrays: Dict[Buffer, np.ndarray],
        points: Sequence[tuple],
    ) -> None:
        points = list(points)
        if not points:
            return
        cap = self.max_lanes(len(points))
        for start in range(0, len(points), cap):
            self._run_chunk(arrays, points[start : start + cap])

    def _run_chunk(self, arrays, chunk) -> None:
        module = self.module
        L = len(chunk)
        grid_vars = module.grid_vars()
        pts = np.asarray(chunk, dtype=np.int64).reshape(L, len(grid_vars))
        lane_vals = {v: pts[:, d] for d, v in enumerate(grid_vars)}
        bufs = dict(arrays)
        ctx = _Ctx(self, bufs, lane_vals, L)
        for spec, base_fns in self._tiles:
            tile = np.zeros(
                (L,) + tuple(spec.shape), _np_dtype(spec.local_buffer)
            )
            bufs[spec.local_buffer] = tile
            if base_fns is not None:
                self._fill(ctx, spec, base_fns, tile)
        for buf in module.mram_internal:
            bufs[buf] = np.zeros((L,) + tuple(buf.shape), _np_dtype(buf))
        for buf in module.wram_buffers:
            bufs[buf] = np.zeros((L,) + tuple(buf.shape), _np_dtype(buf))
        self.kernel_op.run(ctx)
        for spec, base_fns in self._d2h:
            self._writeback(ctx, arrays, spec, base_fns)

    # -- transfers ----------------------------------------------------------
    @staticmethod
    def _tile_index(ctx, spec, bases):
        """Per-dim global index arrays + validity mask for all lanes."""
        gshape = spec.global_buffer.shape
        nd = len(spec.shape)
        idxs, vmask = [], None
        for d, (b, ext, dim) in enumerate(zip(bases, spec.shape, gshape)):
            k = np.arange(ext).reshape(
                (1,) * (d + 1) + (ext,) + (1,) * (nd - d - 1)
            )
            b = np.asarray(b)
            if b.ndim:
                b = b.reshape((ctx.L,) + (1,) * nd)
            i = b + k
            m = (i >= 0) & (i < dim)
            vmask = m if vmask is None else (vmask & m)
            idxs.append(np.clip(i, 0, dim - 1))
        return idxs, vmask

    def _fill(self, ctx, spec, base_fns, tile) -> None:
        src = ctx.bufs[spec.global_buffer]
        bases = [f(ctx) for f, _ in base_fns]
        if all(not isinstance(b, np.ndarray) for b in bases):
            base = [int(b) for b in bases]
            valid = [
                max(0, min(ext, dim - b))
                for b, ext, dim in zip(
                    base, spec.shape, spec.global_buffer.shape
                )
            ]
            if all(v > 0 for v in valid):
                src_sl = tuple(
                    slice(b, b + v) for b, v in zip(base, valid)
                )
                dst_sl = (slice(None),) + tuple(slice(0, v) for v in valid)
                tile[dst_sl] = src[src_sl]
            return
        idxs, vmask = self._tile_index(ctx, spec, bases)
        gathered = src[tuple(idxs)]
        where = np.broadcast_to(vmask, (ctx.L,) + tuple(spec.shape))
        np.copyto(tile, gathered, where=where)  # tile is pre-zeroed

    def _writeback(self, ctx, arrays, spec, base_fns) -> None:
        dst = arrays[spec.global_buffer]
        tile = ctx.bufs[spec.local_buffer]
        bases = [f(ctx) for f, _ in base_fns]
        if ctx.L == 1 and all(not isinstance(b, np.ndarray) for b in bases):
            base = [int(b) for b in bases]
            valid = [
                max(0, min(ext, dim - b))
                for b, ext, dim in zip(
                    base, spec.shape, spec.global_buffer.shape
                )
            ]
            if all(v > 0 for v in valid):
                dst_sl = tuple(slice(b, b + v) for b, v in zip(base, valid))
                src_sl = (0,) + tuple(slice(0, v) for v in valid)
                dst[dst_sl] = tile[src_sl]
            return
        idxs, vmask = self._tile_index(ctx, spec, bases)
        strides = []
        s = 1
        for dim in reversed(spec.global_buffer.shape):
            strides.append(s)
            s *= dim
        strides.reverse()
        flat = 0
        for i, st in zip(idxs, strides):
            flat = flat + i * st
        full_shape = (ctx.L,) + tuple(spec.shape)
        flat = np.broadcast_to(flat, full_shape)
        where = np.broadcast_to(vmask, full_shape)
        # Lanes write disjoint (or identical-valued padded) regions; the
        # row-major scatter preserves the scalar path's point order.
        dst.reshape(-1)[flat[where]] = tile[where]


# ---------------------------------------------------------------------------
# host statement programs
# ---------------------------------------------------------------------------


class _SingleLanePlan:
    """L == 1, nothing batched: a compiled scalar program over shared bufs."""

    kind = "single"
    allow_shared_store = True
    lane_vars: frozenset = frozenset()

    def __init__(self):
        self.batched = frozenset()
        self.fallbacks: List[Stmt] = []

    def batched_alloc(self, buffer):  # Allocate stays shared (setdefault)
        pass


class _LanePlan:
    """Host loop batched across its own iterations (one lane per iter)."""

    kind = "lane"
    allow_shared_store = True  # injectivity pre-verified by _lane_safe

    def __init__(self, var: Var):
        self.lane_vars = {var}
        self.batched = frozenset()
        self.fallbacks: List[Stmt] = []

    def batched_alloc(self, buffer):
        raise VectorizeError("Allocate inside a lane-batched loop")


def _lane_safe(body: Stmt, var: Var) -> bool:
    """True if batching the loop's iterations as lanes is write-safe.

    Every store must index its buffer by ``var`` directly in some
    dimension (iterations write disjoint slices), and any load of a
    stored buffer must read the same ``var`` slice (no cross-iteration
    dependence).
    """
    from ..tir import iter_stmts

    stores: Dict[Buffer, set] = {}
    for s in iter_stmts(body):
        if isinstance(s, (SeqStmt, For, IfThenElse)):
            continue
        if isinstance(s, BufferStore):
            pos = {d for d, i in enumerate(s.indices) if i is var}
            if not pos:
                return False
            stores.setdefault(s.buffer, set()).update(pos)
        else:
            return False
    if not stores:
        return False
    exprs: List[PrimExpr] = []
    for s in iter_stmts(body):
        if isinstance(s, For):
            exprs.append(s.extent)
        elif isinstance(s, IfThenElse):
            exprs.append(s.condition)
        elif isinstance(s, BufferStore):
            exprs.append(s.value)
            exprs.extend(s.indices)
    for e in exprs:
        for ld in collect_loads(e):
            if ld.buffer in stores:
                ok = any(
                    d < len(ld.indices) and ld.indices[d] is var
                    for d in stores[ld.buffer]
                )
                if not ok:
                    return False
    return True


class _SingleRunner:
    def __init__(self, plan, op):
        self.plan, self.op = plan, op

    def run(self, arrays) -> None:
        self.op.run(_Ctx(self.plan, arrays, {}, 1))


class _LaneRunner:
    def __init__(self, plan, var, efn, op):
        self.plan, self.var, self.efn, self.op = plan, var, efn, op

    def run(self, arrays) -> None:
        lanes = int(self.efn(_Ctx(self.plan, arrays, {}, 1)))
        if lanes <= 0:
            return
        lane_vals = {self.var: np.arange(lanes, dtype=np.int64)}
        self.op.run(_Ctx(self.plan, arrays, lane_vals, lanes))


class HostProgram:
    """Compiled form of a list of host statements (pre or post)."""

    def __init__(self, module: LoweredModule, stmts: Sequence[Stmt]):
        self.module = module
        self.fallbacks: List[Stmt] = []
        self.runners = [self._compile(s) for s in stmts]

    def _compile(self, stmt: Stmt):
        if isinstance(stmt, For) and _lane_safe(stmt.body, stmt.var):
            plan = _LanePlan(stmt.var)
            try:
                efn, edep = _ExprCompiler(plan).compile(stmt.extent)
            except VectorizeError:
                efn, edep = None, LANE
            if edep == 0:
                op = _StmtCompiler(plan).compile(stmt.body)
                self.fallbacks.extend(plan.fallbacks)
                return _LaneRunner(plan, stmt.var, efn, op)
        plan = _SingleLanePlan()
        op = _StmtCompiler(plan).compile(stmt)
        self.fallbacks.extend(plan.fallbacks)
        return _SingleRunner(plan, op)

    def run(self, arrays: Dict[Buffer, np.ndarray]) -> None:
        for runner in self.runners:
            runner.run(arrays)


# ---------------------------------------------------------------------------
# plan cache
# ---------------------------------------------------------------------------

_PLAN_LOCK = threading.Lock()
#: key -> (weakref(module), {"kernel": ..., "host_pre": ..., "host_post": ...})
_PLANS: "OrderedDict" = OrderedDict()
_PLAN_CACHE_SIZE = 256


def _cached_plan(module: LoweredModule, slot: str, builder):
    """Per-module plan cache.

    Keyed by the pipeline artifact content hash (``module.plan_key``,
    stamped by :class:`repro.pipeline.ArtifactCache`) when available, by
    object identity otherwise.  Compiled plans capture :class:`Buffer`
    object identity, so an entry is only reused for the *same* module
    object — the content key's job is to give cache-shared modules a
    stable slot that survives executor churn.
    """
    key = getattr(module, "plan_key", None) or id(module)
    with _PLAN_LOCK:
        entry = _PLANS.get(key)
        if entry is not None and entry[0]() is module:
            plan = entry[1].get(slot)
            if plan is not None:
                _PLANS.move_to_end(key)
                return plan
    plan = builder(module)
    with _PLAN_LOCK:
        entry = _PLANS.get(key)
        if entry is None or entry[0]() is not module:
            entry = (weakref.ref(module), {})
            _PLANS[key] = entry
            while len(_PLANS) > _PLAN_CACHE_SIZE:
                _PLANS.popitem(last=False)
        entry[1][slot] = plan
    return plan


def plan_for(module: LoweredModule) -> KernelPlan:
    """The compiled (cached) kernel plan for a lowered module."""
    return _cached_plan(module, "kernel", KernelPlan)


def host_program_for(module: LoweredModule, which: str) -> HostProgram:
    """The compiled (cached) host ``"pre"`` or ``"post"`` program."""
    stmts = module.host_pre if which == "pre" else module.host_post
    return _cached_plan(
        module, "host_" + which, lambda m: HostProgram(m, stmts)
    )
