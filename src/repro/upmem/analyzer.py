"""Analytical timing walker over lowered kernel TIR.

Counts dynamic instructions, branches and DMA traffic *exactly* without
per-element interpretation: loop bodies whose cost is provably uniform
over an iteration range are costed once and multiplied; ranges where a
boundary condition flips are split by bisection.  The same machinery
groups DPUs, so interior DPUs are costed once for the whole grid and only
boundary DPUs are enumerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..tir import (
    Allocate,
    BufferStore,
    DmaCopy,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    Interval,
    IntImm,
    PrimExpr,
    SeqStmt,
    Stmt,
    Var,
    collect_vars,
    eval_interval,
)
from .config import UpmemConfig
from .isa import Counts, ExprCoster

__all__ = ["KernelAnalyzer", "DpuCost", "Mixed", "grouped"]


class Mixed(Exception):
    """A condition/extent does not resolve uniformly over current ranges."""

    def __init__(self, variables: Set[Var]) -> None:
        super().__init__(f"mixed over {sorted(v.name for v in variables)}")
        self.variables = variables


@dataclass
class DpuCost:
    """Per-DPU dynamic cost: per-tasklet slot totals plus shared counters."""

    total: Counts = field(default_factory=Counts)
    max_tasklet_slots: float = 0.0
    max_tasklet_branches: float = 0.0
    n_tasklets: int = 1

    def merge_serial(self, counts: Counts) -> None:
        """Work executed by a single tasklet (outside the tasklet loop)."""
        self.total += counts
        self.max_tasklet_slots += counts.slots
        self.max_tasklet_branches += counts.branches


Env = Dict[Var, Interval]


class KernelAnalyzer:
    """Computes :class:`DpuCost` for one DPU (given grid-var intervals)."""

    def __init__(self, config: UpmemConfig) -> None:
        self.config = config
        self.coster = ExprCoster(config)

    # -- public ------------------------------------------------------------
    def dpu_cost(self, kernel: Stmt, env: Env) -> DpuCost:
        cost = DpuCost()
        self._walk_sections(kernel, env, cost)
        return cost

    # -- section walk (handles tasklet loops) -----------------------------------
    def _walk_sections(self, stmt: Stmt, env: Env, cost: DpuCost) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self._walk_sections(s, env, cost)
            return
        if isinstance(stmt, Allocate):
            self._walk_sections(stmt.body, env, cost)
            return
        thread = _find_thread_loop(stmt)
        if thread is not None:
            # Every tasklet executes the section with its own thread id
            # (on hardware the section is replicated per tasklet with the
            # body guarded by `me()`); strip the binding loop and group
            # over the thread variable, wherever the loop is nested.
            extent = self._const_extent(thread.extent, env)
            cost.n_tasklets = max(cost.n_tasklets, extent)
            body = _strip_thread_loop(stmt)
            groups = grouped(
                [(thread.var, extent)],
                env,
                lambda e: self._walk(body, e),
            )
            for count, counts in groups:
                cost.total += counts.scaled(count)
                cost.max_tasklet_slots = max(cost.max_tasklet_slots, counts.slots)
                cost.max_tasklet_branches = max(
                    cost.max_tasklet_branches, counts.branches
                )
            return
        # No tasklet loop: executed once (by one tasklet, others waiting).
        cost.merge_serial(self._walk(stmt, env))

    # -- recursive statement walk ------------------------------------------------
    def _walk(self, stmt: Stmt, env: Env) -> Counts:
        if isinstance(stmt, SeqStmt):
            total = Counts()
            for s in stmt.stmts:
                total += self._walk(s, env)
            return total
        if isinstance(stmt, Allocate):
            return self._walk(stmt.body, env)
        if isinstance(stmt, For):
            return self._walk_for(stmt, env)
        if isinstance(stmt, IfThenElse):
            return self._walk_if(stmt, env)
        if isinstance(stmt, BufferStore):
            c = Counts()
            c += self.coster.cost(stmt.value)
            for i in stmt.indices:
                c += self.coster.cost(i)
            c.stores += 1
            if stmt.buffer.scope == "mram":
                c.dma_calls += 1
                c.dma_bytes += max(
                    stmt.buffer.elem_bytes, self.config.dma_align_bytes
                )
                c.slots += 2
            else:
                c.slots += 1
            c.slots += max(0, len(stmt.indices) - 1)
            return c
        if isinstance(stmt, DmaCopy):
            c = Counts()
            for i in list(stmt.dst_base) + list(stmt.src_base):
                c += self.coster.cost(i)
            c.dma_calls += 1
            c.dma_bytes += max(stmt.nbytes, self.config.dma_align_bytes)
            c.slots += 4  # compute addresses + issue the DMA instruction
            return c
        if isinstance(stmt, Evaluate):
            c = Counts()
            if stmt.call.op == "barrier":
                c.barriers += 1
            else:
                c += self.coster.cost(stmt.call)
            return c
        raise TypeError(f"cannot analyze {type(stmt).__name__}")

    def _walk_for(self, stmt: For, env: Env) -> Counts:
        extent = self._maybe_const_extent(stmt.extent, env)
        if extent is None:
            raise Mixed(self._range_vars(stmt.extent, env))
        if extent <= 0:
            return Counts()

        def body_at(lo: int, hi: int) -> Counts:
            saved = env.get(stmt.var)
            env[stmt.var] = Interval(lo, hi)
            try:
                return self._walk(stmt.body, env)
            finally:
                if saved is None:
                    env.pop(stmt.var, None)
                else:
                    env[stmt.var] = saved

        def bisect(lo: int, hi: int) -> Counts:
            try:
                return body_at(lo, hi).scaled(hi - lo + 1)
            except Mixed as m:
                if stmt.var not in m.variables or lo == hi:
                    raise
            mid = (lo + hi) // 2
            return bisect(lo, mid) + bisect(mid + 1, hi)

        total = bisect(0, extent - 1)
        if stmt.kind is not ForKind.UNROLLED:
            # Loop maintenance: induction update + bound check + back edge.
            overhead = Counts(slots=2.0 * extent, branches=1.0 * extent)
            total += overhead
        return total

    def _walk_if(self, stmt: IfThenElse, env: Env) -> Counts:
        c = Counts()
        c += self.coster.cost(stmt.condition)
        c.branches += 1
        truth = eval_interval(stmt.condition, env)
        if truth is None or not truth.is_point:
            mixed = self._range_vars(stmt.condition, env)
            if mixed:
                raise Mixed(mixed)
            # All vars are points yet interval analysis failed: be
            # conservative and assume the branch is taken.
            c += self._walk(stmt.then_case, env)
            return c
        if truth.lo:
            c += self._walk(stmt.then_case, env)
        elif stmt.else_case is not None:
            c += self._walk(stmt.else_case, env)
        return c

    # -- helpers --------------------------------------------------------------
    def _range_vars(self, expr: PrimExpr, env: Env) -> Set[Var]:
        return {
            v
            for v in collect_vars(expr)
            if v in env and not env[v].is_point
        }

    def _maybe_const_extent(self, extent: PrimExpr, env: Env) -> Optional[int]:
        if isinstance(extent, IntImm):
            return extent.value
        rng = eval_interval(extent, env)
        if rng is not None and rng.is_point:
            return rng.lo
        return None

    def _const_extent(self, extent: PrimExpr, env: Env) -> int:
        value = self._maybe_const_extent(extent, env)
        if value is None:
            raise Mixed(self._range_vars(extent, env))
        return value


def _find_thread_loop(stmt: Stmt) -> Optional[For]:
    """Locate the tasklet-binding loop within a kernel section."""
    from ..tir import iter_stmts

    for s in iter_stmts(stmt):
        if (
            isinstance(s, For)
            and s.kind is ForKind.THREAD_BINDING
            and s.thread_tag == "threadIdx.x"
        ):
            return s
    return None


def _strip_thread_loop(stmt: Stmt) -> Stmt:
    """Replace the tasklet loop by its body (thread var becomes free)."""
    from ..tir.visitor import StmtMutator

    class _Strip(StmtMutator):
        def visit_For(self, node: For) -> Optional[Stmt]:
            if (
                node.kind is ForKind.THREAD_BINDING
                and node.thread_tag == "threadIdx.x"
            ):
                body = self.visit_stmt(node.body)
                return body
            return self.generic_visit_stmt(node)

    result = _Strip().visit_stmt(stmt)
    assert result is not None
    return result


def grouped(
    variables: Sequence[Tuple[Var, int]],
    base_env: Env,
    fn: Callable[[Env], object],
) -> List[Tuple[int, object]]:
    """Evaluate ``fn`` over the product domain of ``variables`` in uniform
    groups.

    Tries the full ranges first; on :class:`Mixed`, bisects the offending
    variable.  Returns ``(group_size, result)`` pairs covering the domain.
    """

    def rec(env: Env, sizes: Dict[Var, int]) -> List[Tuple[int, object]]:
        try:
            count = 1
            for n in sizes.values():
                count *= n
            return [(count, fn(env))]
        except Mixed as m:
            split_var = None
            for v, _ in variables:
                if v in m.variables and sizes.get(v, 1) > 1:
                    split_var = v
                    break
            if split_var is None:
                raise
        iv = env[split_var]
        mid = (iv.lo + iv.hi) // 2
        results = []
        for lo, hi in ((iv.lo, mid), (mid + 1, iv.hi)):
            child = dict(env)
            child[split_var] = Interval(lo, hi)
            child_sizes = dict(sizes)
            child_sizes[split_var] = hi - lo + 1
            results.extend(rec(child, child_sizes))
        return results

    env = dict(base_env)
    sizes: Dict[Var, int] = {}
    for var, extent in variables:
        env[var] = Interval(0, extent - 1)
        sizes[var] = extent
    return rec(env, sizes)
