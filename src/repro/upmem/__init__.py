"""UPMEM system substrate: functional executor and performance model."""

from .config import DEFAULT_CONFIG, UpmemConfig
from .executor import SIM_MODES, FunctionalExecutor, VerifyMismatch, sim_mode
from .interp import Interpreter
from .vectorize import KernelPlan, VectorizeError, plan_for

__all__ = [
    "UpmemConfig",
    "DEFAULT_CONFIG",
    "FunctionalExecutor",
    "Interpreter",
    "VerifyMismatch",
    "sim_mode",
    "SIM_MODES",
    "KernelPlan",
    "VectorizeError",
    "plan_for",
]
