"""UPMEM system substrate: functional executor and performance model."""

from .config import DEFAULT_CONFIG, UpmemConfig
from .executor import FunctionalExecutor
from .interp import Interpreter

__all__ = ["UpmemConfig", "DEFAULT_CONFIG", "FunctionalExecutor", "Interpreter"]
