"""UPMEM-C code emission from lowered kernels.

Renders the kernel TIR of a :class:`LoweredModule` as the C a UPMEM DPU
program would contain (``dpu-upmem-dpurte-clang`` dialect): tasklet
dispatch via ``me()``, ``__mram_noinit`` tile declarations, WRAM buffers,
``mram_read``/``mram_write`` DMA intrinsics and ``barrier_wait``.  The
output is for inspection and documentation — execution happens in the
simulator — but it makes the generated code reviewable side by side with
PrIM kernels.
"""

from __future__ import annotations

from typing import List

from ..lowering import LoweredModule
from ..tir import (
    Buffer,
    BufferStore,
    DmaCopy,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    SeqStmt,
    Stmt,
    expr_to_str,
)

__all__ = ["emit_kernel_c", "emit_host_pseudocode"]

def _cname(name: str) -> str:
    """Sanitize a buffer name into a C identifier."""
    return name.replace(".", "_").replace("-", "_")


_C_TYPES = {
    "float32": "float",
    "float64": "double",
    "int32": "int32_t",
    "int64": "int64_t",
    "int8": "int8_t",
    "bool": "uint8_t",
}


def _ctype(buffer: Buffer) -> str:
    return _C_TYPES.get(buffer.dtype, "float")


def _decl(buffer: Buffer) -> str:
    dims = "".join(f"[{d}]" for d in buffer.shape)
    if buffer.scope == "mram":
        return f"__mram_noinit {_ctype(buffer)} {_cname(buffer.name)}{dims};"
    if buffer.scope == "wram":
        return f"__dma_aligned {_ctype(buffer)} {_cname(buffer.name)}{dims};"
    return f"{_ctype(buffer)} {_cname(buffer.name)}{dims};"


def _flat(buffer: Buffer, indices) -> str:
    return "".join(f"[{expr_to_str(i)}]" for i in indices)


class _CEmitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def put(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def emit(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self.emit(s)
        elif isinstance(stmt, For):
            if stmt.kind is ForKind.THREAD_BINDING:
                self.put(f"// tasklet loop: {stmt.var.name} = me()")
                self.put(f"unsigned int {stmt.var.name} = me();")
                self.put(
                    f"if ({stmt.var.name} < {expr_to_str(stmt.extent)}) {{"
                )
            else:
                note = (
                    "  // #pragma unroll"
                    if stmt.kind is ForKind.UNROLLED
                    else ""
                )
                self.put(
                    f"for (int {stmt.var.name} = 0; {stmt.var.name} < "
                    f"{expr_to_str(stmt.extent)}; {stmt.var.name}++) {{{note}"
                )
            self.indent += 1
            self.emit(stmt.body)
            self.indent -= 1
            self.put("}")
        elif isinstance(stmt, IfThenElse):
            self.put(f"if ({expr_to_str(stmt.condition)}) {{")
            self.indent += 1
            self.emit(stmt.then_case)
            self.indent -= 1
            if stmt.else_case is not None:
                self.put("} else {")
                self.indent += 1
                self.emit(stmt.else_case)
                self.indent -= 1
            self.put("}")
        elif isinstance(stmt, BufferStore):
            lhs = f"{_cname(stmt.buffer.name)}{_flat(stmt.buffer, stmt.indices)}"
            self.put(f"{lhs} = {expr_to_str(stmt.value)};")
        elif isinstance(stmt, DmaCopy):
            nbytes = stmt.nbytes
            dst = f"&{_cname(stmt.dst.name)}{_flat(stmt.dst, stmt.dst_base)}"
            src = f"&{_cname(stmt.src.name)}{_flat(stmt.src, stmt.src_base)}"
            if stmt.dst.scope == "wram":
                self.put(
                    f"mram_read((__mram_ptr void *){src}, {dst}, {nbytes});"
                )
            else:
                self.put(
                    f"mram_write({src}, (__mram_ptr void *){dst}, {nbytes});"
                )
        elif isinstance(stmt, Evaluate):
            if stmt.call.op == "barrier":
                self.put("barrier_wait(&my_barrier);")
            else:
                self.put(f"{expr_to_str(stmt.call)};")
        else:
            self.put(f"/* {type(stmt).__name__} */")


def emit_kernel_c(module: LoweredModule) -> str:
    """Render the DPU kernel of ``module`` as UPMEM C."""
    em = _CEmitter()
    em.put("#include <mram.h>")
    em.put("#include <defs.h>")
    em.put("#include <barrier.h>")
    em.put("")
    em.put(f"// kernel: {module.name}  (grid = "
           + " x ".join(f"{d.tag}:{d.extent}" for d in module.grid) + ")")
    em.put("BARRIER_INIT(my_barrier, NR_TASKLETS);")
    em.put("")
    declared = set()
    for spec in module.transfers:
        if spec.local_buffer not in declared:
            em.put(_decl(spec.local_buffer))
            declared.add(spec.local_buffer)
    for buf in module.mram_internal:
        em.put(_decl(buf))
    em.put("")
    em.put("int main(void) {")
    em.indent += 1
    for dim in module.grid:
        em.put(f"const unsigned int {dim.var.name} = DPU_INDEX_{dim.tag[-1].upper()};")
    for buf in module.wram_buffers:
        em.put(_decl(buf))
    em.emit(module.kernel)
    em.put("return 0;")
    em.indent -= 1
    em.put("}")
    return "\n".join(em.lines)


def emit_host_pseudocode(module: LoweredModule) -> str:
    """Render the host side: allocation, transfers, launch, reduction."""
    lines = [f"// host program for {module.name}"]
    lines.append(f"dpu_alloc({module.n_dpus}, &set);")
    lines.append('dpu_load(set, "kernel.bin");')
    for spec in module.transfer("h2d"):
        fn = (
            "dpu_push_xfer(DPU_XFER_TO_DPU"
            if module.options.transfer_mode == "parallel"
            else "dpu_copy_to"
        )
        lines.append(
            f"{fn}, {spec.global_buffer.name} -> {spec.local_buffer.name}"
            f" tile{spec.shape});"
        )
    lines.append("dpu_launch(set, DPU_SYNCHRONOUS);")
    for spec in module.transfer("d2h"):
        lines.append(
            f"dpu_push_xfer(DPU_XFER_FROM_DPU, {spec.local_buffer.name}"
            f" tile{spec.shape} -> {spec.global_buffer.name});"
        )
    from ..tir import stmt_to_str

    for stmt in module.host_post:
        lines.append("// host final reduction:")
        lines.extend(stmt_to_str(stmt).splitlines())
    return "\n".join(lines)
