"""A scalar TIR interpreter used for functional validation.

Interprets lowered host/kernel statements against numpy-backed buffers.
It is intentionally simple (and slow) and defines the *reference
semantics*: the vectorized compiler in :mod:`repro.upmem.vectorize` must
match it bit for bit, and falls back to it for out-of-model constructs.
Dispatch is a type-keyed table rather than an ``isinstance`` ladder so
the fallback path stays reasonably fast.
"""

from __future__ import annotations

import math
import operator
from typing import Dict

import numpy as np

from ..tir import (
    Add,
    Allocate,
    And,
    Buffer,
    BufferLoad,
    BufferStore,
    Call,
    Cast,
    DmaCopy,
    EQ,
    Evaluate,
    FloatImm,
    FloorDiv,
    FloorMod,
    For,
    GE,
    GT,
    IfThenElse,
    IntImm,
    LE,
    LT,
    Max,
    Min,
    Mul,
    NE,
    Not,
    Or,
    PrimExpr,
    Select,
    SeqStmt,
    Stmt,
    Sub,
    Var,
)

__all__ = ["Interpreter", "InterpError"]


class InterpError(RuntimeError):
    """Raised on out-of-model constructs or out-of-bounds accesses."""


#: Scalar intrinsics; shared with the vectorizer's scalar subexpressions.
_INTRINSICS = {"exp": math.exp, "sqrt": math.sqrt, "abs": abs}


# -- expression dispatch ----------------------------------------------------

def _ev_imm(self, expr, env):
    return expr.value


def _ev_var(self, expr, env):
    try:
        return env[expr]
    except KeyError:
        raise InterpError(f"unbound variable {expr.name}") from None


def _binop(op):
    def ev(self, expr, env):
        return op(self.eval(expr.a, env), self.eval(expr.b, env))

    return ev


def _ev_and(self, expr, env):
    return bool(self.eval(expr.a, env)) and bool(self.eval(expr.b, env))


def _ev_or(self, expr, env):
    return bool(self.eval(expr.a, env)) or bool(self.eval(expr.b, env))


def _ev_not(self, expr, env):
    return not self.eval(expr.a, env)


def _ev_select(self, expr, env):
    if self.eval(expr.cond, env):
        return self.eval(expr.true_value, env)
    return self.eval(expr.false_value, env)


def _ev_load(self, expr, env):
    arr = self._array(expr.buffer)
    idx = tuple(int(self.eval(i, env)) for i in expr.indices)
    self._check(expr.buffer, idx)
    return arr[idx]


def _ev_cast(self, expr, env):
    value = self.eval(expr.value, env)
    if expr.dtype.startswith("int"):
        return int(value)
    return float(value)


def _ev_call(self, expr, env):
    args = [self.eval(a, env) for a in expr.args]
    fn = _INTRINSICS.get(expr.op)
    if fn is None:
        raise InterpError(f"unknown intrinsic {expr.op!r}")
    return fn(*args)


_EVAL = {
    IntImm: _ev_imm,
    FloatImm: _ev_imm,
    Var: _ev_var,
    Add: _binop(operator.add),
    Sub: _binop(operator.sub),
    Mul: _binop(operator.mul),
    FloorDiv: _binop(operator.floordiv),
    FloorMod: _binop(operator.mod),
    Min: _binop(min),
    Max: _binop(max),
    LT: _binop(operator.lt),
    LE: _binop(operator.le),
    GT: _binop(operator.gt),
    GE: _binop(operator.ge),
    EQ: _binop(operator.eq),
    NE: _binop(operator.ne),
    And: _ev_and,
    Or: _ev_or,
    Not: _ev_not,
    Select: _ev_select,
    BufferLoad: _ev_load,
    Cast: _ev_cast,
    Call: _ev_call,
}


# -- statement dispatch -----------------------------------------------------

def _ex_seq(self, stmt, env):
    for s in stmt.stmts:
        self.run(s, env)


def _ex_for(self, stmt, env):
    extent = int(self.eval(stmt.extent, env))
    var, body, run = stmt.var, stmt.body, self.run
    for value in range(extent):
        env[var] = value
        run(body, env)
    env.pop(var, None)


def _ex_if(self, stmt, env):
    if self.eval(stmt.condition, env):
        self.run(stmt.then_case, env)
    elif stmt.else_case is not None:
        self.run(stmt.else_case, env)


def _ex_store(self, stmt, env):
    arr = self._array(stmt.buffer)
    idx = tuple(int(self.eval(i, env)) for i in stmt.indices)
    self._check(stmt.buffer, idx)
    arr[idx] = self.eval(stmt.value, env)


def _ex_alloc(self, stmt, env):
    self.arrays.setdefault(
        stmt.buffer, np.zeros(stmt.buffer.shape, _np_dtype(stmt.buffer))
    )
    self.run(stmt.body, env)


def _ex_eval(self, stmt, env):
    if stmt.call.op == "barrier":
        return  # tasklets are interpreted serially
    self.eval(stmt.call, env)


class Interpreter:
    """Executes statements over a ``Buffer -> np.ndarray`` store."""

    def __init__(self, arrays: Dict[Buffer, np.ndarray]) -> None:
        self.arrays = arrays

    # -- expressions --------------------------------------------------------
    def eval(self, expr: PrimExpr, env: Dict[Var, int]):
        try:
            fn = _EVAL[type(expr)]
        except KeyError:
            raise InterpError(
                f"cannot evaluate {type(expr).__name__}"
            ) from None
        return fn(self, expr, env)

    def _call(self, expr: Call, env):
        return _ev_call(self, expr, env)

    # -- statements ---------------------------------------------------------
    def run(self, stmt: Stmt, env: Dict[Var, int]) -> None:
        try:
            fn = _EXEC[type(stmt)]
        except KeyError:
            raise InterpError(
                f"cannot execute {type(stmt).__name__}"
            ) from None
        fn(self, stmt, env)

    def _dma(self, stmt: DmaCopy, env) -> None:
        dst = self._array(stmt.dst)
        src = self._array(stmt.src)
        dst_base = tuple(int(self.eval(i, env)) for i in stmt.dst_base)
        src_base = tuple(int(self.eval(i, env)) for i in stmt.src_base)
        n = stmt.size
        dst_flat = dst.reshape(-1)
        src_flat = src.reshape(-1)
        doff = int(np.ravel_multi_index(dst_base, dst.shape, mode="clip"))
        soff = int(np.ravel_multi_index(src_base, src.shape, mode="clip"))
        # DMA may legally over-read/over-write within the locally padded
        # tile; clamp to the physical buffers (the pad) like hardware
        # clamps to the MRAM tile allocation.
        n_eff = min(n, dst_flat.size - doff, src_flat.size - soff)
        if n_eff < 0:
            raise InterpError("DMA base outside buffer")
        dst_flat[doff : doff + n_eff] = src_flat[soff : soff + n_eff]

    # -- helpers -------------------------------------------------------------
    def _array(self, buffer: Buffer) -> np.ndarray:
        arr = self.arrays.get(buffer)
        if arr is None:
            arr = np.zeros(buffer.shape, _np_dtype(buffer))
            self.arrays[buffer] = arr
        return arr

    def _check(self, buffer: Buffer, idx) -> None:
        for i, extent in zip(idx, buffer.shape):
            if i < 0 or i >= extent:
                raise InterpError(
                    f"index {idx} out of bounds for {buffer!r}"
                )


_EXEC = {
    SeqStmt: _ex_seq,
    For: _ex_for,
    IfThenElse: _ex_if,
    BufferStore: _ex_store,
    DmaCopy: Interpreter._dma,
    Allocate: _ex_alloc,
    Evaluate: _ex_eval,
}


_NP_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
    "int32": np.int32,
    "int64": np.int64,
    "bool": np.bool_,
}


def _np_dtype(buffer: Buffer):
    return _NP_DTYPES.get(buffer.dtype, np.float32)
