"""A scalar TIR interpreter used for functional validation.

Interprets lowered host/kernel statements against numpy-backed buffers.
It is intentionally simple (and slow): correctness tests run it on small
shapes to validate the whole compilation pipeline; timing comes from the
analytical walker in :mod:`repro.upmem.analyzer` instead.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..tir import (
    Add,
    Allocate,
    And,
    Buffer,
    BufferLoad,
    BufferStore,
    Call,
    Cast,
    CmpOp,
    DmaCopy,
    EQ,
    Evaluate,
    FloatImm,
    FloorDiv,
    FloorMod,
    For,
    GE,
    GT,
    IfThenElse,
    IntImm,
    LE,
    LT,
    Max,
    Min,
    Mul,
    NE,
    Not,
    Or,
    PrimExpr,
    Select,
    SeqStmt,
    Stmt,
    Sub,
    Var,
)

__all__ = ["Interpreter", "InterpError"]


class InterpError(RuntimeError):
    """Raised on out-of-model constructs or out-of-bounds accesses."""


class Interpreter:
    """Executes statements over a ``Buffer -> np.ndarray`` store."""

    def __init__(self, arrays: Dict[Buffer, np.ndarray]) -> None:
        self.arrays = arrays

    # -- expressions ---------------------------------------------------------
    def eval(self, expr: PrimExpr, env: Dict[Var, int]):
        if isinstance(expr, IntImm):
            return expr.value
        if isinstance(expr, FloatImm):
            return expr.value
        if isinstance(expr, Var):
            try:
                return env[expr]
            except KeyError:
                raise InterpError(f"unbound variable {expr.name}") from None
        if isinstance(expr, Add):
            return self.eval(expr.a, env) + self.eval(expr.b, env)
        if isinstance(expr, Sub):
            return self.eval(expr.a, env) - self.eval(expr.b, env)
        if isinstance(expr, Mul):
            return self.eval(expr.a, env) * self.eval(expr.b, env)
        if isinstance(expr, FloorDiv):
            return self.eval(expr.a, env) // self.eval(expr.b, env)
        if isinstance(expr, FloorMod):
            return self.eval(expr.a, env) % self.eval(expr.b, env)
        if isinstance(expr, Min):
            return min(self.eval(expr.a, env), self.eval(expr.b, env))
        if isinstance(expr, Max):
            return max(self.eval(expr.a, env), self.eval(expr.b, env))
        if isinstance(expr, CmpOp):
            a = self.eval(expr.a, env)
            b = self.eval(expr.b, env)
            if isinstance(expr, LT):
                return a < b
            if isinstance(expr, LE):
                return a <= b
            if isinstance(expr, GT):
                return a > b
            if isinstance(expr, GE):
                return a >= b
            if isinstance(expr, EQ):
                return a == b
            if isinstance(expr, NE):
                return a != b
        if isinstance(expr, And):
            return bool(self.eval(expr.a, env)) and bool(self.eval(expr.b, env))
        if isinstance(expr, Or):
            return bool(self.eval(expr.a, env)) or bool(self.eval(expr.b, env))
        if isinstance(expr, Not):
            return not self.eval(expr.a, env)
        if isinstance(expr, Select):
            if self.eval(expr.cond, env):
                return self.eval(expr.true_value, env)
            return self.eval(expr.false_value, env)
        if isinstance(expr, BufferLoad):
            arr = self._array(expr.buffer)
            idx = tuple(int(self.eval(i, env)) for i in expr.indices)
            self._check(expr.buffer, idx)
            return arr[idx]
        if isinstance(expr, Cast):
            value = self.eval(expr.value, env)
            if expr.dtype.startswith("int"):
                return int(value)
            return float(value)
        if isinstance(expr, Call):
            return self._call(expr, env)
        raise InterpError(f"cannot evaluate {type(expr).__name__}")

    def _call(self, expr: Call, env):
        args = [self.eval(a, env) for a in expr.args]
        import math

        table = {"exp": math.exp, "sqrt": math.sqrt, "abs": abs}
        fn = table.get(expr.op)
        if fn is None:
            raise InterpError(f"unknown intrinsic {expr.op!r}")
        return fn(*args)

    # -- statements ---------------------------------------------------------
    def run(self, stmt: Stmt, env: Dict[Var, int]) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self.run(s, env)
        elif isinstance(stmt, For):
            extent = int(self.eval(stmt.extent, env))
            for value in range(extent):
                env[stmt.var] = value
                self.run(stmt.body, env)
            env.pop(stmt.var, None)
        elif isinstance(stmt, IfThenElse):
            if self.eval(stmt.condition, env):
                self.run(stmt.then_case, env)
            elif stmt.else_case is not None:
                self.run(stmt.else_case, env)
        elif isinstance(stmt, BufferStore):
            arr = self._array(stmt.buffer)
            idx = tuple(int(self.eval(i, env)) for i in stmt.indices)
            self._check(stmt.buffer, idx)
            arr[idx] = self.eval(stmt.value, env)
        elif isinstance(stmt, DmaCopy):
            self._dma(stmt, env)
        elif isinstance(stmt, Allocate):
            self.arrays.setdefault(
                stmt.buffer, np.zeros(stmt.buffer.shape, _np_dtype(stmt.buffer))
            )
            self.run(stmt.body, env)
        elif isinstance(stmt, Evaluate):
            if stmt.call.op == "barrier":
                return  # tasklets are interpreted serially
            self.eval(stmt.call, env)
        else:
            raise InterpError(f"cannot execute {type(stmt).__name__}")

    def _dma(self, stmt: DmaCopy, env) -> None:
        dst = self._array(stmt.dst)
        src = self._array(stmt.src)
        dst_base = tuple(int(self.eval(i, env)) for i in stmt.dst_base)
        src_base = tuple(int(self.eval(i, env)) for i in stmt.src_base)
        n = stmt.size
        dst_flat = dst.reshape(-1)
        src_flat = src.reshape(-1)
        doff = int(np.ravel_multi_index(dst_base, dst.shape, mode="clip"))
        soff = int(np.ravel_multi_index(src_base, src.shape, mode="clip"))
        # DMA may legally over-read/over-write within the locally padded
        # tile; clamp to the physical buffers (the pad) like hardware
        # clamps to the MRAM tile allocation.
        n_eff = min(n, dst_flat.size - doff, src_flat.size - soff)
        if n_eff < 0:
            raise InterpError("DMA base outside buffer")
        dst_flat[doff : doff + n_eff] = src_flat[soff : soff + n_eff]

    # -- helpers ---------------------------------------------------------------
    def _array(self, buffer: Buffer) -> np.ndarray:
        arr = self.arrays.get(buffer)
        if arr is None:
            arr = np.zeros(buffer.shape, _np_dtype(buffer))
            self.arrays[buffer] = arr
        return arr

    def _check(self, buffer: Buffer, idx) -> None:
        for i, extent in zip(idx, buffer.shape):
            if i < 0 or i >= extent:
                raise InterpError(
                    f"index {idx} out of bounds for {buffer!r}"
                )


def _np_dtype(buffer: Buffer):
    return {"float32": np.float32, "float64": np.float64, "int32": np.int64,
            "int64": np.int64, "bool": np.bool_}.get(buffer.dtype, np.float32)
