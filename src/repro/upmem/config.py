"""UPMEM hardware configuration and calibrated model constants.

Every constant cites its provenance.  Defaults model the paper's testbed: a
dual-socket Xeon Gold 5220R host with 32 ranks of DDR4-2400 PIM DIMMs
(2048 DPUs).  Sources:

* Devaux, "The true Processing-In-Memory accelerator", Hot Chips 2019.
* Gómez-Luna et al., "Benchmarking a New Paradigm ... (PrIM)", IEEE
  Access 2022 — DPU pipeline behaviour, MRAM/WRAM bandwidths, host link
  bandwidth scaling.
* Hyun et al., "Pathfinding Future PIM Architectures ... (uPIMulator)",
  HPCA 2024 — branch/issue behaviour of the in-order DPU core.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["UpmemConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class UpmemConfig:
    """Hardware parameters of the simulated UPMEM system."""

    # ---- system topology --------------------------------------------------
    n_ranks: int = 32
    dpus_per_rank: int = 64

    # ---- DPU core (Devaux 2019; PrIM §2) -----------------------------------
    dpu_frequency_hz: float = 350e6
    max_tasklets: int = 24
    #: Pipeline depth: one tasklet can issue an instruction every
    #: ``pipeline_depth`` cycles, so >=11 resident tasklets sustain 1 IPC.
    pipeline_depth: int = 11
    #: Extra cycles lost when a conditional branch is evaluated; the DPU
    #: has no branch predictor, so every taken/not-taken decision disturbs
    #: the revolver pipeline (uPIMulator).
    branch_penalty_cycles: float = 1.0

    # ---- memories ----------------------------------------------------------
    wram_bytes: int = 64 * 1024
    iram_bytes: int = 24 * 1024
    #: IRAM holds 48-bit instructions: 24 KB == 4096 instructions.
    iram_instructions: int = 4096
    mram_bytes: int = 64 * 1024 * 1024

    # ---- MRAM<->WRAM DMA engine (PrIM fig. 5) --------------------------------
    #: Fixed cycles to program one DMA transfer.
    dma_setup_cycles: float = 77.0
    #: Streaming cost per byte once a burst is running (~0.7 GB/s/DPU at
    #: 350 MHz -> ~0.5 cycles/byte for reads).
    dma_cycles_per_byte: float = 0.5
    #: Minimum transfer granularity/alignment in bytes.
    dma_align_bytes: int = 8
    #: Cycles for a single 8-byte WRAM<->MRAM access issued without DMA
    #: batching (element-wise ``mram_read`` of one value).
    dma_small_access_cycles: float = 88.0

    # ---- host <-> DPU link (PrIM §3.3) ---------------------------------------
    #: Aggregate H2D bandwidth with rank-parallel pushes, full system.
    h2d_bandwidth_gbps: float = 6.7
    #: Aggregate D2H bandwidth (reads are slower on UPMEM).
    d2h_bandwidth_gbps: float = 4.7
    #: Software overhead per ``dpu_push_xfer`` call (seconds).
    xfer_call_overhead_s: float = 4.0e-6
    #: Software overhead per per-DPU ``dpu_copy_to/from`` call (seconds).
    copy_call_overhead_s: float = 2.0e-6
    #: Fixed kernel-launch cost (``dpu_launch``), seconds.
    launch_overhead_s: float = 35.0e-6
    #: Effective bandwidth of serial per-DPU copies (``dpu_copy_to``),
    #: which cannot exploit rank-level parallelism (PrIM §3.3 measures
    #: serial transfers an order of magnitude below parallel pushes).
    serial_copy_bandwidth_gbps: float = 0.12

    # ---- host CPU (Xeon Gold 5220R, dual socket) ------------------------------
    host_threads: int = 48
    #: Sustained single-thread reduction throughput (bytes/s).
    host_thread_bandwidth: float = 6.0e9
    #: Socket memory bandwidth cap (bytes/s) for host post-processing.
    host_mem_bandwidth: float = 85.0e9
    #: Per-element cost of host reduction arithmetic (seconds); dominated
    #: by memory traffic, kept for small-tensor fidelity.
    host_op_overhead_s: float = 2.0e-10
    #: Fixed cost of entering/leaving a parallel host region.
    host_parallel_overhead_s: float = 8.0e-6

    # ---- deployment model -------------------------------------------------------
    #: Inputs whose DPU tiles exactly partition the tensor are resident in
    #: PIM memory (placed once, e.g. weight matrices / KV cache); only
    #: duplicated data (broadcast vectors) and outputs move per run.  This
    #: matches the paper's steady-state measurement where e.g. 2-D tiling
    #: shrinks H2D by cutting the broadcast footprint of the input vector.
    resident_partitioned_inputs: bool = True
    #: (Reserved) slack factor for residency decisions; the current model
    #: charges exactly the duplicated bytes, so no threshold is needed.
    residency_slack: float = 1.25

    # ---- intra-DPU synchronization -------------------------------------------
    barrier_cycles: float = 200.0

    # ---- instruction cost table (cycles per issued instruction) ---------------
    #: Integer multiply is multi-cycle on the DPU (no 32x32 multiplier).
    int_mul_cycles: float = 5.0
    float_mul_cycles: float = 8.0
    float_add_cycles: float = 5.0

    @property
    def n_dpus(self) -> int:
        return self.n_ranks * self.dpus_per_rank

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.dpu_frequency_hz

    def with_(self, **kwargs) -> "UpmemConfig":
        """Functional update (e.g. smaller systems for tests)."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = UpmemConfig()
