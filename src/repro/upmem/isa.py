"""Instruction-cost accounting for kernel expressions.

The DPU is a 32-bit in-order core without an FPU or a 32x32 multiplier;
arithmetic costs below are issue-slot counts per operation, following the
instruction-level characterization in PrIM (§3.1) and uPIMulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..tir import (
    Add,
    And,
    BufferLoad,
    Call,
    Cast,
    CmpOp,
    FloatImm,
    FloorDiv,
    FloorMod,
    IntImm,
    Max,
    Min,
    Mul,
    Not,
    Or,
    PrimExpr,
    Select,
    Sub,
    Var,
)
from .config import UpmemConfig

__all__ = ["Counts", "ExprCoster"]


@dataclass
class Counts:
    """Dynamic cost counters accumulated by the timing walker.

    ``slots`` are pipeline issue slots (1 cycle each at full occupancy);
    DMA work is kept separate because the DMA engine runs concurrently
    with the pipeline.
    """

    slots: float = 0.0
    branches: float = 0.0
    dma_calls: float = 0.0
    dma_bytes: float = 0.0
    barriers: float = 0.0
    compute_ops: float = 0.0  # innermost arithmetic (for GFLOPS reporting)
    stores: float = 0.0
    loads: float = 0.0

    def __iadd__(self, other: "Counts") -> "Counts":
        self.slots += other.slots
        self.branches += other.branches
        self.dma_calls += other.dma_calls
        self.dma_bytes += other.dma_bytes
        self.barriers += other.barriers
        self.compute_ops += other.compute_ops
        self.stores += other.stores
        self.loads += other.loads
        return self

    def __add__(self, other: "Counts") -> "Counts":
        result = Counts()
        result += self
        result += other
        return result

    def scaled(self, n: float) -> "Counts":
        return Counts(
            slots=self.slots * n,
            branches=self.branches * n,
            dma_calls=self.dma_calls * n,
            dma_bytes=self.dma_bytes * n,
            barriers=self.barriers * n,
            compute_ops=self.compute_ops * n,
            stores=self.stores * n,
            loads=self.loads * n,
        )

    @property
    def instructions(self) -> float:
        """Total dynamic instruction estimate (Fig. 13's line series)."""
        return self.slots


def _pow2_const_operand(expr: Mul) -> bool:
    for side in (expr.a, expr.b):
        if isinstance(side, IntImm) and side.value > 0:
            if side.value & (side.value - 1) == 0:
                return True
    return False


class ExprCoster:
    """Static issue-slot cost of expressions (memoized by node identity)."""

    def __init__(self, config: UpmemConfig) -> None:
        self.config = config
        # Memo holds the expression object alongside its cost: keying by
        # id() alone is unsound because CPython reuses ids of collected
        # objects.
        self._memo: Dict[int, tuple] = {}

    def cost(self, expr: PrimExpr) -> Counts:
        memo = self._memo.get(id(expr))
        if memo is not None and memo[0] is expr:
            return memo[1]
        result = self._cost(expr)
        self._memo[id(expr)] = (expr, result)
        return result

    def _cost(self, expr: PrimExpr) -> Counts:
        cfg = self.config
        c = Counts()
        if isinstance(expr, (IntImm, FloatImm, Var)):
            return c
        if isinstance(expr, BufferLoad):
            for i in expr.indices:
                c += self.cost(i)
            c.loads += 1
            if expr.buffer.scope == "mram":
                # Element-wise MRAM access: an un-batched 8-byte DMA.
                c.dma_calls += 1
                c.dma_bytes += max(expr.buffer.elem_bytes, cfg.dma_align_bytes)
                c.slots += 2  # address setup + issue
            else:
                c.slots += 1
            # Multi-dimensional addressing costs one MAD per extra dim.
            c.slots += max(0, len(expr.indices) - 1)
            return c
        if isinstance(expr, (Add, Sub)):
            c += self.cost(expr.a)
            c += self.cost(expr.b)
            is_float = expr.dtype.startswith("float")
            c.slots += cfg.float_add_cycles if is_float else 1.0
            c.compute_ops += 1
            return c
        if isinstance(expr, Mul):
            c += self.cost(expr.a)
            c += self.cost(expr.b)
            if expr.dtype.startswith("float"):
                c.slots += cfg.float_mul_cycles
            elif _pow2_const_operand(expr):
                c.slots += 1.0  # strength-reduced to a shift
            else:
                c.slots += cfg.int_mul_cycles
            c.compute_ops += 1
            return c
        if isinstance(expr, (FloorDiv, FloorMod)):
            c += self.cost(expr.a)
            c += self.cost(expr.b)
            c.slots += 2.0 if isinstance(expr.b, IntImm) else 10.0
            return c
        if isinstance(expr, (Min, Max)):
            c += self.cost(expr.a)
            c += self.cost(expr.b)
            c.slots += 2.0
            return c
        if isinstance(expr, CmpOp):
            c += self.cost(expr.a)
            c += self.cost(expr.b)
            c.slots += 1.0
            return c
        if isinstance(expr, (And, Or)):
            c += self.cost(expr.a)
            c += self.cost(expr.b)
            c.slots += 1.0
            return c
        if isinstance(expr, Not):
            c += self.cost(expr.a)
            c.slots += 1.0
            return c
        if isinstance(expr, Select):
            c += self.cost(expr.cond)
            c += self.cost(expr.true_value)
            c += self.cost(expr.false_value)
            c.slots += 2.0
            return c
        if isinstance(expr, Cast):
            c += self.cost(expr.value)
            c.slots += 1.0
            return c
        if isinstance(expr, Call):
            for a in expr.args:
                c += self.cost(a)
            c.slots += 20.0  # libm-style intrinsic
            return c
        raise TypeError(f"cannot cost {type(expr).__name__}")
