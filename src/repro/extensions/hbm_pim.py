"""HBM-PIM (Aquabolt-XL) backend sketch — paper §8, "Extension to other
DRAM-PIM architectures".

The paper reports preliminary results suggesting ATiM extends to
MAC-accelerator DRAM-PIM like Samsung's HBM-PIM, where a processing unit
(PU) is shared by every two banks and executes 16-wide fp16 multiply-
accumulate commands issued in a special memory mode, instead of a
general-purpose core running compiled kernels.

This module reproduces that extension at the same fidelity the paper
reports (a feasibility estimate, not a full backend): it maps a lowered
module's per-DPU tiles onto PU command streams and estimates latency from
command counts, showing that the two-level binding the paper describes
(bank level + PU level) drops out of the existing grid/tile structure.

The user-facing surface is the first-class ``hbm-pim`` target
(``repro.compile(workload, target="hbm-pim")``, cross-target tuning via
``autotune(wl, target="hbm-pim")``); this module provides the estimator
and registers the ``hbm-pim`` pipeline it runs on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..lowering import LoweredModule
from ..pipeline import (
    LowerSchedulePass,
    Pass,
    PassContext,
    PassManager,
    get_pipeline,
    has_pipeline,
    kernel_passes,
    register_pipeline,
)

__all__ = [
    "HbmPimConfig",
    "HbmPimEstimator",
    "HbmPimEstimate",
    "HbmPimEstimatePass",
    "estimate_schedule",
    "estimate_lowered",
]


@dataclass(frozen=True)
class HbmPimConfig:
    """Aquabolt-XL-style configuration (Lee et al., ISCA 2021)."""

    n_pseudo_channels: int = 64
    banks_per_channel: int = 16
    #: One PU per two banks.
    banks_per_pu: int = 2
    #: fp16 MACs per PU command (16-wide SIMD).
    macs_per_command: int = 16
    #: Commands issue at tCCD rate in PIM mode.
    command_rate_hz: float = 1.2e9
    #: Mode-switch (SB->PIM and back) overhead per kernel, seconds.
    mode_switch_s: float = 2.0e-6
    #: Row activation overhead amortized per row of operand data.
    row_activate_s: float = 45.0e-9
    #: Elements per DRAM row buffer per bank.
    row_elems: int = 512

    @property
    def n_pus(self) -> int:
        return (
            self.n_pseudo_channels * self.banks_per_channel // self.banks_per_pu
        )


@dataclass
class HbmPimEstimate:
    """Latency estimate for one module on HBM-PIM."""

    commands_per_pu: float
    rows_touched: float
    latency_s: float
    n_pus: int
    supported: bool
    reason: str = ""


class HbmPimEstimator:
    """Maps lowered UPMEM modules onto HBM-PIM PU command streams.

    Only MAC-shaped kernels (reductions combining with ``add``) are
    supported — exactly the operations HBM-PIM accelerates.  The UPMEM
    grid's DPU binding is reinterpreted as the *bank-level* binding, and
    tasklet tiling as the *PU-level* vector loop, the two-level mapping
    §8 describes.
    """

    def __init__(self, config: Optional[HbmPimConfig] = None) -> None:
        self.config = config or HbmPimConfig()

    def estimate(self, module: LoweredModule, total_macs: float) -> HbmPimEstimate:
        cfg = self.config
        if not module.transfers:
            return HbmPimEstimate(0, 0, 0.0, cfg.n_pus, False, "no tiles")
        # Total MAC work distributed over PUs, command-granular.
        commands = math.ceil(total_macs / cfg.macs_per_command)
        commands_per_pu = commands / cfg.n_pus
        # Operand bytes touched determine row activations.
        operand_elems = sum(
            t.tile_elems * module.n_dpus for t in module.transfer("h2d")
        )
        weight_elems = total_macs  # one weight element per MAC
        rows = (operand_elems + weight_elems) / (cfg.row_elems * cfg.n_pus)
        latency = (
            cfg.mode_switch_s
            + commands_per_pu / cfg.command_rate_hz
            + rows * cfg.row_activate_s
        )
        return HbmPimEstimate(
            commands_per_pu=commands_per_pu,
            rows_touched=rows,
            latency_s=latency,
            n_pus=cfg.n_pus,
            supported=True,
        )

    def supports(self, combiner: Optional[str]) -> bool:
        """HBM-PIM accelerates MAC reductions only."""
        return combiner == "add"


# ---------------------------------------------------------------------------
# pipeline integration
# ---------------------------------------------------------------------------


class HbmPimEstimatePass(Pass):
    """Terminal pipeline stage mapping the module onto PU command streams.

    Reads ``ctx.attrs["total_macs"]`` (and optionally
    ``ctx.attrs["hbm_pim_config"]``) and publishes the resulting
    :class:`HbmPimEstimate` as ``ctx.attrs["hbm_pim_estimate"]``.  The
    module passes through unchanged, so the stage composes after the
    standard §5.3 kernel passes.
    """

    name = "hbm_pim.estimate"

    def __init__(self, config: Optional[HbmPimConfig] = None) -> None:
        self.config = config

    def run(self, module: LoweredModule, ctx: PassContext) -> LoweredModule:
        config = self.config or ctx.attrs.get("hbm_pim_config")
        total_macs = float(ctx.attrs.get("total_macs", 0.0))
        estimator = HbmPimEstimator(config)
        ctx.attrs["hbm_pim_estimate"] = estimator.estimate(module, total_macs)
        return module


def _hbm_pim_pipeline() -> PassManager:
    """Target pipeline: lower, UPMEM §5.3 passes, then the PU mapping."""
    return PassManager(
        [LowerSchedulePass(), *kernel_passes(), HbmPimEstimatePass()],
        name="hbm-pim",
    )


if not has_pipeline("hbm-pim"):
    register_pipeline("hbm-pim", _hbm_pim_pipeline)


def _run_estimate(pipeline: PassManager, obj, total_macs, config, ctx=None):
    ctx = ctx or PassContext()
    ctx.attrs["total_macs"] = total_macs
    if config is not None:
        ctx.attrs["hbm_pim_config"] = config
    pipeline.run(obj, ctx)
    return ctx.attrs["hbm_pim_estimate"]


def estimate_schedule(
    schedule,
    total_macs: float,
    config: Optional[HbmPimConfig] = None,
    ctx: Optional[PassContext] = None,
) -> HbmPimEstimate:
    """Compile a schedule through the registered ``hbm-pim`` pipeline and
    return the feasibility estimate."""
    return _run_estimate(get_pipeline("hbm-pim"), schedule, total_macs, config, ctx)


def estimate_lowered(
    module: LoweredModule,
    total_macs: float,
    config: Optional[HbmPimConfig] = None,
    ctx: Optional[PassContext] = None,
) -> HbmPimEstimate:
    """Estimate an already-compiled module (e.g. a tuner's best candidate).

    Runs only the ``hbm-pim`` pipeline's analysis stages: lowering and
    the §5.3 kernel passes already happened when the module was built,
    so re-running them would both waste work and estimate a differently
    optimized kernel than the caller actually has.
    """
    from ..pipeline import KernelPass

    pipeline = get_pipeline("hbm-pim")
    pipeline.passes = [
        p
        for p in pipeline.passes
        if not isinstance(p, (LowerSchedulePass, KernelPass))
    ]
    return _run_estimate(pipeline, module, total_macs, config, ctx)
