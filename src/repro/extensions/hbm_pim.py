"""HBM-PIM (Aquabolt-XL) backend sketch — paper §8, "Extension to other
DRAM-PIM architectures".

The paper reports preliminary results suggesting ATiM extends to
MAC-accelerator DRAM-PIM like Samsung's HBM-PIM, where a processing unit
(PU) is shared by every two banks and executes 16-wide fp16 multiply-
accumulate commands issued in a special memory mode, instead of a
general-purpose core running compiled kernels.

This module reproduces that extension at the same fidelity the paper
reports (a feasibility estimate, not a full backend): it maps a lowered
module's per-DPU tiles onto PU command streams and estimates latency from
command counts, showing that the two-level binding the paper describes
(bank level + PU level) drops out of the existing grid/tile structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..lowering import LoweredModule

__all__ = ["HbmPimConfig", "HbmPimEstimator", "HbmPimEstimate"]


@dataclass(frozen=True)
class HbmPimConfig:
    """Aquabolt-XL-style configuration (Lee et al., ISCA 2021)."""

    n_pseudo_channels: int = 64
    banks_per_channel: int = 16
    #: One PU per two banks.
    banks_per_pu: int = 2
    #: fp16 MACs per PU command (16-wide SIMD).
    macs_per_command: int = 16
    #: Commands issue at tCCD rate in PIM mode.
    command_rate_hz: float = 1.2e9
    #: Mode-switch (SB->PIM and back) overhead per kernel, seconds.
    mode_switch_s: float = 2.0e-6
    #: Row activation overhead amortized per row of operand data.
    row_activate_s: float = 45.0e-9
    #: Elements per DRAM row buffer per bank.
    row_elems: int = 512

    @property
    def n_pus(self) -> int:
        return (
            self.n_pseudo_channels * self.banks_per_channel // self.banks_per_pu
        )


@dataclass
class HbmPimEstimate:
    """Latency estimate for one module on HBM-PIM."""

    commands_per_pu: float
    rows_touched: float
    latency_s: float
    n_pus: int
    supported: bool
    reason: str = ""


class HbmPimEstimator:
    """Maps lowered UPMEM modules onto HBM-PIM PU command streams.

    Only MAC-shaped kernels (reductions combining with ``add``) are
    supported — exactly the operations HBM-PIM accelerates.  The UPMEM
    grid's DPU binding is reinterpreted as the *bank-level* binding, and
    tasklet tiling as the *PU-level* vector loop, the two-level mapping
    §8 describes.
    """

    def __init__(self, config: Optional[HbmPimConfig] = None) -> None:
        self.config = config or HbmPimConfig()

    def estimate(self, module: LoweredModule, total_macs: float) -> HbmPimEstimate:
        cfg = self.config
        if not module.transfers:
            return HbmPimEstimate(0, 0, 0.0, cfg.n_pus, False, "no tiles")
        # Total MAC work distributed over PUs, command-granular.
        commands = math.ceil(total_macs / cfg.macs_per_command)
        commands_per_pu = commands / cfg.n_pus
        # Operand bytes touched determine row activations.
        operand_elems = sum(
            t.tile_elems * module.n_dpus for t in module.transfer("h2d")
        )
        weight_elems = total_macs  # one weight element per MAC
        rows = (operand_elems + weight_elems) / (cfg.row_elems * cfg.n_pus)
        latency = (
            cfg.mode_switch_s
            + commands_per_pu / cfg.command_rate_hz
            + rows * cfg.row_activate_s
        )
        return HbmPimEstimate(
            commands_per_pu=commands_per_pu,
            rows_touched=rows,
            latency_s=latency,
            n_pus=cfg.n_pus,
            supported=True,
        )

    def supports(self, combiner: Optional[str]) -> bool:
        """HBM-PIM accelerates MAC reductions only."""
        return combiner == "add"
