"""Backend extension sketches beyond UPMEM (paper §8)."""

from .hbm_pim import HbmPimConfig, HbmPimEstimate, HbmPimEstimator

__all__ = ["HbmPimConfig", "HbmPimEstimate", "HbmPimEstimator"]
