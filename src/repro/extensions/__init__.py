"""Backend extension sketches beyond UPMEM (paper §8).

Importing an extension registers its target-specific compile pipeline
with :mod:`repro.pipeline` (e.g. ``hbm-pim``), so backends plug into the
shared :class:`~repro.pipeline.PassManager` flow instead of forking it.
"""

from .hbm_pim import (
    HbmPimConfig,
    HbmPimEstimate,
    HbmPimEstimatePass,
    HbmPimEstimator,
    estimate_lowered,
    estimate_schedule,
)

__all__ = [
    "HbmPimConfig",
    "HbmPimEstimate",
    "HbmPimEstimatePass",
    "HbmPimEstimator",
    "estimate_lowered",
    "estimate_schedule",
]
