"""DecodeEngine: N-layer decode for one *or many* sequences.

The engine closes the loop the rest of the stack leaves open: it owns
the model weights, a :class:`~repro.decode.kv_cache.PagedKVCache`, a
:class:`~repro.decode.residency.WeightResidencyPlanner`, and one shared
:class:`~repro.serve.pool.ExecutablePool`, and drives
:class:`~repro.graph.GraphExecutable` decode steps token after token:

* steps whose cache *capacity* is unchanged reuse that capacity epoch's
  compiled executable outright — zero graph builds, zero pool lookups;
* a step that crossed a page boundary builds the next capacity epoch's
  graph, and the pool serves every capacity-independent program from
  residency (the epoch loads only the attention operators sized to the
  new capacity — ``StepReport.compiled_programs`` proves it);
* each step charges, separately and deterministically: per-node compute
  and boundary transfers (from the epoch's
  :class:`~repro.graph.executable.GraphProfile`), weight stage/evict
  traffic (from the residency planner), and cache-extension transfers
  (from the paged cache) — never the profile's one-shot staging number,
  which the planner supersedes.

**Multi-sequence decode** (the continuous-batching substrate): the
paged cache already block-tables several sequences; the engine now
drives them.  :meth:`DecodeEngine.add_sequence` registers a sequence
with its own seeded prompt and hidden state, :meth:`step_seq` decodes
one token of one sequence, and :meth:`step_batch` decodes one token of
*each* scheduled sequence — one iteration of an iteration-level batch.
Sequences at different positions coexist because capacity epochs are
cached per capacity (``max_resident_epochs``), so a mixed-position
batch reuses every epoch it has seen.  Per-sequence
:class:`StepReport` costs are the *solo* costs — bit-for-bit what the
same sequence would report decoded alone — while the batch's device
occupancy is the :class:`IterationReport`'s amortized model: dispatch
paid once, kernels shared per capacity group, per-sequence transfers
serialized (exactly how :class:`repro.serve.Server` models a flush).

Everything the engine reports is derived from deterministic inputs —
graph structure, simulated latencies, seeded arrays — so a decode run
is bit-for-bit reproducible at any ``max_workers`` and under any
``REPRO_SIM_MODE``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import GraphExecutable, gptj_model_graph, place, plan_memory
from ..graph.builder import GPTJ_SIM
from ..obs import current_tracer
from ..serve.pool import ExecutablePool
from ..upmem.config import UpmemConfig
from ..workloads.gptj import GPTJConfig
from .kv_cache import CacheExtension, PagedKVCache
from .residency import StageEvent, WeightResidencyPlanner

__all__ = ["StepReport", "IterationReport", "DecodeResult", "DecodeEngine"]

#: Weight init scale: keeps hidden states O(1) through the layer
#: recurrence x <- x + attn + ffn across many decode steps.
_WEIGHT_SCALE = np.float32(0.05)


def _sequence_entropy(name: str) -> int:
    """Stable 63-bit integer from a sequence name (process-independent,
    unlike ``hash()``) — seeds the per-sequence rng stream."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class StepReport:
    """One decoded token's full cost breakdown (seconds).

    Costs are *solo* costs — what this sequence's step costs on its
    own.  Iteration-level sharing across sequences is accounted by
    :class:`IterationReport`, never smeared into per-sequence reports,
    so a report is bit-for-bit identical whether the sequence decoded
    alone or rode in a batch.
    """

    step: int
    #: Sequence length when the step ran (the positions attention saw).
    position: int
    #: Allocated cache tokens the step's graph was sized to.
    capacity: int
    #: Fresh programs this step's (re)compile loaded; 0 inside an epoch.
    compiled_programs: int
    #: Whether this step built a new capacity epoch's executable.
    replanned: bool
    compute_s: float
    h2d_s: float
    d2h_s: float
    staging_s: float
    cache_growth_s: float
    reference_ok: Optional[bool]
    per_layer: Tuple[Dict, ...] = ()
    stage_events: Tuple[StageEvent, ...] = ()
    cache_events: Tuple[CacheExtension, ...] = ()
    #: Which sequence this step decoded (``"seq0"`` for the legacy
    #: single-sequence path).
    sequence: str = "seq0"

    @property
    def total_s(self) -> float:
        return (
            self.compute_s + self.h2d_s + self.d2h_s
            + self.staging_s + self.cache_growth_s
        )

    @property
    def serial_s(self) -> float:
        """The step's bus-serialized share: boundary transfers, weight
        staging and cache growth — paid per sequence even inside an
        iteration-level batch (every replica shares one host<->PIM
        bus)."""
        return (
            self.h2d_s + self.d2h_s + self.staging_s + self.cache_growth_s
        )

    def to_dict(self) -> Dict:
        return {
            "step": self.step,
            "sequence": self.sequence,
            "position": self.position,
            "capacity": self.capacity,
            "compiled_programs": self.compiled_programs,
            "replanned": self.replanned,
            "compute_ms": self.compute_s * 1e3,
            "h2d_ms": self.h2d_s * 1e3,
            "d2h_ms": self.d2h_s * 1e3,
            "staging_ms": self.staging_s * 1e3,
            "cache_growth_ms": self.cache_growth_s * 1e3,
            "total_ms": self.total_s * 1e3,
            "reference_ok": self.reference_ok,
        }


@dataclass(frozen=True)
class IterationReport:
    """One iteration of an iteration-level batch: one token decoded for
    each scheduled sequence, with the amortized device-occupancy model.

    The per-sequence :class:`StepReport` costs stay solo;
    :meth:`device_seconds` is the batch's simulated occupancy, split
    the way :meth:`repro.serve.server.Server._batch_duration` splits a
    flush: dispatch overhead once per iteration, kernel time per
    *round* within each capacity group (sequences at one capacity run
    one program, replicated across idle DPU groups), and bus-serialized
    per-sequence transfers (H2D/D2H, weight staging, cache growth) paid
    by every sequence.
    """

    reports: Tuple[StepReport, ...]

    @property
    def sequences(self) -> Tuple[str, ...]:
        return tuple(r.sequence for r in self.reports)

    @property
    def sum_total_s(self) -> float:
        """What the same steps cost decoded back-to-back (no sharing)."""
        return sum(r.total_s for r in self.reports)

    def device_seconds(
        self,
        dispatch_overhead_s: float = 0.0,
        replica_groups: int = 1,
    ) -> float:
        if replica_groups < 1:
            raise ValueError(
                f"replica_groups must be >= 1, got {replica_groups}"
            )
        if not self.reports:
            return 0.0
        by_capacity: "OrderedDict[int, List[StepReport]]" = OrderedDict()
        for report in self.reports:
            by_capacity.setdefault(report.capacity, []).append(report)
        total = dispatch_overhead_s
        for group in by_capacity.values():
            rounds = -(-len(group) // replica_groups)  # ceil division
            # Same capacity => same epoch graph => identical kernel
            # cost; one round runs `replica_groups` sequences at once.
            total += rounds * group[0].compute_s
        total += sum(r.serial_s for r in self.reports)
        return total


@dataclass
class _SequenceState:
    """Engine-side state of one decoded sequence."""

    name: str
    x: np.ndarray  # current hidden state (next step's input token)
    rng: np.random.Generator  # per-sequence stream (prompt rows)
    steps: int = 0  # tokens decoded so far


@dataclass
class _Epoch:
    """One capacity epoch's compiled working set."""

    capacity: int
    exe: GraphExecutable
    graph: Any
    keys: set
    layer_costs: List[Dict]
    step_costs: Dict[str, float]


@dataclass
class DecodeResult:
    """A full decode run: per-step reports plus the aggregates."""

    layers: int
    tokens: int
    prompt_tokens: int
    page_tokens: int
    steps: List[StepReport] = field(default_factory=list)
    #: Final hidden state of each step (the next step's input token).
    hidden_states: List[np.ndarray] = field(default_factory=list)
    memory_plan: Optional[Any] = None
    pool_stats: Dict = field(default_factory=dict)
    cache_stats: Dict = field(default_factory=dict)
    residency_stats: Dict = field(default_factory=dict)

    @property
    def replans(self) -> int:
        """Capacity-epoch rebuilds after the first compile."""
        return sum(1 for s in self.steps[1:] if s.replanned)

    @property
    def compiled_programs(self) -> int:
        return sum(s.compiled_programs for s in self.steps)

    @property
    def reference_ok(self) -> Optional[bool]:
        checked = [s.reference_ok for s in self.steps if s.reference_ok is not None]
        return all(checked) if checked else None

    def totals(self) -> Dict[str, float]:
        out = {
            "compute_s": 0.0, "h2d_s": 0.0, "d2h_s": 0.0,
            "staging_s": 0.0, "cache_growth_s": 0.0, "total_s": 0.0,
        }
        for s in self.steps:
            out["compute_s"] += s.compute_s
            out["h2d_s"] += s.h2d_s
            out["d2h_s"] += s.d2h_s
            out["staging_s"] += s.staging_s
            out["cache_growth_s"] += s.cache_growth_s
            out["total_s"] += s.total_s
        return out

    def per_layer_totals(self) -> List[Dict]:
        """Per-layer aggregate across every step: compute, boundary
        transfers, weight staging (with stage/evict counts) and cache
        growth — the fig17 multilayer breakdown."""
        rows: List[Dict] = [
            {
                "layer": layer, "compute_s": 0.0, "h2d_s": 0.0,
                "d2h_s": 0.0, "staging_s": 0.0, "cache_growth_s": 0.0,
                "stages": 0, "evictions": 0,
            }
            for layer in range(self.layers)
        ]
        for step in self.steps:
            for entry in step.per_layer:
                row = rows[entry["layer"]]
                for key in (
                    "compute_s", "h2d_s", "d2h_s",
                    "staging_s", "cache_growth_s",
                ):
                    row[key] += entry[key]
            for ev in step.stage_events:
                rows[ev.layer]["stages" if ev.action == "stage" else "evictions"] += 1
        return rows

    def to_dict(self) -> Dict:
        return {
            "layers": self.layers,
            "tokens": self.tokens,
            "prompt_tokens": self.prompt_tokens,
            "page_tokens": self.page_tokens,
            "replans": self.replans,
            "compiled_programs": self.compiled_programs,
            "reference_ok": self.reference_ok,
            "totals": self.totals(),
            "steps": [s.to_dict() for s in self.steps],
            "per_layer": [
                {
                    (f"{k[:-2]}_ms" if k.endswith("_s") else k):
                        (v * 1e3 if k.endswith("_s") else v)
                    for k, v in row.items()
                }
                for row in self.per_layer_totals()
            ],
            "memory": (
                self.memory_plan.to_dict() if self.memory_plan else None
            ),
            "pool": self.pool_stats,
            "cache": self.cache_stats,
            "residency": self.residency_stats,
        }


class DecodeEngine:
    """Run multi-token decode over an N-layer GPT-J graph."""

    def __init__(
        self,
        config: Optional[GPTJConfig] = None,
        layers: int = 2,
        page_tokens: int = 4,
        policy: str = "upmem",
        target: Any = "upmem",
        host_target: Any = "cpu",
        pool: Optional[ExecutablePool] = None,
        max_workers: Optional[int] = None,
        mram_budget_bytes: Optional[int] = None,
        residency_policy: str = "belady",
        params: Optional[Dict[str, Dict[str, int]]] = None,
        pin_small_grids: bool = True,
        max_pages: int = 1024,
        seed: int = 0,
        upmem_config: Optional[UpmemConfig] = None,
        check_references: bool = True,
        max_resident_epochs: int = 1,
    ) -> None:
        self.config = config or GPTJ_SIM
        if layers < 1:
            raise ValueError(f"layers must be >= 1, got {layers}")
        if max_resident_epochs < 1:
            raise ValueError(
                f"max_resident_epochs must be >= 1, got {max_resident_epochs}"
            )
        self.layers = layers
        self.policy = policy
        self.target = target
        self.host_target = host_target
        self.max_workers = max_workers
        self.params = params
        self.pin_small_grids = pin_small_grids
        self.seed = seed
        self.check_references = check_references
        #: How many capacity epochs stay compiled side by side.  1 is
        #: the single-sequence default (an epoch retires when the cache
        #: outgrows it); a multi-sequence engine wants several, because
        #: sequences at different positions revisit different
        #: capacities every iteration.
        self.max_resident_epochs = max_resident_epochs
        self.upmem_config = upmem_config or UpmemConfig()
        d = self.config.d_model
        self.cache = PagedKVCache(
            d_model=d,
            layers=layers,
            page_tokens=page_tokens,
            max_pages=max_pages,
            config=self.upmem_config,
        )
        self.cache.add_sequence("seq0")
        # Deterministic weights: one seeded stream, fixed layer/name
        # order.  Scaled small so the residual recurrence stays tame.
        rng = np.random.default_rng(seed)
        self.weights: Dict[str, np.ndarray] = {}
        for layer in range(layers):
            for name, shape in (
                (f"w_qkv_L{layer}", (3 * d, d)),
                (f"w_proj_L{layer}", (d, d)),
                (f"w_fc_L{layer}", (4 * d, d)),
                (f"w_fc_proj_L{layer}", (d, 4 * d)),
            ):
                self.weights[name] = (
                    rng.standard_normal(shape, dtype=np.float32)
                    * _WEIGHT_SCALE
                )
        layer_nbytes = 12 * d * d * 4  # the four FC weights, float32
        budget = (
            mram_budget_bytes
            if mram_budget_bytes is not None
            else layers * layer_nbytes  # whole model fits: load once
        )
        self.residency = WeightResidencyPlanner(
            [layer_nbytes] * layers,
            budget,
            policy=residency_policy,
            config=self.upmem_config,
        )
        # `pool or ...` would drop a caller's pool: an empty pool has
        # __len__ == 0 and is falsy.
        self.pool = pool if pool is not None else ExecutablePool(capacity=64)
        self._rng = rng
        self._seqs: Dict[str, _SequenceState] = {
            # seq0 keeps the legacy draw order: weights, then the
            # initial hidden state, from the engine's own stream.
            "seq0": _SequenceState(
                "seq0", rng.standard_normal((d,), dtype=np.float32), rng
            )
        }
        self._epochs: "OrderedDict[int, _Epoch]" = OrderedDict()
        self._global_step = 0

    # -- legacy single-sequence views ----------------------------------------
    @property
    def _x(self) -> np.ndarray:
        return self._seqs["seq0"].x

    @_x.setter
    def _x(self, value: np.ndarray) -> None:
        self._seqs["seq0"].x = value

    @property
    def _current_epoch(self) -> Optional[_Epoch]:
        if not self._epochs:
            return None
        return next(reversed(self._epochs.values()))

    @property
    def _epoch_capacity(self) -> Optional[int]:
        epoch = self._current_epoch
        return None if epoch is None else epoch.capacity

    @property
    def _epoch_exe(self) -> Optional[GraphExecutable]:
        epoch = self._current_epoch
        return None if epoch is None else epoch.exe

    @property
    def _epoch_graph(self):
        epoch = self._current_epoch
        return None if epoch is None else epoch.graph

    @property
    def _epoch_keys(self) -> set:
        keys: set = set()
        for epoch in self._epochs.values():
            keys |= epoch.keys
        return keys

    # -- sequence lifecycle ---------------------------------------------------
    def sequences(self) -> Tuple[str, ...]:
        """Registered sequence names, insertion-ordered."""
        return tuple(self._seqs)

    def add_sequence(
        self,
        name: str,
        prompt_tokens: int = 0,
        seed: Optional[int] = None,
    ) -> List[CacheExtension]:
        """Register a sequence with its own deterministic stream.

        The sequence's initial hidden state and (optional) prompt K/V
        rows come from ``default_rng((engine seed, sequence seed))``
        where the sequence seed defaults to a stable hash of ``name`` —
        so re-adding the same sequence on *any* engine built with the
        same model seed replays identically (the recovery path's replay
        contract).  Returns the prompt's cache-extension events.
        """
        if name in self._seqs:
            raise ValueError(f"sequence {name!r} already registered")
        if prompt_tokens < 0:
            raise ValueError(
                f"prompt_tokens must be >= 0, got {prompt_tokens}"
            )
        self.cache.add_sequence(name)
        entropy = _sequence_entropy(name) if seed is None else int(seed)
        rng = np.random.default_rng((self.seed, entropy))
        d = self.config.d_model
        state = _SequenceState(
            name, rng.standard_normal((d,), dtype=np.float32), rng
        )
        self._seqs[name] = state
        events: List[CacheExtension] = []
        if prompt_tokens:
            events = self._prefill_sequence(name, prompt_tokens)
        return events

    def remove_sequence(self, name: str) -> int:
        """Drop a sequence and release its cache pages (completion,
        preemption, or a failed worker losing its residents).  Returns
        the page count freed."""
        if name not in self._seqs:
            raise ValueError(f"unknown sequence {name!r}")
        freed = self.cache.free_sequence(name)
        del self._seqs[name]
        return freed

    def _prefill_sequence(
        self, name: str, prompt_tokens: int
    ) -> List[CacheExtension]:
        d = self.config.d_model
        state = self._seqs[name]
        events: List[CacheExtension] = []
        with current_tracer().span(
            "prefill",
            track="decode",
            cat="decode",
            args={"sequence": name, "tokens": prompt_tokens},
        ):
            for _ in range(prompt_tokens):
                rows = [
                    (
                        state.rng.standard_normal((d,), dtype=np.float32),
                        state.rng.standard_normal((d,), dtype=np.float32),
                    )
                    for _ in range(self.layers)
                ]
                events.extend(self.cache.append(name, rows))
        return events

    # -- prefill (legacy seq0 surface) ---------------------------------------
    def prefill(self, prompt_tokens: int) -> List[CacheExtension]:
        """Seed ``seq0`` with ``prompt_tokens`` deterministic K/V rows
        per layer (standing in for a prompt pass — the decode loop
        needs at least one cached position to attend over).  Prefill
        rows move over the bus like any cache extension; the events are
        returned and counted in the cache totals."""
        if prompt_tokens < 1:
            raise ValueError(
                f"prompt_tokens must be >= 1, got {prompt_tokens}"
            )
        return self._prefill_sequence("seq0", prompt_tokens)

    # -- page accounting ------------------------------------------------------
    def prompt_pages(self, prompt_tokens: int) -> int:
        """Pages admitting a ``prompt_tokens``-token sequence allocates
        (one block table per layer, whole pages)."""
        per_layer = -(-prompt_tokens // self.cache.page_tokens)
        return self.layers * per_layer

    def step_pages(self, name: str) -> int:
        """Pages the *next* :meth:`step_seq` of ``name`` will allocate
        (its append crosses a page boundary) — the preflight check a
        scheduler runs before including the sequence in an iteration."""
        length = self.cache.length(name)
        if length == 0 or length % self.cache.page_tokens:
            return 0
        return self.layers

    # -- epoch management ----------------------------------------------------
    def _ensure_epoch(self, capacity: int) -> Tuple[_Epoch, int, bool]:
        """Executable for one capacity epoch.

        A resident epoch → zero work.  A new capacity → build the epoch
        graph, compile through the *shared* pool (capacity-independent
        programs pool-hit), pin the new working set, and retire the
        oldest epoch beyond ``max_resident_epochs`` — unpinning only
        keys no surviving epoch still uses."""
        epoch = self._epochs.get(capacity)
        if epoch is not None:
            self._epochs.move_to_end(capacity)
            return epoch, 0, False
        tracer = current_tracer()
        # An epoch rebuild is host-side compile work: zero virtual
        # duration, but the span brackets every pool pin/load event the
        # rebuild generates on the "pool" track.
        with tracer.span(
            f"epoch capacity={capacity}",
            track="decode",
            cat="decode",
            args={"layers": self.layers, "capacity": capacity},
        ):
            graph = gptj_model_graph(
                self.config,
                layers=self.layers,
                capacity=capacity,
                params=self.params,
                pin_small_grids=self.pin_small_grids,
            )
            placement = place(
                graph, policy=self.policy,
                pim=self.target, host=self.host_target,
            )
            # Pin the epoch's working set BEFORE compiling: pinning after
            # the fact would let a small pool evict the epoch's own
            # programs while later nodes of the same graph still compile.
            keys = {
                ExecutablePool.key_for(
                    node.workload, placement[node.name], node.params
                )
                for node in graph.nodes
            }
            for key in sorted(keys, key=repr):
                self.pool.pin(key)
            exe = GraphExecutable(
                graph,
                placement,
                target=self.target,
                pool=self.pool,
                max_workers=self.max_workers,
            )
            layer_costs, step_costs = self._profile_costs(exe)
            epoch = _Epoch(capacity, exe, graph, keys, layer_costs, step_costs)
            self._epochs[capacity] = epoch
            while len(self._epochs) > self.max_resident_epochs:
                _, retired = self._epochs.popitem(last=False)
                survivors: set = set()
                for live in self._epochs.values():
                    survivors |= live.keys
                for stale in sorted(retired.keys - survivors, key=repr):
                    self.pool.unpin(stale)
        return epoch, exe.loaded_program_count, True

    def _profile_costs(
        self, exe: GraphExecutable
    ) -> Tuple[List[Dict], Dict[str, float]]:
        """Split the epoch profile's recurring costs by layer.

        Uses per-node compute and boundary transfers only — the
        profile's one-shot ``staging_s`` is deliberately ignored: the
        residency planner owns weight staging (and re-staging), and the
        paged cache owns KV traffic."""
        layer_costs = [
            {
                "layer": layer, "compute_s": 0.0,
                "h2d_s": 0.0, "d2h_s": 0.0,
                "staging_s": 0.0, "cache_growth_s": 0.0,
            }
            for layer in range(self.layers)
        ]
        totals = {"compute_s": 0.0, "h2d_s": 0.0, "d2h_s": 0.0}
        for cost in exe.profile().nodes:
            layer = int(cost.node.split(".", 1)[0][1:])
            layer_costs[layer]["compute_s"] += cost.compute_s
            layer_costs[layer]["h2d_s"] += cost.h2d_s
            layer_costs[layer]["d2h_s"] += cost.d2h_s
            totals["compute_s"] += cost.compute_s
            totals["h2d_s"] += cost.h2d_s
            totals["d2h_s"] += cost.d2h_s
        return layer_costs, totals

    # -- the token loop ------------------------------------------------------
    def step(self) -> StepReport:
        """Decode one token of ``seq0`` (the legacy single-sequence
        surface): (re)use the epoch executable, run the graph, charge
        residency + cache traffic, append the new K/V."""
        if self.cache.length("seq0") == 0:
            raise RuntimeError("call prefill() before decoding")
        return self.step_seq("seq0")

    def step_seq(self, name: str) -> StepReport:
        """Decode one token of one registered sequence."""
        if name not in self._seqs:
            raise ValueError(f"unknown sequence {name!r}")
        if self.cache.length(name) == 0:
            raise RuntimeError(
                f"sequence {name!r} has no cached positions; prefill or"
                f" add_sequence(prompt_tokens=...) first"
            )
        capacity = self.cache.capacity(name)
        position = self.cache.length(name)
        tracer = current_tracer()
        step_span = tracer.span(
            f"step {self._global_step}",
            track="decode",
            cat="decode",
            args={
                "sequence": name, "position": position, "capacity": capacity,
            },
        )
        step_span.__enter__()
        try:
            return self._step_body(name, capacity, position, tracer)
        finally:
            step_span.__exit__(None, None, None)

    def step_batch(self, names: Sequence[str]) -> IterationReport:
        """Decode one token of each named sequence — one iteration of
        an iteration-level batch.  Sequences run in the given order
        (the scheduler's priority order), each at its own position and
        capacity; per-sequence reports are solo costs, the iteration's
        shared device occupancy comes from
        :meth:`IterationReport.device_seconds`."""
        if not names:
            return IterationReport(reports=())
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate sequences in batch: {list(names)}")
        return IterationReport(
            reports=tuple(self.step_seq(name) for name in names)
        )

    def _step_body(
        self, name: str, capacity: int, position: int, tracer: Any
    ) -> StepReport:
        epoch, compiled, replanned = self._ensure_epoch(capacity)
        state = self._seqs[name]

        stage_events: List[StageEvent] = []
        for layer in range(self.layers):
            stage_events.extend(
                self.residency.access(self._global_step, layer)
            )

        inputs: Dict[str, np.ndarray] = dict(self.weights)
        inputs["x"] = state.x
        inputs["attn_mask"] = self.cache.attention_mask(name)
        d, hd = self.config.d_model, self.config.head_dim
        for layer in range(self.layers):
            k, v = self.cache.dense_kv(name, layer)
            for h in range(self.config.n_heads):
                sl = slice(h * hd, (h + 1) * hd)
                inputs[f"k_cache_L{layer}_h{h}"] = np.ascontiguousarray(
                    k[None, :, sl]
                )
                inputs[f"v_cache_t_L{layer}_h{h}"] = np.ascontiguousarray(
                    v[:, sl].T
                )
        outs = epoch.exe.run_tensors(inputs)

        reference_ok: Optional[bool] = None
        if self.check_references:
            ref = epoch.graph.reference_outputs(inputs)
            reference_ok = all(
                np.allclose(outs[name_], ref[name_], rtol=2e-3, atol=1e-5)
                for name_ in ref
            )

        state.x = outs[f"h{self.layers}"]
        state.steps += 1
        cache_events = self.cache.append(
            name,
            [
                (outs[f"k_new_L{layer}"], outs[f"v_new_L{layer}"])
                for layer in range(self.layers)
            ],
        )

        per_layer = []
        for layer in range(self.layers):
            entry = dict(epoch.layer_costs[layer])
            entry["staging_s"] = sum(
                e.seconds for e in stage_events if e.layer == layer
            )
            entry["cache_growth_s"] = sum(
                e.seconds for e in cache_events if e.layer == layer
            )
            per_layer.append(entry)

        if tracer.enabled:
            # Per-layer breakdown spans inside the step, then the graph's
            # per-node compute/H2D/D2H replay on its own track.  The layer
            # spans sum to the step's total, so the enclosing step span
            # covers exactly StepReport.total_s of virtual time.
            for entry in per_layer:
                tracer.timed_span(
                    f"layer {entry['layer']}",
                    track="decode",
                    cat="decode",
                    dur_s=(
                        entry["compute_s"] + entry["h2d_s"] + entry["d2h_s"]
                        + entry["staging_s"] + entry["cache_growth_s"]
                    ),
                    args={
                        "compute_ms": entry["compute_s"] * 1e3,
                        "h2d_ms": entry["h2d_s"] * 1e3,
                        "d2h_ms": entry["d2h_s"] * 1e3,
                        "staging_ms": entry["staging_s"] * 1e3,
                        "cache_growth_ms": entry["cache_growth_s"] * 1e3,
                    },
                )
            epoch.exe.trace(tracer, name=f"step {self._global_step} graph")

        report = StepReport(
            step=self._global_step,
            position=position,
            capacity=capacity,
            compiled_programs=compiled,
            replanned=replanned,
            compute_s=epoch.step_costs["compute_s"],
            h2d_s=epoch.step_costs["h2d_s"],
            d2h_s=epoch.step_costs["d2h_s"],
            staging_s=sum(e.seconds for e in stage_events),
            cache_growth_s=sum(e.seconds for e in cache_events),
            reference_ok=reference_ok,
            per_layer=tuple(per_layer),
            stage_events=tuple(stage_events),
            cache_events=tuple(cache_events),
            sequence=name,
        )
        self._global_step += 1
        return report

    def hidden_state(self, name: str = "seq0") -> np.ndarray:
        """The sequence's current hidden state (the last decoded
        token's final-layer output — the engine's "response" payload)."""
        if name not in self._seqs:
            raise ValueError(f"unknown sequence {name!r}")
        return self._seqs[name].x

    def decode(
        self, tokens: int, prompt_tokens: int = 4
    ) -> DecodeResult:
        """Prefill then decode ``tokens`` tokens of ``seq0`` end to end."""
        if tokens < 1:
            raise ValueError(f"tokens must be >= 1, got {tokens}")
        if self.cache.length("seq0") == 0:
            self.prefill(prompt_tokens)
        result = DecodeResult(
            layers=self.layers,
            tokens=tokens,
            prompt_tokens=self.cache.length("seq0"),
            page_tokens=self.cache.page_tokens,
        )
        for _ in range(tokens):
            report = self.step()
            result.steps.append(report)
            result.hidden_states.append(self._x.copy())
        result.memory_plan = plan_memory(self._epoch_graph)
        result.pool_stats = self.pool.stats()
        result.cache_stats = self.cache.stats()
        result.residency_stats = self.residency.stats()
        return result
