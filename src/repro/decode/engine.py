"""DecodeEngine: T tokens through an N-layer graph, end to end.

The engine closes the loop the rest of the stack leaves open: it owns
the model weights, a :class:`~repro.decode.kv_cache.PagedKVCache`, a
:class:`~repro.decode.residency.WeightResidencyPlanner`, and one shared
:class:`~repro.serve.pool.ExecutablePool`, and drives
:class:`~repro.graph.GraphExecutable` decode steps token after token:

* steps whose cache *capacity* is unchanged reuse the previous step's
  compiled executable outright — zero graph builds, zero pool lookups;
* a step that crossed a page boundary builds the next capacity epoch's
  graph, and the pool serves every capacity-independent program from
  residency (the epoch loads only the attention operators sized to the
  new capacity — ``StepReport.compiled_programs`` proves it);
* each step charges, separately and deterministically: per-node compute
  and boundary transfers (from the epoch's
  :class:`~repro.graph.executable.GraphProfile`), weight stage/evict
  traffic (from the residency planner), and cache-extension transfers
  (from the paged cache) — never the profile's one-shot staging number,
  which the planner supersedes.

Everything the engine reports is derived from deterministic inputs —
graph structure, simulated latencies, seeded arrays — so a decode run
is bit-for-bit reproducible at any ``max_workers`` and under any
``REPRO_SIM_MODE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..graph import GraphExecutable, gptj_model_graph, place, plan_memory
from ..graph.builder import GPTJ_SIM
from ..obs import current_tracer
from ..serve.pool import ExecutablePool
from ..upmem.config import UpmemConfig
from ..workloads.gptj import GPTJConfig
from .kv_cache import CacheExtension, PagedKVCache
from .residency import StageEvent, WeightResidencyPlanner

__all__ = ["StepReport", "DecodeResult", "DecodeEngine"]

#: Weight init scale: keeps hidden states O(1) through the layer
#: recurrence x <- x + attn + ffn across many decode steps.
_WEIGHT_SCALE = np.float32(0.05)


@dataclass(frozen=True)
class StepReport:
    """One decoded token's full cost breakdown (seconds)."""

    step: int
    #: Sequence length when the step ran (the positions attention saw).
    position: int
    #: Allocated cache tokens the step's graph was sized to.
    capacity: int
    #: Fresh programs this step's (re)compile loaded; 0 inside an epoch.
    compiled_programs: int
    #: Whether this step built a new capacity epoch's executable.
    replanned: bool
    compute_s: float
    h2d_s: float
    d2h_s: float
    staging_s: float
    cache_growth_s: float
    reference_ok: Optional[bool]
    per_layer: Tuple[Dict, ...] = ()
    stage_events: Tuple[StageEvent, ...] = ()
    cache_events: Tuple[CacheExtension, ...] = ()

    @property
    def total_s(self) -> float:
        return (
            self.compute_s + self.h2d_s + self.d2h_s
            + self.staging_s + self.cache_growth_s
        )

    def to_dict(self) -> Dict:
        return {
            "step": self.step,
            "position": self.position,
            "capacity": self.capacity,
            "compiled_programs": self.compiled_programs,
            "replanned": self.replanned,
            "compute_ms": self.compute_s * 1e3,
            "h2d_ms": self.h2d_s * 1e3,
            "d2h_ms": self.d2h_s * 1e3,
            "staging_ms": self.staging_s * 1e3,
            "cache_growth_ms": self.cache_growth_s * 1e3,
            "total_ms": self.total_s * 1e3,
            "reference_ok": self.reference_ok,
        }


@dataclass
class DecodeResult:
    """A full decode run: per-step reports plus the aggregates."""

    layers: int
    tokens: int
    prompt_tokens: int
    page_tokens: int
    steps: List[StepReport] = field(default_factory=list)
    #: Final hidden state of each step (the next step's input token).
    hidden_states: List[np.ndarray] = field(default_factory=list)
    memory_plan: Optional[Any] = None
    pool_stats: Dict = field(default_factory=dict)
    cache_stats: Dict = field(default_factory=dict)
    residency_stats: Dict = field(default_factory=dict)

    @property
    def replans(self) -> int:
        """Capacity-epoch rebuilds after the first compile."""
        return sum(1 for s in self.steps[1:] if s.replanned)

    @property
    def compiled_programs(self) -> int:
        return sum(s.compiled_programs for s in self.steps)

    @property
    def reference_ok(self) -> Optional[bool]:
        checked = [s.reference_ok for s in self.steps if s.reference_ok is not None]
        return all(checked) if checked else None

    def totals(self) -> Dict[str, float]:
        out = {
            "compute_s": 0.0, "h2d_s": 0.0, "d2h_s": 0.0,
            "staging_s": 0.0, "cache_growth_s": 0.0, "total_s": 0.0,
        }
        for s in self.steps:
            out["compute_s"] += s.compute_s
            out["h2d_s"] += s.h2d_s
            out["d2h_s"] += s.d2h_s
            out["staging_s"] += s.staging_s
            out["cache_growth_s"] += s.cache_growth_s
            out["total_s"] += s.total_s
        return out

    def per_layer_totals(self) -> List[Dict]:
        """Per-layer aggregate across every step: compute, boundary
        transfers, weight staging (with stage/evict counts) and cache
        growth — the fig17 multilayer breakdown."""
        rows: List[Dict] = [
            {
                "layer": layer, "compute_s": 0.0, "h2d_s": 0.0,
                "d2h_s": 0.0, "staging_s": 0.0, "cache_growth_s": 0.0,
                "stages": 0, "evictions": 0,
            }
            for layer in range(self.layers)
        ]
        for step in self.steps:
            for entry in step.per_layer:
                row = rows[entry["layer"]]
                for key in (
                    "compute_s", "h2d_s", "d2h_s",
                    "staging_s", "cache_growth_s",
                ):
                    row[key] += entry[key]
            for ev in step.stage_events:
                rows[ev.layer]["stages" if ev.action == "stage" else "evictions"] += 1
        return rows

    def to_dict(self) -> Dict:
        return {
            "layers": self.layers,
            "tokens": self.tokens,
            "prompt_tokens": self.prompt_tokens,
            "page_tokens": self.page_tokens,
            "replans": self.replans,
            "compiled_programs": self.compiled_programs,
            "reference_ok": self.reference_ok,
            "totals": self.totals(),
            "steps": [s.to_dict() for s in self.steps],
            "per_layer": [
                {
                    (f"{k[:-2]}_ms" if k.endswith("_s") else k):
                        (v * 1e3 if k.endswith("_s") else v)
                    for k, v in row.items()
                }
                for row in self.per_layer_totals()
            ],
            "memory": (
                self.memory_plan.to_dict() if self.memory_plan else None
            ),
            "pool": self.pool_stats,
            "cache": self.cache_stats,
            "residency": self.residency_stats,
        }


class DecodeEngine:
    """Run multi-token decode over an N-layer GPT-J graph."""

    def __init__(
        self,
        config: Optional[GPTJConfig] = None,
        layers: int = 2,
        page_tokens: int = 4,
        policy: str = "upmem",
        target: Any = "upmem",
        host_target: Any = "cpu",
        pool: Optional[ExecutablePool] = None,
        max_workers: Optional[int] = None,
        mram_budget_bytes: Optional[int] = None,
        residency_policy: str = "belady",
        params: Optional[Dict[str, Dict[str, int]]] = None,
        pin_small_grids: bool = True,
        max_pages: int = 1024,
        seed: int = 0,
        upmem_config: Optional[UpmemConfig] = None,
        check_references: bool = True,
    ) -> None:
        self.config = config or GPTJ_SIM
        if layers < 1:
            raise ValueError(f"layers must be >= 1, got {layers}")
        self.layers = layers
        self.policy = policy
        self.target = target
        self.host_target = host_target
        self.max_workers = max_workers
        self.params = params
        self.pin_small_grids = pin_small_grids
        self.seed = seed
        self.check_references = check_references
        self.upmem_config = upmem_config or UpmemConfig()
        d = self.config.d_model
        self.cache = PagedKVCache(
            d_model=d,
            layers=layers,
            page_tokens=page_tokens,
            max_pages=max_pages,
            config=self.upmem_config,
        )
        self.cache.add_sequence("seq0")
        # Deterministic weights: one seeded stream, fixed layer/name
        # order.  Scaled small so the residual recurrence stays tame.
        rng = np.random.default_rng(seed)
        self.weights: Dict[str, np.ndarray] = {}
        for layer in range(layers):
            for name, shape in (
                (f"w_qkv_L{layer}", (3 * d, d)),
                (f"w_proj_L{layer}", (d, d)),
                (f"w_fc_L{layer}", (4 * d, d)),
                (f"w_fc_proj_L{layer}", (d, 4 * d)),
            ):
                self.weights[name] = (
                    rng.standard_normal(shape, dtype=np.float32)
                    * _WEIGHT_SCALE
                )
        layer_nbytes = 12 * d * d * 4  # the four FC weights, float32
        budget = (
            mram_budget_bytes
            if mram_budget_bytes is not None
            else layers * layer_nbytes  # whole model fits: load once
        )
        self.residency = WeightResidencyPlanner(
            [layer_nbytes] * layers,
            budget,
            policy=residency_policy,
            config=self.upmem_config,
        )
        # `pool or ...` would drop a caller's pool: an empty pool has
        # __len__ == 0 and is falsy.
        self.pool = pool if pool is not None else ExecutablePool(capacity=64)
        self._rng = rng
        self._x = rng.standard_normal((d,), dtype=np.float32)
        self._epoch_capacity: Optional[int] = None
        self._epoch_exe: Optional[GraphExecutable] = None
        self._epoch_graph = None
        self._epoch_keys: set = set()
        self._epoch_layer_costs: List[Dict] = []
        self._epoch_step_costs: Dict[str, float] = {}
        self._global_step = 0

    # -- prefill -------------------------------------------------------------
    def prefill(self, prompt_tokens: int) -> List[CacheExtension]:
        """Seed the cache with ``prompt_tokens`` deterministic K/V rows
        per layer (standing in for a prompt pass — the decode loop
        needs at least one cached position to attend over).  Prefill
        rows move over the bus like any cache extension; the events are
        returned and counted in the cache totals."""
        if prompt_tokens < 1:
            raise ValueError(
                f"prompt_tokens must be >= 1, got {prompt_tokens}"
            )
        d = self.config.d_model
        events: List[CacheExtension] = []
        with current_tracer().span(
            "prefill",
            track="decode",
            cat="decode",
            args={"tokens": prompt_tokens},
        ):
            for _ in range(prompt_tokens):
                rows = [
                    (
                        self._rng.standard_normal((d,), dtype=np.float32),
                        self._rng.standard_normal((d,), dtype=np.float32),
                    )
                    for _ in range(self.layers)
                ]
                events.extend(self.cache.append("seq0", rows))
        return events

    # -- epoch management ----------------------------------------------------
    def _ensure_epoch(self, capacity: int) -> Tuple[GraphExecutable, int, bool]:
        """Executable for the current capacity epoch.

        Same capacity → the cached executable, zero work.  New capacity
        → build the epoch graph, compile through the *shared* pool
        (capacity-independent programs pool-hit), pin the new working
        set and unpin programs the retired epoch no longer needs."""
        if capacity == self._epoch_capacity and self._epoch_exe is not None:
            return self._epoch_exe, 0, False
        tracer = current_tracer()
        # An epoch rebuild is host-side compile work: zero virtual
        # duration, but the span brackets every pool pin/load event the
        # rebuild generates on the "pool" track.
        with tracer.span(
            f"epoch capacity={capacity}",
            track="decode",
            cat="decode",
            args={"layers": self.layers, "capacity": capacity},
        ):
            graph = gptj_model_graph(
                self.config,
                layers=self.layers,
                capacity=capacity,
                params=self.params,
                pin_small_grids=self.pin_small_grids,
            )
            placement = place(
                graph, policy=self.policy,
                pim=self.target, host=self.host_target,
            )
            # Pin the epoch's working set BEFORE compiling: pinning after
            # the fact would let a small pool evict the epoch's own
            # programs while later nodes of the same graph still compile.
            keys = {
                ExecutablePool.key_for(
                    node.workload, placement[node.name], node.params
                )
                for node in graph.nodes
            }
            for key in sorted(keys, key=repr):
                self.pool.pin(key)
            exe = GraphExecutable(
                graph,
                placement,
                target=self.target,
                pool=self.pool,
                max_workers=self.max_workers,
            )
            for stale in sorted(self._epoch_keys - keys, key=repr):
                self.pool.unpin(stale)
            self._epoch_keys = keys
            self._epoch_capacity = capacity
            self._epoch_exe = exe
            self._epoch_graph = graph
            self._epoch_layer_costs, self._epoch_step_costs = (
                self._profile_costs(exe)
            )
        return exe, exe.loaded_program_count, True

    def _profile_costs(
        self, exe: GraphExecutable
    ) -> Tuple[List[Dict], Dict[str, float]]:
        """Split the epoch profile's recurring costs by layer.

        Uses per-node compute and boundary transfers only — the
        profile's one-shot ``staging_s`` is deliberately ignored: the
        residency planner owns weight staging (and re-staging), and the
        paged cache owns KV traffic."""
        layer_costs = [
            {
                "layer": layer, "compute_s": 0.0,
                "h2d_s": 0.0, "d2h_s": 0.0,
                "staging_s": 0.0, "cache_growth_s": 0.0,
            }
            for layer in range(self.layers)
        ]
        totals = {"compute_s": 0.0, "h2d_s": 0.0, "d2h_s": 0.0}
        for cost in exe.profile().nodes:
            layer = int(cost.node.split(".", 1)[0][1:])
            layer_costs[layer]["compute_s"] += cost.compute_s
            layer_costs[layer]["h2d_s"] += cost.h2d_s
            layer_costs[layer]["d2h_s"] += cost.d2h_s
            totals["compute_s"] += cost.compute_s
            totals["h2d_s"] += cost.h2d_s
            totals["d2h_s"] += cost.d2h_s
        return layer_costs, totals

    # -- the token loop ------------------------------------------------------
    def step(self) -> StepReport:
        """Decode one token: (re)use the epoch executable, run the
        graph, charge residency + cache traffic, append the new K/V."""
        if self.cache.length("seq0") == 0:
            raise RuntimeError("call prefill() before decoding")
        capacity = self.cache.capacity("seq0")
        position = self.cache.length("seq0")
        tracer = current_tracer()
        step_span = tracer.span(
            f"step {self._global_step}",
            track="decode",
            cat="decode",
            args={"position": position, "capacity": capacity},
        )
        step_span.__enter__()
        try:
            return self._step_body(
                capacity, position, tracer, step_span
            )
        finally:
            step_span.__exit__(None, None, None)

    def _step_body(
        self, capacity: int, position: int, tracer: Any, step_span: Any
    ) -> StepReport:
        exe, compiled, replanned = self._ensure_epoch(capacity)
        graph = self._epoch_graph

        stage_events: List[StageEvent] = []
        for layer in range(self.layers):
            stage_events.extend(
                self.residency.access(self._global_step, layer)
            )

        inputs: Dict[str, np.ndarray] = dict(self.weights)
        inputs["x"] = self._x
        inputs["attn_mask"] = self.cache.attention_mask("seq0")
        d, hd = self.config.d_model, self.config.head_dim
        for layer in range(self.layers):
            k, v = self.cache.dense_kv("seq0", layer)
            for h in range(self.config.n_heads):
                sl = slice(h * hd, (h + 1) * hd)
                inputs[f"k_cache_L{layer}_h{h}"] = np.ascontiguousarray(
                    k[None, :, sl]
                )
                inputs[f"v_cache_t_L{layer}_h{h}"] = np.ascontiguousarray(
                    v[:, sl].T
                )
        outs = exe.run_tensors(inputs)

        reference_ok: Optional[bool] = None
        if self.check_references:
            ref = graph.reference_outputs(inputs)
            reference_ok = all(
                np.allclose(outs[name], ref[name], rtol=2e-3, atol=1e-5)
                for name in ref
            )

        self._x = outs[f"h{self.layers}"]
        cache_events = self.cache.append(
            "seq0",
            [
                (outs[f"k_new_L{layer}"], outs[f"v_new_L{layer}"])
                for layer in range(self.layers)
            ],
        )

        per_layer = []
        for layer in range(self.layers):
            entry = dict(self._epoch_layer_costs[layer])
            entry["staging_s"] = sum(
                e.seconds for e in stage_events if e.layer == layer
            )
            entry["cache_growth_s"] = sum(
                e.seconds for e in cache_events if e.layer == layer
            )
            per_layer.append(entry)

        if tracer.enabled:
            # Per-layer breakdown spans inside the step, then the graph's
            # per-node compute/H2D/D2H replay on its own track.  The layer
            # spans sum to the step's total, so the enclosing step span
            # covers exactly StepReport.total_s of virtual time.
            for entry in per_layer:
                tracer.timed_span(
                    f"layer {entry['layer']}",
                    track="decode",
                    cat="decode",
                    dur_s=(
                        entry["compute_s"] + entry["h2d_s"] + entry["d2h_s"]
                        + entry["staging_s"] + entry["cache_growth_s"]
                    ),
                    args={
                        "compute_ms": entry["compute_s"] * 1e3,
                        "h2d_ms": entry["h2d_s"] * 1e3,
                        "d2h_ms": entry["d2h_s"] * 1e3,
                        "staging_ms": entry["staging_s"] * 1e3,
                        "cache_growth_ms": entry["cache_growth_s"] * 1e3,
                    },
                )
            exe.trace(tracer, name=f"step {self._global_step} graph")

        report = StepReport(
            step=self._global_step,
            position=position,
            capacity=capacity,
            compiled_programs=compiled,
            replanned=replanned,
            compute_s=self._epoch_step_costs["compute_s"],
            h2d_s=self._epoch_step_costs["h2d_s"],
            d2h_s=self._epoch_step_costs["d2h_s"],
            staging_s=sum(e.seconds for e in stage_events),
            cache_growth_s=sum(e.seconds for e in cache_events),
            reference_ok=reference_ok,
            per_layer=tuple(per_layer),
            stage_events=tuple(stage_events),
            cache_events=tuple(cache_events),
        )
        self._global_step += 1
        return report

    def decode(
        self, tokens: int, prompt_tokens: int = 4
    ) -> DecodeResult:
        """Prefill then decode ``tokens`` tokens end to end."""
        if tokens < 1:
            raise ValueError(f"tokens must be >= 1, got {tokens}")
        if self.cache.length("seq0") == 0:
            self.prefill(prompt_tokens)
        result = DecodeResult(
            layers=self.layers,
            tokens=tokens,
            prompt_tokens=self.cache.length("seq0"),
            page_tokens=self.cache.page_tokens,
        )
        for _ in range(tokens):
            report = self.step()
            result.steps.append(report)
            result.hidden_states.append(self._x.copy())
        result.memory_plan = plan_memory(self._epoch_graph)
        result.pool_stats = self.pool.stats()
        result.cache_stats = self.cache.stats()
        result.residency_stats = self.residency.stats()
        return result
